//! # complex-objects
//!
//! A complete Rust implementation of *“A Calculus for Complex Objects”*
//! (François Bancilhon & Setrag Khoshafian, PODS 1986 / JCSS 38(2), 1989).
//!
//! The paper defines a data model in which **complex objects** are built
//! freely from atoms, tuples, and sets (no schema, no first-normal-form
//! constraint), shows that reduced objects ordered by the **sub-object**
//! relationship form a **lattice**, and uses that lattice to define a
//! **calculus** — an extension of Horn clauses in which a rule body is a
//! pattern whose instantiations are matched *below* the database object and
//! whose head instantiations are joined with the lattice union.
//!
//! # Workspace layout
//!
//! This facade crate re-exports the entire workspace (one crate per layer,
//! strictly acyclic; see `ARCHITECTURE.md` for the full picture):
//!
//! - [`object`] (`crates/object`, lib `co_object`) — the value model:
//!   atoms, ⊤/⊥, tuples, sets; canonical normalization; the sub-object
//!   order; union (lub) and intersection (glb). Composites are **interned
//!   in a hash-consed store** ([`object::store`]): canonically equal values
//!   share one allocation, so `==` is a pointer comparison, hashes are
//!   cached words, every node has a stable [`object::NodeId`] and
//!   precomputed [`object::Meta`] (depth, size, contains-set/flat flags),
//!   and the binary lattice operations are memoized by node-id pair.
//! - [`parser`] (`crates/parser`, `co_parser`) — the paper's
//!   Prolog-flavoured concrete syntax for objects, formulae, rules, and
//!   programs.
//! - [`calculus`] (`crates/core`, `co_calculus`) — well-formed formulae,
//!   substitutions, the matcher (maximal bindings via lattice glbs),
//!   interpretation, rules, and closure semantics (the paper's §4).
//! - [`engine`] (`crates/engine`, `co_engine`) — naive and semi-naive
//!   fixpoint evaluation with guards, statistics, deltas, and
//!   attribute-value indexes keyed by interned set `NodeId` (index reuse
//!   survives re-derivation; no pointer-aliasing hazards).
//! - [`relational`] (`crates/relational`, `co_relational`) — a flat
//!   relational-algebra baseline plus NF² operators, used for differential
//!   testing and benchmarks; its encoder emits interned nodes, so repeated
//!   encodings deduplicate structurally.
//! - [`schema`] (`crates/schema`, `co_schema`) — the §5 future-work item: a
//!   type system for complex objects.
//! - [`wire`] (`crates/wire`, `co_wire`) — hash-cons-aware binary
//!   snapshots: a topologically-ordered node table encodes each distinct
//!   interned node exactly once, so on-disk size tracks the DAG, not the
//!   tree expansion; the reader re-interns bottom-up and deduplicates
//!   against the live store. Version-2 **delta snapshots** encode only
//!   the nodes a base snapshot lacks and restore as verified chains
//!   (`wire::read_chain`, `wire::compact_chain`, `wire::describe`).
//!   `Engine::checkpoint` / `Engine::restore` /
//!   `Engine::restore_chain` build on it, auto-selecting deltas while a
//!   checkpoint chain is live.
//! - [`server`] (`crates/server`, `co_server`) — the multi-client serving
//!   layer: a threaded TCP front-end over one
//!   [`engine::SharedEngine`], where each session reads against a pinned
//!   snapshot (bit-identical to a single-threaded run quiesced at that
//!   version) while writers advance the head, and results ship back as
//!   checksummed co-wire frames.
//! - [`obs`] (`crates/obs`, `co_obs`) — the dependency-light
//!   observability core every layer above records into: atomic
//!   counters/gauges, log-bucketed mergeable histograms (p50/p99 from
//!   lock-free recording), a named global registry snapshottable over
//!   the wire (`server::Request::Metrics`), and a JSON-lines span
//!   emitter gated by `CO_TRACE`.
//!
//! Two more pieces are not re-exported: `crates/bench` (`co_bench`,
//! workload builders, experiment binaries, and the criterion benches) and
//! `vendor/` (offline in-tree shims for external crates — the build needs
//! no registry access).
//!
//! ## Quickstart
//!
//! ```
//! use complex_objects::prelude::*;
//!
//! // Build the database of paper Example 4.5 and compute the descendants
//! // of abraham with the two-rule program from the paper.
//! let db = parse_object(
//!     "[family: {[name: abraham, children: {[name: isaac]}],
//!                [name: isaac,   children: {[name: esau], [name: jacob]}]}]",
//! )
//! .unwrap();
//! let program = parse_program(
//!     "[doa: {abraham}].
//!      [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
//! )
//! .unwrap();
//! let result = Engine::new(program).run(&db).unwrap();
//! let doa = result.database.at_path(&["doa"]).unwrap();
//! assert_eq!(doa, &parse_object("{abraham, isaac, esau, jacob}").unwrap());
//! ```

pub use co_calculus as calculus;
pub use co_engine as engine;
pub use co_object as object;
pub use co_obs as obs;
pub use co_parser as parser;
pub use co_relational as relational;
pub use co_schema as schema;
pub use co_server as server;
pub use co_wire as wire;

/// Convenient single-import surface for applications and examples.
pub mod prelude {
    pub use co_calculus::{
        apply_program, apply_rule, interpret, Formula, MatchPolicy, Program, Rule, Substitution,
    };
    pub use co_engine::{
        ClosureMode, Engine, EvalStats, Guard, Parallelism, SharedEngine, Strategy,
    };
    pub use co_object::{obj, Atom, Attr, Object};
    pub use co_parser::{parse_formula, parse_object, parse_program, parse_rule};
    pub use co_relational::{Database, Relation};
    pub use co_schema::{infer_type, Type};
}

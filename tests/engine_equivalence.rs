//! Differential testing of the engine: every strategy/index combination
//! must compute exactly the reference closure (`co_calculus::closure`) on
//! randomized databases and a library of rule shapes (experiment E12).

mod common;

use co_calculus::{ClosureLimits, ClosureMode};
use common::{program_library, random_graph_db};
use complex_objects::prelude::*;
// Explicit import: both preludes glob-export a `Strategy` (the engine's
// enum and proptest's trait); the non-glob import disambiguates.
use co_engine::Strategy;
use proptest::prelude::*;

fn reference(
    program: &Program,
    db: &complex_objects::object::Object,
) -> complex_objects::object::Object {
    co_calculus::closure(
        program,
        db,
        ClosureMode::Inflationary,
        MatchPolicy::Strict,
        ClosureLimits::default(),
    )
    .expect("library programs converge on finite graphs")
    .object
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// naive == semi-naive == reference, with and without indexes.
    #[test]
    fn all_configurations_agree(seed in any::<u64>(), nodes in 2i64..8, edges in 1usize..14) {
        let db = random_graph_db(seed, nodes, edges);
        for (name, program) in program_library() {
            let expected = reference(&program, &db);
            for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                for indexes in [false, true] {
                    let out = Engine::new(program.clone())
                        .strategy(strategy)
                        .indexes(indexes)
                        .run(&db)
                        .unwrap();
                    prop_assert_eq!(
                        &out.database,
                        &expected,
                        "program={} strategy={:?} indexes={}",
                        name, strategy, indexes
                    );
                }
            }
        }
    }

    /// Literal policy: engine strategies agree with the reference too.
    #[test]
    fn literal_policy_configurations_agree(seed in any::<u64>(), nodes in 2i64..6, edges in 1usize..8) {
        let db = random_graph_db(seed, nodes, edges);
        let program = common::reachability_program();
        let expected = co_calculus::closure(
            &program, &db, ClosureMode::Inflationary, MatchPolicy::Literal,
            ClosureLimits::default(),
        ).unwrap().object;
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let out = Engine::new(program.clone())
                .strategy(strategy)
                .policy(MatchPolicy::Literal)
                .indexes(false)
                .run(&db)
                .unwrap();
            prop_assert_eq!(&out.database, &expected, "strategy={:?}", strategy);
        }
    }

    /// Lemma 4.1 (monotonicity), engine-level: running on a larger database
    /// yields a larger closure.
    #[test]
    fn closure_is_monotone_in_the_database(seed in any::<u64>(), nodes in 2i64..6, edges in 1usize..8) {
        use complex_objects::object::{lattice, order};
        let small = random_graph_db(seed, nodes, edges);
        let big = lattice::union(&small, &random_graph_db(seed.wrapping_add(1), nodes, edges));
        prop_assume!(order::le(&small, &big));
        let program = common::transitive_closure_program();
        let c_small = Engine::new(program.clone()).run(&small).unwrap().database;
        let c_big = Engine::new(program).run(&big).unwrap().database;
        prop_assert!(order::le(&c_small, &c_big));
    }
}

#[test]
fn seminaive_saves_work_on_long_chains() {
    // A 60-node chain: semi-naive must fire far fewer matches in total.
    let db = common::chain_family_db(60);
    let program = common::descendants_program("p0");
    let naive = Engine::new(program.clone())
        .strategy(Strategy::Naive)
        .indexes(false)
        .run(&db)
        .unwrap();
    let semi = Engine::new(program)
        .strategy(Strategy::SemiNaive)
        .indexes(false)
        .run(&db)
        .unwrap();
    assert_eq!(naive.database, semi.database);
    assert_eq!(
        naive.database.dot("doa").as_set().unwrap().len(),
        61 // p0 ..= p60
    );
    assert!(
        semi.stats.matching.matches * 5 < naive.stats.matching.matches,
        "semi-naive {} vs naive {} matches",
        semi.stats.matching.matches,
        naive.stats.matching.matches
    );
}

#[test]
fn reference_and_engine_agree_on_divergence_detection() {
    let program = parse_program(
        "[list: {1}].
         [list: {[head: 1, tail: X]}] :- [list: {X}].",
    )
    .unwrap();
    let db = parse_object("[list: {}]").unwrap();
    let reference = co_calculus::closure(
        &program,
        &db,
        ClosureMode::Inflationary,
        MatchPolicy::Strict,
        ClosureLimits {
            max_iterations: 30,
            ..ClosureLimits::default()
        },
    );
    assert!(reference.is_err());
    let engine = Engine::new(program)
        .guard(Guard {
            max_iterations: 30,
            ..Guard::default()
        })
        .run(&db);
    assert!(engine.is_err());
}

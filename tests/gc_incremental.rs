//! Pause-budget soak for the incremental collector (PR 10).
//!
//! The latency contract under test:
//!
//! - **bounded pauses** — with a budget of B µs, no slice of a sweep cycle
//!   holds interner locks longer than ~B; every `store.gc_pause_ns`
//!   sample in the window stays ≤ 2×B even while a cycle walks 100k+
//!   nodes;
//! - **reclamation is undiminished** — slicing still reclaims ≥90% of
//!   unreachable churn per cycle;
//! - **semantics are untouched** — fixpoints under aggressive slicing
//!   (tiny budget, GC after every round, 1 and 4 threads) are
//!   bit-identical to a never-collected baseline, same as `gc_soak.rs`
//!   proves for the default budget;
//! - **the collector thread preserves all of the above** while taking
//!   collection off the calling thread's trigger path.
//!
//! Tests serialize on one mutex (collection and the registry histograms
//! are process-wide) and restore every knob they touch.

mod common;

use common::{chain_family_db, descendants_program};
use complex_objects::engine::{Engine, GcCadence, Parallelism};
use complex_objects::object::{store, Object};
use complex_objects::obs;

static SOAK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn soak_lock() -> std::sync::MutexGuard<'static, ()> {
    SOAK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores budget / collector / metrics knobs on drop (even on panic).
struct KnobGuard {
    budget_us: u64,
    collector: bool,
    metrics: bool,
}

impl KnobGuard {
    fn capture() -> Self {
        KnobGuard {
            budget_us: store::gc_pause_budget_us(),
            collector: store::gc_collector_enabled(),
            metrics: obs::metrics_enabled(),
        }
    }
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        store::set_gc_pause_budget_us(self.budget_us);
        store::set_gc_collector(self.collector);
        obs::set_metrics_enabled(self.metrics);
    }
}

/// One tuple node + one set node per call, uniquely tagged.
fn transient(tag: &str, i: i64) -> Object {
    Object::tuple([
        (tag, Object::int(i)),
        (
            "payload",
            Object::set([Object::int(i), Object::int(i + 1), Object::int(-i)]),
        ),
    ])
}

/// The windowed `store.gc_pause_ns` histogram since `before`.
fn pause_window(before: &obs::Snapshot) -> obs::HistogramSnapshot {
    obs::global()
        .snapshot()
        .minus(before)
        .histogram("store.gc_pause_ns")
        .cloned()
        .unwrap_or_default()
}

/// The acceptance soak: 100k+ nodes of churn swept under a small budget —
/// every per-slice pause sample in the window must respect it, and the
/// cycle must still reclaim ≥90%.
#[test]
fn budgeted_sweep_bounds_every_pause_sample() {
    let _g = soak_lock();
    let _knobs = KnobGuard::capture();
    // Pause samples are wall time while a lock is held, so on a 1-core
    // box they honestly include any scheduler preemption (a few ms per
    // CFS timeslice, debug build) that lands mid-region. A 10ms budget
    // keeps that noise inside the 2× allowance while still proving
    // slicing: the same cycle unsliced holds locks for >100ms.
    const BUDGET_US: u64 = 10_000;
    store::set_gc_pause_budget_us(BUDGET_US);
    store::set_gc_collector(false);
    obs::set_metrics_enabled(true);
    store::collect(); // start the window from a garbage-free store

    let before_stats = store::stats();
    let before_snap = obs::global().snapshot();
    let (created, sample_ids) = {
        let transients: Vec<Object> = (0..60_000).map(|i| transient("gc_inc_k", i)).collect();
        let sample_ids: Vec<_> = transients
            .iter()
            .step_by(997)
            .map(|o| o.node_id().unwrap())
            .collect();
        let mid = store::stats();
        let created =
            (mid.tuple_nodes + mid.set_nodes) - (before_stats.tuple_nodes + before_stats.set_nodes);
        assert!(
            created >= 100_000,
            "the workload must intern ≥100k fresh nodes, got {created}"
        );
        (created, sample_ids)
    }; // every transient drops here

    let sweep = store::collect();
    assert!(
        sweep.freed_nodes() >= created * 9 / 10,
        "a sliced sweep must still reclaim ≥90% of {created} nodes, freed {}",
        sweep.freed_nodes()
    );
    for id in sample_ids {
        assert!(!store::contains_node(id), "transient {id} must be gone");
    }
    assert!(
        sweep.slices >= 4,
        "a 100k-node cycle under a small budget must split into many \
         slices, got {}",
        sweep.slices
    );
    assert!(
        u64::from(sweep.slices) == store::stats().gc_slices - before_stats.gc_slices,
        "SweepStats.slices must reconcile with the cumulative slice counter"
    );

    let pauses = pause_window(&before_snap);
    assert!(
        pauses.count >= u64::from(sweep.slices),
        "every slice records a pause sample"
    );
    // The invariant: no sample in the window exceeds 2× the budget. The
    // histogram's max is a bucket upper bound (≤3.2% over), well inside
    // the 2× allowance.
    let bound_ns = 2 * BUDGET_US * 1_000;
    assert!(
        pauses.max <= bound_ns,
        "worst pause {}ns breaches 2×budget {}ns across {} samples",
        pauses.max,
        bound_ns,
        pauses.count
    );
}

/// Budget 0 disables slicing: the whole cycle is one stop-the-world
/// slice, the pre-incremental behaviour.
#[test]
fn zero_budget_is_one_stop_the_world_slice() {
    let _g = soak_lock();
    let _knobs = KnobGuard::capture();
    store::set_gc_pause_budget_us(0);
    store::set_gc_collector(false);
    {
        let _garbage: Vec<Object> = (0..5_000).map(|i| transient("gc_inc_stw", i)).collect();
    }
    let sweep = store::collect();
    assert!(sweep.freed_nodes() > 0, "churn must be reclaimed");
    assert_eq!(
        sweep.slices, 1,
        "an unbudgeted cycle must run as exactly one slice"
    );
}

/// The differential oracle under *aggressive* slicing: a 50µs budget
/// forces many slices per cycle, GC runs after every round, at 1 and 4
/// threads — and the fixpoint is still bit-identical to a never-collected
/// baseline (values, traces, and node ids).
#[test]
fn tiny_budget_fixpoints_stay_bit_identical() {
    let _g = soak_lock();
    let _knobs = KnobGuard::capture();
    store::set_gc_collector(false);
    let db = chain_family_db(60);
    let program = descendants_program("p0");
    store::set_gc_pause_budget_us(0);
    let baseline = Engine::new(program.clone())
        .parallelism(Parallelism::Sequential)
        .gc_cadence(GcCadence::Off)
        .tracing(true)
        .run(&db)
        .unwrap();
    store::set_gc_pause_budget_us(50);
    for threads in [1usize, 4] {
        let out = Engine::new(program.clone())
            .gc_every_rounds(1)
            .tracing(true)
            .parallelism(match threads {
                1 => Parallelism::Sequential,
                n => Parallelism::Threads(n),
            })
            .run(&db)
            .unwrap();
        assert_eq!(out.database, baseline.database, "threads={threads}");
        assert_eq!(out.database.node_id(), baseline.database.node_id());
        assert_eq!(
            out.trace.as_ref().unwrap().events(),
            baseline.trace.as_ref().unwrap().events(),
            "threads={threads}"
        );
        assert_eq!(out.stats.gc_sweeps, out.stats.iterations - 1);
        assert!(out.stats.gc_freed_nodes > 0);
    }
}

/// The collector thread, end to end: high-water churn on worker threads
/// is reclaimed by the dedicated thread with every pause budgeted, and an
/// explicit `collect()` stays synchronous (its `SweepStats` reflect the
/// cycle the caller waited for).
#[test]
fn collector_thread_bounds_pauses_and_keeps_collect_synchronous() {
    let _g = soak_lock();
    let _knobs = KnobGuard::capture();
    // A wider budget than the inline soak: the pause samples honestly
    // include time the collector spends *descheduled* while holding a
    // shard lock, and on a 1-core box with churn workers runnable that
    // adds scheduler-latency periods (up to ~10ms each, debug build) on
    // top of the sweep work itself. The invariant under test is unchanged
    // — every sample ≤ 2× budget.
    const BUDGET_US: u64 = 30_000;
    store::set_gc_pause_budget_us(BUDGET_US);
    store::set_gc_collector(true);
    obs::set_metrics_enabled(true);
    store::collect();

    let before_snap = obs::global().snapshot();
    let before = store::stats();

    // Churn from worker threads with the high-water trigger armed: the
    // workers only ever *nudge*; the collector thread does the sweeping.
    let mark = store::live_nodes() + 4_000;
    store::set_gc_high_water(mark);
    // The workers pace themselves like real ingest (a breath every few
    // thousand interns) instead of hard-spinning: with every thread
    // permanently runnable on a 1-core box, the collector could lose
    // several consecutive timeslices *while holding a shard lock*, and
    // that scheduler stall — not sweep work — would breach the bound.
    let workers: Vec<_> = (0..2)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..30_000i64 {
                    let _ = transient("gc_inc_bg", t * 1_000_000 + i);
                    if i % 4_000 == 3_999 {
                        std::thread::sleep(std::time::Duration::from_micros(500));
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    store::set_gc_high_water(0);

    // Synchronous tail collection mops up whatever the last nudge missed;
    // the call must block until the collector's cycle finishes.
    let sweep = store::collect();
    let after = store::stats();
    assert!(
        after.gc_sweeps > before.gc_sweeps,
        "the collector must have swept"
    );
    assert!(
        after.gc_freed_nodes - before.gc_freed_nodes >= 100_000,
        "2×30k tuple+set transients must be reclaimed, got {}",
        after.gc_freed_nodes - before.gc_freed_nodes
    );
    // `passes >= 1` proves the caller got a *completed cycle's* stats
    // back (a default/empty `SweepStats` has 0 passes). `examined` can
    // legitimately be 0 here: the collector's last nudge-driven cycle may
    // have already reclaimed every transient before this call took its
    // ticket.
    assert!(
        sweep.passes >= 1,
        "a synchronous collect through the collector returns real stats"
    );

    let pauses = pause_window(&before_snap);
    let bound_ns = 2 * BUDGET_US * 1_000;
    assert!(
        pauses.count > 0,
        "collector cycles must record pause samples"
    );
    assert!(
        pauses.max <= bound_ns,
        "worst collector pause {}ns breaches 2×budget {}ns across {} samples",
        pauses.max,
        bound_ns,
        pauses.count
    );
}

//! Shared helpers for the workspace integration tests: randomized
//! databases, formulas, and rule programs with known-good shapes.

#![allow(dead_code)]

use complex_objects::object::{Attr, Object};
use complex_objects::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random edge relation `[edge: {[src: i, dst: j], …}]` over `nodes`
/// nodes with `edges` random edges (plus a start marker relation).
pub fn random_graph_db(seed: u64, nodes: i64, edges: usize) -> Object {
    let mut rng = StdRng::seed_from_u64(seed);
    let edge_set = Object::set((0..edges).map(|_| {
        Object::tuple([
            (Attr::new("src"), Object::int(rng.random_range(0..nodes))),
            (Attr::new("dst"), Object::int(rng.random_range(0..nodes))),
        ])
    }));
    Object::tuple([
        (Attr::new("edge"), edge_set),
        (Attr::new("start"), Object::set([Object::int(0)])),
    ])
}

/// A chain family database `p0 → p1 → … → pn` in the paper's Example 4.5
/// shape.
pub fn chain_family_db(n: usize) -> Object {
    let family = Object::set((0..n).map(|i| {
        parse_object(&format!("[name: p{i}, children: {{[name: p{}]}}]", i + 1)).unwrap()
    }));
    Object::tuple([(Attr::new("family"), family)])
}

/// The descendants program of Example 4.5, parameterized by the root name.
pub fn descendants_program(root: &str) -> Program {
    parse_program(&format!(
        "[doa: {{{root}}}].
         [doa: {{X}}] :- [family: {{[name: Y, children: {{[name: X]}}]}}, doa: {{Y}}]."
    ))
    .unwrap()
}

/// Transitive closure over the `edge` relation, reachability from `start`.
pub fn reachability_program() -> Program {
    parse_program(
        "[reach: {X}] :- [start: {X}].
         [reach: {Y}] :- [edge: {[src: X, dst: Y]}, reach: {X}].",
    )
    .unwrap()
}

/// Full transitive closure as a binary relation.
pub fn transitive_closure_program() -> Program {
    parse_program(
        "[tc: {[src: X, dst: Y]}] :- [edge: {[src: X, dst: Y]}].
         [tc: {[src: X, dst: Z]}] :- [edge: {[src: X, dst: Y]}, tc: {[src: Y, dst: Z]}].",
    )
    .unwrap()
}

/// Same-generation: a classic nonlinear recursive Datalog program.
pub fn same_generation_program() -> Program {
    // Note the self-join: Definition 4.1 requires distinct attribute names
    // in a tuple formula, so both edge patterns go into ONE set formula.
    parse_program(
        "[sg: {[l: X, r: X]}] :- [edge: {[src: X, dst: Y]}].
         [sg: {[l: X, r: X]}] :- [edge: {[src: Y, dst: X]}].
         [sg: {[l: X, r: Y]}] :- [edge: {[src: U, dst: X], [src: V, dst: Y]}, sg: {[l: U, r: V]}].",
    )
    .unwrap()
}

/// A library of randomized programs exercising distinct rule shapes.
pub fn program_library() -> Vec<(&'static str, Program)> {
    vec![
        ("reachability", reachability_program()),
        ("transitive-closure", transitive_closure_program()),
        ("same-generation", same_generation_program()),
        (
            "projection-chain",
            parse_program(
                "[p1: {X}] :- [edge: {[src: X, dst: Y]}].
                 [p2: {Y}] :- [edge: {[src: X, dst: Y]}].
                 [both: {X}] :- [p1: {X}, p2: {X}].",
            )
            .unwrap(),
        ),
        (
            "nesting",
            parse_program("[grouped: {[k: X, members: {Y}]}] :- [edge: {[src: X, dst: Y]}].")
                .unwrap(),
        ),
    ]
}

//! Cross-crate lattice law checks (experiment E11): the lattice operations
//! commute with parsing/printing, and Theorems 3.1–3.6 hold on objects that
//! have passed through every layer (generator → printer → parser).

use complex_objects::object::random::{Generator, Profile};
use complex_objects::object::{lattice, measure, order, Object};
use complex_objects::parser::parse_object;
use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = (Object, Object)> {
    any::<u64>().prop_map(|seed| {
        let mut g = Generator::new(seed, Profile::default());
        let a = g.object();
        let b = g.object();
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lattice ops survive a print→parse round trip.
    #[test]
    fn lattice_ops_commute_with_parsing((a, b) in arb_pair()) {
        let u = lattice::union(&a, &b);
        let i = lattice::intersect(&a, &b);
        let a2 = parse_object(&a.to_string()).unwrap();
        let b2 = parse_object(&b.to_string()).unwrap();
        prop_assert_eq!(lattice::union(&a2, &b2), u);
        prop_assert_eq!(lattice::intersect(&a2, &b2), i);
    }

    /// Theorem 3.3 (partial order) on round-tripped objects.
    #[test]
    fn order_laws_hold_after_round_trip((a, b) in arb_pair()) {
        let a = parse_object(&a.to_string()).unwrap();
        let b = parse_object(&b.to_string()).unwrap();
        prop_assert!(order::le(&a, &a));
        if order::le(&a, &b) && order::le(&b, &a) {
            prop_assert_eq!(a, b);
        }
    }

    /// Theorem 3.6: ∪/∩ are bounds, and the distributive-ish absorption
    /// laws hold.
    #[test]
    fn bounds_and_absorption((a, b) in arb_pair()) {
        let u = lattice::union(&a, &b);
        let i = lattice::intersect(&a, &b);
        prop_assert!(order::le(&a, &u) && order::le(&b, &u));
        prop_assert!(order::le(&i, &a) && order::le(&i, &b));
        prop_assert_eq!(lattice::union(&a, &i), a.clone());
        prop_assert_eq!(lattice::intersect(&a, &u), a.clone());
    }

    /// Union/intersection respect the depth measure's extremes: the depth
    /// of a ∩ b never exceeds either input's depth bound ⊥/⊤ behaviour.
    #[test]
    fn depth_sanity((a, b) in arb_pair()) {
        let i = lattice::intersect(&a, &b);
        // Intersection of ⊤-free objects is ⊤-free.
        prop_assert!(measure::depth(&i) != measure::Depth::Infinite
            || measure::depth(&a) == measure::Depth::Infinite
            || measure::depth(&b) == measure::Depth::Infinite);
    }

    /// The modular-ish inequality valid in every lattice:
    /// (a ∩ b) ∪ (a ∩ c) ≤ a ∩ (b ∪ c).
    #[test]
    fn semidistributive_inequality((a, b) in arb_pair(), seed in any::<u64>()) {
        let c = Generator::new(seed, Profile::default()).object();
        let lhs = lattice::union(
            &lattice::intersect(&a, &b),
            &lattice::intersect(&a, &c),
        );
        let rhs = lattice::intersect(&a, &lattice::union(&b, &c));
        prop_assert!(
            order::le(&lhs, &rhs),
            "({a} ∩ {b}) ∪ ({a} ∩ {c}) = {lhs} not ≤ {rhs}"
        );
    }
}

#[test]
fn non_distributivity_witness() {
    // The complex-object lattice is NOT distributive — a fact the paper
    // does not state but that matters for would-be algebraic optimizers.
    // Witness at the atoms: with distinct atoms 1, 2, 3 we get 2 ∪ 3 = ⊤,
    // so 1 ∩ (2 ∪ 3) = 1, while (1 ∩ 2) ∪ (1 ∩ 3) = ⊥ ∪ ⊥ = ⊥.
    let a = parse_object("1").unwrap();
    let b = parse_object("2").unwrap();
    let c = parse_object("3").unwrap();
    let lhs = lattice::union(&lattice::intersect(&a, &b), &lattice::intersect(&a, &c));
    let rhs = lattice::intersect(&a, &lattice::union(&b, &c));
    assert_eq!(lhs, Object::Bottom);
    assert_eq!(rhs, a);
    assert!(order::le(&lhs, &rhs));
    assert_ne!(lhs, rhs, "expected a strict distributivity gap");
}

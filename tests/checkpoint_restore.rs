//! Checkpoint → restore → continue-to-fixpoint equivalence.
//!
//! The contract under test: `Engine::checkpoint` followed by
//! `Engine::restore` — in the same process or a **fresh** one — yields an
//! engine that reaches a bit-identical fixpoint with a bit-identical
//! trace, at any thread count and GC cadence.
//!
//! Fresh-process coverage re-executes this very test binary with
//! `--exact` on a child-mode test (selected by the `CKPT_CHILD_DIR`
//! environment variable): the child restores the snapshot into its own
//! empty store, runs to fixpoint under the requested
//! `CO_ENGINE_THREADS`/`CO_GC_EVERY_ROUND`, and reports its result back
//! as another wire snapshot, which the parent re-loads and compares
//! semantically.

use complex_objects::engine::{GcCadence, RunOutcome};
use complex_objects::prelude::*;
use complex_objects::wire;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn program_text() -> &'static str {
    "[doa: {p0}].
     [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]."
}

fn chain_db(n: usize) -> Object {
    let family = Object::set((0..n).map(|i| {
        Object::tuple([
            ("name", Object::str(format!("p{i}"))),
            (
                "children",
                Object::set([Object::tuple([(
                    "name",
                    Object::str(format!("p{}", i + 1)),
                )])]),
            ),
        ])
    }));
    Object::tuple([("family", family)])
}

fn engine() -> Engine {
    Engine::new(parse_program(program_text()).unwrap()).tracing(true)
}

fn fingerprint(out: &RunOutcome) -> String {
    format!(
        "iterations={}\ndb={}\ntrace:\n{}",
        out.stats.iterations,
        out.database,
        out.trace.as_ref().expect("tracing enabled").render()
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("co_ckpt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn same_process_restore_is_bit_identical_under_every_execution_choice() {
    let dir = temp_dir("same_process");
    let db = chain_db(12);
    let reference = engine().run(&db).unwrap();

    let path = dir.join("chain.cow");
    engine().checkpoint(&db, &path).unwrap();

    for threads in [1usize, 4] {
        for gc in [GcCadence::Off, GcCadence::EveryRounds(1)] {
            let restored = Engine::restore(&path).unwrap();
            assert_eq!(restored.database, db);
            assert_eq!(restored.database.node_id(), db.node_id());
            let out = restored
                .engine
                .threads(threads)
                .gc_cadence(gc)
                .run(&restored.database)
                .unwrap();
            assert_eq!(
                out.database, reference.database,
                "threads={threads} gc={gc:?}"
            );
            assert_eq!(out.database.node_id(), reference.database.node_id());
            assert_eq!(
                out.trace.as_ref().unwrap().events(),
                reference.trace.as_ref().unwrap().events(),
                "threads={threads} gc={gc:?}"
            );
            assert_eq!(fingerprint(&out), fingerprint(&reference));
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_midway_resumes_to_the_same_fixpoint() {
    // Checkpointing a *partially evaluated* database (some doa facts
    // already derived) must converge to the same closure as the
    // uninterrupted run: the inflationary fixpoint is confluent, and the
    // checkpoint carries everything the continuation needs.
    let dir = temp_dir("midway");
    let db = chain_db(10);
    let full = engine().run(&db).unwrap();

    // A partial state: run a cheaper engine bounded to a few iterations.
    let partial = match engine()
        .guard(Guard {
            max_iterations: 4,
            ..Guard::default()
        })
        .run(&db)
    {
        Err(complex_objects::engine::EngineError::Diverged { partial, .. }) => *partial,
        Ok(out) => out.database,
    };

    let path = dir.join("midway.cow");
    engine().checkpoint(&partial, &path).unwrap();
    let restored = Engine::restore(&path).unwrap();
    let resumed = restored.engine.run(&restored.database).unwrap();
    assert_eq!(resumed.database, full.database);
    assert_eq!(resumed.database.node_id(), full.database.node_id());
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random chain lengths, random checkpoints of the initial state:
    /// restore + run equals run, bit for bit, with GC forced every round.
    #[test]
    fn restored_runs_match_for_random_chains(n in 1usize..24) {
        let dir = temp_dir(&format!("prop_{n}"));
        let db = chain_db(n);
        let reference = engine().run(&db).unwrap();
        let path = dir.join("prop.cow");
        engine().checkpoint(&db, &path).unwrap();
        let restored = Engine::restore(&path).unwrap();
        let out = restored
            .engine
            .gc_cadence(GcCadence::EveryRounds(1))
            .run(&restored.database)
            .unwrap();
        prop_assert_eq!(&out.database, &reference.database);
        prop_assert_eq!(out.database.node_id(), reference.database.node_id());
        prop_assert_eq!(
            out.trace.as_ref().unwrap().events(),
            reference.trace.as_ref().unwrap().events()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The database after at most `k` fixpoint rounds: a mid-evaluation
/// state to checkpoint (the guard trips before convergence on long
/// chains; short ones just close).
fn state_after(db: &Object, k: u64) -> Object {
    match engine()
        .guard(Guard {
            max_iterations: k,
            ..Guard::default()
        })
        .run(db)
    {
        Err(complex_objects::engine::EngineError::Diverged { partial, .. }) => *partial,
        Ok(out) => out.database,
    }
}

/// Checkpoints `db` as full-then-`deltas` layers (collecting the store
/// between layers, so GC runs against the live chain handle) and
/// returns the chain plus the final state it captured.
fn write_chain(dir: &Path, db: &Object, deltas: u64) -> (Vec<PathBuf>, Object) {
    let writer = engine();
    writer.checkpoint_full(db, dir.join("layer0.cow")).unwrap();
    let mut handle = writer.last_checkpoint().unwrap();
    for k in 1..=deltas {
        // Intermediate states are computed, checkpointed, and *dropped*:
        // the sweep below may free their nodes. The chain handle must
        // survive that — freed ids are never recycled, so re-derived
        // content simply re-encodes in a later delta.
        let state = if k == deltas {
            engine().run(db).unwrap().database
        } else {
            state_after(db, k)
        };
        let path = dir.join(format!("layer{k}.cow"));
        let (stats, next) = writer.checkpoint_delta(&state, &path, &handle).unwrap();
        assert_eq!(stats.version, 2, "layer {k} must be a delta");
        handle = next;
        drop(state);
        complex_objects::object::store::collect();
    }
    let final_state = engine().run(db).unwrap().database;
    (handle.layers().to_vec(), final_state)
}

/// The chain and an equivalent single full snapshot must restore to the
/// same `NodeId` and resume to line-identical fixpoints and traces — at
/// 1 and 4 threads, with GC after every round, with sweeps between the
/// delta writes.
fn assert_chain_equivalent_to_full(dir: &Path, db: &Object, deltas: u64) {
    let (layers, final_state) = write_chain(dir, db, deltas);
    let reference = engine().run(db).unwrap();
    assert_eq!(reference.database, final_state);

    // A single full snapshot of the same final state.
    let full_path = dir.join("equivalent_full.cow");
    engine().checkpoint_full(&final_state, &full_path).unwrap();

    for threads in [1usize, 4] {
        let from_chain = Engine::restore_chain(&layers).unwrap();
        let from_full = Engine::restore(&full_path).unwrap();
        // Bit-identical restored databases: the very same interned node.
        assert_eq!(from_chain.database, from_full.database);
        assert_eq!(from_chain.database.node_id(), from_full.database.node_id());
        assert_eq!(from_chain.database, final_state);
        assert_eq!(from_chain.database.node_id(), final_state.node_id());

        // Resuming both reaches the reference fixpoint with identical
        // traces, under GC every round.
        let out_chain = from_chain
            .engine
            .threads(threads)
            .gc_cadence(GcCadence::EveryRounds(1))
            .run(&from_chain.database)
            .unwrap();
        let out_full = from_full
            .engine
            .threads(threads)
            .gc_cadence(GcCadence::EveryRounds(1))
            .run(&from_full.database)
            .unwrap();
        assert_eq!(out_chain.database, reference.database, "threads={threads}");
        assert_eq!(out_chain.database.node_id(), reference.database.node_id());
        assert_eq!(out_full.database.node_id(), out_chain.database.node_id());
        assert_eq!(
            fingerprint(&out_chain),
            fingerprint(&out_full),
            "threads={threads}"
        );
    }
}

#[test]
fn a_base_plus_three_delta_chain_is_bit_identical_to_a_full_snapshot() {
    let dir = temp_dir("chain3");
    let db = chain_db(14);
    assert_chain_equivalent_to_full(&dir, &db, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random programs (chain lengths) checkpointed as full-then-N
    /// deltas: the chain must restore bit-identically to a single full
    /// snapshot and resume to the same fixpoint, at 1 and 4 threads,
    /// with GC forced between deltas and every round.
    #[test]
    fn chain_differential_matches_full_snapshots(n in 3usize..14, deltas in 1u64..4) {
        let dir = temp_dir(&format!("chain_prop_{n}_{deltas}"));
        let db = chain_db(n);
        assert_chain_equivalent_to_full(&dir, &db, deltas);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Child-process worker: restore the snapshot `$CKPT_CHILD_DIR/initial.cow`
/// into this (fresh) process's store, run to fixpoint under whatever
/// `CO_ENGINE_THREADS` / `CO_GC_EVERY_ROUND` the parent set, and write the
/// result database (as a wire snapshot) and the rendered trace back.
fn child_run(dir: &Path) {
    let restored = Engine::restore(dir.join("initial.cow")).expect("child restores the snapshot");
    let out = restored
        .engine
        .run(&restored.database)
        .expect("child reaches a fixpoint");
    wire::save_to_path(
        dir.join("child_result.cow"),
        std::slice::from_ref(&out.database),
        out.stats.iterations.to_string().as_bytes(),
    )
    .expect("child writes its result");
    std::fs::write(
        dir.join("child_trace.txt"),
        out.trace.as_ref().expect("tracing restored").render(),
    )
    .expect("child writes its trace");
}

#[test]
fn fresh_process_restore_reaches_an_identical_fixpoint() {
    // Child mode: this same test re-executed by the parent below.
    if let Ok(dir) = std::env::var("CKPT_CHILD_DIR") {
        child_run(Path::new(&dir));
        return;
    }

    let dir = temp_dir("fresh");
    let db = chain_db(9);
    let reference = engine().run(&db).unwrap();
    engine().checkpoint(&db, dir.join("initial.cow")).unwrap();

    for (threads, gc_every_round) in [("1", ""), ("4", ""), ("1", "1"), ("4", "1")] {
        // Re-run this test binary with only this test, in child mode: a
        // fresh process whose object store has interned nothing yet.
        let exe = std::env::current_exe().unwrap();
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("fresh_process_restore_reaches_an_identical_fixpoint")
            .arg("--exact")
            .arg("--nocapture")
            .env("CKPT_CHILD_DIR", &dir)
            .env("CO_ENGINE_THREADS", threads);
        if gc_every_round.is_empty() {
            cmd.env_remove("CO_GC_EVERY_ROUND");
        } else {
            cmd.env("CO_GC_EVERY_ROUND", gc_every_round);
        }
        let output = cmd.output().expect("spawn child test process");
        assert!(
            output.status.success(),
            "child (threads={threads} gc={gc_every_round:?}) failed:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );

        // The child's fixpoint, re-interned into *this* process, must be
        // the very node the parent computed…
        let result = wire::load_from_path(dir.join("child_result.cow")).unwrap();
        assert_eq!(
            result.roots[0], reference.database,
            "threads={threads} gc={gc_every_round:?}"
        );
        assert_eq!(result.roots[0].node_id(), reference.database.node_id());
        assert_eq!(
            String::from_utf8(result.meta).unwrap(),
            reference.stats.iterations.to_string(),
            "same number of fixpoint rounds"
        );
        // …and the rendered traces must agree line for line.
        let child_trace = std::fs::read_to_string(dir.join("child_trace.txt")).unwrap();
        assert_eq!(
            child_trace,
            reference.trace.as_ref().unwrap().render(),
            "threads={threads} gc={gc_every_round:?}"
        );
        std::fs::remove_file(dir.join("child_result.cow")).unwrap();
        std::fs::remove_file(dir.join("child_trace.txt")).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

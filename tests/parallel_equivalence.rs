//! Parallel evaluation is an execution choice, not a semantic one:
//! for every closure mode, strategy, and thread count, the parallel
//! engine must produce **exactly** the sequential result — the same
//! fixpoint (bit-identical: equal canonical databases are the same
//! interned node), the same trace (same rule firing order with the same
//! substitutions), and on guarded divergence the same partial database.

mod common;

use co_engine::{Parallelism, Strategy};
use common::{program_library, random_graph_db};
use complex_objects::engine::EngineError;
use complex_objects::prelude::*;
use proptest::prelude::*;

/// Runs one configuration sequentially and with `threads` workers and
/// checks the outcomes are indistinguishable.
fn assert_parallel_matches_sequential(
    program: &Program,
    db: &complex_objects::object::Object,
    mode: ClosureMode,
    strategy: Strategy,
    threads: usize,
    context: &str,
) {
    let guard = Guard {
        max_iterations: 50,
        ..Guard::default()
    };
    let engine = |parallelism: Parallelism| {
        Engine::new(program.clone())
            .mode(mode)
            .strategy(strategy)
            .guard(guard)
            .tracing(true)
            .parallelism(parallelism)
            .run(db)
    };
    let sequential = engine(Parallelism::Sequential);
    let parallel = engine(Parallelism::Threads(threads));
    match (sequential, parallel) {
        (Ok(s), Ok(p)) => {
            assert_eq!(p.database, s.database, "fixpoint: {context}");
            // Hash-consing: equality means identity — same interned node.
            assert_eq!(
                p.database.node_id(),
                s.database.node_id(),
                "interned identity: {context}"
            );
            assert_eq!(
                p.trace.as_ref().unwrap().events(),
                s.trace.as_ref().unwrap().events(),
                "trace: {context}"
            );
        }
        (Err(se), Err(pe)) => {
            let EngineError::Diverged {
                partial: sp,
                reason: sr,
                ..
            } = se;
            let EngineError::Diverged {
                partial: pp,
                reason: pr,
                ..
            } = pe;
            assert_eq!(pp, sp, "diverged partial: {context}");
            assert_eq!(pr, sr, "diverged reason: {context}");
        }
        (s, p) => {
            panic!(
                "modes disagree on convergence ({context}): \
                 sequential={s:?} parallel={p:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random databases × the program library × both closure modes ×
    /// both strategies × several thread counts.
    #[test]
    fn parallel_equals_sequential_on_random_programs(
        seed in any::<u64>(), nodes in 2i64..8, edges in 1usize..14
    ) {
        let db = random_graph_db(seed, nodes, edges);
        for (name, program) in program_library() {
            for mode in [ClosureMode::Inflationary, ClosureMode::PaperLiteral] {
                for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                    for threads in [2usize, 4] {
                        let context = format!(
                            "program={name} mode={mode:?} strategy={strategy:?} threads={threads}"
                        );
                        assert_parallel_matches_sequential(
                            &program, &db, mode, strategy, threads, &context,
                        );
                    }
                }
            }
        }
    }

    /// The Literal match policy takes the same parallel path.
    #[test]
    fn parallel_equals_sequential_under_literal_policy(
        seed in any::<u64>(), nodes in 2i64..6, edges in 1usize..8
    ) {
        let db = random_graph_db(seed, nodes, edges);
        let program = common::reachability_program();
        let run = |parallelism: Parallelism| {
            Engine::new(program.clone())
                .policy(MatchPolicy::Literal)
                .tracing(true)
                .parallelism(parallelism)
                .run(&db)
                .unwrap()
        };
        let s = run(Parallelism::Sequential);
        let p = run(Parallelism::Threads(3));
        prop_assert_eq!(&p.database, &s.database);
        prop_assert_eq!(
            p.trace.as_ref().unwrap().events(),
            s.trace.as_ref().unwrap().events()
        );
    }
}

/// Oversubscription far beyond the rule count exercises empty partitions.
#[test]
fn many_threads_on_a_tiny_program_still_agree() {
    let db = common::chain_family_db(12);
    let program = common::descendants_program("p0");
    let sequential = Engine::new(program.clone())
        .parallelism(Parallelism::Sequential)
        .run(&db)
        .unwrap();
    let parallel = Engine::new(program).threads(16).run(&db).unwrap();
    assert_eq!(parallel.database, sequential.database);
    assert_eq!(parallel.database.node_id(), sequential.database.node_id());
}

//! Differential testing of the calculus against the flat relational
//! algebra: random databases, random query plans, identical answers
//! (part of experiment E12; the per-operator cases are in
//! `co-relational`'s unit tests).

use co_relational::{int_relation, run_query_via_calculus, Database, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mk = |rng: &mut StdRng, rows: usize| -> Vec<[i64; 2]> {
        (0..rows)
            .map(|_| [rng.random_range(0..6), rng.random_range(0..6)])
            .collect()
    };
    let r1_rows = mk(&mut rng, rows);
    let r2_rows = mk(&mut rng, rows);
    db.insert("r1", int_relation(["a", "b"], r1_rows));
    db.insert("r2", int_relation(["c", "d"], r2_rows));
    db
}

/// A random monotone query plan over r1(a, b) and r2(c, d). Generated
/// recursively with depth-bounded combinators; every produced query is
/// well-schema'd by construction.
fn random_query(rng: &mut StdRng, depth: usize) -> Query {
    // Leaf: one of the base relations, renamed apart so set ops line up.
    if depth == 0 {
        return if rng.random_bool(0.5) {
            Query::rel("r1")
        } else {
            Query::rel("r2").rename([("c", "a"), ("d", "b")])
        };
    }
    match rng.random_range(0..6u8) {
        0 => random_query(rng, depth - 1).select_eq(
            if rng.random_bool(0.5) { "a" } else { "b" },
            rng.random_range(0..6i64),
        ),
        1 => {
            let keep = if rng.random_bool(0.5) { "a" } else { "b" };
            random_query(rng, depth - 1)
                .project([keep])
                .rename([(keep, "a")])
                // Re-widen so deeper combinators always see schema (a, b):
                // join the projection with itself under a rename.
                .product(random_query(rng, depth - 1).project(["b"]))
        }
        2 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        3 => random_query(rng, depth - 1).intersect(random_query(rng, depth - 1)),
        4 => random_query(rng, depth - 1)
            .join(Query::rel("r2"), [("b", "c")])
            .project(["a", "d"])
            .rename([("d", "b")]),
        _ => random_query(rng, depth - 1)
            .rename([("a", "x")])
            .rename([("x", "a")]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The calculus translation computes exactly what the flat algebra
    /// computes, for every random monotone plan.
    #[test]
    fn calculus_agrees_with_algebra(seed in any::<u64>(), rows in 0usize..10) {
        let db = random_db(seed, rows);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(99));
        for depth in 0..3usize {
            let q = random_query(&mut rng, depth);
            let direct = q.eval(&db);
            prop_assume!(direct.is_ok());
            let direct = direct.unwrap();
            let via = run_query_via_calculus(&db, &q).unwrap();
            prop_assert_eq!(
                &via, &direct,
                "query {:?} over db seed {}", q, seed
            );
        }
    }
}

#[test]
fn paper_section_4_queries_agree_end_to_end() {
    // The §4 walkthrough pipeline: select → join → project → rename.
    let mut db = Database::new();
    db.insert(
        "r1",
        int_relation(["a", "b"], [[1, 10], [2, 20], [3, 10], [4, 30]]),
    );
    db.insert(
        "r2",
        int_relation(["c", "d"], [[10, 100], [20, 200], [30, 300], [99, 999]]),
    );
    let q = Query::rel("r1")
        .join(Query::rel("r2"), [("b", "c")])
        .select_eq("d", 100)
        .project(["a", "d"]);
    let direct = q.eval(&db).unwrap();
    let via = run_query_via_calculus(&db, &q).unwrap();
    assert_eq!(direct, via);
    assert_eq!(direct.len(), 2); // a ∈ {1, 3} join to d = 100.
}

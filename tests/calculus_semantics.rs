//! Property tests for the calculus semantics (experiment E12):
//! Definition 4.2's extraction property, Lemma 4.1's monotonicity, and
//! Theorem 4.1's closure characterization.

mod common;

use co_calculus::{certificates, derivations, is_closed_under};
use common::{descendants_program, random_graph_db, reachability_program};
use complex_objects::object::{lattice, order, Object};
use complex_objects::prelude::*;
use proptest::prelude::*;

/// Formulas used to probe random graph databases.
fn probe_formulas() -> Vec<Formula> {
    [
        "[edge: {[src: X, dst: Y]}]",
        "[edge: {[src: X, dst: X]}]",
        "[edge: {[src: 0, dst: Y]}]",
        "[edge: {X}, start: {Y}]",
        "[edge: X]",
        "[edge: {[src: X, dst: Y], [src: Y, dst: Z]}]",
    ]
    .iter()
    .map(|s| parse_formula(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 4.2: E(O) ≤ O — formulas extract, never generate.
    #[test]
    fn interpretation_extracts(seed in any::<u64>(), nodes in 2i64..8, edges in 0usize..12) {
        let db = random_graph_db(seed, nodes, edges);
        for f in probe_formulas() {
            for policy in [MatchPolicy::Strict, MatchPolicy::Literal] {
                let e = interpret(&f, &db, policy);
                prop_assert!(order::le(&e, &db), "E(O) = {} not ≤ O for {}", e, f);
            }
        }
    }

    /// Matcher soundness: every certificate's instantiation is ≤ O, and
    /// the interpretation is the union of exactly these instantiations.
    #[test]
    fn certificates_compose_the_interpretation(
        seed in any::<u64>(), nodes in 2i64..7, edges in 0usize..10
    ) {
        let db = random_graph_db(seed, nodes, edges);
        for f in probe_formulas() {
            let certs = certificates(&f, &db, MatchPolicy::Strict);
            let mut acc = Object::Bottom;
            for (s, inst) in &certs {
                prop_assert!(order::le(inst, &db));
                prop_assert_eq!(&f.instantiate(s), inst);
                acc = lattice::union(&acc, inst);
            }
            prop_assert_eq!(acc, interpret(&f, &db, MatchPolicy::Strict));
        }
    }

    /// Lemma 4.1: O1 ≤ O2 ⟹ r(O1) ≤ r(O2), for both policies.
    #[test]
    fn rule_application_is_monotone(
        seed in any::<u64>(), nodes in 2i64..7, e1 in 0usize..8, e2 in 0usize..8
    ) {
        let d1 = random_graph_db(seed, nodes, e1);
        let d2 = lattice::union(&d1, &random_graph_db(seed.wrapping_mul(31).wrapping_add(7), nodes, e2));
        prop_assume!(order::le(&d1, &d2));
        let rules = [
            parse_rule("[reach: {Y}] :- [edge: {[src: X, dst: Y]}, reach: {X}].").unwrap(),
            parse_rule("[out: {[a: X, b: Y]}] :- [edge: {[src: X, dst: Y]}].").unwrap(),
            // Self-join: both patterns share one set formula (tuple
            // attributes must be distinct, Definition 4.1).
            parse_rule("[pairs: {[l: X, r: Y]}] :- [edge: {[src: X, dst: Z], [src: Y, dst: Z]}].").unwrap(),
        ];
        for r in &rules {
            for policy in [MatchPolicy::Strict, MatchPolicy::Literal] {
                let a1 = apply_rule(r, &d1, policy);
                let a2 = apply_rule(r, &d2, policy);
                prop_assert!(
                    order::le(&a1, &a2),
                    "monotonicity failed for {} under {:?}: r(O1)={}, r(O2)={}",
                    r, policy, a1, a2
                );
            }
        }
    }

    /// Theorem 4.1 / Definition 4.6: the closure is closed under R,
    /// contains the input, and is a fixpoint of O ↦ O ∪ R(O).
    #[test]
    fn closure_characterization(seed in any::<u64>(), nodes in 2i64..7, edges in 0usize..10) {
        let db = random_graph_db(seed, nodes, edges);
        let program = reachability_program();
        let out = Engine::new(program.clone()).run(&db).unwrap();
        let c = &out.database;
        prop_assert!(is_closed_under(&program, c, MatchPolicy::Strict));
        prop_assert!(order::le(&db, c));
        let once_more = lattice::union(c, &apply_program(&program, c, MatchPolicy::Strict));
        prop_assert_eq!(&once_more, c);
    }

    /// Idempotence of evaluation: running the engine on a closure returns
    /// it unchanged in one iteration.
    #[test]
    fn closure_is_idempotent(seed in any::<u64>(), nodes in 2i64..7, edges in 0usize..10) {
        let db = random_graph_db(seed, nodes, edges);
        let program = reachability_program();
        let first = Engine::new(program.clone()).run(&db).unwrap();
        let second = Engine::new(program).run(&first.database).unwrap();
        prop_assert_eq!(second.database, first.database);
        prop_assert_eq!(second.stats.iterations, 1);
    }
}

#[test]
fn derivations_explain_rule_effects() {
    let db = parse_object("[edge: {[src: 0, dst: 1], [src: 1, dst: 2]}]").unwrap();
    let r = parse_rule("[out: {[a: X, b: Y]}] :- [edge: {[src: X, dst: Y]}].").unwrap();
    let ds = derivations(&r, &db, MatchPolicy::Strict);
    assert_eq!(ds.len(), 2);
    let total = ds
        .iter()
        .fold(Object::Bottom, |acc, (_, h)| lattice::union(&acc, h));
    assert_eq!(total, apply_rule(&r, &db, MatchPolicy::Strict));
}

#[test]
fn closure_on_the_paper_genealogy_is_minimal() {
    // Any object closed under R that contains the input dominates the
    // computed closure ("the unique minimal object closed under R").
    let db = common::chain_family_db(5);
    let program = descendants_program("p0");
    let closure = Engine::new(program.clone()).run(&db).unwrap().database;
    // Build a strictly larger closed object and check domination.
    let bigger = lattice::union(&closure, &parse_object("[doa: {unrelated_extra}]").unwrap());
    assert!(is_closed_under(&program, &bigger, MatchPolicy::Strict));
    assert!(order::le(&closure, &bigger));
    assert_ne!(closure, bigger);
}

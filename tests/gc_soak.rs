//! Differential soak tests for the object-store lifecycle: weak-interning
//! GC (`store::collect`) under randomized evaluate/drop/collect workloads.
//!
//! The safety contract under test:
//!
//! - **no reachable node is ever freed** — anything still held (fixpoint
//!   databases, kept objects, pinned `Root`s) survives every sweep and
//!   keeps its `NodeId`;
//! - **unreachable nodes are actually reclaimed** — transient garbage
//!   (superseded rounds, dropped results) disappears, in bulk;
//! - **collection is invisible to semantics** — fixpoints computed with GC
//!   forced after every round, sequentially or with 4 worker threads, are
//!   bit-identical (values, traces, and interned node ids) to a
//!   never-collected run;
//! - **dangling ids stay dangling** — a freed id is never re-bound, so
//!   stale ids held downstream are detectable, not aliased.
//!
//! The tests in this binary serialize on one mutex: `collect` and the
//! sweep counters are process-wide, and precise reclamation assertions
//! need to know whose garbage a sweep freed.

mod common;

use common::{chain_family_db, descendants_program, random_graph_db, reachability_program};
use complex_objects::engine::{Engine, GcCadence, Parallelism};
use complex_objects::object::{store, Object};
use proptest::prelude::*;

static SOAK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn soak_lock() -> std::sync::MutexGuard<'static, ()> {
    SOAK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A transient object with a unique, test-tagged shape: one tuple node
/// plus one set node per call.
fn transient(tag: &str, i: i64) -> Object {
    Object::tuple([
        (tag, Object::int(i)),
        (
            "payload",
            Object::set([Object::int(i), Object::int(i + 1), Object::int(-i)]),
        ),
    ])
}

/// The acceptance soak: intern ≥100k transient nodes, drop them, and
/// demand one `collect` reclaims ≥90%.
#[test]
fn soak_reclaims_at_least_90_percent_of_unreachable_nodes() {
    let _g = soak_lock();
    let before = store::stats();
    let (created, sample_ids) = {
        let transients: Vec<Object> = (0..60_000).map(|i| transient("soak_k", i)).collect();
        let sample_ids: Vec<_> = transients
            .iter()
            .step_by(997)
            .map(|o| o.node_id().unwrap())
            .collect();
        let mid = store::stats();
        let created = (mid.tuple_nodes + mid.set_nodes) - (before.tuple_nodes + before.set_nodes);
        assert!(
            created >= 100_000,
            "the workload must intern ≥100k fresh nodes, got {created}"
        );
        (created, sample_ids)
    }; // every transient drops here
    let sweep = store::collect();
    assert!(
        sweep.freed_nodes() >= created * 9 / 10,
        "one sweep must reclaim ≥90% of {created} unreachable nodes, freed {}",
        sweep.freed_nodes()
    );
    for id in sample_ids {
        assert!(
            !store::contains_node(id),
            "dropped transient {id} must be gone"
        );
    }
}

/// Reachability is absolute: whatever the churn around them, held objects
/// survive every sweep with their identity intact.
#[test]
fn reachable_nodes_survive_every_sweep_with_identity() {
    let _g = soak_lock();
    let kept: Vec<Object> = (0..500).map(|i| transient("gc_keep", i)).collect();
    let ids: Vec<_> = kept.iter().map(|o| o.node_id().unwrap()).collect();
    let pinned = store::pin(&kept[0]).unwrap();
    for round in 0..3 {
        {
            let _garbage: Vec<Object> = (0..2_000)
                .map(|i| transient("gc_churn", round * 10_000 + i))
                .collect();
        }
        let sweep = store::collect();
        assert!(sweep.freed_nodes() > 0, "churn must be reclaimed");
        assert!(sweep.pinned_roots >= 1, "the pinned root must be visible");
    }
    for (o, id) in kept.iter().zip(&ids) {
        assert!(store::contains_node(*id), "kept node {id} was freed");
        // Rebuilding the same canonical value must hit the same node: if
        // the store had freed a reachable node, this would intern a fresh
        // one under a fresh id.
        let rebuilt = transient(
            "gc_keep",
            o.dot("gc_keep").as_atom().unwrap().as_int().unwrap(),
        );
        assert_eq!(rebuilt.node_id(), o.node_id());
    }
    drop(pinned);
}

/// Freed ids never come back: the same value re-interned after a sweep is
/// a *new* node, and the old id stays permanently dead.
#[test]
fn dangling_ids_stay_detectable_and_are_never_recycled() {
    let _g = soak_lock();
    let old_id = {
        let o = transient("gc_dangle", 424_242);
        o.node_id().unwrap()
    };
    store::collect();
    assert!(!store::contains_node(old_id), "dropped node must be swept");
    let rebuilt = transient("gc_dangle", 424_242);
    let new_id = rebuilt.node_id().unwrap();
    assert_ne!(new_id, old_id, "ids must never be recycled");
    assert!(store::contains_node(new_id));
    assert!(!store::contains_node(old_id));
}

/// The deterministic heavy chain: GC after every round, 1 and 4 threads,
/// versus a never-collected baseline — bit-identical everything.
#[test]
fn chain_fixpoint_is_bit_identical_under_gc_and_threads() {
    let _g = soak_lock();
    let db = chain_family_db(60);
    let program = descendants_program("p0");
    let baseline = Engine::new(program.clone())
        .parallelism(Parallelism::Sequential)
        .gc_cadence(GcCadence::Off)
        .tracing(true)
        .run(&db)
        .unwrap();
    for threads in [1usize, 4] {
        let engine = Engine::new(program.clone())
            .gc_every_rounds(1)
            .tracing(true)
            .parallelism(match threads {
                1 => Parallelism::Sequential,
                n => Parallelism::Threads(n),
            });
        let out = engine.run(&db).unwrap();
        assert_eq!(out.database, baseline.database, "threads={threads}");
        assert_eq!(out.database.node_id(), baseline.database.node_id());
        assert_eq!(
            out.trace.as_ref().unwrap().events(),
            baseline.trace.as_ref().unwrap().events(),
            "threads={threads}"
        );
        // EveryRounds(1): one sweep per changed round (all but the last).
        assert_eq!(out.stats.gc_sweeps, out.stats.iterations - 1);
        assert!(
            out.stats.gc_freed_nodes > 0,
            "61 superseded databases must yield reclaimable garbage"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized intern → evaluate → drop → collect → re-evaluate cycles:
    /// fixpoints under per-round GC (sequential and 4 threads) must be
    /// bit-identical to the never-collected baseline, before *and* after
    /// extra sweeps.
    #[test]
    fn differential_soak_randomized(
        seed in any::<u64>(),
        nodes in 4i64..14,
        edges in 4usize..40,
    ) {
        let _g = soak_lock();
        let db = random_graph_db(seed, nodes, edges);
        let program = reachability_program();
        let baseline = Engine::new(program.clone())
            .parallelism(Parallelism::Sequential)
            .gc_cadence(GcCadence::Off)
            .tracing(true)
            .run(&db)
            .unwrap();

        // Churn the store between runs: transient garbage plus a sweep.
        {
            let _garbage: Vec<Object> = (0..512)
                .map(|i| transient("gc_prop_churn", seed as i64 ^ i))
                .collect();
        }
        store::collect();

        for threads in [1usize, 4] {
            let engine = Engine::new(program.clone())
                .gc_every_rounds(1)
                .tracing(true)
                .parallelism(match threads {
                    1 => Parallelism::Sequential,
                    n => Parallelism::Threads(n),
                });
            let out = engine.run(&db).unwrap();
            prop_assert_eq!(&out.database, &baseline.database);
            prop_assert_eq!(out.database.node_id(), baseline.database.node_id());
            prop_assert_eq!(
                out.trace.as_ref().unwrap().events(),
                baseline.trace.as_ref().unwrap().events()
            );
            prop_assert_eq!(out.stats.gc_sweeps, out.stats.iterations - 1);
        }

        // And once more after everything transient is swept away.
        store::collect();
        let again = Engine::new(program).gc_every_rounds(1).run(&db).unwrap();
        prop_assert_eq!(&again.database, &baseline.database);
        prop_assert_eq!(again.database.node_id(), baseline.database.node_id());
    }
}

//! Integration of the §5 future-work type system with the rest of the
//! stack: typing parsed objects, engine outputs, and encoded relational
//! databases.

mod common;

use co_schema::{check, conforms, infer_exact, subtype, Type};
use complex_objects::prelude::*;

#[test]
fn paper_example_2_1_objects_type_as_expected() {
    // The flat relation.
    let rel = parse_object("{[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]}")
        .unwrap();
    let flat_t = Type::set(Type::tuple([("name", Type::Str), ("age", Type::Int)]));
    assert!(conforms(&rel, &flat_t));

    // The relation with nulls conforms to the same open type…
    let nulls =
        parse_object("{[name: peter], [name: john, age: 7], [name: mary, address: austin]}")
            .unwrap();
    assert!(conforms(&nulls, &flat_t));
    // …but not when age is required.
    let strict_t = Type::set(Type::tuple([
        ("name", Type::Str),
        ("age", Type::required(Type::Int)),
    ]));
    assert!(!conforms(&nulls, &strict_t));

    // The nested relation.
    let nested = parse_object(
        "{[name: peter, children: {max, susan}],
          [name: john, children: {mary, john, frank}],
          [name: mary, children: {}]}",
    )
    .unwrap();
    let nested_t = Type::set(Type::tuple([
        ("name", Type::Str),
        ("children", Type::set(Type::Str)),
    ]));
    assert!(conforms(&nested, &nested_t));
    // Note: `rel` ALSO conforms to nested_t — its `children` reads ⊥,
    // which conforms, and open tuples ignore `age`. The next test pins
    // that down and shows how `required` changes it.
}

#[test]
fn open_types_admit_the_flat_relation_too() {
    // Continuation of the comment above, as its own assertion: with open
    // tuple types and ⊥-tolerant attributes, the flat relation *does*
    // conform to the nested type — exactly the paper's point that the
    // object space is schemaless and types are views.
    let rel = parse_object("{[name: peter, age: 25]}").unwrap();
    let nested_t = Type::set(Type::tuple([
        ("name", Type::Str),
        ("children", Type::set(Type::Str)),
    ]));
    assert!(conforms(&rel, &nested_t));
    // Requiring children excludes it.
    let required_t = Type::set(Type::tuple([
        ("name", Type::Str),
        ("children", Type::required(Type::set(Type::Str))),
    ]));
    assert!(!conforms(&rel, &required_t));
}

#[test]
fn engine_output_conforms_to_the_program_result_type() {
    let db = common::chain_family_db(8);
    let program = common::descendants_program("p0");
    let out = Engine::new(program).run(&db).unwrap();
    let result_t = Type::tuple([
        (
            "family",
            Type::set(Type::tuple([
                ("name", Type::Str),
                ("children", Type::set(Type::tuple([("name", Type::Str)]))),
            ])),
        ),
        ("doa", Type::set(Type::Str)),
    ]);
    check(&out.database, &result_t).expect("closure conforms to the expected type");
}

#[test]
fn encoded_relational_databases_type_check() {
    let mut db = co_relational::Database::new();
    db.insert(
        "r1",
        co_relational::int_relation(["a", "b"], [[1, 2], [3, 4]]),
    );
    let o = co_relational::encode_database(&db);
    let t = Type::tuple([(
        "r1",
        Type::set(Type::closed_tuple([("a", Type::Int), ("b", Type::Int)])),
    )]);
    check(&o, &t).expect("encoded database conforms");
    // Exact inference is a subtype of the declared type.
    assert!(subtype(&infer_exact(&o), &t));
}

#[test]
fn type_errors_locate_problems_in_engine_outputs() {
    let db = common::chain_family_db(3);
    let program = common::descendants_program("p0");
    let out = Engine::new(program).run(&db).unwrap();
    // Deliberately wrong type: doa as a set of ints.
    let wrong = Type::tuple([("doa", Type::set(Type::Int))]);
    let err = check(&out.database, &wrong).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("doa"), "got: {msg}");
    assert!(msg.contains("int"), "got: {msg}");
}

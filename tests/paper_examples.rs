//! Executable reproduction of every numbered example in the paper
//! (experiments E1–E10 of EXPERIMENTS.md). Each test states the example it
//! reproduces; the assertions are the paper's own identities.

use complex_objects::object::lattice::{intersect, union};
use complex_objects::object::order::le;
use complex_objects::object::{obj, Object};
use complex_objects::prelude::*;

// ---------------------------------------------------------------------------
// E1 — Example 2.1: all ten object forms parse and normalize.
// ---------------------------------------------------------------------------

#[test]
fn e1_example_2_1_object_forms() {
    let forms = [
        "john",
        "25",
        "{john, mary, susan}",
        "[name: peter, age: 25]",
        "[name: [first: john, last: doe], age: 25]",
        "[name: [first: john, last: doe], children: {john, mary, susan}]",
        "{[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]}",
        "{[name: peter], [name: john, age: 7], [name: mary, address: austin]}",
        "{[name: peter, children: {max, susan}],
          [name: john, children: {mary, john, frank}],
          [name: mary, children: {}]}",
        "[r1: {[name: peter, age: 25], [name: john, age: 7]},
          r2: {[name: john, address: austin], [name: mary, address: paris]}]",
    ];
    for src in forms {
        let o = parse_object(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        // Round-trip through the printer.
        assert_eq!(parse_object(&o.to_string()).unwrap(), o);
    }
}

// ---------------------------------------------------------------------------
// E2 — Example 2.2: the equality identities.
// ---------------------------------------------------------------------------

#[test]
fn e2_example_2_2_equalities() {
    let eq_pairs = [
        ("[a: 1, b: 2]", "[b: 2, a: 1]"),
        ("[a: 1, b: 2]", "[a: 1, b: 2, c: bot]"),
        ("{1, 2, 3}", "{2, 3, 1}"),
        ("{1, 1}", "{1}"),
        ("[a: {top}, b: 2]", "top"),
        ("{1, bot}", "{1}"),
    ];
    for (l, r) in eq_pairs {
        assert_eq!(
            parse_object(l).unwrap(),
            parse_object(r).unwrap(),
            "{l} = {r}"
        );
    }
    // "[a: x], {x}, and x are not equal."
    let x = parse_object("7").unwrap();
    assert_ne!(parse_object("[a: 7]").unwrap(), x);
    assert_ne!(parse_object("{7}").unwrap(), x);
}

// ---------------------------------------------------------------------------
// E3 — Example 3.1: sub-object facts and non-facts.
// ---------------------------------------------------------------------------

#[test]
fn e3_example_3_1_subobject() {
    let facts = [
        ("[a: 1, b: 2]", "[a: 1, b: 2, c: 3]"),
        ("{1, 2, 3}", "{1, 2, 3, 4}"),
        (
            "{[a: 1], [a: 2, b: 3]}",
            "{[a: 1, b: 2], [a: 2, b: 3], [a: 5, b: 5, c: 5]}",
        ),
        ("[a: {1}, b: 2]", "[a: {1, 2}, b: 2]"),
    ];
    for (small, big) in facts {
        assert!(
            le(&parse_object(small).unwrap(), &parse_object(big).unwrap()),
            "{small} ≤ {big}"
        );
    }
    // "Note however that 1 is not a sub-object of [a:1, b:2], nor of {1,2,3}."
    let one = parse_object("1").unwrap();
    assert!(!le(&one, &parse_object("[a: 1, b: 2]").unwrap()));
    assert!(!le(&one, &parse_object("{1, 2, 3}").unwrap()));
}

// ---------------------------------------------------------------------------
// E4 — Example 3.2: the anti-symmetry counterexample is repaired by
// reduction (Definition 3.2' / Theorem 3.2).
// ---------------------------------------------------------------------------

#[test]
fn e4_example_3_2_reduction_restores_antisymmetry() {
    // O1 = {[a1: 3, a2: 5], [a1: 3]} — "redundant information".
    let o1 = parse_object("{[a1: 3, a2: 5], [a1: 3]}").unwrap();
    let o2 = parse_object("{[a1: 3, a2: 5]}").unwrap();
    // In the unreduced space O1 ≠ O2 yet O1 ≤ O2 ≤ O1. Our constructors
    // reduce, so O1 *is* O2, and anti-symmetry holds universally.
    assert_eq!(o1, o2);
    assert!(le(&o1, &o2) && le(&o2, &o1));
    assert_eq!(o1.as_set().unwrap().len(), 1);
}

// ---------------------------------------------------------------------------
// E5 — Examples 3.3: union identities.
// ---------------------------------------------------------------------------

#[test]
fn e5_examples_3_3_union() {
    let cases = [
        ("[a: 1, b: 2]", "[b: 2, c: 3]", "[a: 1, b: 2, c: 3]"),
        ("[a: 1]", "[b: 2, c: 3]", "[a: 1, b: 2, c: 3]"),
        ("[a: 1, b: 2]", "[b: 3, c: 4]", "top"),
        ("{1, 2}", "{2, 3}", "{1, 2, 3}"),
        ("1", "2", "top"),
        ("[a: 1, b: 2]", "{1, 2, 3}", "top"),
        (
            "[a: 1, b: {2, 3}]",
            "[b: {3, 4}, c: 5]",
            "[a: 1, b: {2, 3, 4}, c: 5]",
        ),
    ];
    for (l, r, expected) in cases {
        assert_eq!(
            union(&parse_object(l).unwrap(), &parse_object(r).unwrap()),
            parse_object(expected).unwrap(),
            "{l} ∪ {r} = {expected}"
        );
    }
}

// ---------------------------------------------------------------------------
// E6 — Examples 3.4: intersection identities.
// ---------------------------------------------------------------------------

#[test]
fn e6_examples_3_4_intersection() {
    let cases = [
        ("[a: 1, b: 2]", "[b: 2, c: 3]", "[b: 2]"),
        ("[a: 1]", "[b: 2, c: 3]", "[]"),
        ("[a: 1, b: 2]", "[b: 3, c: 4]", "[]"),
        ("{1, 2}", "{2, 3}", "{2}"),
        ("1", "2", "bot"),
        ("[a: 1, b: 2]", "{1, 2, 3}", "bot"),
        ("[a: 1, b: {2, 3}]", "[b: {3, 4}, c: 5]", "[b: {3}]"),
    ];
    for (l, r, expected) in cases {
        assert_eq!(
            intersect(&parse_object(l).unwrap(), &parse_object(r).unwrap()),
            parse_object(expected).unwrap(),
            "{l} ∩ {r} = {expected}"
        );
    }
}

// ---------------------------------------------------------------------------
// E7 — Example 4.1 and the §4 prose: interpretations of the seven wffs.
// ---------------------------------------------------------------------------

fn walkthrough_db() -> Object {
    parse_object(
        "[r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 3, b: 30]},
          r2: {[c: 10, d: 100], [c: 20, d: 200], [c: 99, d: 999]}]",
    )
    .unwrap()
}

#[test]
fn e7_example_4_1_interpretations() {
    let db = parse_object(
        "[r1: {[a: 1, b: b], [a: 2, b: c], [a: 3, b: b]},
          r2: {[c: b, d: 9]}]",
    )
    .unwrap();

    // (1) [R1: {[A: X, B: b]}] — selection on B = b.
    let f1 = parse_formula("[r1: {[a: X, b: b]}]").unwrap();
    assert_eq!(
        interpret(&f1, &db, MatchPolicy::Strict),
        parse_object("[r1: {[a: 1, b: b], [a: 3, b: b]}]").unwrap()
    );

    let db = walkthrough_db();

    // (2) semijoin-style projections.
    let f2 = parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]").unwrap();
    assert_eq!(
        interpret(&f2, &db, MatchPolicy::Strict),
        parse_object(
            "[r1: {[a: 1, b: 10], [a: 2, b: 20]},
              r2: {[c: 10, d: 100], [c: 20, d: 200]}]"
        )
        .unwrap()
    );

    // (3) same with a selection on A = 1.
    let f3 = parse_formula("[r1: {[a: 1, b: Y]}, r2: {[c: Y, d: Z]}]").unwrap();
    assert_eq!(
        interpret(&f3, &db, MatchPolicy::Strict),
        parse_object("[r1: {[a: 1, b: 10]}, r2: {[c: 10, d: 100]}]").unwrap()
    );

    // (4) [R1: {X}, R2: {X}] — intersection of R1 and R2.
    let db4 = parse_object("[r1: {1, 2, 3}, r2: {2, 3, 4}]").unwrap();
    let f4 = parse_formula("[r1: {X}, r2: {X}]").unwrap();
    assert_eq!(
        interpret(&f4, &db4, MatchPolicy::Strict),
        parse_object("[r1: {2, 3}, r2: {2, 3}]").unwrap()
    );

    // (5) pairwise-equal projections (A=C, B=D).
    let db5 = parse_object("[r1: {[a: 1, b: 2], [a: 5, b: 6]}, r2: {[c: 1, d: 2], [c: 7, d: 8]}]")
        .unwrap();
    let f5 = parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: X, d: Y]}]").unwrap();
    assert_eq!(
        interpret(&f5, &db5, MatchPolicy::Strict),
        parse_object("[r1: {[a: 1, b: 2]}, r2: {[c: 1, d: 2]}]").unwrap()
    );

    // (6) [R1: X, R2: Y] — "relations R1 and R2".
    let f6 = parse_formula("[r1: X, r2: Y]").unwrap();
    assert_eq!(interpret(&f6, &db, MatchPolicy::Strict), db);

    // (7) [R1: {X}, R2: {Y}] — also both relations.
    let f7 = parse_formula("[r1: {X}, r2: {Y}]").unwrap();
    assert_eq!(interpret(&f7, &db, MatchPolicy::Strict), db);

    // Interpretations are always sub-objects of the database (Def 4.2).
    for f in [&f2, &f6, &f7] {
        assert!(le(&interpret(f, &db, MatchPolicy::Strict), &db));
    }
}

// ---------------------------------------------------------------------------
// E8 — Example 4.2 and the §4 prose: effects of the seven rules, plus the
// literal-vs-strict discrepancy.
// ---------------------------------------------------------------------------

#[test]
fn e8_example_4_2_rules() {
    let db_sel = parse_object("[r1: {[a: 1, b: b], [a: 2, b: c], [a: 3, b: b]}]").unwrap();

    // (1) selection + projection + renaming into attribute C.
    let r1 = parse_rule("[r: {[c: X]}] :- [r1: {[a: X, b: b]}].").unwrap();
    assert_eq!(
        apply_rule(&r1, &db_sel, MatchPolicy::Strict),
        parse_object("[r: {[c: 1], [c: 3]}]").unwrap()
    );

    // (2) projection to a set of atoms.
    let r2 = parse_rule("[r: {X}] :- [r1: {[a: X, b: b]}].").unwrap();
    assert_eq!(
        apply_rule(&r2, &db_sel, MatchPolicy::Strict),
        parse_object("[r: {1, 3}]").unwrap()
    );

    let db = walkthrough_db();

    // (3) join on B = C projected to A, D.
    let r3 =
        parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].").unwrap();
    assert_eq!(
        apply_rule(&r3, &db, MatchPolicy::Strict),
        parse_object("[r: {[a: 1, d: 100], [a: 2, d: 200]}]").unwrap()
    );

    // (4) the same join with renamed output attributes.
    let r4 =
        parse_rule("[r: {[a1: X, a2: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].").unwrap();
    assert_eq!(
        apply_rule(&r4, &db, MatchPolicy::Strict),
        parse_object("[r: {[a1: 1, a2: 100], [a1: 2, a2: 200]}]").unwrap()
    );

    // (5) intersection assigned to R.
    let db5 = parse_object("[r1: {1, 2, 3}, r2: {2, 3, 4}]").unwrap();
    let r5 = parse_rule("[r: {X}] :- [r1: {X}, r2: {X}].").unwrap();
    assert_eq!(
        apply_rule(&r5, &db5, MatchPolicy::Strict),
        parse_object("[r: {2, 3}]").unwrap()
    );

    // (6) the same, generating a bare set.
    let r6 = parse_rule("{X} :- [r1: {X}, r2: {X}].").unwrap();
    assert_eq!(
        apply_rule(&r6, &db5, MatchPolicy::Strict),
        parse_object("{2, 3}").unwrap()
    );

    // (7) intersection after renaming, to a set of tuples.
    let db7 = parse_object("[r1: {[a: 1, b: 2], [a: 5, b: 6]}, r2: {[c: 1, d: 2], [c: 7, d: 8]}]")
        .unwrap();
    let r7 = parse_rule("{[a1: X, a2: Y]} :- [r1: {[a: X, b: Y]}, r2: {[c: X, d: Y]}].").unwrap();
    assert_eq!(
        apply_rule(&r7, &db7, MatchPolicy::Strict),
        parse_object("{[a1: 1, a2: 2]}").unwrap()
    );

    // The documented discrepancy (DESIGN.md §3.3): Definition 4.4 verbatim
    // (Literal) degenerates the join to a cross product.
    let literal = apply_rule(&r3, &db, MatchPolicy::Literal);
    assert_eq!(literal.dot("r").as_set().unwrap().len(), 9);
}

// ---------------------------------------------------------------------------
// E9 — Example 4.5: the descendants-of-abraham closure converges.
// ---------------------------------------------------------------------------

#[test]
fn e9_example_4_5_descendants_closure() {
    let db = parse_object(
        "[family: {[name: abraham, children: {[name: isaac], [name: ishmael]}],
                   [name: isaac,   children: {[name: esau], [name: jacob]}],
                   [name: jacob,   children: {[name: joseph]}],
                   [name: lot,     children: {[name: moab]}]}]",
    )
    .unwrap();
    let program = parse_program(
        "[doa: {abraham}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    let out = Engine::new(program.clone()).run(&db).unwrap();
    assert_eq!(
        out.database.dot("doa"),
        &parse_object("{abraham, isaac, ishmael, esau, jacob, joseph}").unwrap()
    );
    // The closure is closed under R and contains the input (Def 4.5/4.6).
    assert!(co_calculus::is_closed_under(
        &program,
        &out.database,
        MatchPolicy::Strict
    ));
    assert!(le(&db, &out.database));
    // lot's line is not reachable from abraham.
    assert!(!out
        .database
        .dot("doa")
        .as_set()
        .unwrap()
        .contains(&obj!(moab)));
}

// ---------------------------------------------------------------------------
// E10 — Example 4.6: the infinite-list program has no closure; guards
// report divergence.
// ---------------------------------------------------------------------------

#[test]
fn e10_example_4_6_divergence_guarded() {
    let program = parse_program(
        "[list: {1}].
         [list: {[head: 1, tail: X]}] :- [list: {X}].",
    )
    .unwrap();
    let err = Engine::new(program)
        .guard(Guard {
            max_iterations: 64,
            max_depth: 40,
            ..Guard::default()
        })
        .run(&parse_object("[list: {}]").unwrap())
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("diverged"), "got: {text}");
    // The partial result really does contain ever-deeper lists of ones.
    let co_engine::EngineError::Diverged { partial, stats, .. } = err;
    assert!(stats.iterations > 10);
    let lists = partial.dot("list").as_set().unwrap();
    assert!(lists.iter().any(|l| {
        l.at_path(&["tail", "tail", "head"])
            .map(|h| h == &obj!(1))
            .unwrap_or(false)
    }));
}

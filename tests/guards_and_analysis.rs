//! Failure injection and the safety/maintenance features around the
//! engine: every guard dimension, static divergence analysis, and
//! incremental view maintenance under adversarial additions.

mod common;

use co_calculus::{analyse, ClosureMode};
use co_engine::{EngineError, Materialized};
use complex_objects::prelude::*;
use std::time::Duration;

fn diverging_program() -> Program {
    parse_program(
        "[list: {1}].
         [list: {[head: 1, tail: X]}] :- [list: {X}].",
    )
    .unwrap()
}

#[test]
fn every_guard_dimension_fires() {
    let db = parse_object("[list: {}]").unwrap();

    // Iteration budget.
    let e = Engine::new(diverging_program())
        .guard(Guard {
            max_iterations: 5,
            ..Guard::default()
        })
        .run(&db)
        .unwrap_err();
    assert!(e.to_string().contains("iterations"), "{e}");

    // Depth budget.
    let e = Engine::new(diverging_program())
        .guard(Guard {
            max_depth: 10,
            ..Guard::default()
        })
        .run(&db)
        .unwrap_err();
    assert!(e.to_string().contains("depth"), "{e}");

    // Size budget (width growth, not just depth): a program that squares
    // a relation every iteration.
    let wide = parse_program(
        "[pairs: {[l: X, r: Y]}] :- [seed: {X, Y}].
         [seed: {[w: P]}] :- [pairs: {P}].",
    )
    .unwrap();
    let e = Engine::new(wide)
        .guard(Guard {
            max_size: 200,
            max_iterations: 50,
            ..Guard::default()
        })
        .run(&parse_object("[seed: {1, 2, 3}]").unwrap())
        .unwrap_err();
    assert!(e.to_string().contains("size"), "{e}");

    // Wall-clock budget.
    let e = Engine::new(diverging_program())
        .guard(Guard {
            time_limit: Some(Duration::ZERO),
            max_iterations: u64::MAX,
            ..Guard::default()
        })
        .run(&db)
        .unwrap_err();
    assert!(e.to_string().contains("time"), "{e}");
}

#[test]
fn divergence_error_carries_partial_state_and_stats() {
    let EngineError::Diverged {
        partial,
        stats,
        reason,
    } = Engine::new(diverging_program())
        .guard(Guard {
            max_iterations: 8,
            ..Guard::default()
        })
        .run(&parse_object("[list: {}]").unwrap())
        .unwrap_err();
    assert!(!reason.is_empty());
    assert!(stats.iterations >= 8);
    // The partial database is a usable snapshot: it parses back, and the
    // list relation already contains nested lists.
    let reparsed = parse_object(&partial.to_string()).unwrap();
    assert_eq!(&reparsed, partial.as_ref());
}

#[test]
fn static_analysis_predicts_the_guard_outcome() {
    // The diverging program is flagged before running anything.
    let risky = analyse(&diverging_program());
    assert!(!risky.is_depth_bounded());

    // The genealogy program is recursive but depth-bounded, and indeed
    // converges.
    let safe_program = common::descendants_program("p0");
    let safe = analyse(&safe_program);
    assert!(!safe.is_nonrecursive());
    assert!(safe.is_depth_bounded());
    assert!(Engine::new(safe_program)
        .run(&common::chain_family_db(5))
        .is_ok());
}

#[test]
fn paper_literal_mode_with_guards() {
    // PaperLiteral mode can oscillate towards ⊥; guards still apply and
    // convergence at ⊥ is reported as success with the honest answer.
    let p = parse_program("[out: {X}] :- [src: {X}].").unwrap();
    let out = Engine::new(p)
        .mode(ClosureMode::PaperLiteral)
        .run(&parse_object("[src: {1}]").unwrap())
        .unwrap();
    // O2 = [out: {1}], O3 = ⊥, O4 = ⊥: fixpoint at ⊥.
    assert!(out.database.is_bottom());
}

#[test]
fn materialized_view_survives_guard_failures() {
    // A view over a safe program; an addition that makes it diverge is
    // rejected and the view keeps its previous (consistent) state.
    let safe = parse_program("[reach: {X}] :- [start: {X}].").unwrap();
    let base = parse_object("[start: {0}]").unwrap();
    // The diverging program cannot even materialize.
    let failed = Materialized::new(
        Engine::new(diverging_program()).guard(Guard {
            max_iterations: 10,
            ..Guard::default()
        }),
        &parse_object("[list: {}]").unwrap(),
    );
    assert!(failed.is_err());

    // The safe program materializes and refreshes fine.
    let mut view = Materialized::new(Engine::new(safe), &base).unwrap();
    view.add(&parse_object("[start: {1}]").unwrap()).unwrap();
    assert_eq!(
        view.database().dot("reach"),
        &parse_object("{0, 1}").unwrap()
    );
}

#[test]
fn interactive_guard_preset_is_usable() {
    let out = Engine::new(common::descendants_program("p0"))
        .guard(Guard::interactive())
        .run(&common::chain_family_db(20))
        .unwrap();
    assert_eq!(out.database.dot("doa").as_set().unwrap().len(), 21);
}

#[test]
fn type_syntax_integrates_with_engine_outputs() {
    use co_schema::{check, parse_type};
    let out = Engine::new(common::descendants_program("p0"))
        .run(&common::chain_family_db(4))
        .unwrap();
    let t = parse_type(
        "[doa: {string}!,
          family: {[children: {[name: string]}, name: string!]}, ...]",
    )
    .unwrap();
    check(&out.database, &t).expect("closure conforms to the declared type");
}

//! A concrete syntax for types, inverse to `Type`'s `Display`:
//!
//! ```text
//! any  never  bool  int  float  string        % primitives
//! =5  =john  ="New York"  =true               % singleton (constant) types
//! [name: string, age: int!]                   % closed tuple (age required)
//! [name: string, ...]                         % open tuple
//! {[name: string, children: {string}]}        % set of tuples
//! (int | string)                              % union
//! ```
//!
//! `parse_type(&t.to_string()) == Ok(t)` for every simplified type `t`
//! (checked by tests).

use crate::{Type, TypeError};
use co_object::Atom;

/// Parses a type expression.
pub fn parse_type(src: &str) -> Result<Type, TypeError> {
    let mut p = TypeParser {
        chars: src.chars().collect(),
        pos: 0,
        src,
    };
    let t = p.ty()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.error(format!(
            "unexpected `{}` after the end of the type",
            p.chars[p.pos]
        )));
    }
    Ok(t.simplify())
}

impl std::str::FromStr for Type {
    type Err = TypeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_type(s)
    }
}

struct TypeParser<'s> {
    chars: Vec<char>,
    pos: usize,
    src: &'s str,
}

impl<'s> TypeParser<'s> {
    fn error(&self, message: String) -> TypeError {
        TypeError::Mismatch {
            path: format!("<type syntax at offset {}>", self.pos),
            expected: "a type expression".to_string(),
            found: format!("{message} in `{}`", self.src),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, c: char) -> Result<(), TypeError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`")))
        }
    }

    fn word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .map(|c| c.is_alphanumeric() || *c == '_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        self.chars[start..self.pos].iter().collect()
    }

    /// A full type: a primary optionally followed by `!` markers.
    fn ty(&mut self) -> Result<Type, TypeError> {
        let mut t = self.primary()?;
        while self.peek() == Some('!') {
            self.bump();
            t = Type::required(t);
        }
        Ok(t)
    }

    fn primary(&mut self) -> Result<Type, TypeError> {
        match self.peek() {
            Some('[') => self.tuple(),
            Some('{') => {
                self.bump();
                let elem = self.ty()?;
                self.expect('}')?;
                Ok(Type::set(elem))
            }
            Some('(') => {
                self.bump();
                let mut members = vec![self.ty()?];
                while self.peek() == Some('|') {
                    self.bump();
                    members.push(self.ty()?);
                }
                self.expect(')')?;
                Ok(Type::Union(members))
            }
            Some('=') => {
                self.bump();
                Ok(Type::Constant(self.atom()?))
            }
            Some(c) if c.is_alphabetic() => {
                let w = self.word();
                match w.as_str() {
                    "any" => Ok(Type::Any),
                    "never" => Ok(crate::ty::never()),
                    "bool" => Ok(Type::Bool),
                    "int" => Ok(Type::Int),
                    "float" => Ok(Type::Float),
                    "string" => Ok(Type::Str),
                    other => Err(self.error(format!("unknown type name `{other}`"))),
                }
            }
            other => Err(self.error(format!("unexpected {other:?}"))),
        }
    }

    fn tuple(&mut self) -> Result<Type, TypeError> {
        self.expect('[')?;
        let mut entries: Vec<(String, Type)> = Vec::new();
        let mut open = false;
        loop {
            match self.peek() {
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('.') => {
                    // `...` marks an open tuple; must be last.
                    for _ in 0..3 {
                        self.expect('.')?;
                    }
                    open = true;
                    self.expect(']')?;
                    break;
                }
                Some(_) => {
                    let name = self.attr_name()?;
                    self.expect(':')?;
                    let t = self.ty()?;
                    entries.push((name, t));
                    if self.peek() == Some(',') {
                        self.bump();
                    }
                }
                None => return Err(self.error("unterminated tuple type".into())),
            }
        }
        let typed = entries.into_iter().map(|(n, t)| (n.as_str().into(), t));
        let typed: Vec<(co_object::Attr, Type)> = typed.collect();
        Ok(if open {
            Type::tuple(typed)
        } else {
            Type::closed_tuple(typed)
        })
    }

    fn attr_name(&mut self) -> Result<String, TypeError> {
        match self.peek() {
            Some('"') => self.quoted(),
            Some(c) if c.is_alphabetic() || c == '_' => Ok(self.word()),
            other => Err(self.error(format!("expected an attribute name, found {other:?}"))),
        }
    }

    fn quoted(&mut self) -> Result<String, TypeError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => return Err(self.error(format!("unknown escape `\\{c}`"))),
                    None => return Err(self.error("unterminated string".into())),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string".into())),
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, TypeError> {
        match self.peek() {
            Some('"') => Ok(Atom::from(self.quoted()?)),
            Some(c) if c.is_ascii_digit() || c == '-' => {
                self.skip_ws();
                let start = self.pos;
                if self.chars.get(self.pos) == Some(&'-') {
                    self.pos += 1;
                }
                let mut is_float = false;
                while self
                    .chars
                    .get(self.pos)
                    .map(|c| c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == '-')
                    .unwrap_or(false)
                {
                    if matches!(self.chars[self.pos], '.' | 'e') {
                        is_float = true;
                    }
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                if is_float {
                    text.parse::<f64>()
                        .map(Atom::float)
                        .map_err(|e| self.error(format!("bad float `{text}`: {e}")))
                } else {
                    text.parse::<i64>()
                        .map(Atom::Int)
                        .map_err(|e| self.error(format!("bad integer `{text}`: {e}")))
                }
            }
            Some(c) if c.is_alphabetic() => {
                let w = self.word();
                match w.as_str() {
                    "true" => Ok(Atom::Bool(true)),
                    "false" => Ok(Atom::Bool(false)),
                    other => Ok(Atom::str(other)),
                }
            }
            other => Err(self.error(format!("expected an atom, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::conforms;
    use crate::ty::never;
    use co_object::obj;

    #[test]
    fn primitives() {
        assert_eq!(parse_type("any").unwrap(), Type::Any);
        assert_eq!(parse_type("never").unwrap(), never());
        assert_eq!(parse_type("int").unwrap(), Type::Int);
        assert_eq!(parse_type(" string ").unwrap(), Type::Str);
        assert_eq!(parse_type("bool").unwrap(), Type::Bool);
        assert_eq!(parse_type("float").unwrap(), Type::Float);
    }

    #[test]
    fn constants() {
        assert_eq!(parse_type("=5").unwrap(), Type::Constant(Atom::Int(5)));
        assert_eq!(parse_type("=-3").unwrap(), Type::Constant(Atom::Int(-3)));
        assert_eq!(
            parse_type("=2.5").unwrap(),
            Type::Constant(Atom::float(2.5))
        );
        assert_eq!(
            parse_type("=john").unwrap(),
            Type::Constant(Atom::str("john"))
        );
        assert_eq!(
            parse_type("=true").unwrap(),
            Type::Constant(Atom::Bool(true))
        );
        assert_eq!(
            parse_type("=\"New York\"").unwrap(),
            Type::Constant(Atom::str("New York"))
        );
    }

    #[test]
    fn composites() {
        let t = parse_type("{[name: string, age: int!, ...]}").unwrap();
        assert!(conforms(&obj!({[name: ada, age: 36, extra: 1]}), &t));
        assert!(!conforms(&obj!({[name: ada]}), &t)); // age required
        let u = parse_type("(int | string)").unwrap();
        assert_eq!(u, Type::union([Type::Int, Type::Str]));
        let closed = parse_type("[a: int]").unwrap();
        assert!(!conforms(&obj!([a: 1, b: 2]), &closed));
        assert!(conforms(&obj!([]), &parse_type("[]").unwrap()));
        assert!(conforms(
            &obj!([anything: 1]),
            &parse_type("[...]").unwrap()
        ));
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "any",
            "never",
            "int",
            "=5",
            "=john",
            "{string}",
            "[age: int, name: string!]",
            "[name: string, ...]",
            "(int | string)",
            "{[children: {string}, name: string]}",
            "{(int | {int})}",
        ] {
            let t = parse_type(src).unwrap();
            let printed = t.to_string();
            assert_eq!(
                parse_type(&printed).unwrap(),
                t,
                "round trip failed: {src} -> {printed}"
            );
        }
    }

    #[test]
    fn quoted_attribute_names() {
        let t = parse_type("[\"weird attr\": int]").unwrap();
        let o = co_parser_free_tuple();
        assert!(conforms(&o, &t));
        fn co_parser_free_tuple() -> co_object::Object {
            co_object::Object::tuple([("weird attr", co_object::Object::int(1))])
        }
    }

    #[test]
    fn errors() {
        assert!(parse_type("").is_err());
        assert!(parse_type("intt").is_err());
        assert!(parse_type("[a: int").is_err());
        assert!(parse_type("{int} trailing").is_err());
        assert!(parse_type("(int |)").is_err());
        assert!(parse_type("=").is_err());
        assert!(parse_type("[a int]").is_err());
    }

    #[test]
    fn from_str_works() {
        let t: Type = "{int}".parse().unwrap();
        assert_eq!(t, Type::set(Type::Int));
    }
}

//! The type language for complex objects.
//!
//! The paper closes with "we would like to investigate how one can
//! introduce typing (schema) in our model" (§5). This module implements a
//! structural type system in the spirit the paper hints at (and that Kuper
//! & Vardi's logical data model formalizes): types mirror the object
//! constructors — atom kinds, tuples, sets — plus singleton types, `any`,
//! and unions.
//!
//! Design decisions (documented because the paper leaves them open):
//!
//! - `⊥` conforms to **every** type: it is the "undefined" object, the
//!   paper's null, and a null should be admissible anywhere a value is.
//! - `⊤` conforms only to [`Type::Any`]: it is the *inconsistent* object;
//!   no meaningful schema should accept it.
//! - Tuple types are **open**: an object tuple may have attributes beyond
//!   those typed (matching the paper's unconstrained object space, where
//!   `[a: 1] ≤ [a: 1, b: 2]`). A closed interpretation is available via
//!   [`Type::closed_tuple`].

use co_object::{Atom, Attr};
use std::fmt;

/// A structural type for complex objects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// Every object (including ⊤).
    Any,
    /// Any boolean atom.
    Bool,
    /// Any integer atom.
    Int,
    /// Any float atom.
    Float,
    /// Any string atom.
    Str,
    /// Exactly this atom (a singleton type).
    Constant(Atom),
    /// A tuple whose listed attributes conform to the given types.
    /// When `open`, extra attributes are allowed; when closed, they are
    /// not. Listed attributes may be absent on the object (they read as ⊥,
    /// which conforms to everything) — use [`Type::required`] wrappers to
    /// forbid that.
    Tuple {
        /// Attribute types, sorted by attribute.
        entries: Vec<(Attr, Type)>,
        /// Whether unlisted attributes are permitted.
        open: bool,
    },
    /// A set whose elements all conform to the element type.
    Set(Box<Type>),
    /// Anything conforming to at least one member.
    Union(Vec<Type>),
    /// Like the wrapped type but excludes ⊥ — "this value must be
    /// present". Only meaningful inside tuple entries (a bare `required`
    /// simply rejects ⊥).
    Required(Box<Type>),
}

impl Type {
    /// An open tuple type (see [`Type::Tuple`]).
    pub fn tuple<I, A>(entries: I) -> Type
    where
        I: IntoIterator<Item = (A, Type)>,
        A: Into<Attr>,
    {
        Self::tuple_impl(entries, true)
    }

    /// A closed tuple type: unlisted attributes are rejected.
    pub fn closed_tuple<I, A>(entries: I) -> Type
    where
        I: IntoIterator<Item = (A, Type)>,
        A: Into<Attr>,
    {
        Self::tuple_impl(entries, false)
    }

    fn tuple_impl<I, A>(entries: I, open: bool) -> Type
    where
        I: IntoIterator<Item = (A, Type)>,
        A: Into<Attr>,
    {
        let mut entries: Vec<(Attr, Type)> =
            entries.into_iter().map(|(a, t)| (a.into(), t)).collect();
        entries.sort_by_key(|(a, _)| *a);
        entries.dedup_by(|(a, _), (b, _)| a == b);
        Type::Tuple { entries, open }
    }

    /// A set type.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// A union type, flattened and deduplicated (see [`Type::simplify`]).
    pub fn union<I>(members: I) -> Type
    where
        I: IntoIterator<Item = Type>,
    {
        Type::Union(members.into_iter().collect()).simplify()
    }

    /// Marks a type as required (⊥ excluded).
    pub fn required(t: Type) -> Type {
        Type::Required(Box::new(t))
    }

    /// The type of the given attribute under a tuple type (Any when
    /// unlisted and open; `None` when unlisted and closed).
    pub fn attr_type(&self, a: Attr) -> Option<&Type> {
        match self {
            Type::Tuple { entries, open } => match entries.binary_search_by_key(&a, |(k, _)| *k) {
                Ok(i) => Some(&entries[i].1),
                Err(_) => {
                    if *open {
                        Some(&Type::Any)
                    } else {
                        None
                    }
                }
            },
            _ => None,
        }
    }

    /// Flattens nested unions, deduplicates members, absorbs `Any`, and
    /// unwraps singleton unions.
    pub fn simplify(self) -> Type {
        match self {
            Type::Union(members) => {
                let mut flat: Vec<Type> = Vec::new();
                let mut stack: Vec<Type> = members;
                stack.reverse();
                while let Some(m) = stack.pop() {
                    match m.simplify() {
                        Type::Union(inner) => {
                            for t in inner.into_iter().rev() {
                                stack.push(t);
                            }
                        }
                        Type::Any => return Type::Any,
                        t => {
                            if !flat.contains(&t) {
                                flat.push(t);
                            }
                        }
                    }
                }
                match flat.len() {
                    0 => Type::Union(Vec::new()),
                    1 => flat.pop().expect("len checked"),
                    _ => Type::Union(flat),
                }
            }
            Type::Set(e) => Type::Set(Box::new(e.simplify())),
            Type::Tuple { entries, open } => Type::Tuple {
                entries: entries
                    .into_iter()
                    .map(|(a, t)| (a, t.simplify()))
                    .collect(),
                open,
            },
            Type::Required(t) => Type::Required(Box::new(t.simplify())),
            t => t,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Any => write!(f, "any"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "string"),
            Type::Constant(a) => write!(f, "={a}"),
            Type::Tuple { entries, open } => {
                write!(f, "[")?;
                let mut by_name: Vec<&(Attr, Type)> = entries.iter().collect();
                by_name.sort_by_key(|(a, _)| a.name());
                for (i, (a, t)) in by_name.into_iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {t}", co_object::display::attr_name(*a))?;
                }
                if *open {
                    if !entries.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, "]")
            }
            Type::Set(e) => write!(f, "{{{e}}}"),
            Type::Union(members) => {
                if members.is_empty() {
                    return write!(f, "never");
                }
                write!(f, "(")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, ")")
            }
            Type::Required(t) => write!(f, "{t}!"),
        }
    }
}

/// The empty union — conformed to only by ⊥.
pub fn never() -> Type {
    Type::Union(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_simplification() {
        let t = Type::union([Type::Int, Type::union([Type::Str, Type::Int]), Type::Str]);
        assert_eq!(t, Type::Union(vec![Type::Int, Type::Str]));
        assert_eq!(Type::union([Type::Int]), Type::Int);
        assert_eq!(Type::union([Type::Int, Type::Any]), Type::Any);
        assert_eq!(Type::union([] as [Type; 0]), never());
    }

    #[test]
    fn tuple_attr_lookup() {
        let t = Type::tuple([("name", Type::Str), ("age", Type::Int)]);
        assert_eq!(t.attr_type(Attr::new("age")), Some(&Type::Int));
        assert_eq!(t.attr_type(Attr::new("other")), Some(&Type::Any));
        let c = Type::closed_tuple([("name", Type::Str)]);
        assert_eq!(c.attr_type(Attr::new("other")), None);
        assert_eq!(Type::Int.attr_type(Attr::new("x")), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::set(Type::Str).to_string(), "{string}");
        assert_eq!(
            Type::closed_tuple([("name", Type::Str)]).to_string(),
            "[name: string]"
        );
        assert_eq!(
            Type::tuple([("name", Type::Str)]).to_string(),
            "[name: string, ...]"
        );
        assert_eq!(
            Type::union([Type::Int, Type::Str]).to_string(),
            "(int | string)"
        );
        assert_eq!(never().to_string(), "never");
        assert_eq!(Type::required(Type::Int).to_string(), "int!");
        assert_eq!(Type::Constant(co_object::Atom::int(5)).to_string(), "=5");
    }

    #[test]
    fn nested_simplification() {
        let t = Type::Set(Box::new(Type::Union(vec![Type::Union(vec![Type::Int])]))).simplify();
        assert_eq!(t, Type::set(Type::Int));
    }
}

//! Minimal-type inference.
//!
//! [`infer_type`] computes a structural type that the object conforms to
//! and that is as tight as the type language allows without singleton
//! types: atom kinds for atoms, closed tuple types, and set types whose
//! element is the (simplified) union of the elements' types. The
//! fundamental property — `conforms(o, infer_type(o))` — is checked by a
//! proptest in `lib.rs`; heterogeneous sets (the paper's headline
//! generality: "the types of the elements of a set could all be
//! different") infer union element types.

use crate::{Type, TypeError};
use co_object::{Atom, Object};

/// Infers a tight structural type for `o`. ⊥ infers [`Type::Any`] (no
/// information); ⊤ infers [`Type::Any`] (the only type admitting it).
pub fn infer_type(o: &Object) -> Type {
    match o {
        Object::Bottom | Object::Top => Type::Any,
        Object::Atom(a) => atom_kind(a),
        Object::Tuple(t) => {
            Type::closed_tuple(t.entries().iter().map(|(a, v)| (*a, infer_type(v))))
        }
        Object::Set(s) => Type::set(Type::union(s.iter().map(infer_type))),
    }
}

/// Infers with singleton (constant) types at the atoms — the most precise
/// type expressible.
pub fn infer_exact(o: &Object) -> Type {
    match o {
        Object::Bottom | Object::Top => Type::Any,
        Object::Atom(a) => Type::Constant(a.clone()),
        Object::Tuple(t) => {
            Type::closed_tuple(t.entries().iter().map(|(a, v)| (*a, infer_exact(v))))
        }
        Object::Set(s) => Type::set(Type::union(s.iter().map(infer_exact))),
    }
}

/// The kind type of an atom.
pub fn atom_kind(a: &Atom) -> Type {
    match a {
        Atom::Bool(_) => Type::Bool,
        Atom::Int(_) => Type::Int,
        Atom::Float(_) => Type::Float,
        Atom::Str(_) => Type::Str,
    }
}

/// Infers a *common* type for several objects (the union of their
/// inferred types). Errors on an empty input — there is no least
/// informative common type to pick that would still be useful.
pub fn infer_common<'a, I>(objects: I) -> Result<Type, TypeError>
where
    I: IntoIterator<Item = &'a Object>,
{
    let mut members: Vec<Type> = Vec::new();
    for o in objects {
        members.push(infer_type(o));
    }
    if members.is_empty() {
        return Err(TypeError::NothingToInfer);
    }
    Ok(Type::union(members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::conforms;
    use co_object::obj;

    #[test]
    fn atoms_infer_their_kind() {
        assert_eq!(infer_type(&obj!(5)), Type::Int);
        assert_eq!(infer_type(&obj!(x)), Type::Str);
        assert_eq!(infer_type(&obj!(2.5)), Type::Float);
        assert_eq!(infer_type(&obj!(true)), Type::Bool);
    }

    #[test]
    fn tuples_infer_closed_types() {
        let t = infer_type(&obj!([name: peter, age: 25]));
        assert_eq!(
            t,
            Type::closed_tuple([("name", Type::Str), ("age", Type::Int)])
        );
    }

    #[test]
    fn homogeneous_sets_infer_simple_element_types() {
        assert_eq!(infer_type(&obj!({1, 2, 3})), Type::set(Type::Int));
        assert_eq!(infer_type(&obj!({})), Type::set(crate::ty::never()));
    }

    #[test]
    fn heterogeneous_sets_infer_union_element_types() {
        // The paper's schema-free generality: set elements of different
        // types.
        let t = infer_type(&obj!({1, two, [a: 3]}));
        let Type::Set(elem) = t else {
            panic!("expected a set type");
        };
        let Type::Union(members) = *elem else {
            panic!("expected a union element type, got {elem}");
        };
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn inference_round_trips_through_conformance() {
        for o in [
            obj!(5),
            obj!({1, two}),
            obj!([name: [first: john], children: {mary}, age: 25]),
            obj!({[a: 1], [a: 1, b: 2]}),
            Object::Bottom,
            Object::Top,
            obj!({}),
            obj!([]),
        ] {
            let t = infer_type(&o);
            assert!(conforms(&o, &t), "{o} does not conform to inferred {t}");
            let e = infer_exact(&o);
            assert!(conforms(&o, &e), "{o} does not conform to exact {e}");
        }
    }

    #[test]
    fn exact_inference_pins_constants() {
        let t = infer_exact(&obj!([a: 1]));
        assert!(conforms(&obj!([a: 1]), &t));
        assert!(!conforms(&obj!([a: 2]), &t));
        // Kind inference is looser.
        let k = infer_type(&obj!([a: 1]));
        assert!(conforms(&obj!([a: 2]), &k));
    }

    #[test]
    fn common_type_inference() {
        let objs = [obj!(1), obj!(2), obj!(x)];
        let t = infer_common(objs.iter()).unwrap();
        assert_eq!(t, Type::union([Type::Int, Type::Str]));
        assert!(infer_common([] as [&Object; 0]).is_err());
    }
}

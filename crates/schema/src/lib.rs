//! # co-schema — typing for complex objects
//!
//! The paper's §5 names "how one can introduce typing (schema) in our
//! model" as an open issue. This crate implements a structural type system
//! over the schemaless object space:
//!
//! - [`Type`] — atom kinds, singleton constants, open/closed tuple types,
//!   set types, unions, `any`, and a `required` wrapper controlling nulls;
//! - [`conforms`]/[`check`] — conformance with path-precise errors;
//! - [`infer_type`]/[`infer_exact`] — minimal-type inference, producing
//!   union element types for the paper's heterogeneous sets;
//! - [`subtype`] — sound structural subtyping mirroring the spirit of the
//!   sub-object order.
//!
//! ```
//! use co_object::obj;
//! use co_schema::{conforms, infer_type, subtype, Type};
//!
//! let nested = obj!({[name: peter, children: {max, susan}]});
//! let t = infer_type(&nested);
//! assert!(conforms(&nested, &t));
//! assert!(subtype(&t, &Type::set(Type::Any)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod check;
mod error;
mod infer;
mod parse;
mod subtype;
pub mod ty;

pub use check::{check, conforms};
pub use error::TypeError;
pub use infer::{infer_common, infer_exact, infer_type};
pub use parse::parse_type;
pub use subtype::subtype;
pub use ty::Type;

#[cfg(test)]
mod proptests {
    use super::*;
    use co_object::random::{Generator, Profile};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Every object conforms to its inferred type (both precisions).
        #[test]
        fn inference_is_sound(seed in any::<u64>()) {
            let mut g = Generator::new(seed, Profile::default());
            for o in g.objects(4) {
                let t = infer_type(&o);
                prop_assert!(conforms(&o, &t), "{} !: {}", o, t);
                let e = infer_exact(&o);
                prop_assert!(conforms(&o, &e), "{} !: {}", o, e);
            }
        }

        /// Subtyping is sound w.r.t. conformance: if the inferred exact
        /// type of `o` is a subtype of `t`, then `o` conforms to `t` —
        /// exercised with t drawn from inferred types of other objects.
        #[test]
        fn subtyping_is_sound(seed in any::<u64>(), seed2 in any::<u64>()) {
            let mut g1 = Generator::new(seed, Profile::small());
            let mut g2 = Generator::new(seed2, Profile::small());
            let o = g1.object();
            let t_o = infer_exact(&o);
            for other in g2.objects(4) {
                let t = infer_type(&other);
                if subtype(&t_o, &t) {
                    prop_assert!(
                        conforms(&o, &t),
                        "unsound: {} <: {} but {} does not conform", t_o, t, o
                    );
                }
            }
        }

        /// Inferred exact types are subtypes of inferred kind types.
        #[test]
        fn exact_below_kind(seed in any::<u64>()) {
            let mut g = Generator::new(seed, Profile::small());
            let o = g.object();
            prop_assert!(subtype(&infer_exact(&o), &infer_type(&o)));
        }

        /// Subtyping is reflexive and transitive on inferred types.
        #[test]
        fn subtype_preorder(seed in any::<u64>()) {
            let mut g = Generator::new(seed, Profile::small());
            let objs = g.objects(3);
            let ts: Vec<Type> = objs.iter().map(infer_type).collect();
            for t in &ts {
                prop_assert!(subtype(t, t));
            }
            for a in &ts {
                for b in &ts {
                    for c in &ts {
                        if subtype(a, b) && subtype(b, c) {
                            prop_assert!(subtype(a, c));
                        }
                    }
                }
            }
        }
    }
}

//! Type-checking errors.

use std::fmt;

/// Errors from conformance checking and inference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// An object did not conform to the expected type.
    Mismatch {
        /// Path from the root to the offending sub-object.
        path: String,
        /// The expected type, rendered.
        expected: String,
        /// The offending object, rendered.
        found: String,
    },
    /// A required value was ⊥ / missing.
    MissingRequired {
        /// Path from the root.
        path: String,
        /// The required type, rendered.
        expected: String,
    },
    /// A closed tuple type met an attribute it does not list.
    UnexpectedAttribute {
        /// Path from the root.
        path: String,
        /// The unexpected attribute.
        attr: String,
        /// The closed tuple type, rendered.
        expected: String,
    },
    /// `infer_common` was given nothing to infer from.
    NothingToInfer,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch {
                path,
                expected,
                found,
            } => write!(f, "at {path}: expected {expected}, found {found}"),
            TypeError::MissingRequired { path, expected } => {
                write!(f, "at {path}: missing required value of type {expected}")
            }
            TypeError::UnexpectedAttribute {
                path,
                attr,
                expected,
            } => write!(
                f,
                "at {path}: attribute `{attr}` not allowed by closed type {expected}"
            ),
            TypeError::NothingToInfer => write!(f, "cannot infer a common type of nothing"),
        }
    }
}

impl std::error::Error for TypeError {}

//! Structural subtyping.
//!
//! `t1 <: t2` is a *sound* syntactic approximation of semantic inclusion:
//! whenever `subtype(t1, t2)` holds, every object conforming to `t1`
//! conforms to `t2` (checked property-style in `lib.rs`). It is not
//! complete — e.g. deeply nested union distributions are not explored —
//! which is the standard trade-off for a decidable structural system.

use crate::infer::atom_kind;
use crate::Type;

/// Is `sub` a subtype of `sup`? (Sound, not complete; see module docs.)
pub fn subtype(sub: &Type, sup: &Type) -> bool {
    match (sub, sup) {
        // Required excludes ⊥, which every other type (even the empty
        // union) admits — so only a Required subtype can sit below a
        // Required supertype. Check this before the general arms.
        (Type::Required(a), Type::Required(b)) => subtype(a, b),
        (_, Type::Required(_)) => false,
        (Type::Required(a), _) => subtype(a, sup),
        (_, Type::Any) => true,
        // `never` (the empty union) is below everything else.
        (Type::Union(ms), _) if ms.is_empty() => true,
        // Union on the left: every member must fit.
        (Type::Union(ms), _) => ms.iter().all(|m| subtype(m, sup)),
        // Union on the right: some member must admit `sub` wholly.
        (_, Type::Union(ms)) => ms.iter().any(|m| subtype(sub, m)),
        (Type::Bool, Type::Bool)
        | (Type::Int, Type::Int)
        | (Type::Float, Type::Float)
        | (Type::Str, Type::Str) => true,
        (Type::Constant(a), Type::Constant(b)) => a == b,
        (Type::Constant(a), kind) => &atom_kind(a) == kind,
        (Type::Set(a), Type::Set(b)) => subtype(a, b),
        (
            Type::Tuple {
                entries: se,
                open: so,
            },
            Type::Tuple {
                entries: pe,
                open: po,
            },
        ) => {
            // Every attribute typed by the supertype must be at least as
            // tightly typed by the subtype. An open subtype can smuggle in
            // arbitrary extra attributes, so a closed supertype requires a
            // closed subtype whose attrs all appear in the supertype.
            if !po {
                if *so {
                    return false;
                }
                for (a, _) in se {
                    if pe.binary_search_by_key(a, |(k, _)| *k).is_err() {
                        return false;
                    }
                }
            }
            for (a, pt) in pe {
                let st = match se.binary_search_by_key(a, |(k, _)| *k) {
                    Ok(i) => &se[i].1,
                    // Unlisted in the subtype: objects may carry anything
                    // there (open) or nothing (closed ⇒ value is ⊥, which
                    // conforms to any non-required type).
                    Err(_) => {
                        if *so {
                            &Type::Any
                        } else {
                            // ⊥ only: fine unless the supertype requires
                            // presence.
                            if matches!(pt, Type::Required(_)) {
                                return false;
                            }
                            continue;
                        }
                    }
                };
                if !subtype(st, pt) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::never;
    use co_object::Atom;

    #[test]
    fn any_is_top_never_is_bottom() {
        for t in [
            Type::Int,
            Type::set(Type::Str),
            Type::tuple([("a", Type::Int)]),
        ] {
            assert!(subtype(&t, &Type::Any));
            assert!(subtype(&never(), &t));
            assert!(subtype(&t, &t), "reflexivity for {t}");
        }
        assert!(!subtype(&Type::Any, &Type::Int));
    }

    #[test]
    fn constants_are_below_their_kind() {
        assert!(subtype(&Type::Constant(Atom::int(5)), &Type::Int));
        assert!(!subtype(&Type::Constant(Atom::int(5)), &Type::Str));
        assert!(!subtype(&Type::Int, &Type::Constant(Atom::int(5))));
    }

    #[test]
    fn unions() {
        let int_or_str = Type::union([Type::Int, Type::Str]);
        assert!(subtype(&Type::Int, &int_or_str));
        assert!(subtype(
            &int_or_str,
            &Type::union([Type::Int, Type::Str, Type::Bool])
        ));
        assert!(!subtype(&int_or_str, &Type::Int));
    }

    #[test]
    fn sets_are_covariant() {
        assert!(subtype(
            &Type::set(Type::Int),
            &Type::set(Type::union([Type::Int, Type::Str]))
        ));
        assert!(!subtype(&Type::set(Type::Str), &Type::set(Type::Int)));
    }

    #[test]
    fn tuple_width_and_depth() {
        let narrow = Type::tuple([("a", Type::Int)]);
        let wide = Type::tuple([("a", Type::Int), ("b", Type::Str)]);
        // More constrained (wide) is a subtype of less constrained (narrow)
        // for open tuples; not vice versa (narrow's `b` is any, not str).
        assert!(subtype(&wide, &narrow));
        assert!(!subtype(&narrow, &wide));
        // Depth: tighter attribute types.
        let exact = Type::tuple([("a", Type::Constant(Atom::int(1)))]);
        assert!(subtype(&exact, &narrow));
        assert!(!subtype(&narrow, &exact));
    }

    #[test]
    fn closed_supertype_needs_closed_subtype() {
        let closed = Type::closed_tuple([("a", Type::Int)]);
        let open = Type::tuple([("a", Type::Int)]);
        assert!(subtype(&closed, &open));
        assert!(!subtype(&open, &closed));
        assert!(subtype(&closed, &closed));
        // Closed subtype with fewer attrs is fine (⊥ conforms).
        let empty_closed = Type::closed_tuple([] as [(&str, Type); 0]);
        assert!(subtype(&empty_closed, &closed));
    }

    #[test]
    fn required_is_stricter() {
        let req = Type::required(Type::Int);
        assert!(subtype(&req, &Type::Int));
        assert!(!subtype(&Type::Int, &req));
        assert!(subtype(&req, &req));
        // A tuple requiring `a` is a subtype of one merely typing it.
        let with_req = Type::tuple([("a", req.clone())]);
        let with_opt = Type::tuple([("a", Type::Int)]);
        assert!(subtype(&with_req, &with_opt));
        assert!(!subtype(&with_opt, &with_req));
    }
}

//! Conformance checking: does an object inhabit a type?

use crate::{Type, TypeError};
use co_object::{Atom, Object, Path};

/// True when `o` conforms to `t` (see the decisions documented in
/// [`crate::ty`]: ⊥ conforms to everything, ⊤ only to `any`, tuple types
/// are open unless built with [`Type::closed_tuple`]).
pub fn conforms(o: &Object, t: &Type) -> bool {
    check_at(o, t, &mut Path::root()).is_ok()
}

/// Like [`conforms`], but reports *where* and *why* conformance fails.
pub fn check(o: &Object, t: &Type) -> Result<(), TypeError> {
    check_at(o, t, &mut Path::root())
}

fn mismatch(o: &Object, t: &Type, path: &Path) -> TypeError {
    TypeError::Mismatch {
        path: path.to_string(),
        expected: t.to_string(),
        found: o.to_string(),
    }
}

fn check_at(o: &Object, t: &Type, path: &mut Path) -> Result<(), TypeError> {
    // ⊥ (null / missing) conforms to everything except Required.
    if o.is_bottom() {
        return match t {
            Type::Required(_) => Err(TypeError::MissingRequired {
                path: path.to_string(),
                expected: t.to_string(),
            }),
            _ => Ok(()),
        };
    }
    match t {
        Type::Any => Ok(()),
        Type::Required(inner) => check_at(o, inner, path),
        Type::Bool => match o.as_atom() {
            Some(Atom::Bool(_)) => Ok(()),
            _ => Err(mismatch(o, t, path)),
        },
        Type::Int => match o.as_atom() {
            Some(Atom::Int(_)) => Ok(()),
            _ => Err(mismatch(o, t, path)),
        },
        Type::Float => match o.as_atom() {
            Some(Atom::Float(_)) => Ok(()),
            _ => Err(mismatch(o, t, path)),
        },
        Type::Str => match o.as_atom() {
            Some(Atom::Str(_)) => Ok(()),
            _ => Err(mismatch(o, t, path)),
        },
        Type::Constant(a) => match o.as_atom() {
            Some(b) if b == a => Ok(()),
            _ => Err(mismatch(o, t, path)),
        },
        Type::Tuple { entries, open } => {
            let Some(tup) = o.as_tuple() else {
                return Err(mismatch(o, t, path));
            };
            if !open {
                for (a, _) in tup.entries() {
                    if entries.binary_search_by_key(a, |(k, _)| *k).is_err() {
                        return Err(TypeError::UnexpectedAttribute {
                            path: path.to_string(),
                            attr: a.to_string(),
                            expected: t.to_string(),
                        });
                    }
                }
            }
            for (a, at) in entries {
                path.push(*a);
                let r = check_at(tup.get(*a), at, path);
                path.pop();
                r?;
            }
            Ok(())
        }
        Type::Set(elem) => {
            let Some(set) = o.as_set() else {
                return Err(mismatch(o, t, path));
            };
            for e in set.iter() {
                check_at(e, elem, path)?;
            }
            Ok(())
        }
        Type::Union(members) => {
            if members.iter().any(|m| conforms(o, m)) {
                Ok(())
            } else {
                Err(mismatch(o, t, path))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    #[test]
    fn atoms_conform_to_their_kinds() {
        assert!(conforms(&obj!(5), &Type::Int));
        assert!(!conforms(&obj!(5), &Type::Str));
        assert!(conforms(&obj!(john), &Type::Str));
        assert!(conforms(&obj!(2.5), &Type::Float));
        assert!(conforms(&obj!(true), &Type::Bool));
        assert!(conforms(&obj!(5), &Type::Constant(co_object::Atom::int(5))));
        assert!(!conforms(
            &obj!(6),
            &Type::Constant(co_object::Atom::int(5))
        ));
    }

    #[test]
    fn bottom_conforms_to_everything_but_required() {
        for t in [
            Type::Int,
            Type::Str,
            Type::set(Type::Int),
            crate::ty::never(),
        ] {
            assert!(conforms(&Object::Bottom, &t));
        }
        assert!(!conforms(&Object::Bottom, &Type::required(Type::Int)));
    }

    #[test]
    fn top_conforms_only_to_any() {
        assert!(conforms(&Object::Top, &Type::Any));
        assert!(!conforms(&Object::Top, &Type::Int));
        assert!(!conforms(&Object::Top, &Type::set(Type::Any)));
    }

    #[test]
    fn paper_nested_relation_type_checks() {
        // {[name: string, children: {string}]} — Example 2.1's nested
        // relation.
        let t = Type::set(Type::tuple([
            ("name", Type::Str),
            ("children", Type::set(Type::Str)),
        ]));
        let r = obj!({
            [name: peter, children: {max, susan}],
            [name: john, children: {mary, john, frank}],
            [name: mary, children: {}]
        });
        assert!(conforms(&r, &t));
        // A wrong-kind children value fails.
        let bad = obj!({[name: peter, children: 5]});
        assert!(!conforms(&bad, &t));
    }

    #[test]
    fn nulls_are_admitted_by_open_tuples() {
        // The paper's "relation with null values" conforms: the missing
        // age reads as ⊥, which conforms to int.
        let t = Type::set(Type::tuple([("name", Type::Str), ("age", Type::Int)]));
        let r = obj!({[name: peter], [name: john, age: 7]});
        assert!(conforms(&r, &t));
        // ...but not when age is required.
        let strict = Type::set(Type::tuple([
            ("name", Type::Str),
            ("age", Type::required(Type::Int)),
        ]));
        assert!(!conforms(&r, &strict));
    }

    #[test]
    fn closed_tuples_reject_extra_attributes() {
        let t = Type::closed_tuple([("a", Type::Int)]);
        assert!(conforms(&obj!([a: 1]), &t));
        assert!(!conforms(&obj!([a: 1, b: 2]), &t));
        // Open accepts.
        let t2 = Type::tuple([("a", Type::Int)]);
        assert!(conforms(&obj!([a: 1, b: 2]), &t2));
    }

    #[test]
    fn unions() {
        let t = Type::union([Type::Int, Type::Str]);
        assert!(conforms(&obj!(1), &t));
        assert!(conforms(&obj!(x), &t));
        assert!(!conforms(&obj!(true), &t));
        // Heterogeneous set, as the paper's schemaless sets allow.
        let s = Type::set(Type::union([Type::Int, Type::Str]));
        assert!(conforms(&obj!({1, two, 3}), &s));
    }

    #[test]
    fn error_paths_point_at_the_problem() {
        let t = Type::tuple([("family", Type::set(Type::tuple([("age", Type::Int)])))]);
        let o = obj!([family: {[age: old]}]);
        let e = check(&o, &t).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("family"), "error was: {text}");
        assert!(text.contains("int"), "error was: {text}");
        assert!(text.contains("old"), "error was: {text}");
    }

    #[test]
    fn missing_required_is_a_distinct_error() {
        let t = Type::tuple([("age", Type::required(Type::Int))]);
        let e = check(&obj!([name: x]), &t).unwrap_err();
        assert!(matches!(e, TypeError::MissingRequired { .. }));
    }

    #[test]
    fn unexpected_attribute_is_a_distinct_error() {
        let t = Type::closed_tuple([("a", Type::Int)]);
        let e = check(&obj!([a: 1, z: 2]), &t).unwrap_err();
        assert!(matches!(e, TypeError::UnexpectedAttribute { .. }));
    }
}

//! Reproduces every numbered example of the paper as a printed
//! expected-vs-computed table (experiments E1–E10 of EXPERIMENTS.md; the
//! property-test experiments E11/E12 run under `cargo test`).
//!
//! Run with `cargo run -p co-bench --bin experiments`.

use co_calculus::{apply_rule, interpret, MatchPolicy};
use co_engine::{Engine, EngineError, Guard};
use co_object::lattice::{intersect, union};
use co_object::order::le;
use co_object::Object;
use co_parser::{parse_formula, parse_object, parse_program, parse_rule};

struct Score {
    pass: usize,
    fail: usize,
}

impl Score {
    fn row(&mut self, label: &str, got: &str, expected: &str) {
        let ok = got == expected;
        if ok {
            self.pass += 1;
        } else {
            self.fail += 1;
        }
        println!(
            "  {} {:<42} computed: {:<38} expected: {}",
            if ok { "✓" } else { "✗" },
            label,
            got,
            expected
        );
    }

    fn check(&mut self, label: &str, ok: bool, detail: &str) {
        if ok {
            self.pass += 1;
        } else {
            self.fail += 1;
        }
        println!("  {} {:<42} {}", if ok { "✓" } else { "✗" }, label, detail);
    }
}

fn obj(s: &str) -> Object {
    parse_object(s).unwrap_or_else(|e| panic!("bad object {s}: {e}"))
}

fn main() {
    let mut score = Score { pass: 0, fail: 0 };

    println!("E1 — Example 2.1: the object forms");
    for src in [
        "john",
        "25",
        "{john, mary, susan}",
        "[name: peter, age: 25]",
        "[name: [first: john, last: doe], age: 25]",
        "{[name: peter], [name: john, age: 7], [name: mary, address: austin]}",
        "{[name: peter, children: {max, susan}], [name: mary, children: {}]}",
        "[r1: {[name: peter, age: 25]}, r2: {[name: mary, address: paris]}]",
    ] {
        let o = obj(src);
        score.check(
            src,
            parse_object(&o.to_string()).as_ref() == Ok(&o),
            "parses + round-trips",
        );
    }

    println!("\nE2 — Example 2.2: equality identities");
    for (l, r) in [
        ("[a: 1, b: 2]", "[b: 2, a: 1]"),
        ("[a: 1, b: 2]", "[a: 1, b: 2, c: bot]"),
        ("{1, 2, 3}", "{2, 3, 1}"),
        ("{1, 1}", "{1}"),
        ("[a: {top}, b: 2]", "top"),
    ] {
        score.row(
            &format!("{l} = {r}"),
            &(obj(l) == obj(r)).to_string(),
            "true",
        );
    }
    for (l, r) in [("[a: 7]", "7"), ("{7}", "7"), ("[a: 7]", "{7}")] {
        score.row(
            &format!("{l} ≠ {r}"),
            &(obj(l) != obj(r)).to_string(),
            "true",
        );
    }

    println!("\nE3 — Example 3.1: the sub-object relationship");
    for (s, b, expected) in [
        ("[a: 1, b: 2]", "[a: 1, b: 2, c: 3]", true),
        ("{1, 2, 3}", "{1, 2, 3, 4}", true),
        (
            "{[a: 1], [a: 2, b: 3]}",
            "{[a: 1, b: 2], [a: 2, b: 3], [a: 5, b: 5, c: 5]}",
            true,
        ),
        ("[a: {1}, b: 2]", "[a: {1, 2}, b: 2]", true),
        ("1", "[a: 1, b: 2]", false),
        ("1", "{1, 2, 3}", false),
    ] {
        score.row(
            &format!("{s} ≤ {b}"),
            &le(&obj(s), &obj(b)).to_string(),
            &expected.to_string(),
        );
    }

    println!("\nE4 — Example 3.2: reduction repairs anti-symmetry");
    let o1 = obj("{[a1: 3, a2: 5], [a1: 3]}");
    let o2 = obj("{[a1: 3, a2: 5]}");
    score.check(
        "reduced([a1:3,a2:5],[a1:3]) = {[a1:3,a2:5]}",
        o1 == o2,
        &format!("constructor reduced to {o1}"),
    );

    println!("\nE5 — Examples 3.3: union is the lub");
    for (l, r, e) in [
        ("[a: 1, b: 2]", "[b: 2, c: 3]", "[a: 1, b: 2, c: 3]"),
        ("[a: 1]", "[b: 2, c: 3]", "[a: 1, b: 2, c: 3]"),
        ("[a: 1, b: 2]", "[b: 3, c: 4]", "top"),
        ("{1, 2}", "{2, 3}", "{1, 2, 3}"),
        ("1", "2", "top"),
        ("[a: 1, b: 2]", "{1, 2, 3}", "top"),
        (
            "[a: 1, b: {2, 3}]",
            "[b: {3, 4}, c: 5]",
            "[a: 1, b: {2, 3, 4}, c: 5]",
        ),
    ] {
        score.row(
            &format!("{l} ∪ {r}"),
            &union(&obj(l), &obj(r)).to_string(),
            &obj(e).to_string(),
        );
    }

    println!("\nE6 — Examples 3.4: intersection is the glb");
    for (l, r, e) in [
        ("[a: 1, b: 2]", "[b: 2, c: 3]", "[b: 2]"),
        ("[a: 1]", "[b: 2, c: 3]", "[]"),
        ("[a: 1, b: 2]", "[b: 3, c: 4]", "[]"),
        ("{1, 2}", "{2, 3}", "{2}"),
        ("1", "2", "bot"),
        ("[a: 1, b: 2]", "{1, 2, 3}", "bot"),
        ("[a: 1, b: {2, 3}]", "[b: {3, 4}, c: 5]", "[b: {3}]"),
    ] {
        score.row(
            &format!("{l} ∩ {r}"),
            &intersect(&obj(l), &obj(r)).to_string(),
            &obj(e).to_string(),
        );
    }

    println!("\nE7 — Example 4.1: interpretations of well-formed formulae");
    let db = obj("[r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 3, b: 30]},
          r2: {[c: 10, d: 100], [c: 20, d: 200], [c: 99, d: 999]}]");
    for (f_src, expected) in [
        ("[r1: {[a: X, b: 10]}]", "[r1: {[a: 1, b: 10]}]"),
        (
            "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
            "[r1: {[a: 1, b: 10], [a: 2, b: 20]}, r2: {[c: 10, d: 100], [c: 20, d: 200]}]",
        ),
        (
            "[r1: {[a: 1, b: Y]}, r2: {[c: Y, d: Z]}]",
            "[r1: {[a: 1, b: 10]}, r2: {[c: 10, d: 100]}]",
        ),
    ] {
        let f = parse_formula(f_src).unwrap();
        score.row(
            f_src,
            &interpret(&f, &db, MatchPolicy::Strict).to_string(),
            &obj(expected).to_string(),
        );
    }
    let db4 = obj("[r1: {1, 2, 3}, r2: {2, 3, 4}]");
    let f4 = parse_formula("[r1: {X}, r2: {X}]").unwrap();
    score.row(
        "[r1: {X}, r2: {X}] (intersection)",
        &interpret(&f4, &db4, MatchPolicy::Strict).to_string(),
        &obj("[r1: {2, 3}, r2: {2, 3}]").to_string(),
    );
    for f_src in ["[r1: X, r2: Y]", "[r1: {X}, r2: {Y}]"] {
        let f = parse_formula(f_src).unwrap();
        score.row(
            &format!("{f_src} (both relations)"),
            &interpret(&f, &db, MatchPolicy::Strict).to_string(),
            &db.to_string(),
        );
    }

    println!("\nE8 — Example 4.2: rule effects (strict policy = paper prose)");
    let db_sel = obj("[r1: {[a: 1, b: b], [a: 2, b: c], [a: 3, b: b]}]");
    for (r_src, base, expected) in [
        (
            "[r: {[c: X]}] :- [r1: {[a: X, b: b]}].",
            &db_sel,
            "[r: {[c: 1], [c: 3]}]",
        ),
        ("[r: {X}] :- [r1: {[a: X, b: b]}].", &db_sel, "[r: {1, 3}]"),
        (
            "[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].",
            &db,
            "[r: {[a: 1, d: 100], [a: 2, d: 200]}]",
        ),
        (
            "[r: {[a1: X, a2: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].",
            &db,
            "[r: {[a1: 1, a2: 100], [a1: 2, a2: 200]}]",
        ),
        ("[r: {X}] :- [r1: {X}, r2: {X}].", &db4, "[r: {2, 3}]"),
        ("{X} :- [r1: {X}, r2: {X}].", &db4, "{2, 3}"),
    ] {
        let r = parse_rule(r_src).unwrap();
        score.row(
            r_src,
            &apply_rule(&r, base, MatchPolicy::Strict).to_string(),
            &obj(expected).to_string(),
        );
    }
    // The Definition 4.4 anomaly (DESIGN.md §3.3).
    let join =
        parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].").unwrap();
    let literal_pairs = apply_rule(&join, &db, MatchPolicy::Literal)
        .dot("r")
        .as_set()
        .map(|s| s.len())
        .unwrap_or(0);
    score.check(
        "Literal policy join (Def 4.4 verbatim)",
        literal_pairs == 9,
        &format!("{literal_pairs} pairs = 3×3 cross product (the documented anomaly)"),
    );

    println!("\nE9 — Example 4.5: descendants of abraham (closure exists)");
    let family = obj("[family: {[name: abraham, children: {[name: isaac]}],
                   [name: isaac,   children: {[name: esau], [name: jacob]}]}]");
    let program = parse_program(
        "[doa: {abraham}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    match Engine::new(program).run(&family) {
        Ok(out) => score.row(
            "closure.doa",
            &out.database.dot("doa").to_string(),
            &obj("{abraham, isaac, esau, jacob}").to_string(),
        ),
        Err(e) => score.check("closure.doa", false, &e.to_string()),
    }

    println!("\nE10 — Example 4.6: infinite lists (no closure; guarded)");
    let diverging = parse_program(
        "[list: {1}].
         [list: {[head: 1, tail: X]}] :- [list: {X}].",
    )
    .unwrap();
    let result = Engine::new(diverging)
        .guard(Guard {
            max_iterations: 64,
            max_depth: 32,
            ..Guard::default()
        })
        .run(&obj("[list: {}]"));
    match result {
        Err(EngineError::Diverged { reason, stats, .. }) => score.check(
            "divergence detected",
            true,
            &format!("after {} iterations: {reason}", stats.iterations),
        ),
        Ok(_) => score.check("divergence detected", false, "unexpected convergence"),
    }

    println!("\n==> {} checks passed, {} failed", score.pass, score.fail);
    println!("(E11/E12 — the theorem property suites — run under `cargo test --workspace`.)");
    if score.fail > 0 {
        std::process::exit(1);
    }
}

//! Generates the measured figure series F1–F7 of EXPERIMENTS.md as CSV on
//! stdout (one block per figure). Criterion (`cargo bench`) produces the
//! statistically rigorous versions; this binary produces quick single-shot
//! series for the EXPERIMENTS.md tables.
//!
//! Run with `cargo run -p co-bench --release --bin figures`.

use co_bench::*;
use co_calculus::{interpret_with, matches, MatchPolicy, ScanAll};
use co_engine::{Engine, Guard, Strategy};
use co_object::lattice::{intersect, union};
use co_object::order::le;
use co_object::Object;
use co_parser::{parse_formula, parse_object};
use co_relational::Query;
use std::time::Instant;

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Repeats until ~20ms elapsed, reporting mean ms per call.
fn bench_ms(mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    while start.elapsed().as_secs_f64() < 0.02 {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn main() {
    println!("# F1 — sub-object check vs depth/fanout");
    println!("figure,depth,fanout,mean_ms_per_1k_pairs");
    for depth in [2u32, 3, 4, 5, 6] {
        for fanout in [2usize, 4, 8] {
            let objs = random_objects(42, depth, fanout, 40);
            let ms = bench_ms(|| {
                for a in &objs {
                    for b in &objs {
                        std::hint::black_box(le(a, b));
                    }
                }
            });
            println!("F1,{depth},{fanout},{:.4}", ms / 1.6);
        }
    }

    println!("\n# F2 — union/intersection vs set size");
    println!("figure,op,set_size,mean_ms");
    for n in [10i64, 100, 1_000, 10_000] {
        let a = flat_relation(n, n / 2 + 1, "k", "v");
        let b = flat_relation(n + n / 2, n / 2 + 1, "k", "v");
        let u = bench_ms(|| {
            std::hint::black_box(union(&a, &b));
        });
        println!("F2,union,{n},{u:.4}");
        // Definition 3.5 makes set intersection inherently pairwise
        // (O(n·m) glbs); cap the sweep where the quadratic growth is
        // already unambiguous.
        if n <= 3_000 {
            let i = bench_ms(|| {
                std::hint::black_box(intersect(&a, &b));
            });
            println!("F2,intersect,{n},{i:.4}");
        }
    }

    println!("\n# F3 — selection interpretation vs relation size: scan vs index");
    println!("figure,mode,rows,mean_ms");
    let sel = parse_formula("[r1: {[a: X, b: 3]}]").unwrap();
    for rows in [100i64, 1_000, 10_000, 100_000] {
        let db = Object::tuple([("r1", flat_relation(rows, 100, "a", "b"))]);
        let scan = bench_ms(|| {
            std::hint::black_box(interpret_with(&sel, &db, MatchPolicy::Strict, &ScanAll));
        });
        let pf = co_engine::index::IndexedPrefilter::new(MatchPolicy::Strict);
        // Build the index once (as the engine would), then measure probes.
        let _ = interpret_with(&sel, &db, MatchPolicy::Strict, &pf);
        let indexed = bench_ms(|| {
            std::hint::black_box(interpret_with(&sel, &db, MatchPolicy::Strict, &pf));
        });
        println!("F3,scan,{rows},{scan:.4}");
        println!("F3,indexed,{rows},{indexed:.4}");
    }

    println!("\n# F4 — join: calculus scan vs calculus indexed vs flat algebra");
    println!("figure,mode,rows,mean_ms,result_rows");
    let join_rule =
        co_parser::parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].")
            .unwrap();
    for rows in [30i64, 100, 300, 1_000] {
        let classes = rows; // key-to-key join: |result| ≈ rows.
        let db = join_db(rows, classes);
        let flat = join_db_flat(rows, classes);
        let out_scan = co_calculus::apply_rule(&join_rule, &db, MatchPolicy::Strict);
        let result_rows = out_scan.dot("r").as_set().map(|s| s.len()).unwrap_or(0);
        let scan = bench_ms(|| {
            std::hint::black_box(co_calculus::apply_rule(
                &join_rule,
                &db,
                MatchPolicy::Strict,
            ));
        });
        let pf = co_engine::index::IndexedPrefilter::new(MatchPolicy::Strict);
        let _ = co_calculus::apply_rule_with(&join_rule, &db, MatchPolicy::Strict, &pf);
        let indexed = bench_ms(|| {
            std::hint::black_box(co_calculus::apply_rule_with(
                &join_rule,
                &db,
                MatchPolicy::Strict,
                &pf,
            ));
        });
        let q = Query::rel("r1").join(Query::rel("r2"), [("b", "c")]);
        let algebra = bench_ms(|| {
            std::hint::black_box(q.eval(&flat).unwrap());
        });
        println!("F4,calculus-scan,{rows},{scan:.4},{result_rows}");
        println!("F4,calculus-indexed,{rows},{indexed:.4},{result_rows}");
        println!("F4,flat-algebra,{rows},{algebra:.4},{result_rows}");
    }

    println!("\n# F5 — transitive closure: naive vs semi-naive (chain & tree)");
    println!("figure,shape,strategy,people,total_ms,iterations");
    type FamilyBuilder = fn(usize) -> Object;
    let shapes: [(&str, FamilyBuilder); 2] =
        [("chain", chain_family), ("tree", |n| tree_family(n, 3))];
    for (shape, db_of) in shapes {
        for n in [20usize, 60, 180] {
            let db = db_of(n);
            for (label, strategy) in [
                ("naive", Strategy::Naive),
                ("semi-naive", Strategy::SemiNaive),
            ] {
                let engine = Engine::new(descendants_program())
                    .strategy(strategy)
                    .indexes(false)
                    .guard(Guard::unlimited());
                let (out, ms) = time_ms(|| engine.run(&db).expect("converges"));
                println!("F5,{shape},{label},{n},{ms:.2},{}", out.stats.iterations);
            }
        }
    }

    println!("\n# F6 — reduction cost: redundant vs antichain element mixes");
    println!("figure,mix,elements,mean_ms");
    for n in [10i64, 100, 1_000] {
        let red = redundant_set(n);
        let anti = antichain_set(2 * n);
        let r = bench_ms(|| {
            std::hint::black_box(Object::set(red.clone()));
        });
        let a = bench_ms(|| {
            std::hint::black_box(Object::set(anti.clone()));
        });
        println!("F6,redundant,{},{r:.4}", 2 * n);
        println!("F6,antichain,{},{a:.4}", 2 * n);
    }

    println!("\n# F7 — parser throughput");
    println!("figure,bytes,mean_ms,mbytes_per_s");
    for bytes in [1_000usize, 10_000, 100_000, 1_000_000] {
        let text = object_text(7, bytes);
        let ms = bench_ms(|| {
            std::hint::black_box(parse_object(&text).expect("parses"));
        });
        println!(
            "F7,{},{ms:.4},{:.2}",
            text.len(),
            text.len() as f64 / 1e6 / (ms / 1e3)
        );
    }

    // Sanity: scan and indexed matching agree on a spot check.
    let db = join_db(100, 10);
    let f = parse_formula("[r1: {[a: X, b: 3]}]").unwrap();
    assert_eq!(
        matches(&f, &db, MatchPolicy::Strict).len(),
        10,
        "spot check failed"
    );
    eprintln!("figures generated; paste into EXPERIMENTS.md");
}

//! Open-loop load generator for the serving layer: hundreds of
//! concurrent client sessions against one shared store, measuring
//! throughput and **coordinated-omission-free** latency percentiles for
//! both serving cores at equal offered load.
//!
//! ## Open-loop arrival
//!
//! The PR 7 loadgen was closed-loop: each session sent its next request
//! only after the previous reply, so whenever the server queued, the
//! generator slowed down *with* it and the recorded percentiles silently
//! dropped exactly the requests that would have hurt — the classic
//! coordinated-omission trap. This generator is open-loop (wrk2-style):
//! every virtual client precomputes a fixed-rate arrival schedule
//! (uniform or Poisson inter-arrivals) and measures each request's
//! latency from its **intended** send time, not its actual one. A
//! request stuck behind a queueing stall is charged the whole stall,
//! whether the stall delayed its send or its reply.
//!
//! Every session is a real `co_server::Client` over TCP against an
//! in-process `Server`. All sessions connect and pin a snapshot before a
//! start barrier drops, so the recorded concurrency is genuine — the
//! binary aborts unless the server confirms every session live at the
//! barrier. The mix: every session runs selective queries against its
//! pinned snapshot; one session in 32 doubles as a writer committing
//! fresh facts, so reads race commits the entire run.
//!
//! ## Server-side percentiles (PR 9)
//!
//! Client-observed latency conflates queueing, handling, and the wire.
//! Each core run now also fetches the server's co-obs registry
//! ([`Client::metrics`]) before and after the measured window and diffs
//! the two snapshots ([`co_obs::Snapshot::minus`]), so the BENCH file
//! carries the *server-side* `server.queue_wait_ns` / `server.handle_ns`
//! p50/p99 next to the client-observed numbers — the decomposition that
//! says whether a fat tail is queue wait or handler time. Client
//! latencies themselves go through the same shared
//! [`co_obs::Histogram`] (log-bucketed, ~3% relative error, exact max)
//! instead of the old hand-rolled sorted vec; recording is
//! [`co_obs::Histogram::record_always`], so the client side keeps
//! measuring even while the run has server metrics gated off.
//!
//! A final **overhead pass** re-runs the pool core with the metric gate
//! off (`co_obs::set_metrics_enabled(false)`) and emits a
//! `metrics_overhead/` row comparing client query p99 with metrics on
//! vs off — the "observability is effectively free" receipt.
//!
//! ## Knobs
//!
//! Defaults in parentheses: `CO_LOADGEN_SESSIONS` (256),
//! `CO_LOADGEN_REQUESTS` (32 schedule slots per session),
//! `CO_LOADGEN_RPS` (4000 — *aggregate* offered load, split evenly
//! across sessions; the default deliberately sits past the single-core
//! saturation knee, where queueing discipline decides the tail),
//! `CO_LOADGEN_DIST` (`poisson`; or `uniform`),
//! `CO_LOADGEN_CORES` (`both`; or `pool` / `threaded`), `CO_LOADGEN_OUT`
//! (`BENCH_pr9.json`). Results append as JSON records shaped like the
//! criterion-shim BENCH files: per core, one `mixed/` summary row
//! (including the server's request ledger for the window), client- and
//! server-side latency rows, and the overhead row, each stamped with
//! `cores` and the `CO_*` environment.
//!
//! Run with `cargo run --release -p co-bench --bin loadgen`.

use co_engine::{Engine, SharedEngine};
use co_obs::HistogramSnapshot;
use co_server::{Client, Server, ServerConfig, ServingCore};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// `"cores": …, "co_env": {…}` — the same machine stamp the criterion
/// shim puts on BENCH records (inlined here: bins cannot use dev-deps).
fn machine_context_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("CO_"))
        .collect();
    knobs.sort();
    let env = knobs
        .iter()
        .map(|(k, v)| {
            format!(
                "\"{k}\": \"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"cores\": {cores}, \"co_env\": {{{env}}}")
}

/// Arrival-schedule shape: fixed interval or Poisson process, at the
/// same mean rate.
#[derive(Clone, Copy, PartialEq)]
enum Dist {
    Uniform,
    Poisson,
}

impl Dist {
    fn from_env() -> Dist {
        match std::env::var("CO_LOADGEN_DIST").as_deref() {
            Ok("uniform") => Dist::Uniform,
            _ => Dist::Poisson,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Poisson => "poisson",
        }
    }
}

/// A uniform sample in `[0, 1)` from the top 53 bits of one word.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The intended send offsets (from the session's start instant) for one
/// virtual client: `slots` arrivals at mean rate `rate` per second.
/// Deterministic per session id. Uniform schedules get a random phase so
/// sessions don't all fire in lockstep; Poisson schedules are memoryless
/// already.
fn schedule(id: usize, slots: usize, rate: f64, dist: Dist) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(0x00be_10af * 31 + id as u64);
    let interval = 1.0 / rate;
    let mut t = match dist {
        Dist::Uniform => unit(&mut rng) * interval,
        Dist::Poisson => 0.0,
    };
    (0..slots)
        .map(|_| {
            t += match dist {
                Dist::Uniform => interval,
                // Exponential inter-arrival: -ln(U)/λ, U in (0, 1].
                Dist::Poisson => -(1.0 - unit(&mut rng)).ln() * interval,
            };
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// One BENCH latency row from a histogram snapshot: the shared co-obs
/// quantile extraction replaces the old per-class sorted vec (exact-rank
/// percentiles become ≤3.2%-error bucket midpoints; `max` stays exact).
fn hist_row(h: &HistogramSnapshot, id: &str, context: &str) -> String {
    format!(
        "  {{\"bench\": \"server_loadgen\", \"id\": \"{id}\", \"requests\": {}, \
         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, {context}}}",
        h.count,
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(1.0),
    )
}

struct SessionResult {
    queries: HistogramSnapshot,
    advances: HistogramSnapshot,
    /// Slots whose actual send lagged their intended time (the open-loop
    /// generator fell behind; their latencies still start at the intent).
    late_sends: usize,
}

/// One simulated client session: pin a snapshot, then fire the arrival
/// schedule, measuring each request from its intended send time.
fn session(
    addr: std::net::SocketAddr,
    id: usize,
    arrivals: Vec<Duration>,
    start: Arc<Barrier>,
) -> SessionResult {
    let mut client = Client::connect(addr).expect("connect");
    let (version, _) = client.snapshot().expect("pin snapshot");
    let is_writer = id.is_multiple_of(32);
    start.wait();
    let t0 = Instant::now();

    // Session-local (unregistered) histograms; `record_always` bypasses
    // the CO_METRICS gate so the overhead pass still measures the client
    // side while the *server's* metrics are off.
    let queries = co_obs::Histogram::new();
    let advances = co_obs::Histogram::new();
    let mut late_sends = 0;
    for (slot, intended) in arrivals.into_iter().enumerate() {
        // Wait for the intended send time — but never *skip* a late slot:
        // lateness is exactly what closed-loop generators omit.
        let now = t0.elapsed();
        if now < intended {
            std::thread::sleep(intended - now);
        } else if now > intended {
            late_sends += 1;
        }
        if is_writer && slot % 4 == 3 {
            let fact = format!("[r1: {{[a: w{id}x{slot}, b: w]}}].");
            client.advance(&fact).expect("advance");
            advances.record_always((t0.elapsed() - intended).as_nanos() as u64);
        } else {
            // Selective point query against the frozen snapshot: one join
            // class out of eight.
            let formula = format!("[r1: {{[a: X, b: {}]}}]", (id + slot) % 8);
            let (v, result) = client.query(&formula).expect("query");
            queries.record_always((t0.elapsed() - intended).as_nanos() as u64);
            assert_eq!(v, version, "pinned reads must stay at their version");
            assert!(
                result.dot("r1").as_set().is_some(),
                "a selective query over the seed relation matches"
            );
        }
    }
    SessionResult {
        queries: queries.snapshot(),
        advances: advances.snapshot(),
        late_sends,
    }
}

struct CoreReport {
    core_name: &'static str,
    concurrent: usize,
    wall: Duration,
    total: usize,
    late_sends: usize,
    queries: HistogramSnapshot,
    advances: HistogramSnapshot,
    /// The server's co-obs registry delta for exactly this run's window
    /// (after-snapshot minus before-snapshot, both fetched over the
    /// wire): queue-wait/handle histograms plus the request ledger.
    server: co_obs::Snapshot,
}

/// Runs the full open-loop experiment against one serving core.
fn run_core(
    core: ServingCore,
    core_name: &'static str,
    sessions: usize,
    requests: usize,
    rate_per_session: f64,
    dist: Dist,
) -> CoreReport {
    // One shared store per run: a two-relation join database, eight join
    // classes. Fresh per core so both cores serve identical state.
    let shared = SharedEngine::new(Engine::new(Default::default()), co_bench::join_db(512, 8));
    let config = ServerConfig {
        max_sessions: sessions + 8,
        core,
        ..ServerConfig::default()
    };
    let handle = Server::bind(shared, config).expect("bind");
    let addr = handle.addr();

    // Server-side baseline: the registry is process-global and
    // cumulative, so the run's contribution is isolated by diffing
    // snapshots taken just around the measured window.
    let metrics_before = Client::connect(addr)
        .expect("metrics client")
        .metrics()
        .expect("metrics baseline");

    // All sessions connect and pin before the barrier drops.
    let start = Arc::new(Barrier::new(sessions + 1));
    let workers: Vec<_> = (0..sessions)
        .map(|id| {
            let start = Arc::clone(&start);
            let arrivals = schedule(id, requests, rate_per_session, dist);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || session(addr, id, arrivals, start))
                .expect("spawn session thread")
        })
        .collect();
    start.wait();
    let concurrent = handle.active_sessions();
    assert!(
        concurrent >= sessions,
        "only {concurrent}/{sessions} sessions live at the barrier"
    );
    eprintln!("loadgen[{core_name}]: {concurrent} concurrent sessions live, measuring…");

    let t0 = Instant::now();
    let mut queries = HistogramSnapshot::default();
    let mut advances = HistogramSnapshot::default();
    let mut late_sends = 0;
    for w in workers {
        let r = w.join().expect("session thread");
        queries.merge(&r.queries);
        advances.merge(&r.advances);
        late_sends += r.late_sends;
    }
    let wall = t0.elapsed();
    let metrics_after = Client::connect(addr)
        .expect("metrics client")
        .metrics()
        .expect("metrics after");
    assert_eq!(handle.shutdown(), 0, "sessions must drain at shutdown");
    let total = (queries.count + advances.count) as usize;
    CoreReport {
        core_name,
        concurrent,
        wall,
        total,
        late_sends,
        queries,
        advances,
        server: metrics_after.minus(&metrics_before),
    }
}

fn main() {
    let sessions = env_usize("CO_LOADGEN_SESSIONS", 256);
    let requests = env_usize("CO_LOADGEN_REQUESTS", 32);
    let offered_rps = env_usize("CO_LOADGEN_RPS", 4000) as f64;
    let dist = Dist::from_env();
    let out = std::env::var("CO_LOADGEN_OUT").unwrap_or_else(|_| "BENCH_pr9.json".to_owned());
    let rate_per_session = offered_rps / sessions as f64;

    let cores: Vec<(ServingCore, &str)> = match std::env::var("CO_LOADGEN_CORES").as_deref() {
        Ok("pool") => vec![(ServingCore::WorkerPool, "pool")],
        Ok("threaded") => vec![(ServingCore::ThreadPerSession, "threaded")],
        _ => vec![
            (ServingCore::ThreadPerSession, "threaded"),
            (ServingCore::WorkerPool, "pool"),
        ],
    };

    let context = machine_context_json();
    let mut rows: Vec<String> = Vec::new();
    let mut reports: Vec<CoreReport> = Vec::new();
    for (core, name) in &cores {
        let r = run_core(*core, name, sessions, requests, rate_per_session, dist);
        let throughput = r.total as f64 / r.wall.as_secs_f64();
        let ledger = |c: &str| r.server.counter(c).unwrap_or(0);
        rows.push(format!(
            "  {{\"bench\": \"server_loadgen\", \"id\": \"mixed/{name}/{sessions}_sessions\", \
             \"core\": \"{name}\", \"sessions\": {sessions}, \
             \"concurrent_sessions\": {}, \"requests\": {}, \
             \"offered_rps\": {offered_rps:.1}, \"dist\": \"{}\", \
             \"late_sends\": {}, \"wall_ms\": {:.1}, \"throughput_rps\": {throughput:.1}, \
             \"server_decoded\": {}, \"server_handled\": {}, \"server_rejected\": {}, \
             \"server_rejected_overloaded\": {}, \"server_backpressure_pauses\": {}, \
             \"server_write_stall_waits\": {}, {context}}}",
            r.concurrent,
            r.total,
            dist.name(),
            r.late_sends,
            r.wall.as_secs_f64() * 1e3,
            ledger("server.requests_decoded"),
            ledger("server.requests_handled"),
            ledger("server.requests_rejected"),
            ledger("server.rejected_overloaded"),
            ledger("server.backpressure_pauses"),
            ledger("server.write_stall_waits"),
        ));
        rows.push(hist_row(
            &r.queries,
            &format!("query_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        rows.push(hist_row(
            &r.advances,
            &format!("advance_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        // The server-side decomposition: where the client-observed tail
        // actually went (waiting in the session queue vs being handled).
        for (metric, label) in [
            ("server.queue_wait_ns", "server_queue_wait"),
            ("server.handle_ns", "server_handle"),
            ("server.write_ns", "server_write"),
        ] {
            let h = r.server.histogram(metric).cloned().unwrap_or_default();
            rows.push(hist_row(
                &h,
                &format!("{label}/{name}/{sessions}_sessions"),
                &context,
            ));
        }
        eprintln!(
            "loadgen[{name}]: {} requests over {} sessions in {:.2}s → {:.0} req/s \
             (offered {offered_rps:.0} {}), query p50 {} µs, p99 {} µs, {} late sends; \
             server queue-wait p99 {} µs, handle p99 {} µs",
            r.total,
            r.concurrent,
            r.wall.as_secs_f64(),
            throughput,
            dist.name(),
            r.queries.quantile(0.50) / 1_000,
            r.queries.quantile(0.99) / 1_000,
            r.late_sends,
            r.server
                .histogram("server.queue_wait_ns")
                .map_or(0, |h| h.quantile(0.99) / 1_000),
            r.server
                .histogram("server.handle_ns")
                .map_or(0, |h| h.quantile(0.99) / 1_000),
        );
        reports.push(r);
    }

    if let [threaded, pool] = &reports[..] {
        let (tp99, pp99) = (threaded.queries.quantile(0.99), pool.queries.quantile(0.99));
        eprintln!(
            "loadgen: open-loop query p99 at equal offered load: {} {} µs vs {} {} µs",
            threaded.core_name,
            tp99 / 1_000,
            pool.core_name,
            pp99 / 1_000,
        );
    }

    // The overhead pass: a dedicated back-to-back pool-core pair —
    // metric gate off, then on — *after* the main runs have warmed the
    // process, so the comparison isolates what the relaxed-atomic
    // recording costs the request path rather than run-order effects.
    // Client histograms use `record_always`, so only the server's
    // instruments go quiet in the off run.
    if reports.iter().any(|r| r.core_name == "pool") {
        let pool_run = || {
            run_core(
                ServingCore::WorkerPool,
                "pool",
                sessions,
                requests,
                rate_per_session,
                dist,
            )
        };
        co_obs::set_metrics_enabled(false);
        let off = pool_run();
        co_obs::set_metrics_enabled(true);
        let on = pool_run();
        let (on_p99, off_p99) = (on.queries.quantile(0.99), off.queries.quantile(0.99));
        let (on_p50, off_p50) = (on.queries.quantile(0.50), off.queries.quantile(0.50));
        let pct = |on_ns: u64, off_ns: u64| {
            if off_ns == 0 {
                0.0
            } else {
                (on_ns as f64 - off_ns as f64) * 100.0 / off_ns as f64
            }
        };
        let (p99_pct, p50_pct) = (pct(on_p99, off_p99), pct(on_p50, off_p50));
        rows.push(format!(
            "  {{\"bench\": \"server_loadgen\", \
             \"id\": \"metrics_overhead/pool/{sessions}_sessions\", \
             \"metrics_on_p50_ns\": {on_p50}, \"metrics_off_p50_ns\": {off_p50}, \
             \"overhead_p50_pct\": {p50_pct:.2}, \
             \"metrics_on_p99_ns\": {on_p99}, \"metrics_off_p99_ns\": {off_p99}, \
             \"overhead_p99_pct\": {p99_pct:.2}, {context}}}"
        ));
        eprintln!(
            "loadgen: metrics-on query p50/p99 {}/{} µs vs metrics-off {}/{} µs \
             ({p50_pct:+.2}% / {p99_pct:+.2}%)",
            on_p50 / 1_000,
            on_p99 / 1_000,
            off_p50 / 1_000,
            off_p99 / 1_000,
        );
    }

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("loadgen: → {out}");
}

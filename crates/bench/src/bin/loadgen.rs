//! Load generator for the serving layer: hundreds of concurrent client
//! sessions against one shared store, measuring throughput and
//! per-request latency percentiles.
//!
//! Every session is a real `co_server::Client` over TCP against an
//! in-process `Server`. All sessions connect and pin a snapshot **before**
//! a start barrier drops, so the recorded concurrency is genuine — the
//! binary aborts unless the server confirms every session live at the
//! barrier. The mix: every session runs selective queries against its
//! pinned snapshot; one session in 32 doubles as a writer committing
//! fresh facts, so reads race commits the entire run.
//!
//! Knobs (defaults in parentheses): `CO_LOADGEN_SESSIONS` (256),
//! `CO_LOADGEN_REQUESTS` (16 per session), `CO_LOADGEN_OUT`
//! (`BENCH_pr7.json`). Results append as JSON records shaped like the
//! criterion-shim BENCH files: one `mixed/` summary row plus per-class
//! latency rows, each stamped with `cores` and the `CO_*` environment.
//!
//! Run with `cargo run --release -p co-bench --bin loadgen`.

use co_engine::{Engine, SharedEngine};
use co_server::{Client, Server, ServerConfig};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// `"cores": …, "co_env": {…}` — the same machine stamp the criterion
/// shim puts on BENCH records (inlined here: bins cannot use dev-deps).
fn machine_context_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("CO_"))
        .collect();
    knobs.sort();
    let env = knobs
        .iter()
        .map(|(k, v)| {
            format!(
                "\"{k}\": \"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"cores\": {cores}, \"co_env\": {{{env}}}")
}

/// Latencies for one request class, in nanoseconds.
#[derive(Default)]
struct Series {
    ns: Vec<u64>,
}

impl Series {
    fn merge(&mut self, other: Series) {
        self.ns.extend(other.ns);
    }

    fn percentile(&self, p: f64) -> u64 {
        debug_assert!(self.ns.windows(2).all(|w| w[0] <= w[1]));
        if self.ns.is_empty() {
            return 0;
        }
        let rank = ((self.ns.len() as f64 - 1.0) * p).round() as usize;
        self.ns[rank.min(self.ns.len() - 1)]
    }

    fn row(&mut self, id: &str, context: &str) -> String {
        self.ns.sort_unstable();
        format!(
            "  {{\"bench\": \"server_loadgen\", \"id\": \"{id}\", \"requests\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, {context}}}",
            self.ns.len(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.ns.last().copied().unwrap_or(0),
        )
    }
}

struct SessionResult {
    queries: Series,
    advances: Series,
}

/// One simulated client session: pin a snapshot, then run the request
/// mix, timing each call.
fn session(
    addr: std::net::SocketAddr,
    id: usize,
    requests: usize,
    start: Arc<Barrier>,
) -> SessionResult {
    let mut client = Client::connect(addr).expect("connect");
    let (version, _) = client.snapshot().expect("pin snapshot");
    let is_writer = id.is_multiple_of(32);
    start.wait();

    let mut queries = Series::default();
    let mut advances = Series::default();
    for step in 0..requests {
        // Selective point query against the frozen snapshot: one join
        // class out of eight.
        let formula = format!("[r1: {{[a: X, b: {}]}}]", (id + step) % 8);
        let t = Instant::now();
        let (v, result) = client.query(&formula).expect("query");
        queries.ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(v, version, "pinned reads must stay at their version");
        assert!(
            result.dot("r1").as_set().is_some(),
            "a selective query over the seed relation matches"
        );
        if is_writer && step % 4 == 3 {
            let fact = format!("[r1: {{[a: w{id}x{step}, b: w]}}].");
            let t = Instant::now();
            client.advance(&fact).expect("advance");
            advances.ns.push(t.elapsed().as_nanos() as u64);
        }
    }
    SessionResult { queries, advances }
}

fn main() {
    let sessions = env_usize("CO_LOADGEN_SESSIONS", 256);
    let requests = env_usize("CO_LOADGEN_REQUESTS", 16);
    let out = std::env::var("CO_LOADGEN_OUT").unwrap_or_else(|_| "BENCH_pr7.json".to_owned());

    // One shared store: a two-relation join database, eight join classes.
    let shared = SharedEngine::new(Engine::new(Default::default()), co_bench::join_db(512, 8));
    let config = ServerConfig {
        max_sessions: sessions + 8,
        ..ServerConfig::default()
    };
    let handle = Server::bind(shared, config).expect("bind");
    let addr = handle.addr();

    // All sessions connect and pin before the barrier drops.
    let start = Arc::new(Barrier::new(sessions + 1));
    let workers: Vec<_> = (0..sessions)
        .map(|id| {
            let start = Arc::clone(&start);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || session(addr, id, requests, start))
                .expect("spawn session thread")
        })
        .collect();
    start.wait();
    let concurrent = handle.active_sessions();
    assert!(
        concurrent >= sessions,
        "only {concurrent}/{sessions} sessions live at the barrier"
    );
    eprintln!("loadgen: {concurrent} concurrent sessions live, measuring…");

    let t0 = Instant::now();
    let mut queries = Series::default();
    let mut advances = Series::default();
    for w in workers {
        let r = w.join().expect("session thread");
        queries.merge(r.queries);
        advances.merge(r.advances);
    }
    let wall = t0.elapsed();
    handle.shutdown();

    let total = queries.ns.len() + advances.ns.len();
    let throughput = total as f64 / wall.as_secs_f64();
    let context = machine_context_json();
    let json = format!(
        "[\n  {{\"bench\": \"server_loadgen\", \"id\": \"mixed/{sessions}_sessions\", \
         \"sessions\": {sessions}, \"concurrent_sessions\": {concurrent}, \
         \"requests\": {total}, \"wall_ms\": {:.1}, \"throughput_rps\": {:.1}, {context}}},\n\
         {},\n{}\n]\n",
        wall.as_secs_f64() * 1e3,
        throughput,
        queries.row(&format!("query_latency/{sessions}_sessions"), &context),
        advances.row(&format!("advance_latency/{sessions}_sessions"), &context),
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!(
        "loadgen: {total} requests over {concurrent} sessions in {:.2}s → {:.0} req/s \
         (p50 query {} µs, p99 {} µs) → {out}",
        wall.as_secs_f64(),
        throughput,
        queries.percentile(0.50) / 1_000,
        queries.percentile(0.99) / 1_000,
    );
}

//! Open-loop load generator for the serving layer: hundreds of
//! concurrent client sessions against one shared store, measuring
//! throughput and **coordinated-omission-free** latency percentiles for
//! both serving cores at equal offered load.
//!
//! ## Open-loop arrival
//!
//! The PR 7 loadgen was closed-loop: each session sent its next request
//! only after the previous reply, so whenever the server queued, the
//! generator slowed down *with* it and the recorded percentiles silently
//! dropped exactly the requests that would have hurt — the classic
//! coordinated-omission trap. This generator is open-loop (wrk2-style):
//! every virtual client precomputes a fixed-rate arrival schedule
//! (uniform or Poisson inter-arrivals) and measures each request's
//! latency from its **intended** send time, not its actual one. A
//! request stuck behind a queueing stall is charged the whole stall,
//! whether the stall delayed its send or its reply.
//!
//! Every session is a real `co_server::Client` over TCP against an
//! in-process `Server`. All sessions connect and pin a snapshot before a
//! start barrier drops, so the recorded concurrency is genuine — the
//! binary aborts unless the server confirms every session live at the
//! barrier. The mix: every session runs selective queries against its
//! pinned snapshot; one session in 32 doubles as a writer committing
//! fresh facts, so reads race commits the entire run.
//!
//! ## Knobs
//!
//! Defaults in parentheses: `CO_LOADGEN_SESSIONS` (256),
//! `CO_LOADGEN_REQUESTS` (32 schedule slots per session),
//! `CO_LOADGEN_RPS` (4000 — *aggregate* offered load, split evenly
//! across sessions; the default deliberately sits past the single-core
//! saturation knee, where queueing discipline decides the tail),
//! `CO_LOADGEN_DIST` (`poisson`; or `uniform`),
//! `CO_LOADGEN_CORES` (`both`; or `pool` / `threaded`), `CO_LOADGEN_OUT`
//! (`BENCH_pr8.json`). Results append as JSON records shaped like the
//! criterion-shim BENCH files: per core, one `mixed/` summary row plus
//! per-class latency rows, each stamped with `cores` and the `CO_*`
//! environment.
//!
//! Run with `cargo run --release -p co-bench --bin loadgen`.

use co_engine::{Engine, SharedEngine};
use co_server::{Client, Server, ServerConfig, ServingCore};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// `"cores": …, "co_env": {…}` — the same machine stamp the criterion
/// shim puts on BENCH records (inlined here: bins cannot use dev-deps).
fn machine_context_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("CO_"))
        .collect();
    knobs.sort();
    let env = knobs
        .iter()
        .map(|(k, v)| {
            format!(
                "\"{k}\": \"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"cores\": {cores}, \"co_env\": {{{env}}}")
}

/// Arrival-schedule shape: fixed interval or Poisson process, at the
/// same mean rate.
#[derive(Clone, Copy, PartialEq)]
enum Dist {
    Uniform,
    Poisson,
}

impl Dist {
    fn from_env() -> Dist {
        match std::env::var("CO_LOADGEN_DIST").as_deref() {
            Ok("uniform") => Dist::Uniform,
            _ => Dist::Poisson,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Poisson => "poisson",
        }
    }
}

/// A uniform sample in `[0, 1)` from the top 53 bits of one word.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The intended send offsets (from the session's start instant) for one
/// virtual client: `slots` arrivals at mean rate `rate` per second.
/// Deterministic per session id. Uniform schedules get a random phase so
/// sessions don't all fire in lockstep; Poisson schedules are memoryless
/// already.
fn schedule(id: usize, slots: usize, rate: f64, dist: Dist) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(0x00be_10af * 31 + id as u64);
    let interval = 1.0 / rate;
    let mut t = match dist {
        Dist::Uniform => unit(&mut rng) * interval,
        Dist::Poisson => 0.0,
    };
    (0..slots)
        .map(|_| {
            t += match dist {
                Dist::Uniform => interval,
                // Exponential inter-arrival: -ln(U)/λ, U in (0, 1].
                Dist::Poisson => -(1.0 - unit(&mut rng)).ln() * interval,
            };
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Latencies for one request class, in nanoseconds.
#[derive(Default)]
struct Series {
    ns: Vec<u64>,
}

impl Series {
    fn merge(&mut self, other: Series) {
        self.ns.extend(other.ns);
    }

    fn percentile(&self, p: f64) -> u64 {
        debug_assert!(self.ns.windows(2).all(|w| w[0] <= w[1]));
        if self.ns.is_empty() {
            return 0;
        }
        let rank = ((self.ns.len() as f64 - 1.0) * p).round() as usize;
        self.ns[rank.min(self.ns.len() - 1)]
    }

    fn row(&mut self, id: &str, context: &str) -> String {
        self.ns.sort_unstable();
        format!(
            "  {{\"bench\": \"server_loadgen\", \"id\": \"{id}\", \"requests\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, {context}}}",
            self.ns.len(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.ns.last().copied().unwrap_or(0),
        )
    }
}

struct SessionResult {
    queries: Series,
    advances: Series,
    /// Slots whose actual send lagged their intended time (the open-loop
    /// generator fell behind; their latencies still start at the intent).
    late_sends: usize,
}

/// One simulated client session: pin a snapshot, then fire the arrival
/// schedule, measuring each request from its intended send time.
fn session(
    addr: std::net::SocketAddr,
    id: usize,
    arrivals: Vec<Duration>,
    start: Arc<Barrier>,
) -> SessionResult {
    let mut client = Client::connect(addr).expect("connect");
    let (version, _) = client.snapshot().expect("pin snapshot");
    let is_writer = id.is_multiple_of(32);
    start.wait();
    let t0 = Instant::now();

    let mut queries = Series::default();
    let mut advances = Series::default();
    let mut late_sends = 0;
    for (slot, intended) in arrivals.into_iter().enumerate() {
        // Wait for the intended send time — but never *skip* a late slot:
        // lateness is exactly what closed-loop generators omit.
        let now = t0.elapsed();
        if now < intended {
            std::thread::sleep(intended - now);
        } else if now > intended {
            late_sends += 1;
        }
        if is_writer && slot % 4 == 3 {
            let fact = format!("[r1: {{[a: w{id}x{slot}, b: w]}}].");
            client.advance(&fact).expect("advance");
            advances
                .ns
                .push((t0.elapsed() - intended).as_nanos() as u64);
        } else {
            // Selective point query against the frozen snapshot: one join
            // class out of eight.
            let formula = format!("[r1: {{[a: X, b: {}]}}]", (id + slot) % 8);
            let (v, result) = client.query(&formula).expect("query");
            queries.ns.push((t0.elapsed() - intended).as_nanos() as u64);
            assert_eq!(v, version, "pinned reads must stay at their version");
            assert!(
                result.dot("r1").as_set().is_some(),
                "a selective query over the seed relation matches"
            );
        }
    }
    SessionResult {
        queries,
        advances,
        late_sends,
    }
}

struct CoreReport {
    core_name: &'static str,
    concurrent: usize,
    wall: Duration,
    total: usize,
    late_sends: usize,
    queries: Series,
    advances: Series,
}

/// Runs the full open-loop experiment against one serving core.
fn run_core(
    core: ServingCore,
    core_name: &'static str,
    sessions: usize,
    requests: usize,
    rate_per_session: f64,
    dist: Dist,
) -> CoreReport {
    // One shared store per run: a two-relation join database, eight join
    // classes. Fresh per core so both cores serve identical state.
    let shared = SharedEngine::new(Engine::new(Default::default()), co_bench::join_db(512, 8));
    let config = ServerConfig {
        max_sessions: sessions + 8,
        core,
        ..ServerConfig::default()
    };
    let handle = Server::bind(shared, config).expect("bind");
    let addr = handle.addr();

    // All sessions connect and pin before the barrier drops.
    let start = Arc::new(Barrier::new(sessions + 1));
    let workers: Vec<_> = (0..sessions)
        .map(|id| {
            let start = Arc::clone(&start);
            let arrivals = schedule(id, requests, rate_per_session, dist);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || session(addr, id, arrivals, start))
                .expect("spawn session thread")
        })
        .collect();
    start.wait();
    let concurrent = handle.active_sessions();
    assert!(
        concurrent >= sessions,
        "only {concurrent}/{sessions} sessions live at the barrier"
    );
    eprintln!("loadgen[{core_name}]: {concurrent} concurrent sessions live, measuring…");

    let t0 = Instant::now();
    let mut queries = Series::default();
    let mut advances = Series::default();
    let mut late_sends = 0;
    for w in workers {
        let r = w.join().expect("session thread");
        queries.merge(r.queries);
        advances.merge(r.advances);
        late_sends += r.late_sends;
    }
    let wall = t0.elapsed();
    assert_eq!(handle.shutdown(), 0, "sessions must drain at shutdown");
    let total = queries.ns.len() + advances.ns.len();
    CoreReport {
        core_name,
        concurrent,
        wall,
        total,
        late_sends,
        queries,
        advances,
    }
}

fn main() {
    let sessions = env_usize("CO_LOADGEN_SESSIONS", 256);
    let requests = env_usize("CO_LOADGEN_REQUESTS", 32);
    let offered_rps = env_usize("CO_LOADGEN_RPS", 4000) as f64;
    let dist = Dist::from_env();
    let out = std::env::var("CO_LOADGEN_OUT").unwrap_or_else(|_| "BENCH_pr8.json".to_owned());
    let rate_per_session = offered_rps / sessions as f64;

    let cores: Vec<(ServingCore, &str)> = match std::env::var("CO_LOADGEN_CORES").as_deref() {
        Ok("pool") => vec![(ServingCore::WorkerPool, "pool")],
        Ok("threaded") => vec![(ServingCore::ThreadPerSession, "threaded")],
        _ => vec![
            (ServingCore::ThreadPerSession, "threaded"),
            (ServingCore::WorkerPool, "pool"),
        ],
    };

    let context = machine_context_json();
    let mut rows: Vec<String> = Vec::new();
    let mut reports: Vec<CoreReport> = Vec::new();
    for (core, name) in cores {
        let mut r = run_core(core, name, sessions, requests, rate_per_session, dist);
        let throughput = r.total as f64 / r.wall.as_secs_f64();
        rows.push(format!(
            "  {{\"bench\": \"server_loadgen\", \"id\": \"mixed/{name}/{sessions}_sessions\", \
             \"core\": \"{name}\", \"sessions\": {sessions}, \
             \"concurrent_sessions\": {}, \"requests\": {}, \
             \"offered_rps\": {offered_rps:.1}, \"dist\": \"{}\", \
             \"late_sends\": {}, \"wall_ms\": {:.1}, \"throughput_rps\": {throughput:.1}, \
             {context}}}",
            r.concurrent,
            r.total,
            dist.name(),
            r.late_sends,
            r.wall.as_secs_f64() * 1e3,
        ));
        rows.push(r.queries.row(
            &format!("query_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        rows.push(r.advances.row(
            &format!("advance_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        eprintln!(
            "loadgen[{name}]: {} requests over {} sessions in {:.2}s → {:.0} req/s \
             (offered {offered_rps:.0} {}), query p50 {} µs, p99 {} µs, {} late sends",
            r.total,
            r.concurrent,
            r.wall.as_secs_f64(),
            throughput,
            dist.name(),
            r.queries.percentile(0.50) / 1_000,
            r.queries.percentile(0.99) / 1_000,
            r.late_sends,
        );
        reports.push(r);
    }

    if let [threaded, pool] = &reports[..] {
        let (tp99, pp99) = (
            threaded.queries.percentile(0.99),
            pool.queries.percentile(0.99),
        );
        eprintln!(
            "loadgen: open-loop query p99 at equal offered load: {} {} µs vs {} {} µs",
            threaded.core_name,
            tp99 / 1_000,
            pool.core_name,
            pp99 / 1_000,
        );
    }

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("loadgen: → {out}");
}

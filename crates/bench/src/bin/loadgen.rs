//! Open-loop load generator for the serving layer: hundreds of
//! concurrent client sessions against one shared store, measuring
//! throughput and **coordinated-omission-free** latency percentiles for
//! both serving cores at equal offered load.
//!
//! ## Open-loop arrival
//!
//! The PR 7 loadgen was closed-loop: each session sent its next request
//! only after the previous reply, so whenever the server queued, the
//! generator slowed down *with* it and the recorded percentiles silently
//! dropped exactly the requests that would have hurt — the classic
//! coordinated-omission trap. This generator is open-loop (wrk2-style):
//! every virtual client precomputes a fixed-rate arrival schedule
//! (uniform or Poisson inter-arrivals) and measures each request's
//! latency from its **intended** send time, not its actual one. A
//! request stuck behind a queueing stall is charged the whole stall,
//! whether the stall delayed its send or its reply.
//!
//! Every session is a real `co_server::Client` over TCP against an
//! in-process `Server`. All sessions connect and pin a snapshot before a
//! start barrier drops, so the recorded concurrency is genuine — the
//! binary aborts unless the server confirms every session live at the
//! barrier. The mix: every session runs selective queries against its
//! pinned snapshot; one session in 32 doubles as a writer committing
//! fresh facts, so reads race commits the entire run.
//!
//! ## Server-side percentiles (PR 9)
//!
//! Client-observed latency conflates queueing, handling, and the wire.
//! Each core run now also fetches the server's co-obs registry
//! ([`Client::metrics`]) before and after the measured window and diffs
//! the two snapshots ([`co_obs::Snapshot::minus`]), so the BENCH file
//! carries the *server-side* `server.queue_wait_ns` / `server.handle_ns`
//! p50/p99 next to the client-observed numbers — the decomposition that
//! says whether a fat tail is queue wait or handler time. Client
//! latencies themselves go through the same shared
//! [`co_obs::Histogram`] (log-bucketed, ~3% relative error, exact max)
//! instead of the old hand-rolled sorted vec; recording is
//! [`co_obs::Histogram::record_always`], so the client side keeps
//! measuring even while the run has server metrics gated off.
//!
//! A final **overhead pass** re-runs the pool core in interleaved
//! metrics-off/metrics-on pairs (3 each, medians compared) and emits a
//! `metrics_overhead/` row with the p50/p99 deltas *and the run-to-run
//! noise floor* — the "observability is effectively free" receipt,
//! honest about when a delta is smaller than the noise it swims in.
//!
//! ## GC churn experiment (PR 10)
//!
//! `CO_LOADGEN_GC=1` appends a three-phase pool-core experiment for the
//! incremental collector: `gc_off` (trigger disarmed — the latency
//! baseline), `gc_inline` (high-water armed, unbudgeted stop-the-world
//! sweeps on the request path — the pause-spike demonstration), and
//! `gc_collector` (collector thread + default pause budget — the fix).
//! `gc_off` and `gc_collector` alternate for three rounds and their rows
//! report the median query percentiles (with pause/cycle windows merged
//! across rounds); `gc_inline` runs once — its receipt is the pause
//! spike, not a ratio. Each phase's row carries the client query
//! percentiles next to the server-side `store.gc_pause_ns` /
//! `store.gc_cycle_ns` window so the BENCH file shows sweep pauses
//! shrinking to the budget while query p99 recovers toward the no-GC
//! baseline.
//!
//! ## Knobs
//!
//! Defaults in parentheses: `CO_LOADGEN_SESSIONS` (256),
//! `CO_LOADGEN_REQUESTS` (32 schedule slots per session),
//! `CO_LOADGEN_RPS` (4000 — *aggregate* offered load, split evenly
//! across sessions; the default deliberately sits past the single-core
//! saturation knee, where queueing discipline decides the tail),
//! `CO_LOADGEN_DIST` (`poisson`; or `uniform`),
//! `CO_LOADGEN_CORES` (`both`; or `pool` / `threaded`), `CO_LOADGEN_GC`
//! (unset; `1` appends the GC churn phases), `CO_LOADGEN_GC_SESSIONS`
//! (min(sessions, 64) — the GC phases' lighter session count; see the
//! preemption note in the experiment block), `CO_LOADGEN_OUT`
//! (`BENCH_pr9.json`). The collector phase honours
//! `CO_GC_PAUSE_BUDGET_US` (default 2000). Results append as JSON records shaped like the
//! criterion-shim BENCH files: per core, one `mixed/` summary row
//! (including the server's request ledger for the window), client- and
//! server-side latency rows, and the overhead row, each stamped with
//! `cores` and the `CO_*` environment.
//!
//! Run with `cargo run --release -p co-bench --bin loadgen`.

use co_engine::{Engine, SharedEngine};
use co_obs::HistogramSnapshot;
use co_server::{Client, Server, ServerConfig, ServingCore};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// `"cores": …, "co_env": {…}` — the same machine stamp the criterion
/// shim puts on BENCH records (inlined here: bins cannot use dev-deps).
fn machine_context_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("CO_"))
        .collect();
    knobs.sort();
    let env = knobs
        .iter()
        .map(|(k, v)| {
            format!(
                "\"{k}\": \"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"cores\": {cores}, \"co_env\": {{{env}}}")
}

/// Arrival-schedule shape: fixed interval or Poisson process, at the
/// same mean rate.
#[derive(Clone, Copy, PartialEq)]
enum Dist {
    Uniform,
    Poisson,
}

impl Dist {
    fn from_env() -> Dist {
        match std::env::var("CO_LOADGEN_DIST").as_deref() {
            Ok("uniform") => Dist::Uniform,
            _ => Dist::Poisson,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Poisson => "poisson",
        }
    }
}

/// A uniform sample in `[0, 1)` from the top 53 bits of one word.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The intended send offsets (from the session's start instant) for one
/// virtual client: `slots` arrivals at mean rate `rate` per second.
/// Deterministic per session id. Uniform schedules get a random phase so
/// sessions don't all fire in lockstep; Poisson schedules are memoryless
/// already.
fn schedule(id: usize, slots: usize, rate: f64, dist: Dist) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(0x00be_10af * 31 + id as u64);
    let interval = 1.0 / rate;
    let mut t = match dist {
        Dist::Uniform => unit(&mut rng) * interval,
        Dist::Poisson => 0.0,
    };
    (0..slots)
        .map(|_| {
            t += match dist {
                Dist::Uniform => interval,
                // Exponential inter-arrival: -ln(U)/λ, U in (0, 1].
                Dist::Poisson => -(1.0 - unit(&mut rng)).ln() * interval,
            };
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// One BENCH latency row from a histogram snapshot: the shared co-obs
/// quantile extraction replaces the old per-class sorted vec (exact-rank
/// percentiles become ≤3.2%-error bucket midpoints; `max` stays exact).
fn hist_row(h: &HistogramSnapshot, id: &str, context: &str) -> String {
    format!(
        "  {{\"bench\": \"server_loadgen\", \"id\": \"{id}\", \"requests\": {}, \
         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, {context}}}",
        h.count,
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(1.0),
    )
}

struct SessionResult {
    queries: HistogramSnapshot,
    advances: HistogramSnapshot,
    /// Slots whose actual send lagged their intended time (the open-loop
    /// generator fell behind; their latencies still start at the intent).
    late_sends: usize,
}

/// One simulated client session: pin a snapshot, then fire the arrival
/// schedule, measuring each request from its intended send time.
fn session(
    addr: std::net::SocketAddr,
    id: usize,
    arrivals: Vec<Duration>,
    start: Arc<Barrier>,
) -> SessionResult {
    let mut client = Client::connect(addr).expect("connect");
    let (version, _) = client.snapshot().expect("pin snapshot");
    let is_writer = id.is_multiple_of(32);
    start.wait();
    let t0 = Instant::now();

    // Session-local (unregistered) histograms; `record_always` bypasses
    // the CO_METRICS gate so the overhead pass still measures the client
    // side while the *server's* metrics are off.
    let queries = co_obs::Histogram::new();
    let advances = co_obs::Histogram::new();
    let mut late_sends = 0;
    for (slot, intended) in arrivals.into_iter().enumerate() {
        // Wait for the intended send time — but never *skip* a late slot:
        // lateness is exactly what closed-loop generators omit.
        let now = t0.elapsed();
        if now < intended {
            std::thread::sleep(intended - now);
        } else if now > intended {
            late_sends += 1;
        }
        if is_writer && slot % 4 == 3 {
            let fact = format!("[r1: {{[a: w{id}x{slot}, b: w]}}].");
            client.advance(&fact).expect("advance");
            advances.record_always((t0.elapsed() - intended).as_nanos() as u64);
        } else {
            // Selective point query against the frozen snapshot: one join
            // class out of eight.
            let formula = format!("[r1: {{[a: X, b: {}]}}]", (id + slot) % 8);
            let (v, result) = client.query(&formula).expect("query");
            queries.record_always((t0.elapsed() - intended).as_nanos() as u64);
            assert_eq!(v, version, "pinned reads must stay at their version");
            assert!(
                result.dot("r1").as_set().is_some(),
                "a selective query over the seed relation matches"
            );
        }
    }
    SessionResult {
        queries: queries.snapshot(),
        advances: advances.snapshot(),
        late_sends,
    }
}

struct CoreReport {
    core_name: &'static str,
    concurrent: usize,
    wall: Duration,
    total: usize,
    late_sends: usize,
    queries: HistogramSnapshot,
    advances: HistogramSnapshot,
    /// The server's co-obs registry delta for exactly this run's window
    /// (after-snapshot minus before-snapshot, both fetched over the
    /// wire): queue-wait/handle histograms plus the request ledger.
    server: co_obs::Snapshot,
}

/// Runs the full open-loop experiment against one serving core.
fn run_core(
    core: ServingCore,
    core_name: &'static str,
    sessions: usize,
    requests: usize,
    rate_per_session: f64,
    dist: Dist,
) -> CoreReport {
    // One shared store per run: a two-relation join database, eight join
    // classes. Fresh per core so both cores serve identical state.
    let shared = SharedEngine::new(Engine::new(Default::default()), co_bench::join_db(512, 8));
    let config = ServerConfig {
        max_sessions: sessions + 8,
        core,
        ..ServerConfig::default()
    };
    let handle = Server::bind(shared, config).expect("bind");
    let addr = handle.addr();

    // Server-side baseline: the registry is process-global and
    // cumulative, so the run's contribution is isolated by diffing
    // snapshots taken just around the measured window.
    let metrics_before = Client::connect(addr)
        .expect("metrics client")
        .metrics()
        .expect("metrics baseline");

    // All sessions connect and pin before the barrier drops.
    let start = Arc::new(Barrier::new(sessions + 1));
    let workers: Vec<_> = (0..sessions)
        .map(|id| {
            let start = Arc::clone(&start);
            let arrivals = schedule(id, requests, rate_per_session, dist);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || session(addr, id, arrivals, start))
                .expect("spawn session thread")
        })
        .collect();
    start.wait();
    let concurrent = handle.active_sessions();
    assert!(
        concurrent >= sessions,
        "only {concurrent}/{sessions} sessions live at the barrier"
    );
    eprintln!("loadgen[{core_name}]: {concurrent} concurrent sessions live, measuring…");

    let t0 = Instant::now();
    let mut queries = HistogramSnapshot::default();
    let mut advances = HistogramSnapshot::default();
    let mut late_sends = 0;
    for w in workers {
        let r = w.join().expect("session thread");
        queries.merge(&r.queries);
        advances.merge(&r.advances);
        late_sends += r.late_sends;
    }
    let wall = t0.elapsed();
    let metrics_after = Client::connect(addr)
        .expect("metrics client")
        .metrics()
        .expect("metrics after");
    assert_eq!(handle.shutdown(), 0, "sessions must drain at shutdown");
    let total = (queries.count + advances.count) as usize;
    CoreReport {
        core_name,
        concurrent,
        wall,
        total,
        late_sends,
        queries,
        advances,
        server: metrics_after.minus(&metrics_before),
    }
}

fn main() {
    let sessions = env_usize("CO_LOADGEN_SESSIONS", 256);
    let requests = env_usize("CO_LOADGEN_REQUESTS", 32);
    let offered_rps = env_usize("CO_LOADGEN_RPS", 4000) as f64;
    let dist = Dist::from_env();
    let out = std::env::var("CO_LOADGEN_OUT").unwrap_or_else(|_| "BENCH_pr9.json".to_owned());
    let rate_per_session = offered_rps / sessions as f64;

    let cores: Vec<(ServingCore, &str)> = match std::env::var("CO_LOADGEN_CORES").as_deref() {
        Ok("pool") => vec![(ServingCore::WorkerPool, "pool")],
        Ok("threaded") => vec![(ServingCore::ThreadPerSession, "threaded")],
        _ => vec![
            (ServingCore::ThreadPerSession, "threaded"),
            (ServingCore::WorkerPool, "pool"),
        ],
    };

    let context = machine_context_json();
    let mut rows: Vec<String> = Vec::new();
    let mut reports: Vec<CoreReport> = Vec::new();
    for (core, name) in &cores {
        let r = run_core(*core, name, sessions, requests, rate_per_session, dist);
        let throughput = r.total as f64 / r.wall.as_secs_f64();
        let ledger = |c: &str| r.server.counter(c).unwrap_or(0);
        rows.push(format!(
            "  {{\"bench\": \"server_loadgen\", \"id\": \"mixed/{name}/{sessions}_sessions\", \
             \"core\": \"{name}\", \"sessions\": {sessions}, \
             \"concurrent_sessions\": {}, \"requests\": {}, \
             \"offered_rps\": {offered_rps:.1}, \"dist\": \"{}\", \
             \"late_sends\": {}, \"wall_ms\": {:.1}, \"throughput_rps\": {throughput:.1}, \
             \"server_decoded\": {}, \"server_handled\": {}, \"server_rejected\": {}, \
             \"server_rejected_overloaded\": {}, \"server_backpressure_pauses\": {}, \
             \"server_write_stall_waits\": {}, {context}}}",
            r.concurrent,
            r.total,
            dist.name(),
            r.late_sends,
            r.wall.as_secs_f64() * 1e3,
            ledger("server.requests_decoded"),
            ledger("server.requests_handled"),
            ledger("server.requests_rejected"),
            ledger("server.rejected_overloaded"),
            ledger("server.backpressure_pauses"),
            ledger("server.write_stall_waits"),
        ));
        rows.push(hist_row(
            &r.queries,
            &format!("query_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        rows.push(hist_row(
            &r.advances,
            &format!("advance_latency/{name}/{sessions}_sessions"),
            &context,
        ));
        // The server-side decomposition: where the client-observed tail
        // actually went (waiting in the session queue vs being handled).
        for (metric, label) in [
            ("server.queue_wait_ns", "server_queue_wait"),
            ("server.handle_ns", "server_handle"),
            ("server.write_ns", "server_write"),
        ] {
            let h = r.server.histogram(metric).cloned().unwrap_or_default();
            rows.push(hist_row(
                &h,
                &format!("{label}/{name}/{sessions}_sessions"),
                &context,
            ));
        }
        eprintln!(
            "loadgen[{name}]: {} requests over {} sessions in {:.2}s → {:.0} req/s \
             (offered {offered_rps:.0} {}), query p50 {} µs, p99 {} µs, {} late sends; \
             server queue-wait p99 {} µs, handle p99 {} µs",
            r.total,
            r.concurrent,
            r.wall.as_secs_f64(),
            throughput,
            dist.name(),
            r.queries.quantile(0.50) / 1_000,
            r.queries.quantile(0.99) / 1_000,
            r.late_sends,
            r.server
                .histogram("server.queue_wait_ns")
                .map_or(0, |h| h.quantile(0.99) / 1_000),
            r.server
                .histogram("server.handle_ns")
                .map_or(0, |h| h.quantile(0.99) / 1_000),
        );
        reports.push(r);
    }

    if let [threaded, pool] = &reports[..] {
        let (tp99, pp99) = (threaded.queries.quantile(0.99), pool.queries.quantile(0.99));
        eprintln!(
            "loadgen: open-loop query p99 at equal offered load: {} {} µs vs {} {} µs",
            threaded.core_name,
            tp99 / 1_000,
            pool.core_name,
            pp99 / 1_000,
        );
    }

    // The overhead pass (reworked in PR 10): the old version ran one
    // off run then one on run, so whatever drifted between them — page
    // cache, allocator state, a GC cycle — landed entirely on one side
    // and the row once reported a −56.8% "overhead" at p99, which is
    // run-to-run tail noise, not a real speedup from enabling metrics.
    // Now off/on runs alternate in back-to-back pairs (drift cancels),
    // each side's quantile is the median of its 3 runs (one-off outliers
    // drop), and the row carries a **noise floor**: the relative spread
    // of same-mode runs at the same quantile. An overhead smaller than
    // the floor is indistinguishable from noise and is flagged as such.
    // Client histograms use `record_always`, so only the server's
    // instruments go quiet in the off runs.
    if reports.iter().any(|r| r.core_name == "pool") {
        let pool_run = || {
            run_core(
                ServingCore::WorkerPool,
                "pool",
                sessions,
                requests,
                rate_per_session,
                dist,
            )
        };
        const PAIRS: usize = 3;
        let (mut offs, mut ons) = (Vec::new(), Vec::new());
        for _ in 0..PAIRS {
            co_obs::set_metrics_enabled(false);
            offs.push(pool_run().queries);
            co_obs::set_metrics_enabled(true);
            ons.push(pool_run().queries);
        }
        let median = |mut xs: Vec<u64>| {
            xs.sort_unstable();
            xs[xs.len() / 2]
        };
        // Relative spread (max−min over median) of one mode's samples at
        // one quantile: how much the *same* configuration moves between
        // runs. The floor for a quantile is the worse of the two modes.
        let spread_pct = |xs: &[u64]| {
            let (lo, hi) = (*xs.iter().min().unwrap(), *xs.iter().max().unwrap());
            let med = median(xs.to_vec());
            if med == 0 {
                0.0
            } else {
                (hi - lo) as f64 * 100.0 / med as f64
            }
        };
        let pct = |on_ns: u64, off_ns: u64| {
            if off_ns == 0 {
                0.0
            } else {
                (on_ns as f64 - off_ns as f64) * 100.0 / off_ns as f64
            }
        };
        let mut fields = Vec::new();
        let mut console = Vec::new();
        for (q, label) in [(0.50, "p50"), (0.99, "p99")] {
            let off_runs: Vec<u64> = offs.iter().map(|h| h.quantile(q)).collect();
            let on_runs: Vec<u64> = ons.iter().map(|h| h.quantile(q)).collect();
            let (off_med, on_med) = (median(off_runs.clone()), median(on_runs.clone()));
            let overhead = pct(on_med, off_med);
            let floor = spread_pct(&off_runs).max(spread_pct(&on_runs));
            let significant = overhead.abs() > floor;
            fields.push(format!(
                "\"metrics_on_{label}_ns\": {on_med}, \"metrics_off_{label}_ns\": {off_med}, \
                 \"overhead_{label}_pct\": {overhead:.2}, \
                 \"noise_floor_{label}_pct\": {floor:.2}, \
                 \"significant_{label}\": {significant}"
            ));
            console.push(format!(
                "{label} {}/{} µs {overhead:+.2}% (floor {floor:.2}%{})",
                on_med / 1_000,
                off_med / 1_000,
                if significant { "" } else { ", within noise" },
            ));
        }
        rows.push(format!(
            "  {{\"bench\": \"server_loadgen\", \
             \"id\": \"metrics_overhead/pool/{sessions}_sessions\", \
             \"pairs\": {PAIRS}, {}, {context}}}",
            fields.join(", ")
        ));
        eprintln!(
            "loadgen: metrics on/off query medians of {PAIRS} interleaved pairs: {}",
            console.join("; ")
        );
    }

    // The GC churn experiment: same open-loop workload, three collector
    // configurations. The serving mix alone is almost perfectly
    // hash-consed (repeat queries are intern *hits*), so GC pressure
    // comes from where it does in production: a background ingest that
    // interns fresh transient objects into the shared store while the
    // sessions measure. Every phase runs the identical churn; only the
    // collector configuration differs. The store and its knobs are
    // process-global, so the in-process server's sweeps are driven
    // directly from here; each phase starts from a garbage-free store so
    // sweep work reflects that phase's own churn, and the `run_core`
    // registry diff scopes the `store.gc_*` instruments to exactly the
    // measured window.
    if std::env::var("CO_LOADGEN_GC").as_deref() == Ok("1") {
        use co_object::store;
        co_obs::set_metrics_enabled(true);
        // Pause samples are lock-held *wall* time, so on an oversubscribed
        // box they include every preemption the sweeping thread eats while
        // holding a shard lock — with hundreds of runnable session threads
        // per core that scheduler tax, not sweep work, dominates. The GC
        // phases therefore run a lighter session count by default
        // (`CO_LOADGEN_GC_SESSIONS`), keeping the same per-session rate.
        let gc_sessions = env_usize("CO_LOADGEN_GC_SESSIONS", sessions.min(64));
        let budget_us = std::env::var("CO_GC_PAUSE_BUDGET_US")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&b: &u64| b > 0)
            .unwrap_or(2_000);
        // Headroom small enough that every phase's churn crosses the
        // mark several times within the measured window, large enough
        // that sweeps don't run back to back (each cycle's CPU competes
        // with the serving threads on small boxes).
        let headroom = 30_000u64;
        // One measured churn phase: client query quantiles plus the
        // phase-scoped `store.gc_*` instrument window.
        struct GcPhaseRun {
            qp50: u64,
            qp99: u64,
            sweeps: u64,
            freed: u64,
            slices: u64,
            pauses: co_obs::HistogramSnapshot,
            cycles: co_obs::HistogramSnapshot,
        }
        let run_phase = |phase: &str, armed: bool, collector: bool, budget: u64| -> GcPhaseRun {
            store::set_gc_high_water(0);
            store::set_gc_collector(collector);
            store::set_gc_pause_budget_us(budget);
            store::collect();
            if armed {
                store::set_gc_high_water(store::live_nodes() + headroom);
            }
            let stats_before = store::stats();
            // The `store.gc_*` window is snapshotted locally (the store
            // and registry live in this process): it must span the whole
            // phase including churn start-up, where the first mark
            // crossing can fire before `run_core` fetches its wire
            // baseline.
            let snap_before = co_obs::global().snapshot();
            // Paced background ingest: batches of fresh transients with a
            // breather between batches so the serving threads keep getting
            // scheduled. The handles drop their batch immediately — pure
            // churn for the sweeper.
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let churners: Vec<_> = (0..2u64)
                .map(|t| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut i = 0i64;
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            for _ in 0..256 {
                                i += 1;
                                let _ = co_object::obj!(
                                    [gc_lg: (t as i64), k: (i), pad: {(i), (i + 1)}]
                                );
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                })
                .collect();
            let r = run_core(
                ServingCore::WorkerPool,
                "pool",
                gc_sessions,
                requests,
                rate_per_session,
                dist,
            );
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for c in churners {
                c.join().expect("churn thread");
            }
            store::set_gc_high_water(0);
            if armed {
                // Mop up the tail of the churn synchronously (through the
                // collector thread when it is on), so the phase's stats
                // account for a completed cycle rather than one in flight.
                store::collect();
            }
            let stats_after = store::stats();
            let gc_window = co_obs::global().snapshot().minus(&snap_before);
            let run = GcPhaseRun {
                qp50: r.queries.quantile(0.50),
                qp99: r.queries.quantile(0.99),
                sweeps: stats_after.gc_sweeps - stats_before.gc_sweeps,
                freed: stats_after.gc_freed_nodes - stats_before.gc_freed_nodes,
                slices: gc_window.counter("store.gc_slices").unwrap_or(0),
                pauses: gc_window
                    .histogram("store.gc_pause_ns")
                    .cloned()
                    .unwrap_or_default(),
                cycles: gc_window
                    .histogram("store.gc_cycle_ns")
                    .cloned()
                    .unwrap_or_default(),
            };
            eprintln!(
                "loadgen[gc:{phase}]: query p50/p99 {}/{} µs; {} sweeps \
                 ({} nodes freed) in {} slices, pause p99 {} µs max {} µs",
                run.qp50 / 1_000,
                run.qp99 / 1_000,
                run.sweeps,
                run.freed,
                run.slices,
                run.pauses.quantile(0.99) / 1_000,
                run.pauses.quantile(1.0) / 1_000,
            );
            run
        };
        // gc_inline runs once — it is the stop-the-world *demonstration*;
        // its receipt is the pause histogram, not a ratio. gc_off and
        // gc_collector alternate for ROUNDS rounds and their rows report
        // medians: the acceptance check compares their query tails, and on
        // a small box a single run's p99 is noisy enough (scheduler
        // placement, churn phasing) to swamp a 2× ratio — the same
        // drift-cancelling methodology as the metrics-overhead pass above.
        // Pause/cycle windows are *merged* across rounds, so the tail
        // quantiles stand on every slice the collector ran, not one run's.
        const ROUNDS: usize = 3;
        let inline_runs = vec![run_phase("gc_inline", true, false, 0)];
        let mut off_runs = Vec::with_capacity(ROUNDS);
        let mut col_runs = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            off_runs.push(run_phase("gc_off", false, false, 0));
            col_runs.push(run_phase("gc_collector", true, true, budget_us));
        }
        store::set_gc_collector(false);
        let median = |mut xs: Vec<u64>| -> u64 {
            xs.sort_unstable();
            xs[xs.len() / 2]
        };
        let baseline_p99 = median(off_runs.iter().map(|r| r.qp99).collect());
        for (phase, armed, collector, budget, runs) in [
            ("gc_off", false, false, 0u64, &off_runs),
            ("gc_inline", true, false, 0, &inline_runs),
            ("gc_collector", true, true, budget_us, &col_runs),
        ] {
            let qp50 = median(runs.iter().map(|r| r.qp50).collect());
            let qp99 = median(runs.iter().map(|r| r.qp99).collect());
            let sweeps: u64 = runs.iter().map(|r| r.sweeps).sum();
            let freed: u64 = runs.iter().map(|r| r.freed).sum();
            let slices: u64 = runs.iter().map(|r| r.slices).sum();
            let mut pauses = co_obs::HistogramSnapshot::default();
            let mut cycles = co_obs::HistogramSnapshot::default();
            for r in runs.iter() {
                pauses.merge(&r.pauses);
                cycles.merge(&r.cycles);
            }
            rows.push(format!(
                "  {{\"bench\": \"server_loadgen\", \
                 \"id\": \"gc_churn/pool/{phase}/{gc_sessions}_sessions\", \
                 \"phase\": \"{phase}\", \"rounds\": {}, \"gc_high_water\": {armed}, \
                 \"gc_collector\": {collector}, \"gc_pause_budget_us\": {budget}, \
                 \"query_p50_ns\": {qp50}, \"query_p99_ns\": {qp99}, \
                 \"baseline_query_p99_ns\": {baseline_p99}, \
                 \"gc_sweeps\": {sweeps}, \"gc_freed_nodes\": {freed}, \
                 \"gc_slices\": {slices}, \
                 \"gc_pause_count\": {}, \"gc_pause_p50_ns\": {}, \
                 \"gc_pause_p99_ns\": {}, \"gc_pause_max_ns\": {}, \
                 \"gc_cycle_p99_ns\": {}, \"gc_cycle_max_ns\": {}, {context}}}",
                runs.len(),
                pauses.count,
                pauses.quantile(0.50),
                pauses.quantile(0.99),
                pauses.quantile(1.0),
                cycles.quantile(0.99),
                cycles.quantile(1.0),
            ));
            eprintln!(
                "loadgen[gc:{phase}] median of {}: query p50/p99 {}/{} µs \
                 (baseline p99 {} µs); {sweeps} sweeps ({freed} nodes freed) \
                 in {slices} slices, pause p99 {} µs max {} µs",
                runs.len(),
                qp50 / 1_000,
                qp99 / 1_000,
                baseline_p99 / 1_000,
                pauses.quantile(0.99) / 1_000,
                pauses.quantile(1.0) / 1_000,
            );
        }
    }

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("loadgen: → {out}");
}

//! Validates a `CO_TRACE` capture file: every line must be one
//! well-formed JSON object with the span shape (`ts_us` first, then
//! `event`). CI points a full test-suite run's `CO_TRACE` at a file and
//! then runs `tracecheck <file>` — the executable form of the "with
//! tracing on, the suite emits *only* valid JSON lines" guarantee.
//!
//! Exit status: 0 with a one-line summary on success; 1 naming the first
//! offending line otherwise. An empty file fails too — it means the
//! suite never actually traced, which would make the check vacuous.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace-file.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if let Err(e) = co_obs::json::parse(line) {
            eprintln!("tracecheck: {path}:{}: invalid JSON ({e}): {line}", i + 1);
            return ExitCode::FAILURE;
        }
        if !line.starts_with("{\"ts_us\":") || !line.contains("\"event\":") {
            eprintln!("tracecheck: {path}:{}: not a span line: {line}", i + 1);
            return ExitCode::FAILURE;
        }
        lines += 1;
    }
    if lines == 0 {
        eprintln!("tracecheck: {path} is empty — the traced run emitted nothing");
        return ExitCode::FAILURE;
    }
    println!("tracecheck: {lines} valid JSON span lines in {path}");
    ExitCode::SUCCESS
}

//! # co-bench — workloads and harnesses for the experiment suite
//!
//! Shared workload builders used by the Criterion benches (`benches/`),
//! the `experiments` binary (paper-example tables E1–E12), and the
//! `figures` binary (measured series F1–F7). See EXPERIMENTS.md at the
//! workspace root for the experiment index.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use co_calculus::Program;
use co_object::{Attr, Object};
use co_parser::parse_program;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A flat integer relation `{[k: i, v: i % classes], …}` with `rows` rows.
/// `classes` controls join/selection selectivity.
pub fn flat_relation(rows: i64, classes: i64, key_attr: &str, val_attr: &str) -> Object {
    Object::set((0..rows).map(|i| {
        Object::tuple([
            (Attr::new(key_attr), Object::int(i)),
            (Attr::new(val_attr), Object::int(i % classes)),
        ])
    }))
}

/// A two-relation join database: `r1(a, b)` and `r2(c, d)` with `b`/`c`
/// drawn from `classes` join classes.
pub fn join_db(rows: i64, classes: i64) -> Object {
    Object::tuple([
        (Attr::new("r1"), flat_relation(rows, classes, "a", "b")),
        (Attr::new("r2"), flat_relation(rows, classes, "c", "d")),
    ])
}

/// The equivalent `co_relational` database for baseline comparison.
pub fn join_db_flat(rows: i64, classes: i64) -> co_relational::Database {
    let mut db = co_relational::Database::new();
    db.insert(
        "r1",
        co_relational::int_relation(
            ["a", "b"],
            (0..rows).map(|i| [i, i % classes]).collect::<Vec<_>>(),
        ),
    );
    db.insert(
        "r2",
        co_relational::int_relation(
            ["c", "d"],
            (0..rows).map(|i| [i, i % classes]).collect::<Vec<_>>(),
        ),
    );
    db
}

/// A family chain `p0 → p1 → … → pn` (worst case for naive evaluation:
/// one new descendant per iteration).
pub fn chain_family(n: usize) -> Object {
    let family = Object::set((0..n).map(|i| {
        Object::tuple([
            (Attr::new("name"), Object::str(format!("p{i}"))),
            (
                Attr::new("children"),
                Object::set([Object::tuple([(
                    Attr::new("name"),
                    Object::str(format!("p{}", i + 1)),
                )])]),
            ),
        ])
    }));
    Object::tuple([(Attr::new("family"), family)])
}

/// A family tree with the given fanout (generations discovered in parallel).
pub fn tree_family(n: usize, fanout: usize) -> Object {
    let family = Object::set((0..n).map(|parent| {
        let children = Object::set(
            (1..=fanout)
                .map(|k| parent * fanout + k)
                .filter(|c| *c < n)
                .map(|c| Object::tuple([(Attr::new("name"), Object::str(format!("p{c}")))])),
        );
        Object::tuple([
            (Attr::new("name"), Object::str(format!("p{parent}"))),
            (Attr::new("children"), children),
        ])
    }));
    Object::tuple([(Attr::new("family"), family)])
}

/// The descendants program of paper Example 4.5, rooted at `p0`.
pub fn descendants_program() -> Program {
    parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .expect("static program parses")
}

/// The descendants program replicated per root: one independent rule
/// family `[doa_<root>: …]` per entry of `roots`, all reading the shared
/// `family` relation. Independent rule families are the natural source of
/// round-level parallelism for `Engine::parallelism` (each family is a
/// separate work unit every iteration), on top of the per-rule root
/// choice-point partitioning.
pub fn multi_descendants_program(roots: &[&str]) -> Program {
    let text = roots
        .iter()
        .map(|r| {
            format!(
                "[doa_{r}: {{{r}}}].\n\
                 [doa_{r}: {{X}}] :- \
                 [family: {{[name: Y, children: {{[name: X]}}]}}, doa_{r}: {{Y}}].",
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    parse_program(&text).expect("generated program parses")
}

/// A set with heavy domination (every element `[k: i]` is dominated by a
/// `[k: i, extra: 1]` sibling) — worst-ish case for reduction.
pub fn redundant_set(n: i64) -> Vec<Object> {
    let mut v: Vec<Object> = Vec::with_capacity((2 * n) as usize);
    for i in 0..n {
        v.push(Object::tuple([(Attr::new("k"), Object::int(i))]));
        v.push(Object::tuple([
            (Attr::new("k"), Object::int(i)),
            (Attr::new("extra"), Object::int(1)),
        ]));
    }
    v
}

/// An antichain (no element dominates another) of `n` flat tuples.
pub fn antichain_set(n: i64) -> Vec<Object> {
    (0..n)
        .map(|i| {
            Object::tuple([
                (Attr::new("k"), Object::int(i)),
                (Attr::new("v"), Object::int(i)),
            ])
        })
        .collect()
}

/// Deterministic random objects for order/lattice scaling benches.
pub fn random_objects(seed: u64, depth: u32, fanout: usize, n: usize) -> Vec<Object> {
    let mut g = co_object::random::Generator::new(
        seed,
        co_object::random::Profile {
            max_depth: depth,
            max_fanout: fanout,
            attr_pool: 6,
            atom_pool: 8,
            set_bias: 0.5,
        },
    );
    g.objects(n)
}

/// A printable object source of roughly `target_bytes` bytes (for parser
/// throughput benches).
pub fn object_text(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut size = 0usize;
    while size < target_bytes {
        let row = format!(
            "[name: p{}, score: {}, tags: {{t{}, t{}}}]",
            rng.random_range(0..100_000),
            rng.random_range(0..1000),
            rng.random_range(0..50),
            rng.random_range(0..50),
        );
        size += row.len() + 2;
        rows.push(row);
    }
    format!("{{{}}}", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(
            flat_relation(100, 10, "k", "v").as_set().unwrap().len(),
            100
        );
        let db = join_db(50, 5);
        assert_eq!(db.dot("r1").as_set().unwrap().len(), 50);
        assert_eq!(chain_family(10).dot("family").as_set().unwrap().len(), 10);
        assert_eq!(redundant_set(10).len(), 20);
        assert_eq!(antichain_set(10).len(), 10);
        assert!(object_text(1, 1000).len() >= 1000);
        assert_eq!(random_objects(7, 3, 3, 5).len(), 5);
    }

    #[test]
    fn redundant_set_reduces_to_half() {
        let s = Object::set(redundant_set(20));
        assert_eq!(s.as_set().unwrap().len(), 20);
    }

    #[test]
    fn antichain_survives_reduction() {
        let s = Object::set(antichain_set(20));
        assert_eq!(s.as_set().unwrap().len(), 20);
    }

    #[test]
    fn generated_text_parses() {
        let text = object_text(3, 2000);
        assert!(co_parser::parse_object(&text).is_ok());
    }
}

//! F9 — object-store lifecycle: sweep cost under churn, idle-sweep
//! overhead, reclamation ratio, and the steady-state memo hit rate of
//! second-chance eviction vs the legacy epoch clearing on a fixpoint
//! workload under memo-capacity pressure.
//!
//! Run with `--save-json BENCH_pr3.json` (or `CRITERION_SAVE_JSON`) to
//! record every measurement — including the derived reclaim ratios and
//! hit rates this file computes itself — as JSON.

use co_bench::chain_family;
use co_engine::{Engine, Guard, Strategy};
use co_object::store::{self, MemoPolicy, MemoStats};
use co_object::Object;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// One transient tuple + set pair, distinct per `(salt, i)`.
fn transient(salt: i64, i: i64) -> Object {
    Object::tuple([
        ("gc_bench_salt", Object::int(salt)),
        ("gc_bench_key", Object::int(i)),
        (
            "gc_bench_payload",
            Object::set([Object::int(i), Object::int(i + 1)]),
        ),
    ])
}

/// A burst of distinct memo-worthy `≤`/`∪` queries: pure cold traffic
/// that pressures both memo tables into evicting.
fn cold_memo_stream(salt: i64) {
    let make = |tag: i64| {
        Object::set((0..13).map(move |j| {
            Object::tuple([
                ("gc_bench_cold", Object::int(tag)),
                ("member", Object::int(j)),
            ])
        }))
    };
    for i in 0..128 {
        let a = make(salt * 100_000 + i * 2);
        let b = make(salt * 100_000 + i * 2 + 1);
        let _ = black_box(co_object::order::le(&a, &b));
        let _ = black_box(co_object::lattice::union(&a, &b));
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc/sweep");
    // A live working set every sweep must examine and retain.
    let live: Vec<Object> = (0..10_000).map(|i| transient(-1, i)).collect();
    for &n in &[10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::new("churn", n), &n, |b, &n| {
            b.iter(|| {
                {
                    let _garbage: Vec<Object> = (0..n as i64).map(|i| transient(7, i)).collect();
                }
                black_box(store::collect())
            })
        });
    }
    group.bench_function("idle", |b| b.iter(|| black_box(store::collect())));
    group.finish();

    // Reclamation ratio, recorded as a derived JSON record.
    let before = store::stats();
    {
        let _garbage: Vec<Object> = (0..50_000).map(|i| transient(9, i)).collect();
    }
    let mid = store::stats();
    let created = (mid.tuple_nodes + mid.set_nodes) - (before.tuple_nodes + before.set_nodes);
    let sweep = store::collect();
    let ratio = sweep.freed_nodes() as f64 / created.max(1) as f64;
    println!(
        "gc/sweep/reclaim: created {created} transient nodes, freed {} ({:.1}%), {}",
        sweep.freed_nodes(),
        ratio * 100.0,
        sweep
    );
    criterion::save_json_record(&format!(
        "{{\"bench\": \"gc/sweep\", \"id\": \"reclaim_50k\", \"created_nodes\": {created}, \
         \"freed_nodes\": {}, \"reclaim_ratio\": {ratio:.4}, \"passes\": {}, \
         \"memo_entries_swept\": {}}}",
        sweep.freed_nodes(),
        sweep.passes,
        sweep.memo_entries_swept,
    ));
    drop(live);
    store::collect();
}

/// Combined `≤`/`∪`/`∩` lookups and hits between two snapshots.
fn memo_delta(before: &MemoStats, after: &MemoStats) -> (u64, u64) {
    (after.hits - before.hits, after.misses - before.misses)
}

fn bench_memo_policies(c: &mut Criterion) {
    // Tight capacity so the fixpoint's memo traffic plus the cold stream
    // overflows the shards — the regime where the policy matters.
    store::set_memo_shard_cap(64);
    let db = chain_family(90);
    // Descendants over the chain, with a payload-carrying head: every
    // round derives a large `doapay` row, so the round union
    // `current ∪ applied` (and the nested `doapay` set union) are
    // memoizable big×big pairs. Re-running the same fixpoint replays the
    // identical pair sequence — the hot working set that second-chance
    // eviction is supposed to keep alive under cold pressure.
    let program = co_parser::parse_program(
        "[doa: {p0}, doapay: {[name: p0, pay: {c0, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10, c11, c12}]}].
         [doa: {X}, doapay: {[name: X, pay: {c0, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10, c11, c12}]}] :-
             [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    let engine = Engine::new(program)
        .strategy(Strategy::SemiNaive)
        .indexes(false)
        .guard(Guard::unlimited());

    let mut group = c.benchmark_group("gc/fixpoint_memo");
    for (label, policy) in [
        ("epoch", MemoPolicy::EpochClear),
        ("second_chance", MemoPolicy::SecondChance),
    ] {
        store::set_memo_policy(policy);
        store::clear_memo_tables();
        let _ = engine.run(&db).unwrap(); // warm the hot pairs
        let salt = std::cell::Cell::new(0i64);
        group.bench_function(BenchmarkId::new("run", label), |b| {
            b.iter(|| {
                let s = salt.get();
                salt.set(s + 1);
                cold_memo_stream(s); // eviction pressure between runs
                black_box(engine.run(&db).unwrap())
            })
        });

        // Steady-state hit rate over a fixed post-warm cycle (identical
        // for both policies, so the rates are directly comparable).
        let before = store::stats();
        for i in 0..8 {
            cold_memo_stream(1_000_000 + salt.get() * 100 + i);
            let _ = engine.run(&db).unwrap();
        }
        let after = store::stats();
        let (mut hits, mut lookups) = (0u64, 0u64);
        for (b, a) in [
            (&before.le_memo, &after.le_memo),
            (&before.union_memo, &after.union_memo),
            (&before.intersect_memo, &after.intersect_memo),
        ] {
            let (h, m) = memo_delta(b, a);
            hits += h;
            lookups += h + m;
        }
        let rate = hits as f64 / lookups.max(1) as f64;
        let evicted = after.le_memo.evicted + after.union_memo.evicted
            - (before.le_memo.evicted + before.union_memo.evicted);
        let clears = after.le_memo.epoch_clears + after.union_memo.epoch_clears
            - (before.le_memo.epoch_clears + before.union_memo.epoch_clears);
        println!(
            "gc/fixpoint_memo/{label}: steady-state hit rate {:.1}% \
             ({hits}/{lookups} lookups, {evicted} evicted, {clears} epoch clears)",
            rate * 100.0
        );
        criterion::save_json_record(&format!(
            "{{\"bench\": \"gc/fixpoint_memo\", \"id\": \"hit_rate/{label}\", \
             \"hit_rate\": {rate:.4}, \"hits\": {hits}, \"lookups\": {lookups}, \
             \"evicted\": {evicted}, \"epoch_clears\": {clears}}}"
        ));
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_memo_policies);
criterion_main!(benches);

//! F2 — union (lub) and intersection (glb) as a function of set size.

use co_bench::flat_relation;
use co_object::lattice::{intersect, union};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice");
    for n in [10i64, 100, 1_000] {
        let a = flat_relation(n, n / 2 + 1, "k", "v");
        let b = flat_relation(n + n / 2, n / 2 + 1, "k", "v");
        group.bench_with_input(BenchmarkId::new("union", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| union(black_box(a), black_box(b)))
        });
        group.bench_with_input(
            BenchmarkId::new("intersect", n),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| intersect(black_box(a), black_box(b))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lattice);
criterion_main!(benches);

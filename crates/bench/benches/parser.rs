//! F7 — parser throughput on realistic object text.

use co_bench::object_text;
use co_parser::parse_object;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    for bytes in [1_000usize, 10_000, 100_000] {
        let text = object_text(7, bytes);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("parse_object", text.len()),
            &text,
            |b, text| b.iter(|| black_box(parse_object(black_box(text)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);

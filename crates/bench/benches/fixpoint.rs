//! F5 — recursive fixpoints (paper Example 4.5 at scale): naive vs
//! semi-naive, chain vs tree shapes.

use co_bench::{chain_family, descendants_program, tree_family};
use co_engine::{Engine, Guard, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint/descendants");
    group.sample_size(10);
    for (shape, db) in [
        ("chain30", chain_family(30)),
        ("chain90", chain_family(90)),
        ("tree120", tree_family(120, 3)),
    ] {
        for (label, strategy) in [
            ("naive", Strategy::Naive),
            ("seminaive", Strategy::SemiNaive),
        ] {
            let engine = Engine::new(descendants_program())
                .strategy(strategy)
                .indexes(false)
                .guard(Guard::unlimited());
            group.bench_with_input(BenchmarkId::new(label, shape), &db, |b, db| {
                b.iter(|| black_box(engine.run(black_box(db)).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint);
criterion_main!(benches);

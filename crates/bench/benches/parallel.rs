//! Parallel fixpoint evaluation: sequential vs 2/4/8-thread closure on the
//! chain and genealogy-tree workloads (8 independent descendant rule
//! families each, so every round fans out rule × partition work units).
//!
//! Before timing anything, the harness asserts that every parallel
//! configuration computes a **bit-identical** fixpoint to the sequential
//! one — the same canonical database, hence (by hash-consing) the same
//! interned `NodeId`.
//!
//! Interpreting the numbers: matching dominates both workloads and runs
//! entirely inside the fanned-out units, so on a machine with ≥ 4 cores
//! the 4-thread rows come in ≥ 2× under the 1-thread rows (the serial
//! remainder — union, diff, dedup-merge — is a few percent). On fewer
//! cores the threads time-slice and the rows instead measure dispatch
//! overhead; the harness prints the detected core count so a 1-core CI
//! runner's numbers are not mistaken for a scaling regression.

use co_bench::{chain_family, multi_descendants_program, tree_family};
use co_engine::{Engine, Guard, Parallelism};
use co_object::Object;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const ROOT_COUNT: usize = 8;

fn workloads() -> Vec<(&'static str, Object, Vec<String>)> {
    // chain90: one long dependency chain, descendants computed from eight
    // staggered roots (p0, p10, …, p70) — many iterations, small deltas.
    let chain_roots: Vec<String> = (0..ROOT_COUNT).map(|k| format!("p{}", 10 * k)).collect();
    // genealogy: a 1500-person tree of fanout 3, descendants of eight
    // interior roots — few iterations, large scans every round.
    let tree_roots: Vec<String> = (0..ROOT_COUNT).map(|k| format!("p{k}")).collect();
    vec![
        ("chain90", chain_family(90), chain_roots),
        ("genealogy", tree_family(1500, 3), tree_roots),
    ]
}

fn engine_for(roots: &[String], threads: usize) -> Engine {
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    let parallelism = if threads <= 1 {
        Parallelism::Sequential
    } else {
        Parallelism::Threads(threads)
    };
    Engine::new(multi_descendants_program(&root_refs))
        .indexes(false)
        .guard(Guard::unlimited())
        .parallelism(parallelism)
}

fn bench_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("parallel/descendants: {cores} core(s) available to this process");
    let mut group = c.benchmark_group("parallel/descendants");
    group.sample_size(10);
    for (shape, db, roots) in workloads() {
        // Determinism gate: every thread count must reproduce the
        // sequential fixpoint bit-for-bit before we bother timing it.
        let reference = engine_for(&roots, 1).run(&db).unwrap().database;
        for threads in [2, 4, 8] {
            let out = engine_for(&roots, threads).run(&db).unwrap().database;
            assert_eq!(out, reference, "{shape} with {threads} threads");
            assert_eq!(
                out.node_id(),
                reference.node_id(),
                "{shape} with {threads} threads: interned identity"
            );
        }
        for threads in [1usize, 2, 4, 8] {
            let engine = engine_for(&roots, threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}thread"), shape),
                &db,
                |b, db| b.iter(|| black_box(engine.run(black_box(db)).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

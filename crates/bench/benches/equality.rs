//! F8 — equality and hashing on interned handles vs structural walks.
//!
//! The hash-consed store makes `==` a pointer comparison and `hash` a
//! cached-word write. This bench quantifies the gap against the structural
//! baseline (a recursive-descent equality and a full-tree hash, implemented
//! here exactly as the pre-interning representation behaved) on the shapes
//! the engine compares constantly: wide flat relations and deep nested
//! objects.

use co_bench::{flat_relation, random_objects};
use co_object::Object;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hash::{Hash, Hasher};
use std::hint::black_box;

/// Structural equality by recursive descent — what `==` cost before
/// hash-consing (minus its allocation-identity fast path, which never fired
/// across independently constructed values).
fn structural_eq(a: &Object, b: &Object) -> bool {
    match (a, b) {
        (Object::Bottom, Object::Bottom) | (Object::Top, Object::Top) => true,
        (Object::Atom(x), Object::Atom(y)) => x == y,
        (Object::Tuple(x), Object::Tuple(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ax, vx), (ay, vy))| ax == ay && structural_eq(vx, vy))
        }
        (Object::Set(x), Object::Set(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(e, f)| structural_eq(e, f))
        }
        _ => false,
    }
}

/// Structural full-tree hash — the pre-interning cost of `hash`.
fn structural_hash<H: Hasher>(o: &Object, state: &mut H) {
    match o {
        Object::Bottom => state.write_u8(0),
        Object::Atom(a) => {
            state.write_u8(1);
            a.hash(state);
        }
        Object::Tuple(t) => {
            state.write_u8(2);
            for (a, v) in t.entries() {
                a.hash(state);
                structural_hash(v, state);
            }
        }
        Object::Set(s) => {
            state.write_u8(3);
            for e in s.iter() {
                structural_hash(e, state);
            }
        }
        Object::Top => state.write_u8(4),
    }
}

fn hash_of(o: &Object, structural: bool) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    if structural {
        structural_hash(o, &mut h);
    } else {
        o.hash(&mut h);
    }
    h.finish()
}

fn bench_equality(c: &mut Criterion) {
    let mut group = c.benchmark_group("equality");
    for rows in [100i64, 1_000, 10_000] {
        // Two independently constructed, equal relations: the worst case
        // for structural equality, the best case for interning (and the
        // case fixpoint iterations hit every round).
        let a = flat_relation(rows, 10, "k", "v");
        let b = flat_relation(rows, 10, "k", "v");
        assert!(a == b);
        group.bench_with_input(
            BenchmarkId::new("interned-eq", rows),
            &(&a, &b),
            |be, (a, b)| be.iter(|| black_box(black_box(*a) == black_box(*b))),
        );
        group.bench_with_input(
            BenchmarkId::new("structural-eq", rows),
            &(&a, &b),
            |be, (a, b)| be.iter(|| black_box(structural_eq(black_box(a), black_box(b)))),
        );
        group.bench_with_input(BenchmarkId::new("interned-hash", rows), &a, |be, a| {
            be.iter(|| black_box(hash_of(black_box(a), false)))
        });
        group.bench_with_input(BenchmarkId::new("structural-hash", rows), &a, |be, a| {
            be.iter(|| black_box(hash_of(black_box(a), true)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("equality/deep");
    let objs = random_objects(7, 6, 6, 64);
    let clones: Vec<Object> = objs.clone();
    group.bench_function("interned-eq-pairwise", |be| {
        be.iter(|| {
            let mut n = 0usize;
            for x in &objs {
                for y in &clones {
                    if black_box(x == y) {
                        n += 1;
                    }
                }
            }
            black_box(n)
        })
    });
    group.bench_function("structural-eq-pairwise", |be| {
        be.iter(|| {
            let mut n = 0usize;
            for x in &objs {
                for y in &clones {
                    if black_box(structural_eq(x, y)) {
                        n += 1;
                    }
                }
            }
            black_box(n)
        })
    });
    group.finish();

    // Interning throughput: how fast equal values re-intern (hit path) vs
    // the one-time miss cost, on a mid-size relation.
    let mut group = c.benchmark_group("equality/intern");
    group.bench_function("reintern-hit-1000", |be| {
        be.iter(|| black_box(flat_relation(1_000, 10, "k", "v")))
    });
    group.finish();
}

criterion_group!(benches, bench_equality);
criterion_main!(benches);

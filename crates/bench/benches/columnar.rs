//! PR 6 — the columnar fast path on `flat_relation_5000`: the shape the
//! snapshot bench pins at sharing ratio ~0.92 (12.3 B/node), where
//! interning buys nothing and a dense arena buys a lot.
//!
//! Three claims, asserted here before anything is recorded:
//!
//! - **operators** — columnar select/project/join are ≥ 5× faster than
//!   the supported interned path (`decode_relation` → `algebra` →
//!   `encode_relation`), and bit-identical to it: every fast result must
//!   re-intern to the very `NodeId` the slow path produces (union is
//!   checked for identity and recorded, with no speed floor — both
//!   paths are dominated by re-canonicalizing the 10 000-element result);
//! - **wire** — the columnar co-wire record (`write_snapshot_columnar`)
//!   is ≤ 60% of the flat relation's version-1 snapshot payload;
//! - **identity** — a columnar snapshot restores to the identical node.
//!
//! Run with `--save-json BENCH_pr6.json` to record the measurements —
//! every record carries the machine context (core count + `CO_*` knobs)
//! the criterion shim stamps in.

use co_bench::flat_relation;
use co_object::{Atom, Attr, Object};
use co_relational::{algebra, columnar, decode_relation, encode_relation, Relation};
use co_wire::{read_snapshot, write_snapshot, write_snapshot_columnar};
use criterion::{criterion_group, criterion_main, save_json_record, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock nanoseconds of `f` over `reps` runs (one untimed
/// warm-up first — it builds the lazy columnar arenas, so the steady
/// state is what gets measured).
fn median_ns(reps: usize, mut f: impl FnMut() -> Object) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[reps / 2]
}

/// The interned baseline for unary operators: decode to rows, run the
/// algebra, re-encode canonically.
fn slow(rel: &Object, op: impl Fn(&Relation) -> Relation) -> Object {
    encode_relation(&op(&decode_relation(rel).unwrap()))
}

/// The interned baseline for binary operators.
fn slow2(l: &Object, r: &Object, op: impl Fn(&Relation, &Relation) -> Relation) -> Object {
    encode_relation(&op(
        &decode_relation(l).unwrap(),
        &decode_relation(r).unwrap(),
    ))
}

fn bench_operators(c: &mut Criterion) {
    const ROWS: i64 = 5_000;
    const CLASSES: i64 = 97;
    let r = flat_relation(ROWS, CLASSES, "k", "v");
    // A thin probe relation sharing attribute `k`: the join result stays
    // small, so input processing — what the fast path accelerates — is
    // what both sides spend their time on.
    let s = Object::set((0..100i64).map(|i| {
        Object::tuple([
            (Attr::new("k"), Object::int(i * 50)),
            (Attr::new("w"), Object::int(i % 7)),
        ])
    }));
    // A same-schema sibling for union (disjoint key range).
    let r2 = Object::set((ROWS..ROWS + ROWS).map(|i| {
        Object::tuple([
            (Attr::new("k"), Object::int(i)),
            (Attr::new("v"), Object::int(i % CLASSES)),
        ])
    }));
    let (rs, ss, r2s) = (
        r.as_set().unwrap(),
        s.as_set().unwrap(),
        r2.as_set().unwrap(),
    );
    let (k, v) = (Attr::new("k"), Attr::new("v"));
    let three = Atom::from(3i64);
    let _ = k;

    // The fast path must be *bit-identical* to the slow path before any
    // speed claim means anything.
    let identity_cases: Vec<(&str, Object, Object)> = vec![
        (
            "select_eq",
            columnar::select_eq(rs, v, &three).unwrap(),
            slow(&r, |rel| algebra::select_eq(rel, v, &three).unwrap()),
        ),
        (
            "project",
            columnar::project(rs, &[v]).unwrap(),
            slow(&r, |rel| algebra::project(rel, &[v]).unwrap()),
        ),
        (
            "natural_join",
            columnar::natural_join(rs, ss).unwrap(),
            slow2(&r, &s, |l, rr| algebra::natural_join(l, rr).unwrap()),
        ),
        (
            "union",
            columnar::union(rs, r2s).unwrap(),
            slow2(&r, &r2, |l, rr| algebra::union(l, rr).unwrap()),
        ),
    ];
    for (name, fast, slow_result) in &identity_cases {
        assert_eq!(
            fast.node_id(),
            slow_result.node_id(),
            "columnar {name} must re-intern to the slow path's node"
        );
    }
    drop(identity_cases);

    let reps = 15;
    // (name, fast ns, interned ns, speed floor — None for union).
    let timed: Vec<(&str, f64, f64, Option<f64>)> = vec![
        (
            "select_eq",
            median_ns(reps, || columnar::select_eq(rs, v, &three).unwrap()),
            median_ns(reps, || {
                slow(&r, |rel| algebra::select_eq(rel, v, &three).unwrap())
            }),
            Some(5.0),
        ),
        (
            "project",
            median_ns(reps, || columnar::project(rs, &[v]).unwrap()),
            median_ns(reps, || {
                slow(&r, |rel| algebra::project(rel, &[v]).unwrap())
            }),
            Some(5.0),
        ),
        (
            "natural_join",
            median_ns(reps, || columnar::natural_join(rs, ss).unwrap()),
            median_ns(reps, || {
                slow2(&r, &s, |l, rr| algebra::natural_join(l, rr).unwrap())
            }),
            Some(5.0),
        ),
        (
            "union",
            median_ns(reps, || columnar::union(rs, r2s).unwrap()),
            median_ns(reps, || {
                slow2(&r, &r2, |l, rr| algebra::union(l, rr).unwrap())
            }),
            None,
        ),
    ];
    for (name, fast_ns, slow_ns, floor) in &timed {
        let speedup = slow_ns / fast_ns;
        println!(
            "columnar/{name}: fast {:.1}µs vs interned {:.1}µs — {speedup:.1}x",
            fast_ns / 1e3,
            slow_ns / 1e3
        );
        if let Some(floor) = floor {
            assert!(
                speedup >= *floor,
                "acceptance: columnar {name} must be ≥{floor}x the interned path on \
                 flat_relation_{ROWS}, got {speedup:.2}x ({fast_ns:.0}ns vs {slow_ns:.0}ns)"
            );
        }
        save_json_record(&format!(
            "{{\"bench\": \"columnar\", \"id\": \"speedup/{name}/flat_relation_{ROWS}\", \
             \"fast_ns\": {fast_ns:.1}, \"interned_ns\": {slow_ns:.1}, \
             \"speedup\": {speedup:.2}, \"bit_identical\": true}}"
        ));
    }

    // Standard per-iteration records for the fast path itself.
    let mut group = c.benchmark_group("columnar");
    group.bench_with_input(
        BenchmarkId::new("select_eq", format!("flat_relation_{ROWS}")),
        &r,
        |b, rel| {
            let set = rel.as_set().unwrap();
            b.iter(|| columnar::select_eq(black_box(set), v, &three).unwrap())
        },
    );
    group.bench_with_input(
        BenchmarkId::new("project", format!("flat_relation_{ROWS}")),
        &r,
        |b, rel| {
            let set = rel.as_set().unwrap();
            b.iter(|| columnar::project(black_box(set), &[v]).unwrap())
        },
    );
    group.bench_with_input(
        BenchmarkId::new("natural_join", format!("flat_relation_{ROWS}x100")),
        &(r.clone(), s.clone()),
        |b, (rel, probe)| {
            let (left, right) = (rel.as_set().unwrap(), probe.as_set().unwrap());
            b.iter(|| columnar::natural_join(black_box(left), black_box(right)).unwrap())
        },
    );
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    const ROWS: i64 = 5_000;
    let r = flat_relation(ROWS, 97, "k", "v");
    let roots = [r.clone()];

    let mut row_bytes = Vec::new();
    let row_stats = write_snapshot(&mut row_bytes, &roots, b"").unwrap();
    let mut col_bytes = Vec::new();
    let (col_stats, _) = write_snapshot_columnar(&mut col_bytes, &roots, b"").unwrap();
    assert_eq!(col_stats.columnar_sets, 1);
    let ratio = col_stats.payload_bytes as f64 / row_stats.payload_bytes as f64;
    println!(
        "columnar/wire: v3 payload {} B vs v1 payload {} B ({:.1}% — v1 is the \
         61.5 KB flat snapshot the roadmap pins)",
        col_stats.payload_bytes,
        row_stats.payload_bytes,
        ratio * 100.0
    );
    assert!(
        ratio <= 0.60,
        "acceptance: columnar payload ≤60% of the flat v1 snapshot, got {:.1}%",
        ratio * 100.0
    );
    // The compact encoding still restores to the identical node.
    let snap = read_snapshot(col_bytes.as_slice()).unwrap();
    assert_eq!(snap.roots[0].node_id(), r.node_id());
    save_json_record(&format!(
        "{{\"bench\": \"columnar\", \"id\": \"wire/flat_relation_{ROWS}\", \
         \"columnar_payload_bytes\": {}, \"v1_payload_bytes\": {}, \
         \"payload_ratio\": {ratio:.3}, \"columnar_sets\": {}, \
         \"restores_bit_identical\": true}}",
        col_stats.payload_bytes, row_stats.payload_bytes, col_stats.columnar_sets
    ));

    let mut group = c.benchmark_group("columnar/wire");
    group.bench_function(
        BenchmarkId::new("write_v1", format!("flat_relation_{ROWS}")),
        |b| {
            b.iter(|| {
                let mut out = Vec::with_capacity(row_bytes.len());
                write_snapshot(&mut out, black_box(&roots), b"").unwrap();
                out
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("write_columnar", format!("flat_relation_{ROWS}")),
        |b| {
            b.iter(|| {
                let mut out = Vec::with_capacity(col_bytes.len());
                write_snapshot_columnar(&mut out, black_box(&roots), b"").unwrap();
                out
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("read_columnar", format!("flat_relation_{ROWS}")),
        |b| b.iter(|| read_snapshot(black_box(col_bytes.as_slice())).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_operators, bench_wire);
criterion_main!(benches);

//! F4 — the paper's join rule (Example 4.2(3)) vs the flat relational
//! baseline, scan vs indexed.

use co_bench::{join_db, join_db_flat};
use co_calculus::{apply_rule, apply_rule_with, MatchPolicy};
use co_engine::index::IndexedPrefilter;
use co_parser::parse_rule;
use co_relational::Query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    let rule =
        parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].").unwrap();
    for rows in [30i64, 100, 300] {
        let db = join_db(rows, rows);
        let flat = join_db_flat(rows, rows);
        group.bench_with_input(BenchmarkId::new("calculus-scan", rows), &db, |b, db| {
            b.iter(|| black_box(apply_rule(&rule, black_box(db), MatchPolicy::Strict)))
        });
        let pf = IndexedPrefilter::new(MatchPolicy::Strict);
        let _ = apply_rule_with(&rule, &db, MatchPolicy::Strict, &pf); // build index
        group.bench_with_input(BenchmarkId::new("calculus-indexed", rows), &db, |b, db| {
            b.iter(|| {
                black_box(apply_rule_with(
                    &rule,
                    black_box(db),
                    MatchPolicy::Strict,
                    &pf,
                ))
            })
        });
        let q = Query::rel("r1").join(Query::rel("r2"), [("b", "c")]);
        group.bench_with_input(BenchmarkId::new("flat-algebra", rows), &flat, |b, flat| {
            b.iter(|| black_box(q.eval(black_box(flat)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);

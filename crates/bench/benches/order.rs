//! F1 — sub-object checks (`≤`) as a function of object depth and fanout.

use co_bench::random_objects;
use co_object::order::le;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("order/le");
    for depth in [2u32, 4, 6] {
        for fanout in [2usize, 4, 8] {
            let objs = random_objects(42, depth, fanout, 32);
            group.bench_with_input(
                BenchmarkId::new("pairs", format!("d{depth}_f{fanout}")),
                &objs,
                |b, objs| {
                    b.iter(|| {
                        let mut hits = 0u32;
                        for x in objs {
                            for y in objs {
                                if le(black_box(x), black_box(y)) {
                                    hits += 1;
                                }
                            }
                        }
                        hits
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_order);
criterion_main!(benches);

//! F10 — persistence: `co-wire` snapshot write/read throughput, on-disk
//! bytes per node, and the sharing ratio (naive tree encoding vs the
//! hash-cons-aware node table) on three shapes:
//!
//! - a *flat relation* (no sharing beyond attribute names — the format's
//!   floor);
//! - a *closed genealogy database* (the engine's natural output, with
//!   organic substructure sharing);
//! - a *shared tower* (2^16 tree expansion over 17 nodes — the ceiling).
//!
//! Run with `--save-json BENCH_pr4.json` (or `CRITERION_SAVE_JSON`) to
//! record every measurement plus the derived ratios; relative paths land
//! at the workspace root.

use co_bench::{chain_family, flat_relation};
use co_engine::Engine;
use co_object::{measure, Object};
use co_parser::parse_program;
use co_wire::{naive_encoding_len, read_snapshot, write_snapshot};
use criterion::{
    criterion_group, criterion_main, save_json_record, BenchmarkId, Criterion, Throughput,
};
use std::hint::black_box;

/// A tower where each level contains the previous twice: n + 1 distinct
/// nodes, 2^n leaf occurrences — maximal sharing.
fn tower(levels: usize) -> Object {
    let mut level = Object::set([Object::str("base")]);
    for _ in 0..levels {
        level = Object::tuple([("left", level.clone()), ("right", level)]);
    }
    level
}

/// The closed descendants database over a 90-person chain.
fn closed_genealogy() -> Object {
    let program = parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    Engine::new(program)
        .run(&chain_family(90))
        .unwrap()
        .database
}

fn workloads() -> Vec<(&'static str, Object)> {
    vec![
        ("flat_relation_5000", flat_relation(5_000, 97, "k", "v")),
        ("closed_genealogy_90", closed_genealogy()),
        ("shared_tower_16", tower(16)),
    ]
}

fn bench_write_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for (name, root) in workloads() {
        let roots = [root];
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"").unwrap();

        group.throughput(Throughput::Bytes(stats.total_bytes));
        group.bench_with_input(BenchmarkId::new("write", name), &roots, |b, roots| {
            b.iter(|| {
                let mut out = Vec::with_capacity(bytes.len());
                write_snapshot(&mut out, black_box(roots), b"").unwrap();
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("read", name), &bytes, |b, bytes| {
            b.iter(|| read_snapshot(black_box(bytes.as_slice())).unwrap())
        });

        // Derived, machine-readable: the on-disk economics of sharing.
        let naive = naive_encoding_len(&roots);
        let ratio = naive as f64 / stats.payload_bytes as f64;
        let tree_nodes = measure::size(&roots[0]);
        println!(
            "snapshot/{name}: {} distinct nodes ({tree_nodes} tree nodes), \
             {} payload bytes ({:.1} B/node), naive {naive} B, sharing ratio {ratio:.2}x",
            stats.nodes,
            stats.payload_bytes,
            stats.bytes_per_node().unwrap_or(0.0),
        );
        save_json_record(&format!(
            "{{\"bench\": \"snapshot\", \"id\": \"sharing/{name}\", \
             \"nodes\": {}, \"tree_nodes\": {tree_nodes}, \"payload_bytes\": {}, \
             \"bytes_per_node\": {:.2}, \"naive_bytes\": {naive}, \
             \"sharing_ratio\": {ratio:.3}}}",
            stats.nodes,
            stats.payload_bytes,
            stats.bytes_per_node().unwrap_or(0.0),
        ));
    }
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot/checkpoint");
    let program = parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    let engine = Engine::new(program);
    let db = closed_genealogy();
    let path = std::env::temp_dir().join(format!("co_bench_ckpt_{}.cow", std::process::id()));

    group.bench_function("checkpoint/genealogy90", |b| {
        b.iter(|| engine.checkpoint(black_box(&db), &path).unwrap())
    });
    engine.checkpoint(&db, &path).unwrap();
    group.bench_function("restore/genealogy90", |b| {
        b.iter(|| Engine::restore(black_box(&path)).unwrap())
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench_write_read, bench_checkpoint_restore);
criterion_main!(benches);

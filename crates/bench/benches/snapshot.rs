//! F10 — persistence: `co-wire` snapshot write/read throughput, on-disk
//! bytes per node, and the sharing ratio (naive tree encoding vs the
//! hash-cons-aware node table) on three shapes:
//!
//! - a *flat relation* (no sharing beyond attribute names — the format's
//!   floor);
//! - a *closed genealogy database* (the engine's natural output, with
//!   organic substructure sharing);
//! - a *shared tower* (2^16 tree expansion over 17 nodes — the ceiling).
//!
//! Plus — PR 5 — the **delta** economics on a slowly-drifting bucketed
//! database: delta payload vs full payload when <5% of the nodes are
//! new, delta write speed vs full write speed, and base+3-delta chain
//! restore vs single-full restore (asserted bit-identical before any
//! timing).
//!
//! Run with `--save-json BENCH_pr5.json` (or `CRITERION_SAVE_JSON`) to
//! record every measurement plus the derived ratios; relative paths land
//! at the workspace root.

use co_bench::{chain_family, flat_relation};
use co_engine::Engine;
use co_object::walk::visit_unique_postorder;
use co_object::{measure, Object};
use co_parser::parse_program;
use co_wire::{
    naive_encoding_len, read_chain, read_snapshot, write_delta_snapshot, write_snapshot,
    write_snapshot_handle,
};
use criterion::{
    criterion_group, criterion_main, save_json_record, BenchmarkId, Criterion, Throughput,
};
use std::hint::black_box;

/// A tower where each level contains the previous twice: n + 1 distinct
/// nodes, 2^n leaf occurrences — maximal sharing.
fn tower(levels: usize) -> Object {
    let mut level = Object::set([Object::str("base")]);
    for _ in 0..levels {
        level = Object::tuple([("left", level.clone()), ("right", level)]);
    }
    level
}

/// The closed descendants database over a 90-person chain.
fn closed_genealogy() -> Object {
    let program = parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    Engine::new(program)
        .run(&chain_family(90))
        .unwrap()
        .database
}

fn workloads() -> Vec<(&'static str, Object)> {
    vec![
        ("flat_relation_5000", flat_relation(5_000, 97, "k", "v")),
        ("closed_genealogy_90", closed_genealogy()),
        ("shared_tower_16", tower(16)),
    ]
}

fn bench_write_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for (name, root) in workloads() {
        let roots = [root];
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"").unwrap();

        group.throughput(Throughput::Bytes(stats.total_bytes));
        group.bench_with_input(BenchmarkId::new("write", name), &roots, |b, roots| {
            b.iter(|| {
                let mut out = Vec::with_capacity(bytes.len());
                write_snapshot(&mut out, black_box(roots), b"").unwrap();
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("read", name), &bytes, |b, bytes| {
            b.iter(|| read_snapshot(black_box(bytes.as_slice())).unwrap())
        });

        // Derived, machine-readable: the on-disk economics of sharing.
        let naive = naive_encoding_len(&roots);
        let ratio = naive as f64 / stats.payload_bytes as f64;
        let tree_nodes = measure::size(&roots[0]);
        println!(
            "snapshot/{name}: {} distinct nodes ({tree_nodes} tree nodes), \
             {} payload bytes ({:.1} B/node), naive {naive} B, sharing ratio {ratio:.2}x",
            stats.nodes,
            stats.payload_bytes,
            stats.bytes_per_node().unwrap_or(0.0),
        );
        save_json_record(&format!(
            "{{\"bench\": \"snapshot\", \"id\": \"sharing/{name}\", \
             \"nodes\": {}, \"tree_nodes\": {tree_nodes}, \"payload_bytes\": {}, \
             \"bytes_per_node\": {:.2}, \"naive_bytes\": {naive}, \
             \"sharing_ratio\": {ratio:.3}}}",
            stats.nodes,
            stats.payload_bytes,
            stats.bytes_per_node().unwrap_or(0.0),
        ));
    }
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot/checkpoint");
    let program = parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    let engine = Engine::new(program);
    let db = closed_genealogy();
    let path = std::env::temp_dir().join(format!("co_bench_ckpt_{}.cow", std::process::id()));

    // checkpoint_full, not checkpoint: the auto API would chain deltas
    // across bench iterations and measure something else entirely.
    group.bench_function("checkpoint/genealogy90", |b| {
        b.iter(|| engine.checkpoint_full(black_box(&db), &path).unwrap())
    });
    engine.checkpoint_full(&db, &path).unwrap();
    group.bench_function("restore/genealogy90", |b| {
        b.iter(|| Engine::restore(black_box(&path)).unwrap())
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

// ---------------------------------------------------------------------------
// Delta snapshots (PR 5)
// ---------------------------------------------------------------------------

/// One "user record": a handful of distinct nodes and ~35 payload
/// bytes, so a node *reference* (2–3 bytes) is an order of magnitude
/// cheaper than re-encoding the record.
fn record(i: i64) -> Object {
    Object::tuple([
        ("id", Object::int(i)),
        (
            "profile",
            Object::tuple([
                ("name", Object::str(format!("user-{i}"))),
                ("score", Object::int(i * 17 % 1000)),
            ]),
        ),
        ("tags", Object::set([Object::int(i), Object::int(i + 1)])),
    ])
}

/// A bucketed database of records `0..n` plus `extra` drift records
/// (ids `n..n+extra`, landing in two buckets) — the slowly-drifting
/// store shape delta snapshots exist for: most buckets are byte-for-byte
/// the sets the base already has.
fn bucketed_db(n: i64, extra: i64, buckets: i64) -> Object {
    let mut sets: Vec<Vec<Object>> = (0..buckets).map(|_| Vec::new()).collect();
    for i in 0..n {
        sets[(i % buckets) as usize].push(record(i));
    }
    for i in n..n + extra {
        sets[(i % 2) as usize].push(record(i));
    }
    Object::tuple(
        sets.into_iter()
            .enumerate()
            .map(|(b, records)| (format!("bucket{b}"), Object::set(records))),
    )
}

fn distinct_nodes(o: &Object) -> u64 {
    let mut count = 0u64;
    visit_unique_postorder([o], |_| count += 1);
    count
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot/delta");
    const N: i64 = 2_000;
    const DRIFT: i64 = 25;
    const BUCKETS: i64 = 32;

    let base_db = bucketed_db(N, 0, BUCKETS);
    let mut base_bytes = Vec::new();
    let (base_stats, base_handle) =
        write_snapshot_handle(&mut base_bytes, std::slice::from_ref(&base_db), b"").unwrap();

    // One drift step: <5% of the nodes are new.
    let drifted = bucketed_db(N, DRIFT, BUCKETS);
    let mut full_bytes = Vec::new();
    let full_stats = write_snapshot(&mut full_bytes, std::slice::from_ref(&drifted), b"").unwrap();
    let mut delta_bytes = Vec::new();
    let (delta_stats, _) = write_delta_snapshot(
        &mut delta_bytes,
        std::slice::from_ref(&drifted),
        b"",
        &base_handle,
    )
    .unwrap();
    let new_fraction = delta_stats.nodes as f64 / distinct_nodes(&drifted) as f64;
    let payload_ratio = delta_stats.payload_bytes as f64 / full_stats.payload_bytes as f64;
    assert!(
        new_fraction < 0.05,
        "workload contract: <5% new nodes, got {:.2}%",
        new_fraction * 100.0
    );
    assert!(
        payload_ratio <= 0.10,
        "acceptance: delta ≤10% of the full payload, got {:.1}%",
        payload_ratio * 100.0
    );
    println!(
        "snapshot/delta: drift {} records → {} new nodes ({:.2}% of {}), \
         delta {} B vs full {} B ({:.1}%), {} base nodes referenced",
        DRIFT,
        delta_stats.nodes,
        new_fraction * 100.0,
        distinct_nodes(&drifted),
        delta_stats.payload_bytes,
        full_stats.payload_bytes,
        payload_ratio * 100.0,
        delta_stats.base_nodes_reused,
    );
    save_json_record(&format!(
        "{{\"bench\": \"snapshot\", \"id\": \"delta/drift_{DRIFT}_of_{N}\", \
         \"new_nodes\": {}, \"new_node_fraction\": {new_fraction:.5}, \
         \"delta_payload_bytes\": {}, \"full_payload_bytes\": {}, \
         \"delta_to_full_ratio\": {payload_ratio:.4}, \"base_nodes_reused\": {}}}",
        delta_stats.nodes,
        delta_stats.payload_bytes,
        full_stats.payload_bytes,
        delta_stats.base_nodes_reused,
    ));

    // Write speed: the delta write prunes its walk at base-resident
    // nodes, so it should beat the full write by roughly the size ratio.
    group.throughput(Throughput::Bytes(full_stats.total_bytes));
    group.bench_function(BenchmarkId::new("write_full", "drifted_2000"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(full_bytes.len());
            write_snapshot(&mut out, black_box(std::slice::from_ref(&drifted)), b"").unwrap();
            out
        })
    });
    group.throughput(Throughput::Bytes(delta_stats.total_bytes));
    group.bench_function(BenchmarkId::new("write_delta", "drifted_2000"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(delta_bytes.len());
            write_delta_snapshot(
                &mut out,
                black_box(std::slice::from_ref(&drifted)),
                b"",
                &base_handle,
            )
            .unwrap();
            out
        })
    });

    // Chain restore: base + 3 drift deltas vs one full snapshot of the
    // final state — asserted bit-identical before timing anything.
    let mut layers: Vec<Vec<u8>> = vec![base_bytes];
    let mut handle = base_handle;
    let mut final_db = base_db;
    for step in 1..=3 {
        final_db = bucketed_db(N, DRIFT * step, BUCKETS);
        let mut bytes = Vec::new();
        let (_, next) =
            write_delta_snapshot(&mut bytes, std::slice::from_ref(&final_db), b"", &handle)
                .unwrap();
        layers.push(bytes);
        handle = next;
    }
    let mut final_full = Vec::new();
    write_snapshot(&mut final_full, std::slice::from_ref(&final_db), b"").unwrap();
    let (from_chain, _) = read_chain(layers.iter().map(|l| l.as_slice())).unwrap();
    let from_full = read_snapshot(final_full.as_slice()).unwrap();
    assert_eq!(from_chain.roots, from_full.roots);
    assert_eq!(
        from_chain.roots[0].node_id(),
        from_full.roots[0].node_id(),
        "chain restore must re-intern to the very node the full restore does"
    );
    assert_eq!(from_chain.roots[0], final_db);
    save_json_record(&format!(
        "{{\"bench\": \"snapshot\", \"id\": \"delta/chain_restore_identity\", \
         \"layers\": {}, \"bit_identical\": true, \
         \"chain_bytes\": {}, \"full_bytes\": {}}}",
        layers.len(),
        layers.iter().map(|l| l.len()).sum::<usize>(),
        final_full.len(),
    ));

    group.bench_function(BenchmarkId::new("restore_chain", "base_plus_3"), |b| {
        b.iter(|| read_chain(black_box(&layers).iter().map(|l| l.as_slice())).unwrap())
    });
    group.bench_function(BenchmarkId::new("restore_full", "final_state"), |b| {
        b.iter(|| read_snapshot(black_box(final_full.as_slice())).unwrap())
    });
    let _ = base_stats;
    group.finish();
}

criterion_group!(
    benches,
    bench_write_read,
    bench_checkpoint_restore,
    bench_delta
);
criterion_main!(benches);

//! F3 — selection-formula interpretation vs relation size, scan vs index.

use co_bench::flat_relation;
use co_calculus::{interpret_with, MatchPolicy, ScanAll};
use co_engine::index::IndexedPrefilter;
use co_object::Object;
use co_parser::parse_formula;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/selection");
    let sel = parse_formula("[r1: {[a: X, b: 3]}]").unwrap();
    for rows in [100i64, 1_000, 10_000] {
        let db = Object::tuple([("r1", flat_relation(rows, 100, "a", "b"))]);
        group.bench_with_input(BenchmarkId::new("scan", rows), &db, |b, db| {
            b.iter(|| {
                black_box(interpret_with(
                    black_box(&sel),
                    black_box(db),
                    MatchPolicy::Strict,
                    &ScanAll,
                ))
            })
        });
        let pf = IndexedPrefilter::new(MatchPolicy::Strict);
        let _ = interpret_with(&sel, &db, MatchPolicy::Strict, &pf); // build index
        group.bench_with_input(BenchmarkId::new("indexed", rows), &db, |b, db| {
            b.iter(|| {
                black_box(interpret_with(
                    black_box(&sel),
                    black_box(db),
                    MatchPolicy::Strict,
                    &pf,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);

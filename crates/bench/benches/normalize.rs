//! F6 — normalization/reduction cost: dominated-heavy vs antichain inputs.

use co_bench::{antichain_set, redundant_set};
use co_object::Object;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalize/set");
    for n in [10i64, 100, 500] {
        let red = redundant_set(n);
        let anti = antichain_set(2 * n);
        group.bench_with_input(BenchmarkId::new("redundant", 2 * n), &red, |b, elems| {
            b.iter(|| black_box(Object::set(elems.clone())))
        });
        group.bench_with_input(BenchmarkId::new("antichain", 2 * n), &anti, |b, elems| {
            b.iter(|| black_box(Object::set(elems.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normalize);
criterion_main!(benches);

//! `StoreStats`/`MemoStats` accounting: the counters must reconcile with
//! the operations performed — every lookup is a hit or a miss, every miss
//! inserts exactly one entry, and every inserted entry is (at any later
//! moment) still cached, clock-evicted, or GC-swept — and the `Display`
//! rendering is pinned by exact snapshots.
//!
//! Own integration-test binary (own process) with a single `#[test]`: the
//! reconciliation equations only hold when nothing else drives the
//! process-wide memo tables and knobs concurrently.

use co_object::order::le;
use co_object::store::{
    self, MemoPolicy, MemoStats, ShardStats, StoreStats, SweepStats, SHARD_COUNT,
};
use co_object::Object;

/// A distinct memo-worthy set (41 nodes) whose *elements* are below the
/// memo threshold, so each `le` call touches the table exactly once.
fn probe_set(tag: &str, salt: i64) -> Object {
    Object::set(
        (0..13).map(|j| Object::tuple([(tag, Object::int(salt)), ("member", Object::int(j))])),
    )
}

#[test]
fn counters_reconcile_and_display_is_pinned() {
    store::set_memo_policy(MemoPolicy::SecondChance);
    store::set_memo_shard_cap(8); // small: force clock evictions

    // --- hit/miss/insert reconciliation under eviction churn -----------
    let objects: Vec<Object> = (0..60).map(|i| probe_set("acct", i)).collect();
    assert!(objects[0].meta().unwrap().size >= store::MEMO_MIN_SIZE);
    let s0 = store::stats();
    let mut lookups = 0u64;
    for a in &objects {
        for b in &objects {
            if a != b {
                let _ = le(a, b);
                lookups += 1;
            }
        }
    }
    let s1 = store::stats();
    let hits = s1.le_memo.hits - s0.le_memo.hits;
    let misses = s1.le_memo.misses - s0.le_memo.misses;
    assert_eq!(hits + misses, lookups, "every lookup is a hit or a miss");
    // Single-threaded: every miss inserts one fresh key, and each inserted
    // entry is now either still cached or was clock-evicted (no GC ran).
    let entered = (s1.le_memo.entries - s0.le_memo.entries) as u64;
    let evicted = s1.le_memo.evicted - s0.le_memo.evicted;
    let swept = s1.le_memo.swept - s0.le_memo.swept;
    assert_eq!(entered + evicted + swept, misses, "inserts must reconcile");
    assert!(evicted > 0, "3540 pairs into 8×16 slots must evict");

    // An immediate re-ask of a just-inserted pair is a hit.
    let (p, q) = (probe_set("acct_hit", 1), probe_set("acct_hit", 2));
    let s2 = store::stats();
    let _ = le(&p, &q);
    let _ = le(&p, &q);
    let s3 = store::stats();
    assert_eq!(s3.le_memo.misses - s2.le_memo.misses, 1);
    assert_eq!(s3.le_memo.hits - s2.le_memo.hits, 1);

    // --- GC sweep accounting -------------------------------------------
    let s4 = store::stats();
    {
        let garbage: Vec<Object> = (0..30).map(|i| probe_set("acct_gc", i)).collect();
        for w in garbage.windows(2) {
            let _ = le(&w[0], &w[1]);
        }
    } // all 30 sets (and their tuples) become unreachable here
    let pre = store::stats();
    let sweep = store::collect();
    let s5 = store::stats();
    assert_eq!(s5.gc_sweeps, s4.gc_sweeps + 1, "one collect, one sweep");
    assert_eq!(
        s5.gc_freed_nodes - s4.gc_freed_nodes,
        sweep.freed_nodes() as u64,
        "the cumulative counter must absorb exactly this sweep's count"
    );
    assert!(
        sweep.freed_nodes() >= 30,
        "the 30 dropped probe sets must be reclaimed, got {sweep}"
    );
    let memo_swept = s5.le_memo.swept - pre.le_memo.swept;
    assert!(memo_swept > 0, "entries keyed by freed ids must be swept");
    assert_eq!(
        s5.le_memo.entries,
        pre.le_memo.entries - memo_swept as usize,
        "a sweep removes exactly the entries it counts as swept"
    );
    // Live ledger: everything ever inserted is cached, evicted, or swept.
    assert_eq!(
        s5.le_memo.entries as u64 + s5.le_memo.evicted + s5.le_memo.swept,
        s5.le_memo.misses - s0.le_memo.misses
            + (s0.le_memo.entries as u64 + s0.le_memo.evicted + s0.le_memo.swept),
        "full-ledger reconciliation"
    );

    // --- Display snapshots ---------------------------------------------
    let rendered = StoreStats {
        tuple_nodes: 12,
        set_nodes: 3,
        intern_hits: 100,
        intern_l1_hits: 40,
        intern_misses: 60,
        intern_contended: 2,
        le_memo: MemoStats {
            entries: 5,
            hits: 10,
            misses: 9,
            contended: 0,
            epoch_clears: 0,
            evicted: 3,
            retained: 2,
            swept: 1,
        },
        union_memo: MemoStats::default(),
        intersect_memo: MemoStats::default(),
        gc_sweeps: 2,
        gc_freed_nodes: 7,
        gc_auto_triggers: 1,
        gc_slices: 3,
        live_nodes: 15,
        pinned_roots: 1,
        shards: [ShardStats::default(); SHARD_COUNT],
    }
    .to_string();
    let expected = "\
store: 12 tuple nodes, 3 set nodes across 16 shards
  intern: 100 hits (40 thread-local), 60 misses, 2 contended acquisitions
  memo ≤: 5 entries, 10 hits, 9 misses, 3 evicted, 2 retained, 1 swept, 0 epoch clears
  memo ∪: 0 entries, 0 hits, 0 misses, 0 evicted, 0 retained, 0 swept, 0 epoch clears
  memo ∩: 0 entries, 0 hits, 0 misses, 0 evicted, 0 retained, 0 swept, 0 epoch clears
  gc: 2 sweeps (1 auto, 3 slices), 7 nodes freed, 15 live, 1 pinned roots
";
    assert_eq!(rendered, expected);

    let sweep_line = SweepStats {
        freed_tuples: 4,
        freed_sets: 2,
        examined: 10,
        memo_entries_swept: 3,
        columnar_entries_swept: 1,
        passes: 2,
        slices: 3,
        pinned_roots: 1,
    }
    .to_string();
    assert_eq!(
        sweep_line,
        "sweep: freed 6 of 10 nodes (4 tuples, 2 sets) in 2 passes / 3 slices, \
         3 memo entries swept, 1 columnar arenas swept, 1 pinned roots"
    );

    // hit_rate helper sanity.
    assert_eq!(MemoStats::default().hit_rate(), None);
    let rate = MemoStats {
        hits: 3,
        misses: 1,
        ..MemoStats::default()
    }
    .hit_rate()
    .unwrap();
    assert!((rate - 0.75).abs() < 1e-12);
}

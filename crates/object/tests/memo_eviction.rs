//! The memo tables' epoch-eviction path, exercised cheaply by shrinking
//! the per-shard capacity through the `CO_MEMO_SHARD_CAP` knob.
//!
//! This lives in its own integration-test binary (hence its own process)
//! with a single `#[test]`, so the environment variable is guaranteed to
//! be set before the first memo-table access reads it.

use co_object::order::le;
use co_object::{store, Object};

#[test]
fn epoch_clears_fire_at_capacity_and_are_counted() {
    // Must run before any memo access in this process: the cap is read
    // once. 32 entries per shard instead of the production 65 536.
    std::env::set_var("CO_MEMO_SHARD_CAP", "32");

    // 80 distinct memo-worthy sets (each ~40 nodes) → 6 400 ordered pairs,
    // ~400 per memo shard: an order of magnitude over the shrunken cap.
    let objects: Vec<Object> = (0..80)
        .map(|i| {
            Object::set((0..13).map(|j| {
                Object::tuple([
                    ("memo_evict_group", Object::int(i)),
                    ("memo_evict_member", Object::int(j)),
                ])
            }))
        })
        .collect();
    assert!(objects[0].meta().unwrap().size >= store::MEMO_MIN_SIZE);

    let before = store::stats();
    for a in &objects {
        for b in &objects {
            let _ = le(a, b);
        }
    }
    let after = store::stats();

    assert!(
        after.le_memo.epoch_clears > before.le_memo.epoch_clears,
        "filling the ≤ table past capacity must clear shards: {:?} → {:?}",
        before.le_memo,
        after.le_memo
    );
    assert!(after.le_memo.misses > before.le_memo.misses);
    // The table stays bounded by cap × shard count (16 shards; one extra
    // entry per shard is admissible because the clear precedes the insert).
    assert!(
        after.le_memo.entries <= 33 * 16,
        "entries {} exceed the shrunken capacity",
        after.le_memo.entries
    );
    // Re-asking anything still gives consistent answers after clears.
    assert!(le(&objects[3], &objects[3]));
    assert!(!le(&objects[3], &objects[4]));
}

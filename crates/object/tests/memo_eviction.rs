//! Differential correctness of the memo-table eviction policies.
//!
//! The `≤`/`∪`/`∩` memo tables are a pure cache: no matter the capacity
//! (`CO_MEMO_SHARD_CAP` down to 1 entry per shard), the eviction policy
//! (second-chance clock or the legacy wholesale epoch clear), or whether
//! memoization is on at all, every operation must return the same result.
//! This test computes a reference answer matrix with memoization disabled
//! and replays it under each policy/capacity combination, then checks the
//! policies' observable behaviour: the clock keeps hot pairs that epoch
//! clears throws away.
//!
//! This lives in its own integration-test binary (hence its own process)
//! with a single `#[test]`, because it drives the process-wide policy and
//! capacity knobs; interleaving with other tests would race on them.

use co_object::lattice::{intersect, union};
use co_object::order::le;
use co_object::store::{self, MemoPolicy};
use co_object::Object;

/// Distinct memo-worthy objects (each comfortably over `MEMO_MIN_SIZE`
/// nodes) with overlapping structure so `≤`/`∪`/`∩` all exercise real
/// work.
fn corpus() -> Vec<Object> {
    (0..40)
        .map(|i| {
            Object::set((0..13).map(|j| {
                Object::tuple([
                    ("memo_evict_group", Object::int(i % 7)),
                    ("memo_evict_member", Object::int(j + i % 3)),
                    ("memo_evict_salt", Object::int(i)),
                ])
            }))
        })
        .collect()
}

/// The full answer matrix over the corpus under the *current* policy.
fn evaluate(objects: &[Object]) -> (Vec<bool>, Vec<Object>, Vec<Object>) {
    let mut les = Vec::new();
    let mut unions = Vec::new();
    let mut intersections = Vec::new();
    for a in objects {
        for b in objects {
            les.push(le(a, b));
            unions.push(union(a, b));
            intersections.push(intersect(a, b));
        }
    }
    (les, unions, intersections)
}

/// A hot/cold workload: one hot pair re-asked between every cold pair of a
/// once-through stream. Returns the hit-count delta it produced.
fn hot_cold_hits(hot: (&Object, &Object), cold: &[Object]) -> u64 {
    let before = store::stats().le_memo.hits;
    let _ = le(hot.0, hot.1); // seed the hot entry
    for c in cold {
        let _ = le(hot.0, hot.1);
        for d in cold.iter().take(4) {
            let _ = le(c, d);
        }
    }
    store::stats().le_memo.hits - before
}

/// Single `#[test]` entry point: both scenarios drive the process-wide
/// policy/capacity knobs, so they must run sequentially in this process.
#[test]
fn memo_eviction_lifecycle() {
    eviction_policies_agree_with_memo_disabled_reference();
    second_chance_keeps_hot_pairs_that_epoch_clearing_loses();
}

fn eviction_policies_agree_with_memo_disabled_reference() {
    let objects = corpus();
    assert!(objects[0].meta().unwrap().size >= store::MEMO_MIN_SIZE);

    // Reference: memoization off — every answer structurally recomputed.
    store::set_memo_policy(MemoPolicy::Disabled);
    let reference = evaluate(&objects);

    // Unbounded second chance (nothing ever evicted).
    store::set_memo_policy(MemoPolicy::SecondChance);
    store::set_memo_shard_cap(usize::MAX);
    store::clear_memo_tables();
    assert_eq!(evaluate(&objects), reference, "unbounded second chance");

    // Pathologically tiny capacity: one entry per shard, constant churn.
    store::set_memo_shard_cap(1);
    store::clear_memo_tables();
    let before = store::stats();
    assert_eq!(evaluate(&objects), reference, "second chance, cap 1");
    let after = store::stats();
    assert!(
        after.le_memo.evicted > before.le_memo.evicted,
        "cap 1 must churn the clock: {:?}",
        after.le_memo
    );
    for (label, m) in [
        ("≤", after.le_memo),
        ("∪", after.union_memo),
        ("∩", after.intersect_memo),
    ] {
        assert!(
            m.entries <= 16,
            "memo {label} holds {} entries with cap 1 × 16 shards",
            m.entries
        );
    }

    // Legacy epoch clearing at a small capacity.
    store::set_memo_policy(MemoPolicy::EpochClear);
    store::set_memo_shard_cap(32);
    store::clear_memo_tables();
    let before = store::stats();
    assert_eq!(evaluate(&objects), reference, "epoch clear, cap 32");
    let after = store::stats();
    assert!(
        after.le_memo.epoch_clears > before.le_memo.epoch_clears,
        "filling the ≤ table past capacity must clear shards: {:?}",
        after.le_memo
    );
    assert!(
        after.le_memo.entries <= 33 * 16,
        "entries {} exceed the epoch capacity bound",
        after.le_memo.entries
    );

    // Second chance at the same capacity: same answers, bounded at cap
    // (the clock evicts *before* inserting).
    store::set_memo_policy(MemoPolicy::SecondChance);
    store::clear_memo_tables();
    let before = store::stats();
    assert_eq!(evaluate(&objects), reference, "second chance, cap 32");
    let after = store::stats();
    assert!(after.le_memo.entries <= 32 * 16);
    assert!(
        after.le_memo.evicted > before.le_memo.evicted,
        "the corpus overflows cap 32, so the clock must evict"
    );
}

fn second_chance_keeps_hot_pairs_that_epoch_clearing_loses() {
    let hot_a = Object::set(
        (0..20)
            .map(|j| Object::tuple([("hot_member", Object::int(j)), ("hot_tag", Object::int(0))])),
    );
    let hot_b = Object::set((0..20).map(|j| {
        Object::tuple([
            ("hot_member", Object::int(j)),
            ("hot_tag", Object::int(j % 2)),
        ])
    }));
    let cold: Vec<Object> = (0..600)
        .map(|i| {
            Object::set((0..13).map(|j| {
                Object::tuple([
                    ("cold_member", Object::int(j)),
                    ("cold_salt", Object::int(i * 64 + j)),
                ])
            }))
        })
        .collect();

    store::set_memo_shard_cap(32);

    store::set_memo_policy(MemoPolicy::EpochClear);
    store::clear_memo_tables();
    let epoch_hits = hot_cold_hits((&hot_a, &hot_b), &cold);

    store::set_memo_policy(MemoPolicy::SecondChance);
    store::clear_memo_tables();
    let clock_hits = hot_cold_hits((&hot_a, &hot_b), &cold);

    let retained = store::stats().le_memo.retained;
    assert!(
        retained > 0,
        "the clock hand must have granted second chances to the hot pair"
    );
    assert!(
        clock_hits > epoch_hits,
        "second chance must out-hit epoch clearing on a hot/cold mix: \
         {clock_hits} vs {epoch_hits}"
    );
}

//! Laws of the interned (hash-consed) representation.
//!
//! Two families of guarantees are checked on randomly generated canonical
//! objects:
//!
//! 1. **Differential**: the O(1) interned equality (pointer/id comparison)
//!    agrees exactly with a reference *structural* equality implemented
//!    here by recursive descent — i.e. hash-consing changes the cost of
//!    `==`, never its answer. Hashes and node ids agree with equality.
//! 2. **Lattice laws over interned handles**: idempotence, commutativity,
//!    associativity, absorption, and the order/lattice consistency
//!    `a ≤ b ⇔ a ∪ b = b ⇔ a ∩ b = a` — including on objects large enough
//!    to exercise the store's memo tables, so a memo hit is checked against
//!    freshly recomputed results.

use co_object::lattice::{intersect, union};
use co_object::order::le;
use co_object::random::{Generator, Profile};
use co_object::{measure, Object};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Reference structural equality: recursive descent, never consulting
/// pointer identity, cached hashes, or node ids.
fn structural_eq(a: &Object, b: &Object) -> bool {
    match (a, b) {
        (Object::Bottom, Object::Bottom) => true,
        (Object::Top, Object::Top) => true,
        (Object::Atom(x), Object::Atom(y)) => x == y,
        (Object::Tuple(x), Object::Tuple(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ax, vx), (ay, vy))| ax == ay && structural_eq(vx, vy))
        }
        (Object::Set(x), Object::Set(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(ex, ey)| structural_eq(ex, ey))
        }
        _ => false,
    }
}

/// Reference sub-object order: Definition 3.1 by direct recursion, no memo
/// tables, no metadata fast paths.
fn ref_le(a: &Object, b: &Object) -> bool {
    match (a, b) {
        (Object::Bottom, _) => true,
        (_, Object::Top) => true,
        (Object::Top, _) => false,
        (_, Object::Bottom) => false,
        (Object::Atom(x), Object::Atom(y)) => x == y,
        (Object::Tuple(x), Object::Tuple(y)) => x
            .iter()
            .all(|(a, v)| y.contains(*a) && ref_le(v, y.get(*a))),
        (Object::Set(x), Object::Set(y)) => x.iter().all(|e| y.iter().any(|f| ref_le(e, f))),
        _ => false,
    }
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Random canonical objects from the seeded generator (small profile).
fn arb_object() -> impl Strategy<Value = Object> {
    (any::<u64>(), 0usize..8).prop_map(|(seed, skip)| {
        let mut g = Generator::new(seed, Profile::small());
        g.objects(skip + 1).pop().unwrap()
    })
}

/// Random *large* canonical objects — above the memo-table size threshold,
/// so the store's `≤`/union/intersection caches participate.
fn arb_large_object() -> impl Strategy<Value = Object> {
    any::<u64>().prop_map(|seed| {
        let mut g = Generator::new(seed, Profile::large());
        g.object()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interned equality ⇔ structural equality (same-seed duplicates give
    /// the positive cases the cross-seed pairs rarely hit).
    #[test]
    fn interned_equality_agrees_with_structural(
        a in arb_object(), b in arb_object(), seed in any::<u64>()
    ) {
        prop_assert_eq!(a == b, structural_eq(&a, &b));
        // Regenerating from the same seed rebuilds the same value through
        // fresh constructor calls: equality must hold and be structural.
        let mut g1 = Generator::new(seed, Profile::small());
        let mut g2 = Generator::new(seed, Profile::small());
        let (x, y) = (g1.object(), g2.object());
        prop_assert!(x == y && structural_eq(&x, &y));
        prop_assert_eq!(x.node_id(), y.node_id());
    }

    /// Equal objects hash equal (O(1) cached hashes included), and node ids
    /// characterize equality for same-kind composites.
    #[test]
    fn hashes_and_node_ids_agree_with_equality(a in arb_object(), b in arb_object()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
            prop_assert_eq!(a.node_id(), b.node_id());
        } else if a.is_set() == b.is_set() && a.is_tuple() == b.is_tuple() {
            // Distinct same-kind composites must have distinct ids.
            if let (Some(ia), Some(ib)) = (a.node_id(), b.node_id()) {
                prop_assert_ne!(ia, ib);
            }
        }
    }

    /// The production `≤` (with metadata fast paths and memo tables) agrees
    /// with the reference recursion.
    #[test]
    fn le_agrees_with_reference(a in arb_object(), b in arb_object()) {
        prop_assert_eq!(le(&a, &b), ref_le(&a, &b));
        prop_assert!(le(&a, &a));
    }

    /// Idempotence and commutativity over interned handles.
    #[test]
    fn idempotence_and_commutativity(a in arb_object(), b in arb_object()) {
        prop_assert_eq!(union(&a, &a), a.clone());
        prop_assert_eq!(intersect(&a, &a), a.clone());
        prop_assert_eq!(union(&a, &b), union(&b, &a));
        prop_assert_eq!(intersect(&a, &b), intersect(&b, &a));
    }

    /// Absorption laws.
    #[test]
    fn absorption(a in arb_object(), b in arb_object()) {
        prop_assert_eq!(union(&a, &intersect(&a, &b)), a.clone());
        prop_assert_eq!(intersect(&a, &union(&a, &b)), a.clone());
    }

    /// Order/lattice consistency: `a ≤ b ⇔ a ∪ b = b ⇔ a ∩ b = a`.
    #[test]
    fn order_lattice_consistency(a in arb_object(), b in arb_object()) {
        let l = le(&a, &b);
        prop_assert_eq!(l, union(&a, &b) == b);
        prop_assert_eq!(l, intersect(&a, &b) == a);
    }

    /// Memo-table participation does not change results: on large objects
    /// (above the memo size threshold), asking twice — the second time
    /// guaranteed to hit the cache — gives identical answers, and they
    /// agree with the reference recursion.
    #[test]
    fn memoized_operations_are_stable(a in arb_large_object(), b in arb_large_object()) {
        let first_le = le(&a, &b);
        prop_assert_eq!(first_le, le(&a, &b));
        prop_assert_eq!(first_le, ref_le(&a, &b));
        let u1 = union(&a, &b);
        prop_assert_eq!(&u1, &union(&a, &b));
        let i1 = intersect(&a, &b);
        prop_assert_eq!(&i1, &intersect(&a, &b));
        // Bounds still hold, of course.
        prop_assert!(le(&a, &u1) && le(&b, &u1));
        prop_assert!(le(&i1, &a) && le(&i1, &b));
    }

    /// Cached metadata agrees with first-principles recursion.
    #[test]
    fn meta_matches_recursive_measures(a in arb_object()) {
        fn ref_depth(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) => 1,
                Object::Top => u64::MAX,
                Object::Tuple(t) => {
                    1 + t.iter().map(|(_, v)| ref_depth(v)).max().unwrap_or(1)
                }
                Object::Set(s) => 1 + s.iter().map(ref_depth).max().unwrap_or(1),
            }
        }
        fn ref_size(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 1,
                Object::Tuple(t) => 1 + t.iter().map(|(_, v)| ref_size(v)).sum::<u64>(),
                Object::Set(s) => 1 + s.iter().map(ref_size).sum::<u64>(),
            }
        }
        fn ref_atoms(o: &Object) -> u64 {
            match o {
                Object::Atom(_) => 1,
                Object::Bottom | Object::Top => 0,
                Object::Tuple(t) => t.iter().map(|(_, v)| ref_atoms(v)).sum(),
                Object::Set(s) => s.iter().map(ref_atoms).sum(),
            }
        }
        fn ref_fanout(o: &Object) -> usize {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 0,
                Object::Tuple(t) => t
                    .iter()
                    .map(|(_, v)| ref_fanout(v))
                    .max()
                    .unwrap_or(0)
                    .max(t.len()),
                Object::Set(s) => {
                    s.iter().map(ref_fanout).max().unwrap_or(0).max(s.len())
                }
            }
        }
        if let Some(meta) = a.meta() {
            prop_assert_eq!(measure::depth(&a).finite(), Some(meta.depth));
            prop_assert_eq!(meta.depth, ref_depth(&a));
            prop_assert_eq!(meta.size, ref_size(&a));
            prop_assert_eq!(meta.atom_count, ref_atoms(&a));
            prop_assert_eq!(meta.max_fanout, ref_fanout(&a));
            prop_assert_eq!(measure::size(&a), meta.size);
        }
    }
}

#[test]
fn memo_counters_observe_misses_then_hits() {
    use co_object::store;
    // Two fresh, memo-worthy values (set size 21 ≥ MEMO_MIN_SIZE) that no
    // other test constructs. The first operation on the pair must record a
    // memo miss — safe to assert directly: a lookup of a never-computed
    // (or even just-evicted) key always counts a miss, and concurrent
    // tests only add to the counters. The hit assertion is retried: a
    // concurrent test could in principle push this pair's memo shard past
    // capacity between two of our probes, evicting the entry (clock or
    // epoch clear, depending on policy); two adjacent probes of a cached
    // pair land a hit on any retry where no eviction intervenes.
    let a = Object::set((0..20).map(|i| Object::tuple([("memo_counter_probe", Object::int(i))])));
    let b = Object::set(
        (0..20).map(|i| Object::tuple([("memo_counter_probe", Object::int(i + 1_000_000))])),
    );
    assert!(a.meta().unwrap().size >= store::MEMO_MIN_SIZE);

    fn assert_hit_eventually(
        op: impl Fn() -> u64,
        table: impl Fn(&store::StoreStats) -> store::MemoStats,
        label: &str,
    ) {
        for _ in 0..100 {
            let before = table(&store::stats());
            let r1 = op();
            let r2 = op();
            let after = table(&store::stats());
            assert_eq!(r1, r2, "{label}: cached result must be stable");
            if after.hits > before.hits {
                return;
            }
        }
        panic!("{label}: no memo hit in 100 attempts — hit counter stuck");
    }

    // ≤ — fingerprint the result as a u64 so one helper serves all three.
    let before = store::stats();
    let first = le(&a, &b);
    assert!(
        store::stats().le_memo.misses > before.le_memo.misses,
        "first ≤ on a fresh pair is a memo miss"
    );
    assert_hit_eventually(|| u64::from(le(&a, &b)), |s| s.le_memo, "≤");
    assert_eq!(first, le(&a, &b));

    let before = store::stats();
    let u = union(&a, &b);
    assert!(store::stats().union_memo.misses > before.union_memo.misses);
    assert_hit_eventually(
        || union(&a, &b).node_id().map_or(0, co_object::NodeId::get),
        |s| s.union_memo,
        "∪",
    );
    assert_eq!(u, union(&a, &b));

    let before = store::stats();
    let i = intersect(&a, &b);
    assert!(store::stats().intersect_memo.misses > before.intersect_memo.misses);
    assert_hit_eventually(
        || {
            intersect(&a, &b)
                .node_id()
                .map_or(0, co_object::NodeId::get)
        },
        |s| s.intersect_memo,
        "∩",
    );
    assert_eq!(i, intersect(&a, &b));
}

#[test]
fn equality_is_pointer_identity_for_composites() {
    let mut g1 = Generator::new(0xC0FFEE, Profile::large());
    let mut g2 = Generator::new(0xC0FFEE, Profile::large());
    for (a, b) in g1.objects(32).into_iter().zip(g2.objects(32)) {
        assert_eq!(a, b);
        match (&a, &b) {
            (Object::Tuple(x), Object::Tuple(y)) => {
                assert_eq!(x.entries().as_ptr(), y.entries().as_ptr());
            }
            (Object::Set(x), Object::Set(y)) => {
                assert_eq!(x.elements().as_ptr(), y.elements().as_ptr());
            }
            _ => {}
        }
    }
}

//! Size-triggered garbage collection: the high-water mark fires
//! `collect()` from the intern path, with hysteresis, and never touches
//! reachable objects.
//!
//! These tests drive process-global store state (the mark, the live-node
//! gauge), so they serialize on a local mutex and always restore the
//! disabled default before finishing.
//!
//! They also pin collection **inline** (collector thread off) for their
//! duration: the assertions count synchronous trigger→sweep causality on
//! the interning thread, which an asynchronously-paced collector
//! deliberately decouples. Collector-mode trigger behaviour is covered by
//! `gc_incremental.rs`.

use co_object::{obj, store, Object};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

/// Restores the collector-thread mode it captured at construction.
struct CollectorMode(bool);

impl CollectorMode {
    /// Pins collection inline, returning a guard that restores the
    /// previous mode on drop (even on panic).
    fn pin_inline() -> Self {
        let was = store::gc_collector_enabled();
        store::set_gc_collector(false);
        CollectorMode(was)
    }
}

impl Drop for CollectorMode {
    fn drop(&mut self) {
        store::set_gc_collector(self.0);
    }
}

/// Runs `f` with the high-water mark set to `live + headroom`, restoring
/// the disabled default afterwards (even on panic, via a drop guard).
fn with_high_water<R>(headroom: u64, f: impl FnOnce(u64) -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            store::set_gc_high_water(0);
        }
    }
    let _reset = Reset;
    let s = store::stats();
    let live = (s.tuple_nodes + s.set_nodes) as u64;
    let mark = live + headroom;
    store::set_gc_high_water(mark);
    f(mark)
}

fn churn(salt: i64, n: i64) {
    for i in 0..n {
        let _ = obj!([gc_hw_churn: (salt), k: (i), pad: {(i), (i + 1)}]);
    }
}

#[test]
fn crossing_the_mark_triggers_a_collection() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    let before = store::stats();
    with_high_water(256, |_| {
        // Far more transient garbage than the headroom: the trigger must
        // fire at least once while we intern, without any explicit
        // `collect()` call.
        churn(1, 2_000);
    });
    let after = store::stats();
    assert!(
        after.gc_auto_triggers > before.gc_auto_triggers,
        "no automatic collection fired: {} -> {}",
        before.gc_auto_triggers,
        after.gc_auto_triggers
    );
    assert!(
        after.gc_sweeps > before.gc_sweeps,
        "auto triggers must run real sweeps"
    );
    assert!(
        after.gc_freed_nodes > before.gc_freed_nodes,
        "the churn garbage must actually be reclaimed"
    );
}

#[test]
fn disabled_mark_never_triggers() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    store::set_gc_high_water(0);
    let before = store::stats();
    churn(2, 2_000);
    let after = store::stats();
    assert_eq!(
        after.gc_auto_triggers, before.gc_auto_triggers,
        "high-water 0 must disable automatic collection"
    );
}

#[test]
fn reachable_objects_survive_automatic_sweeps() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    // A working set we keep holding across the auto sweeps.
    let kept: Vec<Object> = (0..128)
        .map(|i| obj!([gc_hw_kept: (i), v: {(i), (i + 1), (i + 2)}]))
        .collect();
    let kept_ids: Vec<_> = kept.iter().map(|o| o.node_id().unwrap()).collect();
    with_high_water(128, |_| {
        churn(3, 2_000);
    });
    for (o, id) in kept.iter().zip(&kept_ids) {
        assert_eq!(o.node_id(), Some(*id), "held objects keep their identity");
        assert!(
            store::contains_node(*id),
            "held objects must survive auto sweeps"
        );
    }
    // Rebuilding one is an intern hit on the same node, not a new id.
    assert_eq!(
        obj!([gc_hw_kept: 5, v: {5, 6, 7}]).node_id(),
        kept[5].node_id()
    );
}

#[test]
fn trigger_rearms_at_the_mark_when_survivors_fit_below_it() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    // A big held working set, so a buggy hysteresis that always re-arms
    // half a mark above the *survivors* would push the next trigger
    // thousands of nodes past the configured mark. With survivors below
    // the mark, re-arming must happen AT the mark: steady transient churn
    // then fires roughly every `headroom` nodes, not every `live/2`.
    let _held: Vec<Object> = (0..2_000)
        .map(|i| obj!([gc_hw_rearm: (i), p: {(i), (i + 1)}]))
        .collect();
    // Start from a garbage-free store: residue from earlier tests would
    // otherwise be reclaimed by the first auto sweep, dropping the live
    // count far below the mark and masking the re-arm behaviour.
    store::collect();
    let before = store::stats();
    with_high_water(200, |_| {
        churn(5, 2_000); // ≈ 4000 transient nodes against 200 headroom
    });
    let triggers = store::stats().gc_auto_triggers - before.gc_auto_triggers;
    assert!(
        triggers >= 5,
        "re-arming at the mark should fire many sweeps across 4000 \
         transient nodes with 200 headroom, got {triggers}"
    );
}

#[test]
fn crossing_during_a_parked_sweep_is_not_dropped() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    // Regression (PR 10): crossing the high-water mark while the GC gate
    // was held used to hit `try_lock`, fail, and silently do nothing — no
    // sweep, no re-arm — so the mark could be overshot unboundedly for as
    // long as an explicit collection stayed parked. The crossing must now
    // be recorded and absorbed the moment the gate frees.
    store::collect(); // start from a garbage-free store
    let before = store::stats();
    with_high_water(200, |mark| {
        // Park the gate (as a long explicit sweep would) and blow through
        // the mark while it is held: every crossing lands on the occupied
        // gate's try_lock path.
        store::with_gc_paused(|| {
            churn(6, 2_000); // ≈ 4000 transients vs 200 headroom
            assert_eq!(
                store::stats().gc_auto_triggers,
                before.gc_auto_triggers,
                "no sweep can run while the gate is paused"
            );
            assert!(
                store::live_nodes() > mark,
                "the churn must actually overshoot the mark while parked"
            );
        });
        // `with_gc_paused` re-checks the gauge on release: the recorded
        // crossing fires its sweep right here, on this thread.
    });
    let after = store::stats();
    assert!(
        after.gc_auto_triggers > before.gc_auto_triggers,
        "a crossing recorded while the gate was held must trigger a sweep \
         when it frees, got {} -> {}",
        before.gc_auto_triggers,
        after.gc_auto_triggers
    );
    assert!(
        after.gc_freed_nodes > before.gc_freed_nodes,
        "the absorbed trigger must reclaim the parked churn"
    );
}

#[test]
fn oversized_working_set_does_not_collect_per_intern() {
    let _gate = GATE.lock().unwrap();
    let _inline = CollectorMode::pin_inline();
    // Hold a working set bigger than the mark: after the first auto sweep
    // the survivors still exceed it, so hysteresis must re-arm the trigger
    // half a mark higher instead of sweeping on every subsequent intern.
    let _held: Vec<Object> = (0..1_500)
        .map(|i| obj!([gc_hw_big: (i), w: {(i), (i * 7)}]))
        .collect();
    let before = store::stats();
    with_high_water(0, |_| {
        // Mark is exactly the current live count: already at the mark.
        churn(4, 1_000);
    });
    let after = store::stats();
    let triggers = after.gc_auto_triggers - before.gc_auto_triggers;
    assert!(triggers >= 1, "crossing the mark must trigger");
    assert!(
        triggers <= 4,
        "hysteresis must bound trigger frequency, got {triggers} sweeps for 1000 interns"
    );
}

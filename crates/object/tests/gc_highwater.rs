//! Size-triggered garbage collection: the high-water mark fires
//! `collect()` from the intern path, with hysteresis, and never touches
//! reachable objects.
//!
//! These tests drive process-global store state (the mark, the live-node
//! gauge), so they serialize on a local mutex and always restore the
//! disabled default before finishing.

use co_object::{obj, store, Object};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with the high-water mark set to `live + headroom`, restoring
/// the disabled default afterwards (even on panic, via a drop guard).
fn with_high_water<R>(headroom: u64, f: impl FnOnce(u64) -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            store::set_gc_high_water(0);
        }
    }
    let _reset = Reset;
    let s = store::stats();
    let live = (s.tuple_nodes + s.set_nodes) as u64;
    let mark = live + headroom;
    store::set_gc_high_water(mark);
    f(mark)
}

fn churn(salt: i64, n: i64) {
    for i in 0..n {
        let _ = obj!([gc_hw_churn: (salt), k: (i), pad: {(i), (i + 1)}]);
    }
}

#[test]
fn crossing_the_mark_triggers_a_collection() {
    let _gate = GATE.lock().unwrap();
    let before = store::stats();
    with_high_water(256, |_| {
        // Far more transient garbage than the headroom: the trigger must
        // fire at least once while we intern, without any explicit
        // `collect()` call.
        churn(1, 2_000);
    });
    let after = store::stats();
    assert!(
        after.gc_auto_triggers > before.gc_auto_triggers,
        "no automatic collection fired: {} -> {}",
        before.gc_auto_triggers,
        after.gc_auto_triggers
    );
    assert!(
        after.gc_sweeps > before.gc_sweeps,
        "auto triggers must run real sweeps"
    );
    assert!(
        after.gc_freed_nodes > before.gc_freed_nodes,
        "the churn garbage must actually be reclaimed"
    );
}

#[test]
fn disabled_mark_never_triggers() {
    let _gate = GATE.lock().unwrap();
    store::set_gc_high_water(0);
    let before = store::stats();
    churn(2, 2_000);
    let after = store::stats();
    assert_eq!(
        after.gc_auto_triggers, before.gc_auto_triggers,
        "high-water 0 must disable automatic collection"
    );
}

#[test]
fn reachable_objects_survive_automatic_sweeps() {
    let _gate = GATE.lock().unwrap();
    // A working set we keep holding across the auto sweeps.
    let kept: Vec<Object> = (0..128)
        .map(|i| obj!([gc_hw_kept: (i), v: {(i), (i + 1), (i + 2)}]))
        .collect();
    let kept_ids: Vec<_> = kept.iter().map(|o| o.node_id().unwrap()).collect();
    with_high_water(128, |_| {
        churn(3, 2_000);
    });
    for (o, id) in kept.iter().zip(&kept_ids) {
        assert_eq!(o.node_id(), Some(*id), "held objects keep their identity");
        assert!(
            store::contains_node(*id),
            "held objects must survive auto sweeps"
        );
    }
    // Rebuilding one is an intern hit on the same node, not a new id.
    assert_eq!(
        obj!([gc_hw_kept: 5, v: {5, 6, 7}]).node_id(),
        kept[5].node_id()
    );
}

#[test]
fn trigger_rearms_at_the_mark_when_survivors_fit_below_it() {
    let _gate = GATE.lock().unwrap();
    // A big held working set, so a buggy hysteresis that always re-arms
    // half a mark above the *survivors* would push the next trigger
    // thousands of nodes past the configured mark. With survivors below
    // the mark, re-arming must happen AT the mark: steady transient churn
    // then fires roughly every `headroom` nodes, not every `live/2`.
    let _held: Vec<Object> = (0..2_000)
        .map(|i| obj!([gc_hw_rearm: (i), p: {(i), (i + 1)}]))
        .collect();
    // Start from a garbage-free store: residue from earlier tests would
    // otherwise be reclaimed by the first auto sweep, dropping the live
    // count far below the mark and masking the re-arm behaviour.
    store::collect();
    let before = store::stats();
    with_high_water(200, |_| {
        churn(5, 2_000); // ≈ 4000 transient nodes against 200 headroom
    });
    let triggers = store::stats().gc_auto_triggers - before.gc_auto_triggers;
    assert!(
        triggers >= 5,
        "re-arming at the mark should fire many sweeps across 4000 \
         transient nodes with 200 headroom, got {triggers}"
    );
}

#[test]
fn oversized_working_set_does_not_collect_per_intern() {
    let _gate = GATE.lock().unwrap();
    // Hold a working set bigger than the mark: after the first auto sweep
    // the survivors still exceed it, so hysteresis must re-arm the trigger
    // half a mark higher instead of sweeping on every subsequent intern.
    let _held: Vec<Object> = (0..1_500)
        .map(|i| obj!([gc_hw_big: (i), w: {(i), (i * 7)}]))
        .collect();
    let before = store::stats();
    with_high_water(0, |_| {
        // Mark is exactly the current live count: already at the mark.
        churn(4, 1_000);
    });
    let after = store::stats();
    let triggers = after.gc_auto_triggers - before.gc_auto_triggers;
    assert!(triggers >= 1, "crossing the mark must trigger");
    assert!(
        triggers <= 4,
        "hysteresis must bound trigger frequency, got {triggers} sweeps for 1000 interns"
    );
}

//! Columnar arenas for flat relations — the dense second representation
//! behind the store's hash-consed nodes.
//!
//! Hash-consing is pessimal exactly where the classical relational model
//! is at home: a *flat relation* (a set whose elements are all tuples of
//! atoms over one attribute list) shares nothing, so per-row interning
//! buys no deduplication while every scan chases a pointer per row. This
//! module gives such sets a **second, columnar representation**: a
//! [`ColumnarRel`] holds one dense `Vec<Atom>` per attribute, row `r` of
//! column `c` being the value of attribute `schema[c]` in element `r` of
//! the canonical set — **row order is element order**, so positions
//! returned by columnar scans index straight into
//! [`Set::elements`](crate::Set::elements).
//!
//! Arenas are built lazily ([`arena_for`]) once a set's cardinality
//! crosses [`columnar_min_rows`] (env `CO_COLUMNAR_MIN_ROWS`, default
//! 64) and are memoized per [`NodeId`] — sound for the same reason the
//! store's memo tables are: interned nodes are immutable and ids are
//! never recycled, so an id names one set value forever. Negative
//! answers (the set is not a flat uniform relation) are memoized too,
//! so repeated probes of ineligible sets stay O(1).
//! [`collect`](crate::store::collect) purges entries keyed by freed ids.
//!
//! **Canonical at the boundary.** The arena is a read-only cache; every
//! result produced from columns re-enters the store through the
//! canonicalizing constructors ([`rows_to_object`], [`gather`]), so
//! `NodeId`s — and therefore fixpoints, traces, and snapshots — are
//! bit-identical to the plain interned path. Vectorized operators live
//! in `co-relational`; the engine's set indexes build from columns when
//! an arena exists; `co-wire` packs eligible sets as columnar records.
//!
//! ```
//! use co_object::{columnar, Attr, Object};
//!
//! let rel = Object::set((0..100).map(|i| {
//!     Object::tuple([("k", Object::int(i)), ("v", Object::int(i % 7))])
//! }));
//! let set = rel.as_set().unwrap();
//! let arena = columnar::arena_for(set).expect("flat, uniform, large enough");
//! assert_eq!(arena.rows(), 100);
//! assert_eq!(arena.schema().len(), 2);
//! // Scanning a column yields element positions into the canonical set.
//! let v = arena.column_of(Attr::new("v")).unwrap();
//! let hits: Vec<usize> = (0..arena.rows())
//!     .filter(|&r| arena.column(v)[r] == co_object::Atom::Int(3))
//!     .collect();
//! // Gathering those elements re-enters the store canonically.
//! let selected = columnar::gather(set, hits.iter().copied());
//! assert!(selected.as_set().unwrap().len() > 0);
//! ```

use crate::store::NodeId;
use crate::{Atom, Attr, Object, Set};
use parking_lot::RwLock;
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Default row-count threshold for lazy arena construction: below it the
/// bookkeeping costs more than dense scans save.
pub const DEFAULT_COLUMNAR_MIN_ROWS: usize = 64;

/// The current row-count threshold for [`arena_for`] (initialized from
/// `CO_COLUMNAR_MIN_ROWS`, default [`DEFAULT_COLUMNAR_MIN_ROWS`]).
pub fn columnar_min_rows() -> usize {
    min_rows_cell().load(Ordering::Relaxed)
}

/// Adjusts the [`arena_for`] row-count threshold at runtime (tests and
/// embedders). A threshold of 0 or 1 builds an arena for every eligible
/// non-empty set.
pub fn set_columnar_min_rows(rows: usize) {
    min_rows_cell().store(rows, Ordering::Relaxed);
}

fn min_rows_cell() -> &'static AtomicUsize {
    static CELL: OnceLock<AtomicUsize> = OnceLock::new();
    CELL.get_or_init(|| {
        let rows = std::env::var("CO_COLUMNAR_MIN_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_COLUMNAR_MIN_ROWS);
        AtomicUsize::new(rows)
    })
}

/// The dense columnar image of one flat relation: per-attribute column
/// vectors plus the shared schema header.
///
/// `schema` is the canonical tuple entry order (ascending [`Attr`]
/// order) every row shares; `columns[c][r]` is the value of
/// `schema[c]` in element `r` of the source set. Immutable once built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarRel {
    schema: Box<[Attr]>,
    columns: Box<[Box<[Atom]>]>,
    rows: usize,
}

impl ColumnarRel {
    /// Number of rows (= elements of the source set).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// The shared attribute list, in canonical (ascending) order.
    pub fn schema(&self) -> &[Attr] {
        &self.schema
    }

    /// Column `c` as a dense atom slice (length [`Self::rows`]).
    pub fn column(&self, c: usize) -> &[Atom] {
        &self.columns[c]
    }

    /// Position of attribute `a` in the schema, if present.
    pub fn column_of(&self, a: Attr) -> Option<usize> {
        self.schema.iter().position(|x| *x == a)
    }

    /// The atoms of row `r`, one per schema attribute, in schema order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = &Atom> + '_ {
        self.columns.iter().map(move |col| &col[r])
    }
}

/// Builds the columnar image of `set` **unconditionally** (no threshold,
/// no cache): `Some` iff the set is a flat uniform relation — every
/// element a tuple over one attribute list with atomic values only.
/// Empty sets are not relations (they have no schema) and return `None`.
pub fn build(set: &Set) -> Option<ColumnarRel> {
    let elements = set.elements();
    let first = elements.first()?.as_tuple()?;
    if !first.meta().flat {
        return None;
    }
    let schema: Box<[Attr]> = first.attrs().collect();
    let arity = schema.len();
    let rows = elements.len();
    let mut columns: Vec<Vec<Atom>> = (0..arity).map(|_| Vec::with_capacity(rows)).collect();
    for e in elements {
        let t = e.as_tuple()?;
        let entries = t.entries();
        if entries.len() != arity {
            return None;
        }
        for (c, (a, v)) in entries.iter().enumerate() {
            // Canonical tuples keep entries in one global attribute
            // order, so uniform schemas align positionally.
            if *a != schema[c] {
                return None;
            }
            match v {
                Object::Atom(atom) => columns[c].push(atom.clone()),
                _ => return None,
            }
        }
    }
    Some(ColumnarRel {
        schema,
        columns: columns.into_iter().map(Vec::into_boxed_slice).collect(),
        rows,
    })
}

// ---------------------------------------------------------------------------
// The NodeId-keyed arena cache
// ---------------------------------------------------------------------------

/// `NodeId → Some(arena)` for flat uniform sets, `None` for sets probed
/// and found ineligible (negative caching keeps repeated probes O(1)).
type ArenaCache = FxHashMap<NodeId, Option<Arc<ColumnarRel>>>;

fn cache() -> &'static RwLock<ArenaCache> {
    static CACHE: OnceLock<RwLock<ArenaCache>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(FxHashMap::default()))
}

static BUILDS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static REJECTS: AtomicU64 = AtomicU64::new(0);
static ROWS_BUILT: AtomicU64 = AtomicU64::new(0);
static PURGED: AtomicU64 = AtomicU64::new(0);

/// Returns (building and memoizing on first ask) the columnar arena for
/// `set`: `Some` iff the set is a flat uniform relation with at least
/// [`columnar_min_rows`] rows. Probes of ineligible or below-threshold
/// sets are cheap; negative shape answers are memoized per [`NodeId`].
pub fn arena_for(set: &Set) -> Option<Arc<ColumnarRel>> {
    if set.len() < columnar_min_rows().max(1) {
        return None;
    }
    // Cheap structural pre-filter: a flat relation is exactly depth 3
    // (set → tuple → atom), so anything shallower (atom sets) or deeper
    // (nested values) is rejected without touching the cache.
    if set.meta().depth != 3 {
        return None;
    }
    let id = set.node_id();
    if let Some(cached) = cache().read().get(&id) {
        match cached {
            Some(arena) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(arena));
            }
            None => return None,
        }
    }
    let built = build(set).map(Arc::new);
    match &built {
        Some(arena) => {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            ROWS_BUILT.fetch_add(arena.rows() as u64, Ordering::Relaxed);
        }
        None => {
            REJECTS.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Losing a build race is harmless: both arenas are equal images of
    // one immutable node; last write wins.
    cache().write().insert(id, built.clone());
    built
}

/// Drops cache entries keyed by freed node ids (called by
/// `store::collect` with every sweep's freed set; freed ids never
/// recur, so these entries are pure garbage). Returns how many were
/// dropped.
pub(crate) fn purge_freed(freed: &FxHashSet<NodeId>) -> u64 {
    let mut cache = cache().write();
    let before = cache.len();
    cache.retain(|id, _| !freed.contains(id));
    let dropped = (before - cache.len()) as u64;
    PURGED.fetch_add(dropped, Ordering::Relaxed);
    dropped
}

/// Empties the arena cache (tests, embedders resetting between phases).
/// Counters are unaffected.
pub fn clear_cache() {
    cache().write().clear();
}

/// Counters of the columnar arena layer. Cumulative since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Arenas built (one per distinct eligible set value).
    pub built: u64,
    /// [`arena_for`] calls answered from the cache.
    pub hits: u64,
    /// Sets probed and found ineligible (shape, not threshold).
    pub rejected: u64,
    /// Total rows across all arenas built.
    pub rows_built: u64,
    /// Cache entries dropped by GC purges.
    pub purged: u64,
    /// Entries currently cached (positive + negative).
    pub entries: usize,
}

/// A point-in-time snapshot of the columnar layer's counters.
pub fn stats() -> ColumnarStats {
    ColumnarStats {
        built: BUILDS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        rejected: REJECTS.load(Ordering::Relaxed),
        rows_built: ROWS_BUILT.load(Ordering::Relaxed),
        purged: PURGED.load(Ordering::Relaxed),
        entries: cache().read().len(),
    }
}

// ---------------------------------------------------------------------------
// Canonical re-entry
// ---------------------------------------------------------------------------

/// Builds the canonical set object for `rows` over `schema` — the
/// boundary through which every columnar result re-enters the store.
///
/// `schema` must be in canonical (strictly ascending) attribute order —
/// the order [`ColumnarRel::schema`] and any subsequence or sorted merge
/// of such schemas already have — and each row must align with it
/// positionally. Rows are deduplicated by the set constructor (flat
/// tuples over one schema are pairwise incomparable, so reduction is
/// sort + dedup).
pub fn rows_to_object<I, R>(schema: &[Attr], rows: I) -> Object
where
    I: IntoIterator<Item = R>,
    R: IntoIterator<Item = Atom>,
{
    debug_assert!(
        schema.windows(2).all(|w| w[0] < w[1]),
        "columnar schema not in canonical attribute order"
    );
    let elements: Vec<Object> = rows
        .into_iter()
        .map(|row| {
            let entries: Vec<(Attr, Object)> = schema
                .iter()
                .copied()
                .zip(row.into_iter().map(Object::Atom))
                .collect();
            debug_assert_eq!(entries.len(), schema.len(), "row/schema arity mismatch");
            Object::tuple_from_sorted(entries)
        })
        .collect();
    Object::set_from_vec(elements)
}

/// Builds the canonical set of the elements of `set` at `positions` —
/// the selection boundary: row positions found by a columnar scan turn
/// back into interned elements by reference (an `Arc` bump per row, no
/// re-interning).
pub fn gather(set: &Set, positions: impl IntoIterator<Item = usize>) -> Object {
    let elements = set.elements();
    Object::set_from_vec(positions.into_iter().map(|i| elements[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{obj, store};
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide row threshold (or
    /// depend on counters it gates): the test harness runs tests of one
    /// binary concurrently.
    static KNOB_LOCK: Mutex<()> = Mutex::new(());

    fn rel(n: i64, classes: i64) -> Object {
        Object::set((0..n).map(|i| {
            Object::tuple([
                (Attr::new("k"), Object::int(i)),
                (Attr::new("v"), Object::int(i % classes)),
            ])
        }))
    }

    #[test]
    fn build_images_a_flat_relation_in_element_order() {
        let o = rel(10, 3);
        let set = o.as_set().unwrap();
        let col = build(set).unwrap();
        assert_eq!(col.rows(), 10);
        assert_eq!(col.arity(), 2);
        let k = col.column_of(Attr::new("k")).unwrap();
        let v = col.column_of(Attr::new("v")).unwrap();
        for (r, e) in set.elements().iter().enumerate() {
            let t = e.as_tuple().unwrap();
            assert_eq!(
                t.get(Attr::new("k")),
                &Object::Atom(col.column(k)[r].clone())
            );
            assert_eq!(
                t.get(Attr::new("v")),
                &Object::Atom(col.column(v)[r].clone())
            );
        }
        assert!(col.column_of(Attr::new("absent")).is_none());
        assert_eq!(col.row(0).count(), 2);
    }

    #[test]
    fn ineligible_shapes_are_rejected() {
        // Atoms, nested values, heterogeneous schemas, empty set.
        assert!(build(obj!({1, 2, 3}).as_set().unwrap()).is_none());
        assert!(build(obj!({[a: 1, b: {2}]}).as_set().unwrap()).is_none());
        assert!(build(obj!({[a: 1], [a: 2, b: 3]}).as_set().unwrap()).is_none());
        assert!(build(obj!({[a: 1], [b: 2]}).as_set().unwrap()).is_none());
        assert!(build(Object::empty_set().as_set().unwrap()).is_none());
        // Mixed tuple/set elements.
        assert!(build(obj!({[a: 1], {2}}).as_set().unwrap()).is_none());
    }

    #[test]
    fn arena_for_thresholds_and_memoizes() {
        let _guard = KNOB_LOCK.lock().unwrap();
        let saved = columnar_min_rows();
        set_columnar_min_rows(8);
        let small = rel(4, 2);
        assert!(arena_for(small.as_set().unwrap()).is_none());

        let big = rel(32, 5);
        let before = stats();
        let a1 = arena_for(big.as_set().unwrap()).unwrap();
        let a2 = arena_for(big.as_set().unwrap()).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "second ask must hit the cache");
        let after = stats();
        assert!(after.built > before.built);
        assert!(after.hits > before.hits);
        set_columnar_min_rows(saved);
    }

    #[test]
    fn negative_answers_are_memoized() {
        let _guard = KNOB_LOCK.lock().unwrap();
        let saved = columnar_min_rows();
        set_columnar_min_rows(2);
        // The depth pre-filter rejects nested shapes before the cache, so
        // use a same-depth ineligible shape: uniform attrs are required
        // and this set's rows disagree on schema.
        let o = Object::set((0..8).map(|i| {
            if i % 2 == 0 {
                Object::tuple([(Attr::new("a"), Object::int(i))])
            } else {
                Object::tuple([(Attr::new("b"), Object::int(i))])
            }
        }));
        let id = o.as_set().unwrap().node_id();
        assert!(arena_for(o.as_set().unwrap()).is_none());
        assert!(
            matches!(cache().read().get(&id), Some(None)),
            "ineligible shape must be negatively cached"
        );
        assert!(arena_for(o.as_set().unwrap()).is_none());
        set_columnar_min_rows(saved);
    }

    #[test]
    fn rows_to_object_is_canonical_at_the_boundary() {
        let o = rel(80, 7);
        let set = o.as_set().unwrap();
        let col = build(set).unwrap();
        // Rebuild the whole relation from its columns: same canonical
        // node, bit-identical.
        let rebuilt = rows_to_object(
            col.schema(),
            (0..col.rows()).map(|r| col.row(r).cloned().collect::<Vec<_>>()),
        );
        assert_eq!(rebuilt.node_id(), o.node_id());
        // Duplicate rows collapse through the canonical constructors.
        let dup = rows_to_object(
            col.schema(),
            (0..col.rows())
                .chain(0..col.rows())
                .map(|r| col.row(r).cloned().collect::<Vec<_>>()),
        );
        assert_eq!(dup.node_id(), o.node_id());
    }

    #[test]
    fn gather_matches_interned_selection() {
        let o = rel(50, 5);
        let set = o.as_set().unwrap();
        let col = build(set).unwrap();
        let v = col.column_of(Attr::new("v")).unwrap();
        let hits: Vec<usize> = (0..col.rows())
            .filter(|&r| col.column(v)[r] == Atom::Int(2))
            .collect();
        let columnar = gather(set, hits.iter().copied());
        let interned = Object::set(
            set.elements()
                .iter()
                .filter(|e| e.dot("v") == &Object::int(2))
                .cloned(),
        );
        assert_eq!(columnar.node_id(), interned.node_id());
        assert_eq!(columnar, interned);
    }

    #[test]
    fn gc_purges_arena_cache_entries() {
        let _guard = KNOB_LOCK.lock().unwrap();
        let saved = columnar_min_rows();
        set_columnar_min_rows(2);
        let id = {
            let o = rel(12, 3);
            let set = o.as_set().unwrap();
            arena_for(set).unwrap();
            set.node_id()
        };
        assert!(cache().read().contains_key(&id));
        // The relation (and its rows) are now garbage; a sweep frees the
        // node and must purge the arena entry with it.
        store::collect();
        assert!(
            !cache().read().contains_key(&id),
            "arena cache entry for a freed set must be purged"
        );
        set_columnar_min_rows(saved);
    }
}

//! The complex-object value type (paper Definition 2.1) and its canonical
//! (normalized, reduced) representation.
//!
//! # Canonical form
//!
//! Every [`Object`] value in this library is kept in a canonical form chosen
//! so that the paper's *semantic* equality (Definition 2.2) coincides with
//! structural `==`:
//!
//! - **⊤-propagation** — any tuple or set containing ⊤ *is* ⊤
//!   (Def 2.2(iv): "every object containing ⊤ is equal to ⊤");
//! - **⊥-elimination** — ⊥-valued attributes are dropped from tuples
//!   (`[a:1, b:⊥] = [a:1]`, Def 2.2(ii) with the `O.a = ⊥` convention) and
//!   ⊥ elements are dropped from sets (`{1, ⊥} = {1}`, Def 2.2(iii));
//! - **reduction** — a set never contains two distinct elements `o₁ ≤ o₂`
//!   (Definition 3.2'atop reduced objects); the dominated element is removed;
//! - **determinism** — tuple entries are sorted by attribute id and set
//!   elements by the canonical total order [`Object::cmp`], then deduplicated.
//!
//! The constructors [`Object::tuple`], [`Object::try_tuple`] and
//! [`Object::set`] enforce all four properties, and the inner representations
//! are private, so canonicality is an invariant of the type: any `Object` you
//! can get your hands on is reduced. This is what makes Theorem 3.2
//! (anti-symmetry of `≤`) — and hence the lattice structure — hold for every
//! representable value.

use crate::order::le;
use crate::store::{self, Meta, NodeId, SetNode, TupleNode};
use crate::{Atom, Attr, ObjectError};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A complex object (paper Definition 2.1).
///
/// ```
/// use co_object::{obj, Object};
///
/// // A nested relation (paper Example 2.1):
/// let nested = obj!({
///     [name: peter, children: {max, susan}],
///     [name: john,  children: {mary, john, frank}],
///     [name: mary,  children: {}]
/// });
/// assert!(matches!(nested, Object::Set(_)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Object {
    /// ⊥ — the undefined object (`BOTTOM`).
    Bottom,
    /// An atomic object.
    Atom(Atom),
    /// A tuple object `[a1: O1, …, an: On]`.
    Tuple(Tuple),
    /// A set object `{O1, …, On}`.
    Set(Set),
    /// ⊤ — the inconsistent object (`TOP`).
    Top,
}

/// The interior of a tuple object: attribute/value entries sorted by
/// attribute id, with no ⊥ or ⊤ values (canonical form).
///
/// Interiors are **hash-consed** (see [`crate::store`]): content-equal
/// tuples share one allocation carrying a stable [`NodeId`], a cached hash,
/// and precomputed [`Meta`]. Cloning is an [`Arc`] bump; equality is a
/// pointer comparison; tuple objects are immutable.
#[derive(Clone)]
pub struct Tuple(Arc<TupleNode>);

/// The interior of a set object: canonically ordered, deduplicated, reduced
/// elements with no ⊥ or ⊤ members.
///
/// Interiors are **hash-consed** (see [`crate::store`]): content-equal sets
/// share one allocation carrying a stable [`NodeId`], a cached hash, and
/// precomputed [`Meta`]. Cloning is an [`Arc`] bump; equality is a pointer
/// comparison; set objects are immutable.
#[derive(Clone)]
pub struct Set(Arc<SetNode>);

// ---------------------------------------------------------------------------
// Tuple
// ---------------------------------------------------------------------------

impl Tuple {
    /// The number of (non-⊥) attributes.
    pub fn len(&self) -> usize {
        self.0.entries.len()
    }

    /// True when the tuple is `[]`.
    pub fn is_empty(&self) -> bool {
        self.0.entries.is_empty()
    }

    /// Iterates entries in canonical (attribute-id) order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Attr, Object)> {
        self.0.entries.iter()
    }

    /// Entries as a slice, sorted by attribute id.
    pub fn entries(&self) -> &[(Attr, Object)] {
        &self.0.entries
    }

    /// The value at attribute `a`. Returns [`Object::Bottom`] when absent:
    /// the paper's convention `O.a = ⊥` for attributes not in the tuple.
    pub fn get(&self, a: Attr) -> &Object {
        static BOTTOM: Object = Object::Bottom;
        match self.0.entries.binary_search_by_key(&a, |(k, _)| *k) {
            Ok(i) => &self.0.entries[i].1,
            Err(_) => &BOTTOM,
        }
    }

    /// True when attribute `a` is present (with a non-⊥ value).
    pub fn contains(&self, a: Attr) -> bool {
        self.0.entries.binary_search_by_key(&a, |(k, _)| *k).is_ok()
    }

    /// The attributes of this tuple, in canonical order.
    pub fn attrs(&self) -> impl Iterator<Item = Attr> + '_ {
        self.0.entries.iter().map(|(a, _)| *a)
    }

    /// The stable id of this tuple's interned node.
    pub fn node_id(&self) -> NodeId {
        self.0.id
    }

    /// Precomputed structural metadata of this tuple.
    pub fn meta(&self) -> &Meta {
        &self.0.meta
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes canonical equality coincide with allocation
        // identity: O(1).
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The content hash is cached at interning time: O(1).
        state.write_u64(self.0.hash);
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a (Attr, Object);
    type IntoIter = std::slice::Iter<'a, (Attr, Object)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.entries.iter()
    }
}

// ---------------------------------------------------------------------------
// Set
// ---------------------------------------------------------------------------

impl Set {
    /// The number of elements.
    pub fn len(&self) -> usize {
        self.0.elements.len()
    }

    /// True when the set is `{}`.
    pub fn is_empty(&self) -> bool {
        self.0.elements.is_empty()
    }

    /// Iterates elements in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Object> {
        self.0.elements.iter()
    }

    /// Elements as a slice, in canonical order.
    pub fn elements(&self) -> &[Object] {
        &self.0.elements
    }

    /// Membership test (by canonical equality), via binary search.
    pub fn contains(&self, o: &Object) -> bool {
        self.0.elements.binary_search_by(|e| e.cmp(o)).is_ok()
    }

    /// The stable id of this set's interned node.
    pub fn node_id(&self) -> NodeId {
        self.0.id
    }

    /// Precomputed structural metadata of this set.
    pub fn meta(&self) -> &Meta {
        &self.0.meta
    }
}

impl PartialEq for Set {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes canonical equality coincide with allocation
        // identity: O(1).
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Set {}

impl std::hash::Hash for Set {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The content hash is cached at interning time: O(1).
        state.write_u64(self.0.hash);
    }
}

impl<'a> IntoIterator for &'a Set {
    type Item = &'a Object;
    type IntoIter = std::slice::Iter<'a, Object>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.elements.iter()
    }
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

impl Object {
    /// Builds an atomic object.
    pub fn atom(a: impl Into<Atom>) -> Object {
        Object::Atom(a.into())
    }

    /// Builds an integer atom object.
    pub fn int(v: i64) -> Object {
        Object::Atom(Atom::Int(v))
    }

    /// Builds a float atom object.
    pub fn float(v: f64) -> Object {
        Object::Atom(Atom::float(v))
    }

    /// Builds a string atom object.
    pub fn str(s: impl AsRef<str>) -> Object {
        Object::Atom(Atom::str(s))
    }

    /// Builds a boolean atom object.
    pub fn bool(v: bool) -> Object {
        Object::Atom(Atom::Bool(v))
    }

    /// The empty tuple `[]`. Note that `[] ≠ ⊥` (and `⊥ < []`): the empty
    /// tuple carries the information "this is a tuple".
    pub fn empty_tuple() -> Object {
        Object::Tuple(Tuple(store::intern_tuple(Vec::new())))
    }

    /// The empty set `{}`. Note that `{} ≠ ⊥` (and `⊥ < {}`).
    pub fn empty_set() -> Object {
        Object::Set(Set(store::intern_set(Vec::new())))
    }

    /// Builds a tuple object, normalizing to canonical form
    /// (⊤-propagation, ⊥-elimination, attribute sorting).
    ///
    /// Duplicate attributes with *equal* values collapse to one entry;
    /// duplicates with conflicting values are an error (the paper requires
    /// attribute names in a tuple to be distinct).
    pub fn try_tuple<I, A>(entries: I) -> Result<Object, ObjectError>
    where
        I: IntoIterator<Item = (A, Object)>,
        A: Into<Attr>,
    {
        let mut v: Vec<(Attr, Object)> = Vec::new();
        for (a, o) in entries {
            let a = a.into();
            match o {
                Object::Top => return Ok(Object::Top),
                Object::Bottom => {}
                o => v.push((a, o)),
            }
        }
        v.sort_by_key(|(a, _)| *a);
        let mut i = 1;
        while i < v.len() {
            if v[i - 1].0 == v[i].0 {
                if v[i - 1].1 == v[i].1 {
                    v.remove(i);
                } else {
                    return Err(ObjectError::DuplicateAttribute(v[i].0));
                }
            } else {
                i += 1;
            }
        }
        Ok(Object::Tuple(Tuple(store::intern_tuple(v))))
    }

    /// Builds a tuple object; panics on conflicting duplicate attributes.
    /// Prefer [`Object::try_tuple`] for untrusted input.
    pub fn tuple<I, A>(entries: I) -> Object
    where
        I: IntoIterator<Item = (A, Object)>,
        A: Into<Attr>,
    {
        Object::try_tuple(entries).expect("tuple literal with conflicting duplicate attribute")
    }

    /// Builds a set object, normalizing to canonical form: ⊤-propagation,
    /// ⊥-elimination, reduction (dominated elements removed), canonical
    /// ordering, deduplication.
    ///
    /// ```
    /// use co_object::{obj, Object};
    /// // Reduction: [a1: 3] ≤ [a1: 3, a2: 5], so it disappears (Example 3.2).
    /// let s = obj!({ [a1: 3, a2: 5], [a1: 3] });
    /// assert_eq!(s, obj!({ [a1: 3, a2: 5] }));
    /// ```
    pub fn set<I>(elements: I) -> Object
    where
        I: IntoIterator<Item = Object>,
    {
        let mut v: Vec<Object> = Vec::new();
        for e in elements {
            match e {
                Object::Top => return Object::Top,
                Object::Bottom => {}
                e => v.push(e),
            }
        }
        reduce_elements(&mut v);
        Object::Set(Set(store::intern_set(v)))
    }

    /// Rebuilds a set object from a [`Set`] interior plus extra elements —
    /// used by lattice union to avoid re-normalizing the existing part.
    pub(crate) fn set_from_vec(mut v: Vec<Object>) -> Object {
        v.retain(|e| !matches!(e, Object::Bottom));
        if v.iter().any(|e| matches!(e, Object::Top)) {
            return Object::Top;
        }
        reduce_elements(&mut v);
        Object::Set(Set(store::intern_set(v)))
    }

    /// Internal: build a tuple from entries already known to be sorted,
    /// distinct, and free of ⊥; still propagates ⊤.
    pub(crate) fn tuple_from_sorted(v: Vec<(Attr, Object)>) -> Object {
        debug_assert!(v.windows(2).all(|w| w[0].0 < w[1].0), "entries not sorted");
        if v.iter().any(|(_, o)| matches!(o, Object::Top)) {
            return Object::Top;
        }
        debug_assert!(!v.iter().any(|(_, o)| matches!(o, Object::Bottom)));
        Object::Tuple(Tuple(store::intern_tuple(v)))
    }

    /// The stable interned-node id, for composite (tuple/set) objects.
    ///
    /// Two objects of the same kind are equal **iff** their node ids are
    /// equal — the id is the O(1) proxy for canonical equality that the
    /// engine's indexes and the store's memo tables key off.
    pub fn node_id(&self) -> Option<NodeId> {
        match self {
            Object::Tuple(t) => Some(t.node_id()),
            Object::Set(s) => Some(s.node_id()),
            _ => None,
        }
    }

    /// Precomputed structural metadata, for composite (tuple/set) objects.
    pub fn meta(&self) -> Option<&Meta> {
        match self {
            Object::Tuple(t) => Some(t.meta()),
            Object::Set(s) => Some(s.meta()),
            _ => None,
        }
    }
}

/// Reduces a vector of (already canonical, non-⊥/⊤) elements in place:
/// sorts canonically, removes duplicates, then removes every element that is
/// a strict sub-object of another element ("the reduced version of a set S is
/// constructed through eliminating from S the elements which are sub-objects
/// of other elements in S", Definition 3.4).
///
/// Domination between distinct elements is only possible when kinds match,
/// and for tuples only when the attribute set of one contains the other's;
/// moreover two distinct *flat* tuples (atomic values) over the same
/// attribute set can never dominate each other. Grouping by attribute
/// fingerprint therefore reduces the ubiquitous uniform-relation case to
/// sort + dedup, with the quadratic pass reserved for genuinely nested or
/// heterogeneous sets (benchmark F6 tracks both).
pub(crate) fn reduce_elements(v: &mut Vec<Object>) {
    v.sort();
    v.dedup();
    if v.len() <= 1 {
        return;
    }

    let mut set_idx: Vec<usize> = Vec::new();
    // Tuple groups keyed by exact attribute list; the flag records whether
    // every member has only atomic values.
    let mut tuple_groups: rustc_hash::FxHashMap<Vec<Attr>, (Vec<usize>, bool)> =
        rustc_hash::FxHashMap::default();
    for (i, e) in v.iter().enumerate() {
        match e {
            Object::Set(_) => set_idx.push(i),
            Object::Tuple(t) => {
                let key: Vec<Attr> = t.attrs().collect();
                let flat = t.meta().flat;
                let entry = tuple_groups.entry(key).or_insert((Vec::new(), true));
                entry.0.push(i);
                entry.1 &= flat;
            }
            // Distinct atoms are incomparable; ⊥/⊤ cannot appear here.
            _ => {}
        }
    }

    let mut dominated = vec![false; v.len()];

    // Set elements: full pairwise (sets of sets are rare and usually small).
    for &i in &set_idx {
        for &j in &set_idx {
            if i != j && le(&v[i], &v[j]) {
                dominated[i] = true;
                break;
            }
        }
    }

    // Tuple elements: compare group A against group B only when
    // attrs(A) ⊆ attrs(B) (a necessary condition for domination), and skip
    // the same-group pass entirely when every member is flat (after dedup,
    // same-attrs flat tuples are pairwise incomparable).
    type TupleGroup<'g> = (&'g Vec<Attr>, &'g (Vec<usize>, bool));
    let groups: Vec<TupleGroup<'_>> = tuple_groups.iter().collect();
    for (ka, (ia, flat_a)) in &groups {
        for (kb, (ib, _)) in &groups {
            let same = ka == kb;
            if same && *flat_a {
                continue;
            }
            if !same && !is_attr_subset(ka, kb) {
                continue;
            }
            if same {
                // Within one attribute set, domination between distinct
                // tuples additionally requires the *atomic* attribute
                // values to agree exactly (an atom is only ≤ an equal
                // atom). Partition by that fingerprint: uniform-schema
                // relations with nested values (the common case) split
                // into tiny buckets, avoiding the quadratic pass.
                let mut buckets: rustc_hash::FxHashMap<Vec<(Attr, Atom)>, Vec<usize>> =
                    rustc_hash::FxHashMap::default();
                for &i in ia.iter() {
                    let t = v[i].as_tuple().expect("tuple group");
                    let fp: Vec<(Attr, Atom)> = t
                        .entries()
                        .iter()
                        .filter_map(|(a, o)| o.as_atom().map(|atom| (*a, atom.clone())))
                        .collect();
                    buckets.entry(fp).or_default().push(i);
                }
                for bucket in buckets.values() {
                    if bucket.len() <= 1 {
                        continue;
                    }
                    for &i in bucket {
                        if dominated[i] {
                            continue;
                        }
                        for &j in bucket {
                            if i != j && le(&v[i], &v[j]) {
                                dominated[i] = true;
                                break;
                            }
                        }
                    }
                }
            } else {
                for &i in ia.iter() {
                    if dominated[i] {
                        continue;
                    }
                    for &j in ib.iter() {
                        if i != j && le(&v[i], &v[j]) {
                            dominated[i] = true;
                            break;
                        }
                    }
                }
            }
        }
    }

    if dominated.iter().any(|d| *d) {
        let mut k = 0;
        v.retain(|_| {
            let d = dominated[k];
            k += 1;
            !d
        });
    }
}

/// True when `a`'s attributes are a subset of `b`'s (both sorted by id).
fn is_attr_subset(a: &[Attr], b: &[Attr]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                Ordering::Less => continue,
                Ordering::Equal => continue 'outer,
                Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

impl Object {
    /// True for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Object::Bottom)
    }

    /// True for ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, Object::Top)
    }

    /// True for atomic objects.
    pub fn is_atom(&self) -> bool {
        matches!(self, Object::Atom(_))
    }

    /// True for tuple objects.
    pub fn is_tuple(&self) -> bool {
        matches!(self, Object::Tuple(_))
    }

    /// True for set objects.
    pub fn is_set(&self) -> bool {
        matches!(self, Object::Set(_))
    }

    /// The atom, if this is an atomic object.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Object::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The tuple interior, if this is a tuple object.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            Object::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// The set interior, if this is a set object.
    pub fn as_set(&self) -> Option<&Set> {
        match self {
            Object::Set(s) => Some(s),
            _ => None,
        }
    }

    /// `O.a` — the value of attribute `a`, with the paper's convention that
    /// missing attributes read as ⊥. Non-tuples also read as ⊥ (there is
    /// nothing at `O.a`), except ⊤ whose every projection is ⊤.
    pub fn dot(&self, a: impl Into<Attr>) -> &Object {
        static BOTTOM: Object = Object::Bottom;
        match self {
            Object::Tuple(t) => t.get(a.into()),
            Object::Top => self,
            _ => &BOTTOM,
        }
    }

    /// A short name for the object's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Object::Bottom => "bottom",
            Object::Atom(_) => "atom",
            Object::Tuple(_) => "tuple",
            Object::Set(_) => "set",
            Object::Top => "top",
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical total order
// ---------------------------------------------------------------------------

/// The canonical **total** order on objects. This is *not* the sub-object
/// order `≤` (which is partial; see [`crate::order::le`]); it exists so set
/// elements have one deterministic arrangement, making structural equality,
/// hashing, and diffing well-defined.
///
/// Kinds order as `⊥ < atoms < tuples < sets < ⊤`; atoms by [`Atom`]'s
/// order; tuples and sets lexicographically.
impl Ord for Object {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(o: &Object) -> u8 {
            match o {
                Object::Bottom => 0,
                Object::Atom(_) => 1,
                Object::Tuple(_) => 2,
                Object::Set(_) => 3,
                Object::Top => 4,
            }
        }
        match (self, other) {
            (Object::Atom(a), Object::Atom(b)) => a.cmp(b),
            (Object::Tuple(a), Object::Tuple(b)) => {
                // Interning: equal values are always the same node, so the
                // pointer check fully decides equality; unequal values walk
                // lexicographically (with O(1) subtree-equality along the
                // way).
                if Arc::ptr_eq(&a.0, &b.0) {
                    return Ordering::Equal;
                }
                a.iter()
                    .map(|(k, v)| (k, v))
                    .cmp(b.iter().map(|(k, v)| (k, v)))
            }
            (Object::Set(a), Object::Set(b)) => {
                if Arc::ptr_eq(&a.0, &b.0) {
                    return Ordering::Equal;
                }
                a.iter().cmp(b.iter())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl PartialOrd for Object {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

impl From<Atom> for Object {
    fn from(a: Atom) -> Self {
        Object::Atom(a)
    }
}

impl From<i64> for Object {
    fn from(v: i64) -> Self {
        Object::int(v)
    }
}

impl From<i32> for Object {
    fn from(v: i32) -> Self {
        Object::int(v as i64)
    }
}

impl From<f64> for Object {
    fn from(v: f64) -> Self {
        Object::float(v)
    }
}

impl From<bool> for Object {
    fn from(v: bool) -> Self {
        Object::bool(v)
    }
}

impl From<&str> for Object {
    fn from(v: &str) -> Self {
        Object::str(v)
    }
}

impl From<String> for Object {
    fn from(v: String) -> Self {
        Object::Atom(Atom::from(v))
    }
}

impl fmt::Debug for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug mirrors Display (the paper notation) — far more readable in
        // test failures than a derived tree dump.
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn example_2_2_equality_identities() {
        // [a:1, b:2] = [b:2, a:1]
        assert_eq!(
            Object::tuple([(Attr::new("a"), obj!(1)), (Attr::new("b"), obj!(2))]),
            Object::tuple([(Attr::new("b"), obj!(2)), (Attr::new("a"), obj!(1))])
        );
        // [a:1, b:2] = [a:1, b:2, c:⊥]
        assert_eq!(
            obj!([a: 1, b: 2]),
            Object::tuple([
                (Attr::new("a"), obj!(1)),
                (Attr::new("b"), obj!(2)),
                (Attr::new("c"), Object::Bottom),
            ])
        );
        // {1,2,3} = {2,3,1}
        assert_eq!(obj!({1, 2, 3}), obj!({2, 3, 1}));
        // {1, ⊥} = {1}
        assert_eq!(Object::set([obj!(1), Object::Bottom]), obj!({ 1 }));
        // [a: {⊤}, b: 2] = ⊤
        assert_eq!(
            Object::tuple([
                (Attr::new("a"), Object::set([Object::Top])),
                (Attr::new("b"), obj!(2)),
            ]),
            Object::Top
        );
    }

    #[test]
    fn tuple_set_and_bare_value_are_distinct() {
        // "[a: x], {x}, and x are not equal" (paper, after Example 2.2).
        let x = obj!(7);
        assert_ne!(obj!([a: 7]), x);
        assert_ne!(obj!({ 7 }), x);
        assert_ne!(obj!([a: 7]), obj!({ 7 }));
    }

    #[test]
    fn empty_tuple_and_empty_set_are_distinct_and_not_bottom() {
        assert_ne!(Object::empty_tuple(), Object::empty_set());
        assert_ne!(Object::empty_tuple(), Object::Bottom);
        assert_ne!(Object::empty_set(), Object::Bottom);
    }

    #[test]
    fn set_reduction_removes_dominated_elements() {
        // Example 3.2: {[a1:3, a2:5], [a1:3]} reduces to {[a1:3, a2:5]}.
        let s = obj!({ [a1: 3, a2: 5], [a1: 3] });
        assert_eq!(s, obj!({ [a1: 3, a2: 5] }));
        let set = s.as_set().unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn set_reduction_keeps_incomparable_elements() {
        let s = obj!({ [a: 1], [b: 2], [a: 2] });
        assert_eq!(s.as_set().unwrap().len(), 3);
    }

    #[test]
    fn nested_reduction_applies_at_every_level() {
        let s = obj!([r: { {1}, {1, 2} }]);
        assert_eq!(s, obj!([r: { {1, 2} }]));
    }

    #[test]
    fn duplicate_attr_equal_values_collapse() {
        let t = Object::try_tuple([(Attr::new("a"), obj!(1)), (Attr::new("a"), obj!(1))]);
        assert_eq!(t.unwrap(), obj!([a: 1]));
    }

    #[test]
    fn duplicate_attr_conflicting_values_error() {
        let t = Object::try_tuple([(Attr::new("a"), obj!(1)), (Attr::new("a"), obj!(2))]);
        assert_eq!(t, Err(ObjectError::DuplicateAttribute(Attr::new("a"))));
    }

    #[test]
    fn top_propagates_through_tuples_and_sets() {
        assert!(Object::tuple([(Attr::new("a"), Object::Top)]).is_top());
        assert!(Object::set([obj!(1), Object::Top]).is_top());
        assert!(Object::set([Object::set([Object::Top])]).is_top());
    }

    #[test]
    fn bottom_vanishes_from_sets_and_tuples() {
        assert_eq!(Object::set([Object::Bottom]), Object::empty_set());
        assert_eq!(
            Object::tuple([(Attr::new("a"), Object::Bottom)]),
            Object::empty_tuple()
        );
    }

    #[test]
    fn dot_reads_missing_attributes_as_bottom() {
        let t = obj!([name: peter, age: 25]);
        assert_eq!(t.dot("age"), &obj!(25));
        assert!(t.dot("address").is_bottom());
        assert!(obj!(5).dot("a").is_bottom());
        assert!(Object::Top.dot("a").is_top());
    }

    #[test]
    fn set_contains_uses_canonical_order() {
        let s = obj!({3, 1, 2});
        let set = s.as_set().unwrap();
        assert!(set.contains(&obj!(2)));
        assert!(!set.contains(&obj!(4)));
    }

    #[test]
    fn canonical_order_is_total_and_consistent_with_eq() {
        let objects = [
            Object::Bottom,
            obj!(1),
            obj!(foo),
            obj!([a: 1]),
            obj!({1, 2}),
            Object::Top,
        ];
        for a in &objects {
            for b in &objects {
                let c1 = a.cmp(b);
                let c2 = b.cmp(a);
                assert_eq!(c1, c2.reverse());
                assert_eq!(c1 == Ordering::Equal, a == b);
            }
        }
    }

    #[test]
    fn paper_example_2_1_all_forms_construct() {
        // Atomic objects
        let _ = obj!(john);
        let _ = obj!(25);
        // Set of atoms
        let _ = obj!({john, mary, susan});
        // Relational tuple
        let _ = obj!([name: peter, age: 25]);
        // Hierarchical tuples
        let _ = obj!([name: [first: john, last: doe], age: 25]);
        let _ = obj!([name: [first: john, last: doe], children: {john, mary, susan}]);
        // A relation
        let _ = obj!({[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]});
        // A relation with null values
        let _ = obj!({[name: peter], [name: john, age: 7], [name: mary, address: austin]});
        // A nested relation
        let _ = obj!({
            [name: peter, children: {max, susan}],
            [name: john, children: {mary, john, frank}],
            [name: mary, children: {}]
        });
        // A relational database
        let _ = obj!([
            r1: {[name: peter, age: 25], [name: john, age: 7]},
            r2: {[name: john, address: austin], [name: mary, address: paris]}
        ]);
    }
}

//! Serde support for objects.
//!
//! Objects serialize to an adjacently-tagged representation that survives
//! JSON round-trips, and **re-normalize on deserialization**: whatever a
//! peer sends, the value you get back satisfies the canonical-form
//! invariants. Attribute names travel as strings (interning ids are
//! process-local).

use crate::{Atom, Attr, Object};
use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Wire representation. Kept separate from [`Object`] so the canonical-form
/// invariants never depend on serde input.
#[derive(Serialize, Deserialize)]
#[serde(tag = "t", content = "v", rename_all = "snake_case")]
enum Repr {
    Bottom,
    Top,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Tuple(Vec<(String, Repr)>),
    Set(Vec<Repr>),
}

fn to_repr(o: &Object) -> Repr {
    match o {
        Object::Bottom => Repr::Bottom,
        Object::Top => Repr::Top,
        Object::Atom(Atom::Bool(b)) => Repr::Bool(*b),
        Object::Atom(Atom::Int(i)) => Repr::Int(*i),
        Object::Atom(Atom::Float(f)) => Repr::Float(f.get()),
        Object::Atom(Atom::Str(s)) => Repr::Str(s.to_string()),
        Object::Tuple(t) => Repr::Tuple(
            t.iter()
                .map(|(a, v)| (a.name().to_string(), to_repr(v)))
                .collect(),
        ),
        Object::Set(s) => Repr::Set(s.iter().map(to_repr).collect()),
    }
}

fn from_repr(r: Repr) -> Result<Object, String> {
    Ok(match r {
        Repr::Bottom => Object::Bottom,
        Repr::Top => Object::Top,
        Repr::Bool(b) => Object::bool(b),
        Repr::Int(i) => Object::int(i),
        Repr::Float(f) => Object::float(f),
        Repr::Str(s) => Object::Atom(Atom::from(s)),
        Repr::Tuple(entries) => {
            let converted: Result<Vec<(Attr, Object)>, String> = entries
                .into_iter()
                .map(|(a, v)| Ok((Attr::new(a), from_repr(v)?)))
                .collect();
            Object::try_tuple(converted?).map_err(|e| e.to_string())?
        }
        Repr::Set(elems) => {
            let converted: Result<Vec<Object>, String> = elems.into_iter().map(from_repr).collect();
            Object::set(converted?)
        }
    })
}

impl Serialize for Object {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        to_repr(self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Object {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = Repr::deserialize(deserializer)?;
        from_repr(repr).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    fn roundtrip(o: &Object) -> Object {
        let json = serde_json::to_string(o).unwrap();
        serde_json::from_str(&json).unwrap()
    }

    #[test]
    fn roundtrips_all_shapes() {
        for o in [
            Object::Bottom,
            Object::Top,
            obj!(42),
            obj!(2.5),
            obj!(true),
            obj!(john),
            obj!("with space"),
            obj!([]),
            obj!({}),
            obj!([name: [first: john], children: {mary, susan}, age: 25]),
            obj!({[a: 1], [b: {1, 2}], 3}),
        ] {
            assert_eq!(roundtrip(&o), o, "roundtrip failed for {o}");
        }
    }

    #[test]
    fn deserialization_normalizes() {
        // A wire value with a ⊥ set element and a dominated element must
        // come back reduced.
        let json = r#"{"t":"set","v":[
            {"t":"bottom"},
            {"t":"tuple","v":[["a",{"t":"int","v":1}]]},
            {"t":"tuple","v":[["a",{"t":"int","v":1}],["b",{"t":"int","v":2}]]}
        ]}"#;
        let o: Object = serde_json::from_str(json).unwrap();
        assert_eq!(o, obj!({[a: 1, b: 2]}));
    }

    #[test]
    fn deserialization_propagates_top() {
        let json = r#"{"t":"tuple","v":[["a",{"t":"top"}]]}"#;
        let o: Object = serde_json::from_str(json).unwrap();
        assert!(o.is_top());
    }

    #[test]
    fn conflicting_duplicate_attributes_fail_to_deserialize() {
        let json = r#"{"t":"tuple","v":[["a",{"t":"int","v":1}],["a",{"t":"int","v":2}]]}"#;
        let r: Result<Object, _> = serde_json::from_str(json);
        assert!(r.is_err());
    }
}

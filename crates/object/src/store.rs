//! The hash-consed object store: interned composite nodes with stable ids,
//! cached hashes, and precomputed structural metadata.
//!
//! # Design
//!
//! Every [`Tuple`](crate::Tuple) and [`Set`](crate::Set) interior in the
//! process is a node in one global store. Construction goes through
//! [`intern_tuple`] / [`intern_set`] (the only way to create the node
//! types), which deduplicate by content: **canonically-equal composites are
//! always the same `Arc` allocation**. Three properties follow:
//!
//! - **O(1) equality** — `==` on tuples, sets, and therefore whole
//!   [`Object`]s is a pointer comparison (plus an atom compare for leaves);
//!   the canonical-form invariant of `value.rs` makes this coincide with
//!   the paper's semantic equality (Definition 2.2).
//! - **O(1) hashing** — every node carries the hash of its contents,
//!   computed once at interning time from the (already cached) child
//!   hashes.
//! - **Stable identity** — every node carries a process-unique [`NodeId`]
//!   that is never recycled, so downstream layers (the engine's set
//!   indexes, the memo tables below) can key off identity without the
//!   ABA hazard of raw `Arc` addresses.
//!
//! Nodes also carry a [`Meta`] record — depth, node count, atom count,
//! maximum fanout, a contains-set flag, and a flatness flag — computed in
//! O(width) at interning time from the children's metadata, making the
//! measures in [`crate::measure`] O(1) for interned values.
//!
//! # Memo tables
//!
//! The store hosts memo caches for the three binary lattice operations —
//! the sub-object order `≤`, union, and intersection — keyed by
//! `(NodeId, NodeId)`. Only comparisons of *large* nodes (see
//! [`MEMO_MIN_SIZE`]) are memoized: small comparisons are cheaper than a
//! lock round-trip. Tables are bounded; on overflow they are cleared
//! wholesale (simple epoch eviction — see ROADMAP for the planned
//! refinement).
//!
//! # Lifetime
//!
//! The store holds strong references: interned nodes currently live for the
//! life of the process, like interned attribute names. That is the right
//! trade for fixpoint workloads (iterations recreate the same values over
//! and over); a weak-reference + sweep design is a recorded follow-up.

use crate::{Attr, Object};
use parking_lot::RwLock;
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A stable, process-unique identifier of an interned composite node.
///
/// Ids are assigned in interning order, never reused, and shared across the
/// tuple and set namespaces (an id names one node of either kind). They are
/// meaningful only within the current process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u64);

impl NodeId {
    /// The raw id value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Precomputed structural metadata of an interned node, filled in at
/// interning time from the children's (already cached) metadata.
#[derive(Clone, Copy, Debug)]
pub struct Meta {
    /// The paper's depth measure (Definition 3.2) of this node. Composites
    /// cannot contain ⊤, so depth is always finite here.
    pub depth: u64,
    /// Total node count of the subtree (as in [`crate::measure::size`]).
    pub size: u64,
    /// Number of atom leaves in the subtree.
    pub atom_count: u64,
    /// Maximum tuple width / set cardinality anywhere in the subtree.
    pub max_fanout: usize,
    /// True when the subtree contains a set node (including this node).
    pub contains_set: bool,
    /// True when every immediate child is an atom (a "flat" relation row /
    /// atom set) — the cheap cases for reduction and matching.
    pub flat: bool,
}

impl Meta {
    fn for_children<'a, I>(len: usize, is_set: bool, children: I) -> Meta
    where
        I: Iterator<Item = &'a Object>,
    {
        let mut depth: u64 = 1; // empty composite → depth 2 after +1
        let mut size: u64 = 1;
        let mut atom_count: u64 = 0;
        let mut max_fanout = len;
        let mut contains_set = is_set;
        let mut flat = true;
        for child in children {
            match child {
                Object::Atom(_) => {
                    depth = depth.max(1);
                    size += 1;
                    atom_count += 1;
                }
                Object::Tuple(t) => {
                    let m = t.meta();
                    depth = depth.max(m.depth);
                    size += m.size;
                    atom_count += m.atom_count;
                    max_fanout = max_fanout.max(m.max_fanout);
                    contains_set |= m.contains_set;
                    flat = false;
                }
                Object::Set(s) => {
                    let m = s.meta();
                    depth = depth.max(m.depth);
                    size += m.size;
                    atom_count += m.atom_count;
                    max_fanout = max_fanout.max(m.max_fanout);
                    contains_set = true;
                    flat = false;
                }
                // Canonical composites contain no ⊥/⊤ (⊥ is dropped, ⊤
                // propagates before interning).
                Object::Bottom | Object::Top => {
                    unreachable!("⊥/⊤ inside a canonical composite")
                }
            }
        }
        Meta {
            depth: depth + 1,
            size,
            atom_count,
            max_fanout,
            contains_set,
            flat,
        }
    }
}

/// The interned interior of a tuple object.
pub(crate) struct TupleNode {
    pub(crate) id: NodeId,
    pub(crate) hash: u64,
    pub(crate) meta: Meta,
    pub(crate) entries: Box<[(Attr, Object)]>,
}

/// The interned interior of a set object.
pub(crate) struct SetNode {
    pub(crate) id: NodeId,
    pub(crate) hash: u64,
    pub(crate) meta: Meta,
    pub(crate) elements: Box<[Object]>,
}

struct Store {
    tuples: FxHashMap<u64, Vec<Arc<TupleNode>>>,
    sets: FxHashMap<u64, Vec<Arc<SetNode>>>,
}

fn store() -> &'static RwLock<Store> {
    static STORE: OnceLock<RwLock<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        RwLock::new(Store {
            tuples: FxHashMap::default(),
            sets: FxHashMap::default(),
        })
    })
}

fn next_id() -> NodeId {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    NodeId(COUNTER.fetch_add(1, Ordering::Relaxed))
}

// A tiny direct-mapped thread-local L1 in front of the global store:
// evaluation loops re-intern the same values every iteration (rule heads,
// result rows), and a hit here skips the shared lock entirely. Entries are
// `Arc` clones of canonical nodes, so pointer-equality guarantees are
// unaffected; stale slots merely miss.
const TL_CACHE_SLOTS: usize = 1 << 10;

thread_local! {
    static TL_TUPLES: std::cell::RefCell<Vec<Option<Arc<TupleNode>>>> =
        std::cell::RefCell::new(vec![None; TL_CACHE_SLOTS]);
    static TL_SETS: std::cell::RefCell<Vec<Option<Arc<SetNode>>>> =
        std::cell::RefCell::new(vec![None; TL_CACHE_SLOTS]);
}

#[inline]
fn tl_slot(hash: u64) -> usize {
    (hash as usize) & (TL_CACHE_SLOTS - 1)
}

fn hash_tuple_entries(entries: &[(Attr, Object)]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(1); // kind discriminator: tuple
    for (a, o) in entries {
        a.hash(&mut h);
        o.hash(&mut h);
    }
    h.finish()
}

fn hash_set_elements(elements: &[Object]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(2); // kind discriminator: set
    for o in elements {
        o.hash(&mut h);
    }
    h.finish()
}

/// Interns canonical tuple entries (sorted, distinct, ⊥/⊤-free), returning
/// the shared node. Content-equal calls return the same allocation.
pub(crate) fn intern_tuple(entries: Vec<(Attr, Object)>) -> Arc<TupleNode> {
    let hash = hash_tuple_entries(&entries);
    // L1: lock-free thread-local hit path.
    let l1 = TL_TUPLES.with(|c| {
        let c = c.borrow();
        match &c[tl_slot(hash)] {
            Some(node) if node.hash == hash && node.entries.iter().eq(entries.iter()) => {
                Some(Arc::clone(node))
            }
            _ => None,
        }
    });
    if let Some(node) = l1 {
        return node;
    }
    let found = {
        let guard = store().read();
        guard.tuples.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|node| node.entries.iter().eq(entries.iter()))
                .map(Arc::clone)
        })
    };
    if let Some(node) = found {
        TL_TUPLES.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
        return node;
    }
    let mut guard = store().write();
    let bucket = guard.tuples.entry(hash).or_default();
    // Double-check under the write lock: another thread may have interned
    // the same content between our read and write sections.
    for node in bucket.iter() {
        if node.entries.iter().eq(entries.iter()) {
            return Arc::clone(node);
        }
    }
    let meta = Meta::for_children(entries.len(), false, entries.iter().map(|(_, o)| o));
    let node = Arc::new(TupleNode {
        id: next_id(),
        hash,
        meta,
        entries: entries.into_boxed_slice(),
    });
    bucket.push(Arc::clone(&node));
    drop(guard);
    TL_TUPLES.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
    node
}

/// Interns canonical set elements (sorted, deduplicated, reduced,
/// ⊥/⊤-free), returning the shared node.
pub(crate) fn intern_set(elements: Vec<Object>) -> Arc<SetNode> {
    let hash = hash_set_elements(&elements);
    // L1: lock-free thread-local hit path.
    let l1 = TL_SETS.with(|c| {
        let c = c.borrow();
        match &c[tl_slot(hash)] {
            Some(node) if node.hash == hash && node.elements.iter().eq(elements.iter()) => {
                Some(Arc::clone(node))
            }
            _ => None,
        }
    });
    if let Some(node) = l1 {
        return node;
    }
    let found = {
        let guard = store().read();
        guard.sets.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|node| node.elements.iter().eq(elements.iter()))
                .map(Arc::clone)
        })
    };
    if let Some(node) = found {
        TL_SETS.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
        return node;
    }
    let mut guard = store().write();
    let bucket = guard.sets.entry(hash).or_default();
    for node in bucket.iter() {
        if node.elements.iter().eq(elements.iter()) {
            return Arc::clone(node);
        }
    }
    let meta = Meta::for_children(elements.len(), true, elements.iter());
    let node = Arc::new(SetNode {
        id: next_id(),
        hash,
        meta,
        elements: elements.into_boxed_slice(),
    });
    bucket.push(Arc::clone(&node));
    drop(guard);
    TL_SETS.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
    node
}

// ---------------------------------------------------------------------------
// Memo tables for the binary lattice operations
// ---------------------------------------------------------------------------

/// Minimum subtree node count (on both operands) for a comparison to be
/// memoized. Below this, the structural walk is cheaper than a lock
/// round-trip on the shared table.
pub const MEMO_MIN_SIZE: u64 = 12;

/// Maximum entries per memo table; on overflow the table is cleared
/// (wholesale epoch eviction).
const MEMO_CAP: usize = 1 << 20;

struct MemoTable<V> {
    map: OnceLock<RwLock<FxHashMap<(NodeId, NodeId), V>>>,
}

impl<V: Clone> MemoTable<V> {
    const fn new() -> Self {
        MemoTable {
            map: OnceLock::new(),
        }
    }

    fn table(&self) -> &RwLock<FxHashMap<(NodeId, NodeId), V>> {
        self.map.get_or_init(|| RwLock::new(FxHashMap::default()))
    }

    fn get(&self, key: (NodeId, NodeId)) -> Option<V> {
        self.table().read().get(&key).cloned()
    }

    fn put(&self, key: (NodeId, NodeId), value: V) {
        let mut guard = self.table().write();
        if guard.len() >= MEMO_CAP {
            guard.clear();
        }
        guard.insert(key, value);
    }

    fn len(&self) -> usize {
        self.table().read().len()
    }
}

static LE_MEMO: MemoTable<bool> = MemoTable::new();
static UNION_MEMO: MemoTable<Object> = MemoTable::new();
static INTERSECT_MEMO: MemoTable<Object> = MemoTable::new();

fn symmetric(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// True when a pair of nodes is worth memoizing: both subtrees at least
/// [`MEMO_MIN_SIZE`] nodes (smaller comparisons are cheaper than a lock
/// round-trip on the shared table).
fn memo_worthy(a: &Meta, b: &Meta) -> bool {
    a.size >= MEMO_MIN_SIZE && b.size >= MEMO_MIN_SIZE
}

/// `a ≤ b` through the memo table (order-sensitive key), falling back to
/// `compute` on a miss or when the pair is below the memo threshold.
pub(crate) fn le_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> bool,
) -> bool {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = (a.0, b.0);
    if let Some(r) = LE_MEMO.get(key) {
        return r;
    }
    let r = compute();
    LE_MEMO.put(key, r);
    r
}

/// `a ∪ b` through the memo table (symmetric key — union commutes).
pub(crate) fn union_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> Object,
) -> Object {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = symmetric(a.0, b.0);
    if let Some(r) = UNION_MEMO.get(key) {
        return r;
    }
    let r = compute();
    UNION_MEMO.put(key, r.clone());
    r
}

/// `a ∩ b` through the memo table (symmetric key — intersection commutes).
pub(crate) fn intersect_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> Object,
) -> Object {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = symmetric(a.0, b.0);
    if let Some(r) = INTERSECT_MEMO.get(key) {
        return r;
    }
    let r = compute();
    INTERSECT_MEMO.put(key, r.clone());
    r
}

/// A point-in-time snapshot of store and memo-table sizes (diagnostics,
/// benchmarks, capacity planning).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct interned tuple nodes.
    pub tuple_nodes: usize,
    /// Distinct interned set nodes.
    pub set_nodes: usize,
    /// Entries in the `≤` memo table.
    pub le_memo_entries: usize,
    /// Entries in the union memo table.
    pub union_memo_entries: usize,
    /// Entries in the intersection memo table.
    pub intersect_memo_entries: usize,
}

/// Current [`StoreStats`].
pub fn stats() -> StoreStats {
    let guard = store().read();
    StoreStats {
        tuple_nodes: guard.tuples.values().map(Vec::len).sum(),
        set_nodes: guard.sets.values().map(Vec::len).sum(),
        le_memo_entries: LE_MEMO.len(),
        union_memo_entries: UNION_MEMO.len(),
        intersect_memo_entries: INTERSECT_MEMO.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn equal_composites_share_one_allocation() {
        let a = obj!([name: peter, hobbies: {chess, music}]);
        let b = obj!([hobbies: {music, chess}, name: peter]);
        assert_eq!(a, b);
        match (&a, &b) {
            (Object::Tuple(x), Object::Tuple(y)) => {
                // Same allocation, same stable id.
                assert_eq!(x.entries().as_ptr(), y.entries().as_ptr());
                assert_eq!(x.node_id(), y.node_id());
            }
            _ => panic!("expected tuples"),
        }
    }

    #[test]
    fn distinct_composites_get_distinct_ids() {
        let a = obj!({1, 2});
        let b = obj!({1, 3});
        assert_ne!(a.node_id(), b.node_id());
        assert!(a.node_id().is_some());
    }

    #[test]
    fn atoms_and_extremes_have_no_node_id() {
        assert_eq!(obj!(5).node_id(), None);
        assert_eq!(Object::Bottom.node_id(), None);
        assert_eq!(Object::Top.node_id(), None);
    }

    #[test]
    fn meta_matches_recursive_measures() {
        // First-principles recursions (NOT the `measure` module, which for
        // composites reads the very Meta fields under test).
        fn ref_depth(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) => 1,
                Object::Top => unreachable!(),
                Object::Tuple(t) => 1 + t.iter().map(|(_, v)| ref_depth(v)).max().unwrap_or(1),
                Object::Set(s) => 1 + s.iter().map(ref_depth).max().unwrap_or(1),
            }
        }
        fn ref_size(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 1,
                Object::Tuple(t) => 1 + t.iter().map(|(_, v)| ref_size(v)).sum::<u64>(),
                Object::Set(s) => 1 + s.iter().map(ref_size).sum::<u64>(),
            }
        }
        fn ref_atoms(o: &Object) -> u64 {
            match o {
                Object::Atom(_) => 1,
                Object::Bottom | Object::Top => 0,
                Object::Tuple(t) => t.iter().map(|(_, v)| ref_atoms(v)).sum(),
                Object::Set(s) => s.iter().map(ref_atoms).sum(),
            }
        }
        fn ref_fanout(o: &Object) -> usize {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 0,
                Object::Tuple(t) => t
                    .iter()
                    .map(|(_, v)| ref_fanout(v))
                    .max()
                    .unwrap_or(0)
                    .max(t.len()),
                Object::Set(s) => s.iter().map(ref_fanout).max().unwrap_or(0).max(s.len()),
            }
        }
        for o in [
            obj!([a: {1, 2}, b: 3]),
            obj!({[x: 1], [y: {2, {3}}]}),
            obj!({{1, 2}, {[deep: [deeper: {4, 5, 6}]]}}),
            Object::empty_set(),
            Object::empty_tuple(),
        ] {
            let meta = o.meta().expect("composite");
            assert_eq!(meta.depth, ref_depth(&o), "depth of {o}");
            assert_eq!(meta.size, ref_size(&o), "size of {o}");
            assert_eq!(meta.atom_count, ref_atoms(&o), "atom_count of {o}");
            assert_eq!(meta.max_fanout, ref_fanout(&o), "max_fanout of {o}");
        }
    }

    #[test]
    fn contains_set_and_flat_flags() {
        let flat_tuple = obj!([a: 1, b: 2]);
        let meta = flat_tuple.meta().unwrap();
        assert!(meta.flat && !meta.contains_set);

        let nested = obj!([a: {1}]);
        let meta = nested.meta().unwrap();
        assert!(!meta.flat && meta.contains_set);

        let atom_set = obj!({1, 2});
        let meta = atom_set.meta().unwrap();
        assert!(meta.flat && meta.contains_set);
    }

    #[test]
    fn store_stats_grow_monotonically() {
        let before = stats();
        let _o = obj!([unique_attr_for_store_stats: {91_182, 91_183}]);
        let after = stats();
        assert!(after.tuple_nodes > before.tuple_nodes);
        assert!(after.set_nodes > before.set_nodes);
    }
}

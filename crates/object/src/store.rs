//! The hash-consed object store: interned composite nodes with stable ids,
//! cached hashes, and precomputed structural metadata — **sharded for
//! concurrent interning**.
//!
//! # Design
//!
//! Every [`Tuple`](crate::Tuple) and [`Set`](crate::Set) interior in the
//! process is a node in one global store. Construction goes through the
//! crate-internal `intern_tuple` / `intern_set` (the only way to create the
//! node types), which deduplicate by content: **canonically-equal composites are
//! always the same `Arc` allocation**. Three properties follow:
//!
//! - **O(1) equality** — `==` on tuples, sets, and therefore whole
//!   [`Object`]s is a pointer comparison (plus an atom compare for leaves);
//!   the canonical-form invariant of `value.rs` makes this coincide with
//!   the paper's semantic equality (Definition 2.2).
//! - **O(1) hashing** — every node carries the hash of its contents,
//!   computed once at interning time from the (already cached) child
//!   hashes.
//! - **Stable identity** — every node carries a process-unique [`NodeId`]
//!   that is never recycled, so downstream layers (the engine's set
//!   indexes, the memo tables below) can key off identity without the
//!   ABA hazard of raw `Arc` addresses.
//!
//! Nodes also carry a [`Meta`] record — depth, node count, atom count,
//! maximum fanout, a contains-set flag, and a flatness flag — computed in
//! O(width) at interning time from the children's metadata, making the
//! measures in [`crate::measure`] O(1) for interned values.
//!
//! # Sharding
//!
//! The interner is split into [`SHARD_COUNT`] shards by hash range (the top
//! bits of the content hash select the shard), each with its own
//! reader-writer lock. Parallel evaluation threads interning different
//! values therefore contend only when they happen to land on the same
//! shard; because a node's content hash — and hence its shard — never
//! changes, sharding is invisible to callers: equal content still interns
//! to one node with one stable [`NodeId`], regardless of which thread asked
//! first. Each shard keeps hit/miss/contention counters (see
//! [`StoreStats::shards`]); a tiny lock-free thread-local L1 cache sits in
//! front of the shards and absorbs the re-interning bursts of fixpoint
//! loops.
//!
//! # Memo tables
//!
//! The store hosts memo caches for the three binary lattice operations of
//! the paper — the sub-object order `≤` (Definition 3.1), union `∪`
//! (Definition 3.4), and intersection `∩` (Definition 3.5) — keyed by
//! `(NodeId, NodeId)`. Soundness rests on two invariants: interned nodes
//! are immutable, and ids are never recycled, so a key names one pair of
//! values forever. Only comparisons of *large* nodes (see
//! [`MEMO_MIN_SIZE`]) are memoized: small comparisons are cheaper than a
//! lock round-trip. The tables are sharded by key hash like the interner,
//! and bounded by `CO_MEMO_SHARD_CAP` entries per shard. The default
//! eviction policy is **second chance** ([`MemoPolicy::SecondChance`]):
//! each shard keeps its keys on a clock ring with a referenced bit that
//! lookups set, and a full shard evicts the first un-referenced (cold)
//! key instead of clearing wholesale — hot pairs that fixpoint rounds
//! re-ask every iteration survive. The pre-PR-3 wholesale-clear policy
//! remains selectable ([`MemoPolicy::EpochClear`]) for comparison, and
//! [`MemoPolicy::Disabled`] turns memoization off; all three are runtime
//! knobs (see [`set_memo_policy`]) observable through the `evicted` /
//! `retained` / `epoch_clears` counters of [`MemoStats`].
//!
//! # Lifetime
//!
//! Interned nodes are held by strong references and live until an explicit
//! [`collect`] call sweeps them: a node is freed when nothing outside the
//! store itself references it — no live [`Object`] handle, no thread-local
//! L1 slot, no memo-table value, and no pinned [`Root`] guard. `NodeId`s
//! are **never recycled**, even across sweeps, so a stale id held by a
//! downstream layer (an engine index, a log line) can go unused but can
//! never silently alias a different value. Long-running servers whose
//! working set drifts call [`collect`] periodically (the engine can do it
//! between fixpoint rounds — see its GC cadence knob); batch workloads
//! can ignore the whole mechanism and keep the immortal-store behaviour.
//!
//! # Observability
//!
//! [`stats`] returns a [`StoreStats`] snapshot: node counts, per-shard
//! interner hit/miss/contention counters, per-table memo
//! hit/miss/eviction counters, and GC sweep/freed-node totals. Each
//! [`collect`] additionally returns a [`SweepStats`] for that sweep.
//!
//! ```
//! use co_object::{obj, store};
//!
//! let before = store::stats();
//! let a = obj!([doc_stats_example: {1, 2, 3}]);
//! let b = obj!([doc_stats_example: {1, 2, 3}]);
//! // Hash-consing: the same canonical value is the same node…
//! assert_eq!(a.node_id(), b.node_id());
//! let after = store::stats();
//! // …so re-interning it is a cache hit, visible in the counters.
//! assert!(after.intern_misses > before.intern_misses); // first build
//! assert!(after.intern_hits > before.intern_hits);     // re-build
//! ```

use crate::{Attr, Object};
use parking_lot::RwLock;
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A stable, process-unique identifier of an interned composite node.
///
/// Ids are assigned in interning order, never reused, and shared across the
/// tuple and set namespaces (an id names one node of either kind). They are
/// meaningful only within the current process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u64);

impl NodeId {
    /// The raw id value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Precomputed structural metadata of an interned node, filled in at
/// interning time from the children's (already cached) metadata.
#[derive(Clone, Copy, Debug)]
pub struct Meta {
    /// The paper's depth measure (Definition 3.2) of this node. Composites
    /// cannot contain ⊤, so depth is always finite here.
    pub depth: u64,
    /// Total node count of the subtree (as in [`crate::measure::size`]).
    pub size: u64,
    /// Number of atom leaves in the subtree.
    pub atom_count: u64,
    /// Maximum tuple width / set cardinality anywhere in the subtree.
    pub max_fanout: usize,
    /// True when the subtree contains a set node (including this node).
    pub contains_set: bool,
    /// True when every immediate child is an atom (a "flat" relation row /
    /// atom set) — the cheap cases for reduction and matching.
    pub flat: bool,
}

impl Meta {
    fn for_children<'a, I>(len: usize, is_set: bool, children: I) -> Meta
    where
        I: Iterator<Item = &'a Object>,
    {
        let mut depth: u64 = 1; // empty composite → depth 2 after +1
        let mut size: u64 = 1;
        let mut atom_count: u64 = 0;
        let mut max_fanout = len;
        let mut contains_set = is_set;
        let mut flat = true;
        for child in children {
            match child {
                Object::Atom(_) => {
                    depth = depth.max(1);
                    size += 1;
                    atom_count += 1;
                }
                Object::Tuple(t) => {
                    let m = t.meta();
                    depth = depth.max(m.depth);
                    size += m.size;
                    atom_count += m.atom_count;
                    max_fanout = max_fanout.max(m.max_fanout);
                    contains_set |= m.contains_set;
                    flat = false;
                }
                Object::Set(s) => {
                    let m = s.meta();
                    depth = depth.max(m.depth);
                    size += m.size;
                    atom_count += m.atom_count;
                    max_fanout = max_fanout.max(m.max_fanout);
                    contains_set = true;
                    flat = false;
                }
                // Canonical composites contain no ⊥/⊤ (⊥ is dropped, ⊤
                // propagates before interning).
                Object::Bottom | Object::Top => {
                    unreachable!("⊥/⊤ inside a canonical composite")
                }
            }
        }
        Meta {
            depth: depth + 1,
            size,
            atom_count,
            max_fanout,
            contains_set,
            flat,
        }
    }
}

/// The interned interior of a tuple object.
pub(crate) struct TupleNode {
    pub(crate) id: NodeId,
    pub(crate) hash: u64,
    pub(crate) meta: Meta,
    pub(crate) entries: Box<[(Attr, Object)]>,
}

/// The interned interior of a set object.
pub(crate) struct SetNode {
    pub(crate) id: NodeId,
    pub(crate) hash: u64,
    pub(crate) meta: Meta,
    pub(crate) elements: Box<[Object]>,
}

// ---------------------------------------------------------------------------
// The sharded interner
// ---------------------------------------------------------------------------

/// Number of interner shards (power of two). The top `log2(SHARD_COUNT)`
/// bits of a node's content hash select its shard, so threads interning
/// different values rarely touch the same lock.
pub const SHARD_COUNT: usize = 16;

/// The hash→tuple and hash→set maps of one shard, plus the ids of every
/// node the shard currently owns (kept in sync on intern and sweep) so
/// [`contains_node`] answers in O(1) instead of scanning buckets.
#[derive(Default)]
struct ShardMaps {
    tuples: FxHashMap<u64, Vec<Arc<TupleNode>>>,
    sets: FxHashMap<u64, Vec<Arc<SetNode>>>,
    ids: FxHashSet<NodeId>,
}

/// One interner shard: its maps under a reader-writer lock, plus lock-free
/// event counters.
#[derive(Default)]
struct Shard {
    maps: RwLock<ShardMaps>,
    /// Intern calls answered with an existing node (including thread-local
    /// L1 hits attributed to this shard).
    hits: AtomicU64,
    /// Intern calls that created a new node.
    misses: AtomicU64,
    /// Lock acquisitions (read or write) that had to block because another
    /// thread held the shard lock.
    contended: AtomicU64,
}

/// Read-locks `lock`, counting the acquisition on `contended` when it
/// could not be satisfied immediately.
fn read_counted<'a, T>(
    lock: &'a RwLock<T>,
    contended: &AtomicU64,
) -> parking_lot::RwLockReadGuard<'a, T> {
    match lock.try_read() {
        Some(g) => g,
        None => {
            contended.fetch_add(1, Ordering::Relaxed);
            lock.read()
        }
    }
}

/// Write-locks `lock`, counting contention like [`read_counted`].
fn write_counted<'a, T>(
    lock: &'a RwLock<T>,
    contended: &AtomicU64,
) -> parking_lot::RwLockWriteGuard<'a, T> {
    match lock.try_write() {
        Some(g) => g,
        None => {
            contended.fetch_add(1, Ordering::Relaxed);
            lock.write()
        }
    }
}

impl Shard {
    /// Read-locks the shard maps, counting contention.
    fn read(&self) -> parking_lot::RwLockReadGuard<'_, ShardMaps> {
        read_counted(&self.maps, &self.contended)
    }

    /// Write-locks the shard maps, counting contention.
    fn write(&self) -> parking_lot::RwLockWriteGuard<'_, ShardMaps> {
        write_counted(&self.maps, &self.contended)
    }
}

fn shards() -> &'static [Shard; SHARD_COUNT] {
    static SHARDS: OnceLock<[Shard; SHARD_COUNT]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Shard::default()))
}

/// The shard owning a given content hash (top bits — the low bits index
/// hash-map buckets and the thread-local L1, keeping the three uses
/// independent).
#[inline]
fn shard_of(hash: u64) -> &'static Shard {
    &shards()[(hash >> (64 - SHARD_COUNT.trailing_zeros())) as usize]
}

/// The never-rewound id source. Kept at module scope (not inside
/// [`next_id`]) so an incremental sweep can read the current value as its
/// **sweep-epoch floor**: nodes with `id >= floor` were interned after the
/// cycle began and are never candidates for that cycle.
static NODE_ID_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_id() -> NodeId {
    NodeId(NODE_ID_COUNTER.fetch_add(1, Ordering::Relaxed))
}

// A tiny direct-mapped thread-local L1 in front of the sharded store:
// evaluation loops re-intern the same values every iteration (rule heads,
// result rows), and a hit here skips the shard lock entirely. Entries are
// `Arc` clones of canonical nodes, so pointer-equality guarantees are
// unaffected; stale slots merely miss.
const TL_CACHE_SLOTS: usize = 1 << 10;

// L1 hits are counted on per-thread atomics and summed at `stats()` time:
// the whole point of an L1 hit is to touch no shared state, so bumping a
// shared shard counter on that path would reintroduce the cross-thread
// cache-line traffic the L1 exists to avoid. Each thread registers one
// counter it alone writes; the registry keeps it alive (`Arc`) after the
// thread exits so totals stay monotone.
fn l1_hit_registry() -> &'static parking_lot::Mutex<Vec<Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<parking_lot::Mutex<Vec<Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| parking_lot::Mutex::new(Vec::new()))
}

thread_local! {
    static TL_L1_HITS: Arc<AtomicU64> = {
        let counter = Arc::new(AtomicU64::new(0));
        l1_hit_registry().lock().push(Arc::clone(&counter));
        counter
    };
}

#[inline]
fn count_l1_hit() {
    // Uncontended: only this thread writes this counter.
    TL_L1_HITS.with(|c| c.fetch_add(1, Ordering::Relaxed));
}

fn l1_hits_total() -> u64 {
    l1_hit_registry()
        .lock()
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
}

thread_local! {
    static TL_TUPLES: std::cell::RefCell<Vec<Option<Arc<TupleNode>>>> =
        std::cell::RefCell::new(vec![None; TL_CACHE_SLOTS]);
    static TL_SETS: std::cell::RefCell<Vec<Option<Arc<SetNode>>>> =
        std::cell::RefCell::new(vec![None; TL_CACHE_SLOTS]);
}

#[inline]
fn tl_slot(hash: u64) -> usize {
    (hash as usize) & (TL_CACHE_SLOTS - 1)
}

// L1 slots hold *strong* node references: a node sitting in any thread's L1
// is simply retained by `collect` (its strong count exceeds the store's own
// reference), never freed — which keeps the hit path lock-free and makes
// resurrection-after-free impossible by construction. The price is that a
// sweep cannot reclaim nodes parked in another thread's L1. To bound that
// retention, every sweep bumps a global flush epoch; each thread compares
// its local epoch on the next intern call and clears its own caches first,
// so L1-retained garbage survives at most until its owner's next intern
// plus one more sweep.
static L1_FLUSH_EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_SEEN_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Clears this thread's L1 caches when a [`collect`] has happened since the
/// thread last looked. Called on every intern; one relaxed load when idle.
#[inline]
fn maybe_flush_l1() {
    let current = L1_FLUSH_EPOCH.load(Ordering::Acquire);
    TL_SEEN_EPOCH.with(|seen| {
        if seen.get() != current {
            seen.set(current);
            flush_thread_caches();
        }
    });
}

/// Drops every entry of the calling thread's L1 intern caches.
///
/// [`collect`] does this for its own thread automatically and schedules it
/// for every other thread (effective at their next intern call); call it
/// directly on a worker thread that is about to idle for a long time, so
/// its cached nodes do not outlive their last real user until then.
pub fn flush_thread_caches() {
    TL_TUPLES.with(|c| {
        for slot in c.borrow_mut().iter_mut() {
            *slot = None;
        }
    });
    TL_SETS.with(|c| {
        for slot in c.borrow_mut().iter_mut() {
            *slot = None;
        }
    });
}

fn hash_tuple_entries(entries: &[(Attr, Object)]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(1); // kind discriminator: tuple
    for (a, o) in entries {
        a.hash(&mut h);
        o.hash(&mut h);
    }
    h.finish()
}

fn hash_set_elements(elements: &[Object]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(2); // kind discriminator: set
    for o in elements {
        o.hash(&mut h);
    }
    h.finish()
}

/// Interns canonical tuple entries (sorted, distinct, ⊥/⊤-free), returning
/// the shared node. Content-equal calls return the same allocation.
pub(crate) fn intern_tuple(entries: Vec<(Attr, Object)>) -> Arc<TupleNode> {
    maybe_flush_l1();
    let hash = hash_tuple_entries(&entries);
    let shard = shard_of(hash);
    // L1: lock-free thread-local hit path.
    let l1 = TL_TUPLES.with(|c| {
        let c = c.borrow();
        match &c[tl_slot(hash)] {
            Some(node) if node.hash == hash && node.entries.iter().eq(entries.iter()) => {
                Some(Arc::clone(node))
            }
            _ => None,
        }
    });
    if let Some(node) = l1 {
        count_l1_hit();
        return node;
    }
    let found = {
        let guard = shard.read();
        guard.tuples.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|node| node.entries.iter().eq(entries.iter()))
                .map(Arc::clone)
        })
    };
    if let Some(node) = found {
        shard.hits.fetch_add(1, Ordering::Relaxed);
        TL_TUPLES.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
        return node;
    }
    let mut guard = shard.write();
    let bucket = guard.tuples.entry(hash).or_default();
    // Double-check under the write lock: another thread may have interned
    // the same content between our read and write sections.
    for node in bucket.iter() {
        if node.entries.iter().eq(entries.iter()) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(node);
        }
    }
    let meta = Meta::for_children(entries.len(), false, entries.iter().map(|(_, o)| o));
    let node = Arc::new(TupleNode {
        id: next_id(),
        hash,
        meta,
        entries: entries.into_boxed_slice(),
    });
    bucket.push(Arc::clone(&node));
    guard.ids.insert(node.id);
    drop(guard);
    shard.misses.fetch_add(1, Ordering::Relaxed);
    LIVE_NODES.fetch_add(1, Ordering::Relaxed);
    TL_TUPLES.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
    maybe_auto_collect();
    node
}

/// Interns canonical set elements (sorted, deduplicated, reduced,
/// ⊥/⊤-free), returning the shared node.
pub(crate) fn intern_set(elements: Vec<Object>) -> Arc<SetNode> {
    maybe_flush_l1();
    let hash = hash_set_elements(&elements);
    let shard = shard_of(hash);
    // L1: lock-free thread-local hit path.
    let l1 = TL_SETS.with(|c| {
        let c = c.borrow();
        match &c[tl_slot(hash)] {
            Some(node) if node.hash == hash && node.elements.iter().eq(elements.iter()) => {
                Some(Arc::clone(node))
            }
            _ => None,
        }
    });
    if let Some(node) = l1 {
        count_l1_hit();
        return node;
    }
    let found = {
        let guard = shard.read();
        guard.sets.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|node| node.elements.iter().eq(elements.iter()))
                .map(Arc::clone)
        })
    };
    if let Some(node) = found {
        shard.hits.fetch_add(1, Ordering::Relaxed);
        TL_SETS.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
        return node;
    }
    let mut guard = shard.write();
    let bucket = guard.sets.entry(hash).or_default();
    for node in bucket.iter() {
        if node.elements.iter().eq(elements.iter()) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(node);
        }
    }
    let meta = Meta::for_children(elements.len(), true, elements.iter());
    let node = Arc::new(SetNode {
        id: next_id(),
        hash,
        meta,
        elements: elements.into_boxed_slice(),
    });
    bucket.push(Arc::clone(&node));
    guard.ids.insert(node.id);
    drop(guard);
    shard.misses.fetch_add(1, Ordering::Relaxed);
    LIVE_NODES.fetch_add(1, Ordering::Relaxed);
    TL_SETS.with(|c| c.borrow_mut()[tl_slot(hash)] = Some(Arc::clone(&node)));
    maybe_auto_collect();
    node
}

// ---------------------------------------------------------------------------
// Memo tables for the binary lattice operations
// ---------------------------------------------------------------------------

/// Minimum subtree node count (on both operands) for a comparison to be
/// memoized. Below this, the structural walk is cheaper than a lock
/// round-trip on the shared table.
pub const MEMO_MIN_SIZE: u64 = 12;

/// Number of shards per memo table (power of two), keyed by a mix of the
/// two node ids.
const MEMO_SHARD_COUNT: usize = 16;

/// Default maximum entries per memo table across all shards; a shard
/// reaching its share of this capacity evicts per [`MemoPolicy`].
const MEMO_CAP: usize = 1 << 20;

/// Sentinel meaning "capacity not yet initialized from the environment".
const MEMO_CAP_UNSET: usize = 0;

/// Per-shard memo capacity, runtime-adjustable. Initialized lazily from
/// the `CO_MEMO_SHARD_CAP` environment variable (default
/// `MEMO_CAP / MEMO_SHARD_COUNT`).
static MEMO_SHARD_CAP: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(MEMO_CAP_UNSET);

/// Per-shard memo capacity: a tuning knob for memory-tight deployments and
/// a lever for tests and benchmarks that need to exercise the eviction
/// path cheaply. See [`set_memo_shard_cap`].
pub fn memo_shard_cap() -> usize {
    match MEMO_SHARD_CAP.load(Ordering::Relaxed) {
        MEMO_CAP_UNSET => {
            let cap = std::env::var("CO_MEMO_SHARD_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|cap| *cap > 0)
                .unwrap_or(MEMO_CAP / MEMO_SHARD_COUNT);
            // Only initialize from UNSET: a concurrent explicit
            // `set_memo_shard_cap` must not be clobbered by the lazy
            // env default.
            match MEMO_SHARD_CAP.compare_exchange(
                MEMO_CAP_UNSET,
                cap,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => cap,
                Err(set_concurrently) => set_concurrently,
            }
        }
        cap => cap,
    }
}

/// Overrides the per-shard memo capacity at runtime (values below 1 are
/// clamped to 1). Shards above the new capacity shrink lazily, on their
/// next insert. Intended for tests, benchmarks, and operational tuning.
pub fn set_memo_shard_cap(cap: usize) {
    MEMO_SHARD_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// Eviction policy of the bounded memo tables (process-wide).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemoPolicy {
    /// Second-chance (clock) eviction: lookups set a referenced bit on the
    /// entry; a full shard sweeps its ring, granting one more round to
    /// referenced (hot) entries and evicting the first cold one. Keeps the
    /// pairs that fixpoint rounds re-ask every iteration.
    #[default]
    SecondChance,
    /// The pre-second-chance policy: a full shard is cleared wholesale
    /// (counted in [`MemoStats::epoch_clears`]). Kept selectable as the
    /// comparison baseline for benchmarks.
    EpochClear,
    /// Memoization off: every operation recomputes. The differential
    /// baseline for correctness tests.
    Disabled,
}

/// Encodes a policy for the process-wide atomic cell.
fn memo_policy_code(p: MemoPolicy) -> u8 {
    match p {
        MemoPolicy::SecondChance => 1,
        MemoPolicy::EpochClear => 2,
        MemoPolicy::Disabled => 3,
    }
}

/// Process-wide memo policy; 0 = not yet initialized from the environment.
static MEMO_POLICY: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// The current process-wide [`MemoPolicy`]. Initialized lazily from the
/// `CO_MEMO_POLICY` environment variable (`second-chance` (default),
/// `epoch`, or `off`).
pub fn memo_policy() -> MemoPolicy {
    match MEMO_POLICY.load(Ordering::Relaxed) {
        1 => MemoPolicy::SecondChance,
        2 => MemoPolicy::EpochClear,
        3 => MemoPolicy::Disabled,
        _ => {
            let policy = match std::env::var("CO_MEMO_POLICY").ok().as_deref() {
                Some("epoch") => MemoPolicy::EpochClear,
                Some("off") | Some("disabled") => MemoPolicy::Disabled,
                _ => MemoPolicy::SecondChance,
            };
            // Only initialize from the unset sentinel: a concurrent
            // explicit `set_memo_policy` must win over the env default.
            let _ = MEMO_POLICY.compare_exchange(
                0,
                memo_policy_code(policy),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            memo_policy()
        }
    }
}

/// Selects the process-wide memo eviction policy at runtime. Cached
/// entries survive a policy switch (switch to [`MemoPolicy::Disabled`]
/// merely stops consulting them; see [`clear_memo_tables`] to drop them).
pub fn set_memo_policy(p: MemoPolicy) {
    MEMO_POLICY.store(memo_policy_code(p), Ordering::Relaxed);
}

/// Drops every entry of the `≤`/`∪`/`∩` memo tables (counters are
/// untouched). A test/benchmark lever: lets one process compare eviction
/// policies from identical cold starts.
pub fn clear_memo_tables() {
    LE_MEMO.clear();
    UNION_MEMO.clear();
    INTERSECT_MEMO.clear();
}

/// The shard index of a memo key: multiply-mix both ids so that pairs
/// sharing one operand still spread across shards.
#[inline]
fn memo_shard_index(key: (NodeId, NodeId)) -> usize {
    let h = key
        .0
         .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.1 .0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    (h >> (64 - MEMO_SHARD_COUNT.trailing_zeros())) as usize
}

/// One cached result plus its second-chance referenced bit (set by lookups
/// under the shared lock, cleared by the clock hand under the exclusive
/// one).
struct MemoEntry<V> {
    value: V,
    referenced: std::sync::atomic::AtomicBool,
}

/// The interior of one memo shard: the pair-keyed map and the clock ring.
///
/// Invariant: every map key is on the ring exactly once (the ring may also
/// carry stale keys whose entries a GC purge removed; the clock hand drops
/// those as it encounters them).
struct MemoShardState<V> {
    map: FxHashMap<(NodeId, NodeId), MemoEntry<V>>,
    ring: std::collections::VecDeque<(NodeId, NodeId)>,
}

impl<V> Default for MemoShardState<V> {
    fn default() -> Self {
        MemoShardState {
            map: FxHashMap::default(),
            ring: std::collections::VecDeque::new(),
        }
    }
}

/// One shard of a memo table under its own lock.
type MemoShard<V> = RwLock<MemoShardState<V>>;

struct MemoTable<V> {
    shards: OnceLock<[MemoShard<V>; MEMO_SHARD_COUNT]>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
    epoch_clears: AtomicU64,
    evicted: AtomicU64,
    retained: AtomicU64,
    swept: AtomicU64,
}

impl<V: Clone> MemoTable<V> {
    const fn new() -> Self {
        MemoTable {
            shards: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            epoch_clears: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            swept: AtomicU64::new(0),
        }
    }

    fn all_shards(&self) -> &[MemoShard<V>; MEMO_SHARD_COUNT] {
        self.shards
            .get_or_init(|| std::array::from_fn(|_| RwLock::new(MemoShardState::default())))
    }

    fn shard(&self, key: (NodeId, NodeId)) -> &MemoShard<V> {
        &self.all_shards()[memo_shard_index(key)]
    }

    fn get(&self, key: (NodeId, NodeId)) -> Option<V> {
        let guard = read_counted(self.shard(key), &self.contended);
        let found = guard.map.get(&key).map(|e| {
            // Second chance: mark the entry hot. A relaxed store is enough;
            // the bit is a heuristic, not a synchronization point.
            e.referenced.store(true, Ordering::Relaxed);
            e.value.clone()
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: (NodeId, NodeId), value: V) {
        let mut guard = write_counted(self.shard(key), &self.contended);
        let state = &mut *guard;
        if let Some(existing) = state.map.get_mut(&key) {
            // Lost a race with another thread computing the same pair: the
            // results are equal (the operations are deterministic), so just
            // refresh in place — the key is already on the ring.
            existing.value = value;
            return;
        }
        let cap = memo_shard_cap();
        match memo_policy() {
            MemoPolicy::Disabled => return,
            MemoPolicy::EpochClear => {
                if state.map.len() >= cap {
                    state.map.clear();
                    state.ring.clear();
                    self.epoch_clears.fetch_add(1, Ordering::Relaxed);
                }
            }
            MemoPolicy::SecondChance => {
                // Clock sweep: hot (referenced) keys get their bit cleared
                // and one more round; the first cold key is evicted. A full
                // cycle clears every bit, so the loop terminates.
                while state.map.len() >= cap {
                    let Some(hand) = state.ring.pop_front() else {
                        break; // unreachable: map keys ⊆ ring
                    };
                    let Some(entry) = state.map.get(&hand) else {
                        continue; // stale ring key (GC-purged entry)
                    };
                    if entry.referenced.swap(false, Ordering::Relaxed) {
                        state.ring.push_back(hand);
                        self.retained.fetch_add(1, Ordering::Relaxed);
                    } else {
                        state.map.remove(&hand);
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        state.map.insert(
            key,
            MemoEntry {
                value,
                referenced: std::sync::atomic::AtomicBool::new(false),
            },
        );
        state.ring.push_back(key);
    }

    /// Drops entries whose key mentions a freed node id. Their keys can
    /// never be asked again (ids are not recycled), so they are pure
    /// garbage — and their values may be the last references keeping
    /// other nodes alive.
    fn purge_freed(&self, freed: &FxHashSet<NodeId>) -> u64 {
        let mut dropped = 0u64;
        for shard in self.all_shards() {
            let mut guard = write_counted(shard, &self.contended);
            let MemoShardState { map, ring } = &mut *guard;
            let before = map.len();
            map.retain(|(a, b), _| !freed.contains(a) && !freed.contains(b));
            let removed = before - map.len();
            if removed > 0 {
                ring.retain(|k| map.contains_key(k));
            }
            dropped += removed as u64;
        }
        self.swept.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    fn clear(&self) {
        for shard in self.all_shards() {
            let mut guard = write_counted(shard, &self.contended);
            guard.map.clear();
            guard.ring.clear();
        }
    }

    fn len(&self) -> usize {
        match self.shards.get() {
            Some(shards) => shards.iter().map(|s| s.read().map.len()).sum(),
            None => 0,
        }
    }

    fn stats(&self) -> MemoStats {
        MemoStats {
            entries: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            epoch_clears: self.epoch_clears.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            swept: self.swept.load(Ordering::Relaxed),
        }
    }
}

static LE_MEMO: MemoTable<bool> = MemoTable::new();
static UNION_MEMO: MemoTable<Object> = MemoTable::new();
static INTERSECT_MEMO: MemoTable<Object> = MemoTable::new();

fn symmetric(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// True when a pair of nodes is worth memoizing: both subtrees at least
/// [`MEMO_MIN_SIZE`] nodes (smaller comparisons are cheaper than a lock
/// round-trip on the shared table), and memoization is not disabled.
fn memo_worthy(a: &Meta, b: &Meta) -> bool {
    a.size >= MEMO_MIN_SIZE && b.size >= MEMO_MIN_SIZE && memo_policy() != MemoPolicy::Disabled
}

/// `a ≤ b` through the memo table (order-sensitive key), falling back to
/// `compute` on a miss or when the pair is below the memo threshold.
pub(crate) fn le_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> bool,
) -> bool {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = (a.0, b.0);
    if let Some(r) = LE_MEMO.get(key) {
        return r;
    }
    let r = compute();
    LE_MEMO.put(key, r);
    r
}

/// `a ∪ b` through the memo table (symmetric key — union commutes).
pub(crate) fn union_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> Object,
) -> Object {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = symmetric(a.0, b.0);
    if let Some(r) = UNION_MEMO.get(key) {
        return r;
    }
    let r = compute();
    UNION_MEMO.put(key, r.clone());
    r
}

/// `a ∩ b` through the memo table (symmetric key — intersection commutes).
pub(crate) fn intersect_cached(
    a: (NodeId, &Meta),
    b: (NodeId, &Meta),
    compute: impl FnOnce() -> Object,
) -> Object {
    if !memo_worthy(a.1, b.1) {
        return compute();
    }
    let key = symmetric(a.0, b.0);
    if let Some(r) = INTERSECT_MEMO.get(key) {
        return r;
    }
    let r = compute();
    INTERSECT_MEMO.put(key, r.clone());
    r
}

// ---------------------------------------------------------------------------
// Garbage collection: pinned roots and the sweep
// ---------------------------------------------------------------------------

/// The pin registry: node id → number of live [`Root`] guards. Purely
/// observational belt-and-suspenders — every `Root` also *holds* its
/// object, so a pinned node's strong count already protects it from the
/// sweep — but the explicit id set lets [`collect`] report root counts and
/// double-check itself.
fn pin_registry() -> &'static parking_lot::Mutex<FxHashMap<NodeId, usize>> {
    static PINS: OnceLock<parking_lot::Mutex<FxHashMap<NodeId, usize>>> = OnceLock::new();
    PINS.get_or_init(|| parking_lot::Mutex::new(FxHashMap::default()))
}

/// An RAII guard pinning a composite object's node (and, transitively, its
/// whole subtree) across [`collect`] calls.
///
/// The engine pins its fixpoint database and per-round snapshots this way
/// before sweeping between rounds; any long-lived cache that holds only
/// `NodeId`s (not `Object`s) should pin what it expects to resolve later.
/// Dropping the guard unpins; the node then lives exactly as long as
/// ordinary references to it do.
///
/// ```
/// use co_object::{obj, store};
///
/// let db = obj!([pinned_doc_example: {1, 2, 3}]);
/// let root = store::pin(&db).expect("composites are pinnable");
/// assert_eq!(root.object(), &db);
/// assert_eq!(Some(root.id()), db.node_id());
/// // While `root` lives, a sweep will never free the node…
/// store::collect();
/// assert!(store::contains_node(root.id()));
/// ```
#[derive(Debug)]
pub struct Root {
    id: NodeId,
    object: Object,
}

impl Root {
    /// The pinned node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The pinned object.
    pub fn object(&self) -> &Object {
        &self.object
    }
}

impl Clone for Root {
    fn clone(&self) -> Root {
        pin(&self.object).expect("a Root always wraps a composite")
    }
}

impl Drop for Root {
    fn drop(&mut self) {
        let mut pins = pin_registry().lock();
        if let Some(count) = pins.get_mut(&self.id) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.id);
            }
        }
    }
}

/// Pins `o`'s interned node as a GC root, returning the RAII guard — or
/// `None` for atoms/⊥/⊤, which have no node to pin (and nothing a sweep
/// could ever free).
pub fn pin(o: &Object) -> Option<Root> {
    let id = o.node_id()?;
    *pin_registry().lock().entry(id).or_insert(0) += 1;
    Some(Root {
        id,
        object: o.clone(),
    })
}

/// Number of distinct node ids currently pinned by live [`Root`] guards.
pub fn pinned_roots() -> usize {
    pin_registry().lock().len()
}

/// True when the store still holds a node with this id. A *false* answer
/// for an id you once saw means the node was swept — and because ids are
/// never recycled, the id can never come back: dangling ids are permanently
/// detectable, never silently re-bound.
///
/// O(1) per shard (each shard keeps an id set alongside its buckets), so
/// downstream layers holding bare `NodeId`s can probe liveness freely.
pub fn contains_node(id: NodeId) -> bool {
    shards().iter().any(|shard| shard.read().ids.contains(&id))
}

/// What one [`collect`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Tuple nodes freed by this sweep.
    pub freed_tuples: usize,
    /// Set nodes freed by this sweep.
    pub freed_sets: usize,
    /// Nodes examined (live before the sweep).
    pub examined: usize,
    /// Memo entries dropped because a key mentioned a freed id.
    pub memo_entries_swept: u64,
    /// Columnar arena cache entries dropped because their set was freed
    /// (see [`crate::columnar`]).
    pub columnar_entries_swept: u64,
    /// Mark/sweep passes run (> 1 when dropping memo values released
    /// further nodes).
    pub passes: u32,
    /// Budgeted slices the cycle ran in (1 when the cycle fit its pause
    /// budget, or when slicing is off — see [`gc_pause_budget_us`]).
    pub slices: u32,
    /// Distinct node ids pinned by [`Root`] guards at sweep time.
    pub pinned_roots: usize,
}

impl SweepStats {
    /// Total nodes freed by this sweep.
    pub fn freed_nodes(&self) -> usize {
        self.freed_tuples + self.freed_sets
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep: freed {} of {} nodes ({} tuples, {} sets) in {} passes / {} slices, \
             {} memo entries swept, {} columnar arenas swept, {} pinned roots",
            self.freed_nodes(),
            self.examined,
            self.freed_tuples,
            self.freed_sets,
            self.passes,
            self.slices,
            self.memo_entries_swept,
            self.columnar_entries_swept,
            self.pinned_roots,
        )
    }
}

/// Cumulative [`collect`] calls (see [`StoreStats::gc_sweeps`]).
static GC_SWEEPS: AtomicU64 = AtomicU64::new(0);
/// Cumulative nodes freed (see [`StoreStats::gc_freed_nodes`]).
static GC_FREED_NODES: AtomicU64 = AtomicU64::new(0);
/// Cumulative automatic high-water-mark collections (see
/// [`StoreStats::gc_auto_triggers`]).
static GC_AUTO_TRIGGERS: AtomicU64 = AtomicU64::new(0);
/// Cumulative budgeted sweep slices (see [`StoreStats::gc_slices`]).
static GC_SLICES: AtomicU64 = AtomicU64::new(0);
/// Live interned nodes (tuples + sets): incremented on every intern miss,
/// decremented per freed node by [`collect`]. The O(1) gauge the
/// high-water trigger reads on the intern path.
static LIVE_NODES: AtomicU64 = AtomicU64::new(0);

/// Live interned nodes right now — the O(1) gauge the high-water trigger
/// and the collector thread pace themselves off. Monotone between sweeps;
/// drops by exactly the freed-node count of each [`collect`] cycle.
pub fn live_nodes() -> u64 {
    LIVE_NODES.load(Ordering::Relaxed)
}

/// One collector at a time; others queue behind the same mutex (automatic
/// triggers skip instead of queuing — see [`maybe_auto_collect`]).
static GC_GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// Set when a thread crossed the high-water mark while the [`GC_GATE`] was
/// held (or to wake the collector thread). The gate holder — or the
/// collector — re-checks and clears it, so a crossing observed during a
/// sweep is absorbed instead of silently dropped (the pre-PR-10 bug: a
/// failed `try_lock` re-armed nothing, so the mark could be overshot
/// unboundedly while an explicit sweep was parked).
static GC_NUDGE_PENDING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

// ---------------------------------------------------------------------------
// Size-triggered collection: the high-water mark
// ---------------------------------------------------------------------------

/// Sentinel meaning "high-water mark not yet initialized from the
/// environment".
const GC_HIGH_WATER_UNSET: u64 = u64::MAX;

/// The configured high-water mark (`0` = automatic collection disabled).
static GC_HIGH_WATER: AtomicU64 = AtomicU64::new(GC_HIGH_WATER_UNSET);

/// The live-node count at which the next automatic collection fires
/// (`u64::MAX` = never). Re-armed with hysteresis after every auto sweep.
static GC_NEXT_AUTO: AtomicU64 = AtomicU64::new(u64::MAX);

/// The current high-water mark in live nodes: when an intern pushes the
/// live-node count past it, the store runs [`collect`] automatically
/// (counted in [`StoreStats::gc_auto_triggers`]). `0` means disabled.
///
/// Initialized lazily from the `CO_GC_HIGH_WATER` environment variable
/// (default: disabled); override at runtime with [`set_gc_high_water`].
pub fn gc_high_water() -> u64 {
    match GC_HIGH_WATER.load(Ordering::Relaxed) {
        GC_HIGH_WATER_UNSET => {
            let hw = std::env::var("CO_GC_HIGH_WATER")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0);
            // Only initialize from UNSET: a concurrent explicit
            // `set_gc_high_water` must not be clobbered by the env default.
            match GC_HIGH_WATER.compare_exchange(
                GC_HIGH_WATER_UNSET,
                hw,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if hw > 0 {
                        GC_NEXT_AUTO.store(hw, Ordering::Relaxed);
                    }
                    hw
                }
                Err(set_concurrently) => set_concurrently,
            }
        }
        hw => hw,
    }
}

/// Sets the high-water mark: once more than `nodes` interned nodes are
/// live, the store collects itself on the intern path — servers no longer
/// need to guess a GC cadence. `0` disables automatic collection.
///
/// After an automatic sweep whose survivors still exceed the mark (the
/// working set is simply that large), the next trigger is re-armed half a
/// mark above the surviving population, so a big live set degrades into
/// periodic background sweeps instead of a collect-per-intern storm.
///
/// ```
/// use co_object::{obj, store};
///
/// store::set_gc_high_water(1_000_000); // collect past a million nodes
/// let _ = obj!([high_water_doc: {1, 2}]);
/// store::set_gc_high_water(0); // back to explicit-only collection
/// ```
pub fn set_gc_high_water(nodes: u64) {
    GC_HIGH_WATER.store(nodes, Ordering::Relaxed);
    GC_NEXT_AUTO.store(if nodes == 0 { u64::MAX } else { nodes }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Pause budget: incremental (sliced) sweeps
// ---------------------------------------------------------------------------

/// Sentinel meaning "pause budget not yet initialized from the
/// environment".
const GC_PAUSE_BUDGET_UNSET: u64 = u64::MAX;

/// Default per-slice pause budget in microseconds (~2ms): long enough to
/// amortize the slice bookkeeping, short enough that a request thread
/// parked behind a shard lock never waits a full stop-the-world sweep.
pub const GC_PAUSE_BUDGET_DEFAULT_US: u64 = 2_000;

/// The configured per-slice pause budget in µs (`0` = unbudgeted: one
/// stop-the-world slice, the pre-PR-10 behaviour).
static GC_PAUSE_BUDGET_US: AtomicU64 = AtomicU64::new(GC_PAUSE_BUDGET_UNSET);

/// The per-slice GC pause budget in microseconds. A [`collect`] cycle
/// sweeps the interner in **slices**: once a slice has run for this long,
/// the sweep releases every lock it holds, records the slice's pause into
/// the `store.gc_pause_ns` histogram, yields, and resumes — so an intern
/// call never waits on a shard lock for more than about one budget, no
/// matter how large the store is. `0` disables slicing (single
/// stop-the-world slice per cycle).
///
/// Initialized lazily from the `CO_GC_PAUSE_BUDGET_US` environment
/// variable (default [`GC_PAUSE_BUDGET_DEFAULT_US`]); override at runtime
/// with [`set_gc_pause_budget_us`].
pub fn gc_pause_budget_us() -> u64 {
    match GC_PAUSE_BUDGET_US.load(Ordering::Relaxed) {
        GC_PAUSE_BUDGET_UNSET => {
            let us = std::env::var("CO_GC_PAUSE_BUDGET_US")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(GC_PAUSE_BUDGET_DEFAULT_US);
            // Only initialize from UNSET: a concurrent explicit
            // `set_gc_pause_budget_us` must not be clobbered.
            match GC_PAUSE_BUDGET_US.compare_exchange(
                GC_PAUSE_BUDGET_UNSET,
                us,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => us,
                Err(set_concurrently) => set_concurrently,
            }
        }
        us => us,
    }
}

/// Overrides the per-slice pause budget at runtime (`0` = unbudgeted
/// stop-the-world slices). Takes effect at the next [`collect`] cycle.
pub fn set_gc_pause_budget_us(us: u64) {
    GC_PAUSE_BUDGET_US.store(
        if us == GC_PAUSE_BUDGET_UNSET {
            us - 1
        } else {
            us
        },
        Ordering::Relaxed,
    );
}

// ---------------------------------------------------------------------------
// The collector thread
// ---------------------------------------------------------------------------

/// Collector-thread switch: 0 = uninitialised, 1 = off, 2 = on.
static GC_COLLECTOR_STATE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Whether the dedicated collector thread owns garbage collection.
///
/// With the collector on, the intern-path high-water trigger becomes a
/// cheap nudge (one atomic swap, at most one condvar notify) instead of an
/// inline sweep, and explicit [`collect`] calls are serviced *on* the
/// collector thread (the caller blocks for the result, so semantics and
/// [`SweepStats`] are unchanged — only the pause moves off request
/// threads). The thread also paces itself off the live-node gauge every
/// ~20ms, so a crossing that happened while the gate was busy — or right
/// before interning went quiet — is absorbed instead of lost.
///
/// Initialized lazily from the `CO_GC_COLLECTOR` environment variable
/// (`1`/`on`/`true` enable); override at runtime with
/// [`set_gc_collector`].
pub fn gc_collector_enabled() -> bool {
    match GC_COLLECTOR_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = matches!(
                std::env::var("CO_GC_COLLECTOR").as_deref(),
                Ok("1") | Ok("on") | Ok("true")
            );
            // Only initialize from the unset sentinel: a concurrent
            // explicit `set_gc_collector` must win over the env default.
            let _ = GC_COLLECTOR_STATE.compare_exchange(
                0,
                if on { 2 } else { 1 },
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            gc_collector_enabled()
        }
    }
}

/// Turns the dedicated collector thread on or off at runtime. The thread
/// is spawned on first enablement and lives for the process (turning the
/// collector off merely routes collection back inline; an idle collector
/// thread costs one ~20ms-interval timed wait). Pending synchronous
/// requests are always served, even across a disable.
pub fn set_gc_collector(on: bool) {
    GC_COLLECTOR_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    if on {
        let _ = collector(); // make sure the thread exists before the first nudge
    }
}

/// The collector thread's request ledger: explicit [`collect`] calls take
/// a ticket (`requested`) and wait until `completed` catches up; the
/// cycle's [`SweepStats`] travel back through `last`.
#[derive(Default)]
struct CollectorShared {
    requested: u64,
    completed: u64,
    last: SweepStats,
}

struct Collector {
    state: std::sync::Mutex<CollectorShared>,
    /// Wakes the collector thread (new ticket or high-water nudge).
    work: std::sync::Condvar,
    /// Wakes ticket holders when `completed` advances.
    done: std::sync::Condvar,
}

/// The collector singleton; spawns the thread on first access.
fn collector() -> &'static Collector {
    static CELL: OnceLock<&'static Collector> = OnceLock::new();
    CELL.get_or_init(|| {
        let c: &'static Collector = Box::leak(Box::new(Collector {
            state: std::sync::Mutex::new(CollectorShared::default()),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("co-gc-collector".to_owned())
            .spawn(move || collector_loop(c))
            .expect("spawn the gc collector thread");
        c
    })
}

/// Leaves a wake-up for the collector thread: one atomic swap when a nudge
/// is already queued, one mutex/notify round-trip otherwise. Never sweeps
/// and never blocks on the GC gate — this is all the intern path pays.
fn nudge_collector() {
    if GC_NUDGE_PENDING.swap(true, Ordering::AcqRel) {
        return; // a nudge is already queued; the collector will see it
    }
    let _s = collector().state.lock().unwrap_or_else(|e| e.into_inner());
    collector().work.notify_all();
}

/// Runs one full collection cycle on the collector thread, blocking the
/// caller until it completes; returns that cycle's stats. Semantically
/// identical to an inline [`collect`] — the caller's thread-local L1 is
/// flushed *here* (the collector cannot reach it), so the caller's own
/// dropped transients are reclaimable by the cycle it waits for.
fn collect_via_collector() -> SweepStats {
    flush_thread_caches();
    let c = collector();
    let mut s = c.state.lock().unwrap_or_else(|e| e.into_inner());
    s.requested += 1;
    let ticket = s.requested;
    c.work.notify_all();
    while s.completed < ticket {
        s = c.done.wait(s).unwrap_or_else(|e| e.into_inner());
    }
    s.last
}

/// The collector thread: serves explicit tickets, absorbs high-water
/// nudges, and re-checks the live-node gauge on a ~20ms pacing tick (so a
/// crossing that raced a busy gate — or happened just before interning
/// went quiet — still gets its sweep).
fn collector_loop(c: &'static Collector) {
    const PACING: std::time::Duration = std::time::Duration::from_millis(20);
    let gauge_due = || {
        let hw = gc_high_water();
        hw != 0
            && gc_collector_enabled()
            && LIVE_NODES.load(Ordering::Relaxed) >= GC_NEXT_AUTO.load(Ordering::Relaxed)
    };
    loop {
        let (target, served) = {
            let mut s = c.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if s.requested > s.completed
                    || GC_NUDGE_PENDING.load(Ordering::Acquire)
                    || gauge_due()
                {
                    break;
                }
                let (guard, _timeout) = c
                    .work
                    .wait_timeout(s, PACING)
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            }
            (s.requested, s.completed)
        };
        let nudged = GC_NUDGE_PENDING.swap(false, Ordering::AcqRel);
        let explicit = target > served;
        // A nudge only *causes* a sweep while automatic collection is
        // still armed and the collector still owns it: a stale nudge left
        // behind after the mark (or the collector) was turned off must be
        // absorbed without sweeping, or a disabled collector would keep
        // running cycles concurrently with whoever took over.
        let auto_due = (nudged || gauge_due()) && gc_collector_enabled() && gc_high_water() != 0;
        if !explicit && !auto_due {
            continue;
        }
        if auto_due {
            GC_AUTO_TRIGGERS.fetch_add(1, Ordering::Relaxed);
        }
        // Autonomous (gauge/nudge-driven) sweeps pace themselves —
        // sleeping between slices (see `Slicer`) — so background
        // collection never monopolizes a core against the serving
        // threads. Explicit tickets have a caller parked in
        // `collect_via_collector`; those cycles run unpaced, like inline
        // `collect()` always did.
        let stats = {
            let _gate = GC_GATE.lock();
            collect_locked(!explicit)
        };
        let hw = gc_high_water();
        if hw != 0 {
            rearm_after_sweep(hw);
        }
        let mut s = c.state.lock().unwrap_or_else(|e| e.into_inner());
        s.completed = target;
        s.last = stats;
        c.done.notify_all();
    }
}

/// Intern-path check: fires an automatic collection when the live-node
/// count has crossed the armed threshold. One relaxed load when idle or
/// below the mark.
#[inline]
fn maybe_auto_collect() {
    let hw = gc_high_water();
    if hw == 0 || LIVE_NODES.load(Ordering::Relaxed) < GC_NEXT_AUTO.load(Ordering::Relaxed) {
        return;
    }
    auto_collect(hw);
}

/// The cold path of [`maybe_auto_collect`]. With the collector thread on,
/// this is a cheap nudge and the interner keeps going; inline, it runs one
/// sweep unless a collection is already in flight — in which case the
/// crossing is *recorded* ([`GC_NUDGE_PENDING`]) for the gate holder to
/// re-check on release, never silently dropped.
#[cold]
fn auto_collect(hw: u64) {
    if gc_collector_enabled() {
        nudge_collector();
        return;
    }
    {
        let Some(_gate) = GC_GATE.try_lock() else {
            // A sweep is already in flight; it will reclaim for us. Record
            // the crossing so the holder re-checks once the gate frees —
            // a silent skip would let the mark be overshot unboundedly
            // while an explicit sweep is parked.
            GC_NUDGE_PENDING.store(true, Ordering::Release);
            return;
        };
        GC_AUTO_TRIGGERS.fetch_add(1, Ordering::Relaxed);
        let _ = collect_locked(false);
        rearm_after_sweep(hw);
        // This sweep absorbs any crossing recorded while it ran.
        GC_NUDGE_PENDING.store(false, Ordering::Release);
    }
    recheck_after_gate_release();
}

/// Hysteresis: normally re-arm at the mark; when the surviving working
/// set already exceeds it, arm half a mark above the survivors instead.
fn rearm_after_sweep(hw: u64) {
    let live = LIVE_NODES.load(Ordering::Relaxed);
    let next = if live >= hw {
        live.saturating_add(hw / 2)
    } else {
        hw
    };
    GC_NEXT_AUTO.store(next, Ordering::Relaxed);
}

/// After releasing [`GC_GATE`]: absorb a high-water crossing that was
/// recorded while we held it (the recording thread skipped its sweep
/// rather than queue behind ours).
fn recheck_after_gate_release() {
    if GC_NUDGE_PENDING.swap(false, Ordering::AcqRel) {
        maybe_auto_collect();
    }
}

/// Runs `f` with garbage collection paused: no sweep — explicit,
/// automatic, or collector-thread — can start until `f` returns. On
/// release, a high-water crossing observed during the pause is absorbed
/// immediately (the regression the pre-PR-10 `try_lock` skip missed).
///
/// `f` must not call [`collect`] (it would deadlock behind its own
/// pause). Intended for latency-critical sections and for tests that need
/// a deterministically parked sweep.
pub fn with_gc_paused<R>(f: impl FnOnce() -> R) -> R {
    let result = {
        let _gate = GC_GATE.lock();
        f()
    };
    recheck_after_gate_release();
    result
}

/// Upper bound on mark/sweep passes per [`collect`]: each extra pass only
/// chases nodes released by dropped memo values, a chain that is flat in
/// practice. Anything deeper is left for the next collection.
const MAX_SWEEP_PASSES: u32 = 8;

/// Sweeps the interner, freeing every node unreachable from outside the
/// store, and purges memo entries keyed by freed ids. Returns what it did.
///
/// A node is **reachable** — and guaranteed to survive — iff something
/// other than the store itself holds it: a live [`Object`] handle anywhere
/// (including inside another retained node, a memo-table value, or any
/// thread's L1 intern cache), or a pinned [`Root`]. The sweep runs in
/// budgeted **slices** (see [`gc_pause_budget_us`]) that hold at most one
/// shard lock at a time and release it between slices, so interning is
/// paused for about one budget at worst — never the whole cycle. Candidates
/// are processed deepest-first so a dead parent releases its children
/// within the same pass, and the cycle re-runs (bounded by
/// `MAX_SWEEP_PASSES`) when purging memo values released more nodes.
///
/// With the collector thread on ([`gc_collector_enabled`]) the cycle is
/// executed on that thread; this call still blocks until it completes and
/// returns the same [`SweepStats`], so explicit collection keeps its
/// synchronous semantics in both modes.
///
/// Two invariants make this safe to run at any quiescent or concurrent
/// point:
///
/// - **no resurrection**: a freed node had strong count 1 *while the shard
///   write lock was held*, so no other thread could have been cloning it
///   (every clone source is itself a strong reference, and interning new
///   references requires the lock we hold);
/// - **no id recycling**: the id counter is never rewound, so the same
///   canonical value re-interned later gets a fresh id, and any stale id
///   held downstream is detectably dead ([`contains_node`]) rather than
///   silently re-bound.
///
/// Determinism: collection never changes *values* — re-evaluating after a
/// sweep rebuilds bit-identical canonical objects (fresh ids, equal
/// structure), and objects that stayed reachable keep their ids, so
/// re-interning equal content still hits the same node.
///
/// ```
/// use co_object::{store, Object};
///
/// let before = store::stats();
/// // Build transient garbage nobody keeps…
/// for i in 0..256 {
///     let _ = Object::tuple([("collect_doc_example", Object::int(i))]);
/// }
/// let swept = store::collect();
/// // …the sweep reclaims it (our own thread's L1 is flushed first).
/// assert!(swept.freed_nodes() >= 256);
/// assert!(store::stats().gc_sweeps > before.gc_sweeps);
/// ```
pub fn collect() -> SweepStats {
    if gc_collector_enabled() {
        return collect_via_collector();
    }
    let stats = {
        let _gate = GC_GATE.lock();
        collect_locked(false)
    };
    recheck_after_gate_release();
    stats
}

/// The GC observability instruments, registered once in the global
/// [`co_obs`] registry.
struct GcInstruments {
    /// Per-**slice** pause durations: how long each budgeted slice held
    /// interner/memo locks (the time interners can actually be blocked).
    /// With slicing off (`CO_GC_PAUSE_BUDGET_US=0`) the single sample is
    /// the cycle's total lock-held time — the stop-the-world pause.
    pause_ns: std::sync::Arc<co_obs::Histogram>,
    /// Whole-cycle durations, slice yields included.
    cycle_ns: std::sync::Arc<co_obs::Histogram>,
    /// Cumulative slice count across all cycles.
    slices: std::sync::Arc<co_obs::Counter>,
}

fn gc_instruments() -> &'static GcInstruments {
    static CELL: OnceLock<GcInstruments> = OnceLock::new();
    CELL.get_or_init(|| GcInstruments {
        pause_ns: co_obs::histogram("store.gc_pause_ns"),
        cycle_ns: co_obs::histogram("store.gc_cycle_ns"),
        slices: co_obs::counter("store.gc_slices"),
    })
}

/// Budgets one sweep cycle into slices. A slice's **pause** is the
/// lock-held time it accumulates — the time interners can actually be
/// blocked — not wall time, so lock-free cycle work (sorting the
/// candidate worklist) never inflates a pause sample. The sweep brackets
/// every lock region with [`Slicer::locked`]/[`Slicer::unlocked`], probes
/// [`Slicer::over_budget`] inside lock-holding loops (the caller breaks
/// out and releases when it returns true), and calls
/// [`Slicer::breakpoint`] at lock-free points; a slice only ends at a
/// breakpoint, so every lock is released before the yield. Each slice's
/// pause is recorded into `store.gc_pause_ns`; with slicing off
/// (`CO_GC_PAUSE_BUDGET_US=0`) the single sample is the cycle's total
/// lock-held time — the stop-the-world pause.
///
/// A **paced** slicer additionally sleeps for twice the slice's own pause
/// (capped at 2× budget) after each slice: a ≤33% duty cycle. The
/// collector thread paces its autonomous sweeps so background collection
/// never monopolizes a core against the serving threads; synchronous
/// callers (explicit `collect()`, inline triggers) never pace — they want
/// the cycle done.
struct Slicer {
    /// `None` = unbudgeted (`CO_GC_PAUSE_BUDGET_US=0`): one slice.
    budget: Option<std::time::Duration>,
    /// Continuous-hold cap: budget/4. The pause budget bounds a *slice's*
    /// accumulated lock-held time, but an interner parked on a shard only
    /// waits out the current *region* — so [`Slicer::over_budget`] also
    /// trips when one region runs this long, forcing a release/re-acquire
    /// mid-slice. Worst-case interner wait shrinks to ~budget/4 without
    /// changing what a pause sample measures.
    region_cap: std::time::Duration,
    /// Sleep between slices (collector-thread autonomous sweeps only).
    paced: bool,
    /// Lock-held time accumulated in the current slice.
    held: std::time::Duration,
    /// Start of the lock region we are currently inside, if any.
    region: Option<std::time::Instant>,
    /// Calls to [`Slicer::over_budget`] since the region started (the
    /// clock is read every 8th call, keeping the probe cheap while
    /// bounding the unprobed window to 8 iterations — the window is part
    /// of the pause overshoot, so it must stay well under the budget).
    checks: u32,
    slices: u32,
}

impl Slicer {
    fn new(paced: bool) -> Self {
        let us = gc_pause_budget_us();
        Slicer {
            budget: (us > 0).then(|| std::time::Duration::from_micros(us)),
            region_cap: std::time::Duration::from_micros(us.max(4) / 4),
            paced,
            held: std::time::Duration::ZERO,
            region: None,
            checks: 0,
            slices: 0,
        }
    }

    /// The sweep just acquired a shard or memo lock.
    fn locked(&mut self) {
        // Re-phase the probe counter so the first clock read of a fresh
        // region comes after at most 8 iterations, not up to a full
        // window into it.
        self.checks = 0;
        self.region = Some(std::time::Instant::now());
    }

    /// The sweep just released it.
    fn unlocked(&mut self) {
        if let Some(start) = self.region.take() {
            self.held += start.elapsed();
        }
    }

    /// Lock-held time charged to the current slice so far.
    fn spent(&self) -> std::time::Duration {
        self.held
            + self
                .region
                .map_or(std::time::Duration::ZERO, |start| start.elapsed())
    }

    /// Cheap in-lock probe: true once the current slice has used its
    /// budget *or* the current lock region has run past the
    /// continuous-hold cap. The caller must release its locks and reach a
    /// [`Slicer::breakpoint`] — which only ends the slice when the full
    /// budget is spent; a cap-tripped region just re-acquires and resumes.
    fn over_budget(&mut self) -> bool {
        let Some(budget) = self.budget else {
            return false;
        };
        self.checks = self.checks.wrapping_add(1);
        if self.checks & 7 != 0 {
            return false;
        }
        self.spent() >= budget
            || self
                .region
                .is_some_and(|start| start.elapsed() >= self.region_cap)
    }

    /// Lock-free point: ends the slice here if the budget is spent.
    fn breakpoint(&mut self) {
        debug_assert!(self.region.is_none(), "breakpoint inside a lock region");
        if let Some(budget) = self.budget {
            if self.held >= budget {
                self.end_slice();
            }
        }
    }

    /// Ends the current slice: records its pause, yields so interners
    /// parked behind the just-released shard locks get scheduled (a paced
    /// slicer sleeps instead — see the duty-cycle note on [`Slicer`]),
    /// then zeroes the next slice's ledger.
    fn end_slice(&mut self) {
        let pause = self.spent();
        self.record_slice();
        match (self.paced, self.budget) {
            // Sleep 2× the slice's own pause (capped at 2× budget): a ≤33%
            // duty cycle. Besides ceding the core to serving threads
            // two-thirds of the time, the regular sleep keeps the
            // collector's scheduler vruntime low, so it is far less likely
            // to be *preempted while holding a shard lock* — which would
            // stretch the next pause sample past the budget.
            (true, Some(budget)) => std::thread::sleep((2 * pause).min(2 * budget)),
            _ => std::thread::yield_now(),
        }
        self.held = std::time::Duration::ZERO;
    }

    fn record_slice(&mut self) {
        gc_instruments().pause_ns.record_duration(self.spent());
        gc_instruments().slices.inc();
        GC_SLICES.fetch_add(1, Ordering::Relaxed);
        self.slices += 1;
    }

    /// Records the cycle's final (in-progress) slice and returns the total
    /// slice count.
    fn finish(mut self) -> u32 {
        self.record_slice();
        self.slices
    }
}

/// The body of [`collect`]; the caller holds [`GC_GATE`]. Records each
/// slice's pause into the `store.gc_pause_ns` registry histogram, the
/// whole cycle into `store.gc_cycle_ns`, and — when `CO_TRACE` is on —
/// emits a `store.gc_sweep` span for the cycle. `paced` selects the
/// collector thread's ≤50% duty cycle between slices (see [`Slicer`]).
fn collect_locked(paced: bool) -> SweepStats {
    let start = std::time::Instant::now();
    let stats = collect_locked_inner(paced);
    let cycle = start.elapsed();
    gc_instruments().cycle_ns.record_duration(cycle);
    if co_obs::trace_enabled() {
        co_obs::emit(
            "store.gc_sweep",
            &[
                ("cycle_ns", co_obs::FieldValue::U64(cycle.as_nanos() as u64)),
                ("slices", co_obs::FieldValue::U64(stats.slices as u64)),
                ("examined", co_obs::FieldValue::U64(stats.examined as u64)),
                (
                    "freed_nodes",
                    co_obs::FieldValue::U64(stats.freed_nodes() as u64),
                ),
                ("passes", co_obs::FieldValue::U64(stats.passes as u64)),
                (
                    "pinned_roots",
                    co_obs::FieldValue::U64(stats.pinned_roots as u64),
                ),
            ],
        );
    }
    stats
}

/// One sweep cycle, in budgeted slices (see [`Slicer`]). The incremental
/// design and why it is still sound:
///
/// - **Sweep-epoch floor**: the cycle snapshots [`NODE_ID_COUNTER`] at
///   entry; any node with `id >= floor` was interned after the cycle began
///   and is never a candidate, so a value interned into an already-swept
///   shard mid-cycle cannot be freed by this cycle.
/// - **No resurrection, per shard**: a node is only removed while its own
///   shard's write lock is held and its `Arc` strong count is 1. Every
///   clone source is itself a strong reference (count ≥ 2), and interning
///   equal content routes through the very lock we hold — holding the
///   other 15 shards' locks (the pre-PR-10 design) added nothing to this
///   argument, which is what makes per-shard-lock slicing sound.
/// - **Deepest-first across slices**: candidates are gathered globally and
///   sorted by `(depth desc, shard)`, and slices never reorder them — a
///   parent (strictly deeper than its children) always drops before its
///   children are examined, preserving single-pass completeness and the
///   [`MAX_SWEEP_PASSES`] bound.
/// - **Pins**: the pinned-id snapshot is taken once per pass; a node
///   pinned *after* the snapshot is safe anyway because a [`Root`] holds a
///   strong reference, which the count check sees.
fn collect_locked_inner(paced: bool) -> SweepStats {
    // Flush this thread's L1 and schedule every other thread's flush (they
    // self-flush on their next intern, bounding cross-sweep retention).
    L1_FLUSH_EPOCH.fetch_add(1, Ordering::Release);
    TL_SEEN_EPOCH.with(|seen| seen.set(L1_FLUSH_EPOCH.load(Ordering::Acquire)));
    flush_thread_caches();

    // The sweep-epoch floor: nodes interned from here on are not ours.
    let id_floor = NODE_ID_COUNTER.load(Ordering::Relaxed);
    let all = shards();
    let mut slicer = Slicer::new(paced);
    let mut stats = SweepStats::default();

    while stats.passes < MAX_SWEEP_PASSES {
        stats.passes += 1;
        let pinned: FxHashSet<NodeId> = pin_registry().lock().keys().copied().collect();
        if stats.passes == 1 {
            stats.pinned_roots = pinned.len();
        }
        // Gather candidates: every unpinned, pre-floor node. A big shard
        // cannot be scanned under one lock hold without blowing the
        // budget, so each shard's scan is **resumable**: snapshot its
        // bucket keys under a brief lock — buckets are only ever *added*
        // while this sweep holds the gate (removal is ours alone), so the
        // key list is a stable cursor — then walk the keys in budgeted
        // chunks, releasing the lock between them. Buckets added after
        // the snapshot hold only post-floor nodes, which are out of scope
        // for this cycle anyway. Liveness is re-checked at removal time
        // under the write lock.
        // Pre-sized to the store's id count (O(1) per shard): a doubling
        // realloc of a 100k-entry worklist inside a gather region would
        // add milliseconds to that slice's pause.
        let expected: usize = all.iter().map(|s| s.read().ids.len()).sum();
        let mut candidates: Vec<(u64, usize, bool, u64, NodeId)> = Vec::with_capacity(expected);
        let mut live_seen = 0usize;
        for (si, shard) in all.iter().enumerate() {
            let (tuple_keys, set_keys) = {
                let guard = shard.read();
                slicer.locked();
                let keys = (
                    guard.tuples.keys().copied().collect::<Vec<u64>>(),
                    guard.sets.keys().copied().collect::<Vec<u64>>(),
                );
                drop(guard);
                slicer.unlocked();
                keys
            };
            slicer.breakpoint();
            // One chunked scan per map; the two maps' bucket types differ,
            // so the macro stamps the same resumable loop for each.
            macro_rules! chunked_scan {
                ($keys:expr, $map:ident, $is_set:expr) => {
                    let keys = $keys;
                    let mut k = 0usize;
                    while k < keys.len() {
                        let guard = shard.read();
                        slicer.locked();
                        while k < keys.len() && !slicer.over_budget() {
                            let hash = keys[k];
                            k += 1;
                            let Some(bucket) = guard.$map.get(&hash) else {
                                continue;
                            };
                            live_seen += bucket.len();
                            for node in bucket {
                                if node.id.0 < id_floor && !pinned.contains(&node.id) {
                                    candidates.push((node.meta.depth, si, $is_set, hash, node.id));
                                }
                            }
                        }
                        drop(guard);
                        slicer.unlocked();
                        slicer.breakpoint();
                    }
                };
            }
            chunked_scan!(tuple_keys, tuples, false);
            chunked_scan!(set_keys, sets, true);
        }
        if stats.passes == 1 {
            stats.examined = live_seen;
        }
        // Deepest-first globally; shard as tiebreak so equal-depth runs
        // batch under one write-lock acquisition.
        candidates.sort_unstable_by_key(|c| (std::cmp::Reverse(c.0), c.1));

        // Pre-sized to the candidate count: a rehash of a 100k-id set
        // inside a shard-lock region would blow any pause budget.
        let mut freed: FxHashSet<NodeId> =
            FxHashSet::with_capacity_and_hasher(candidates.len(), Default::default());
        let mut i = 0usize;
        while i < candidates.len() {
            let run_shard = candidates[i].1;
            {
                let mut guard = all[run_shard].write();
                slicer.locked();
                while i < candidates.len() && candidates[i].1 == run_shard {
                    if slicer.over_budget() {
                        break;
                    }
                    let (_, _, is_set, hash, id) = candidates[i];
                    i += 1;
                    let mut removed = false;
                    if is_set {
                        if let Some(bucket) = guard.sets.get_mut(&hash) {
                            if let Some(ix) = bucket.iter().position(|n| n.id == id) {
                                // Strong count 1 = only the store's own
                                // reference.
                                if Arc::strong_count(&bucket[ix]) == 1 {
                                    bucket.swap_remove(ix);
                                    if bucket.is_empty() {
                                        guard.sets.remove(&hash);
                                    }
                                    removed = true;
                                    stats.freed_sets += 1;
                                }
                            }
                        }
                    } else if let Some(bucket) = guard.tuples.get_mut(&hash) {
                        if let Some(ix) = bucket.iter().position(|n| n.id == id) {
                            if Arc::strong_count(&bucket[ix]) == 1 {
                                bucket.swap_remove(ix);
                                if bucket.is_empty() {
                                    guard.tuples.remove(&hash);
                                }
                                removed = true;
                                stats.freed_tuples += 1;
                            }
                        }
                    }
                    if removed {
                        guard.ids.remove(&id);
                        freed.insert(id);
                    }
                }
            }
            // Write lock released: end the slice here if the budget is
            // spent (interners parked on this shard get in), then resume —
            // possibly re-acquiring the same shard for the rest of its run.
            slicer.unlocked();
            slicer.breakpoint();
        }

        LIVE_NODES.fetch_sub(freed.len() as u64, Ordering::Relaxed);
        if freed.is_empty() {
            break;
        }
        // Memo entries keyed by a freed id are unreachable garbage (the id
        // never comes back); dropping them may release the values' nodes,
        // which the next pass collects. Purge granularity is one memo
        // table per breakpoint — tables lock internally per shard, so the
        // whole purge is charged as lock-held time.
        slicer.locked();
        stats.memo_entries_swept += LE_MEMO.purge_freed(&freed);
        slicer.unlocked();
        slicer.breakpoint();
        slicer.locked();
        stats.memo_entries_swept += UNION_MEMO.purge_freed(&freed);
        slicer.unlocked();
        slicer.breakpoint();
        slicer.locked();
        stats.memo_entries_swept += INTERSECT_MEMO.purge_freed(&freed);
        slicer.unlocked();
        slicer.breakpoint();
        // The columnar arena cache is keyed by set ids the same way.
        slicer.locked();
        stats.columnar_entries_swept += crate::columnar::purge_freed(&freed);
        slicer.unlocked();
        slicer.breakpoint();
    }

    stats.slices = slicer.finish();
    GC_SWEEPS.fetch_add(1, Ordering::Relaxed);
    GC_FREED_NODES.fetch_add(stats.freed_nodes() as u64, Ordering::Relaxed);
    stats
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Counters of one interner shard (see [`StoreStats::shards`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Distinct interned tuple nodes owned by this shard.
    pub tuple_nodes: usize,
    /// Distinct interned set nodes owned by this shard.
    pub set_nodes: usize,
    /// Intern calls answered with an existing node under this shard's
    /// lock. Thread-local L1 hits never reach a shard and are reported
    /// separately in [`StoreStats::intern_l1_hits`].
    pub hits: u64,
    /// Intern calls that created a new node.
    pub misses: u64,
    /// Lock acquisitions that had to block behind another thread.
    pub contended: u64,
}

/// Counters of one memo table (`≤`, `∪`, or `∩`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Entries currently cached (across all table shards).
    pub entries: usize,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that missed (the operation was then computed and cached).
    pub misses: u64,
    /// Lock acquisitions that had to block behind another thread.
    pub contended: u64,
    /// Wholesale shard clears performed on reaching capacity — only under
    /// [`MemoPolicy::EpochClear`], the legacy policy kept for comparison.
    pub epoch_clears: u64,
    /// Cold entries evicted one-by-one by the second-chance clock.
    pub evicted: u64,
    /// Second chances granted: the clock hand found the entry referenced
    /// since its last visit, cleared the bit, and kept it.
    pub retained: u64,
    /// Entries dropped by [`collect`] because a key mentioned a freed node
    /// id (pure garbage: freed ids never recur).
    pub swept: u64,
}

impl MemoStats {
    /// Fraction of lookups answered from the table, in `[0, 1]`; `None`
    /// before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A point-in-time snapshot of store and memo-table state (diagnostics,
/// benchmarks, capacity planning). Obtain one with [`stats`].
///
/// Event counters (hits, misses, evictions, sweeps, …) are cumulative
/// since process start and monotone, so snapshot deltas (`after - before`)
/// measure a region of interest. Population gauges (node counts, memo
/// `entries`, `pinned_roots`) move both ways once [`collect`] and memo
/// eviction are in play.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct interned tuple nodes.
    pub tuple_nodes: usize,
    /// Distinct interned set nodes.
    pub set_nodes: usize,
    /// Intern calls (tuple + set) answered with an existing node: shard
    /// hits plus thread-local L1 hits.
    pub intern_hits: u64,
    /// Of [`StoreStats::intern_hits`], the calls answered by the lock-free
    /// thread-local L1 cache without touching a shard (counted on
    /// per-thread counters, so the hot path stays contention-free).
    pub intern_l1_hits: u64,
    /// Intern calls that created a new node, summed over shards.
    pub intern_misses: u64,
    /// Shard-lock acquisitions that had to block, summed over shards.
    pub intern_contended: u64,
    /// Counters of the `≤` memo table.
    pub le_memo: MemoStats,
    /// Counters of the `∪` memo table.
    pub union_memo: MemoStats,
    /// Counters of the `∩` memo table.
    pub intersect_memo: MemoStats,
    /// [`collect`] calls since process start.
    pub gc_sweeps: u64,
    /// Nodes freed by all sweeps since process start.
    pub gc_freed_nodes: u64,
    /// Of [`StoreStats::gc_sweeps`], the collections fired automatically
    /// by the high-water mark (see [`set_gc_high_water`]).
    pub gc_auto_triggers: u64,
    /// Budgeted sweep slices run by all cycles since process start (equals
    /// [`StoreStats::gc_sweeps`] when every cycle fit its pause budget).
    pub gc_slices: u64,
    /// Live interned nodes per the O(1) gauge ([`live_nodes`]); tracks
    /// `tuple_nodes + set_nodes` exactly between sweeps.
    pub live_nodes: u64,
    /// Distinct node ids currently pinned by live [`Root`] guards.
    pub pinned_roots: usize,
    /// Per-shard interner counters, indexed by shard.
    pub shards: [ShardStats; SHARD_COUNT],
}

/// Current [`StoreStats`].
pub fn stats() -> StoreStats {
    let mut s = StoreStats::default();
    for (i, shard) in shards().iter().enumerate() {
        let maps = shard.read();
        let per = ShardStats {
            tuple_nodes: maps.tuples.values().map(Vec::len).sum(),
            set_nodes: maps.sets.values().map(Vec::len).sum(),
            hits: shard.hits.load(Ordering::Relaxed),
            misses: shard.misses.load(Ordering::Relaxed),
            contended: shard.contended.load(Ordering::Relaxed),
        };
        drop(maps);
        s.shards[i] = per;
        s.tuple_nodes += per.tuple_nodes;
        s.set_nodes += per.set_nodes;
        s.intern_hits += per.hits;
        s.intern_misses += per.misses;
        s.intern_contended += per.contended;
    }
    s.intern_l1_hits = l1_hits_total();
    s.intern_hits += s.intern_l1_hits;
    s.le_memo = LE_MEMO.stats();
    s.union_memo = UNION_MEMO.stats();
    s.intersect_memo = INTERSECT_MEMO.stats();
    s.gc_sweeps = GC_SWEEPS.load(Ordering::Relaxed);
    s.gc_freed_nodes = GC_FREED_NODES.load(Ordering::Relaxed);
    s.gc_auto_triggers = GC_AUTO_TRIGGERS.load(Ordering::Relaxed);
    s.gc_slices = GC_SLICES.load(Ordering::Relaxed);
    s.live_nodes = live_nodes();
    s.pinned_roots = pinned_roots();
    s
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "store: {} tuple nodes, {} set nodes across {} shards",
            self.tuple_nodes, self.set_nodes, SHARD_COUNT,
        )?;
        writeln!(
            f,
            "  intern: {} hits ({} thread-local), {} misses, {} contended acquisitions",
            self.intern_hits, self.intern_l1_hits, self.intern_misses, self.intern_contended
        )?;
        for (label, m) in [
            ("≤", self.le_memo),
            ("∪", self.union_memo),
            ("∩", self.intersect_memo),
        ] {
            writeln!(
                f,
                "  memo {}: {} entries, {} hits, {} misses, {} evicted, \
                 {} retained, {} swept, {} epoch clears",
                label, m.entries, m.hits, m.misses, m.evicted, m.retained, m.swept, m.epoch_clears
            )?;
        }
        writeln!(
            f,
            "  gc: {} sweeps ({} auto, {} slices), {} nodes freed, {} live, {} pinned roots",
            self.gc_sweeps,
            self.gc_auto_triggers,
            self.gc_slices,
            self.gc_freed_nodes,
            self.live_nodes,
            self.pinned_roots
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn equal_composites_share_one_allocation() {
        let a = obj!([name: peter, hobbies: {chess, music}]);
        let b = obj!([hobbies: {music, chess}, name: peter]);
        assert_eq!(a, b);
        match (&a, &b) {
            (Object::Tuple(x), Object::Tuple(y)) => {
                // Same allocation, same stable id.
                assert_eq!(x.entries().as_ptr(), y.entries().as_ptr());
                assert_eq!(x.node_id(), y.node_id());
            }
            _ => panic!("expected tuples"),
        }
    }

    #[test]
    fn distinct_composites_get_distinct_ids() {
        let a = obj!({1, 2});
        let b = obj!({1, 3});
        assert_ne!(a.node_id(), b.node_id());
        assert!(a.node_id().is_some());
    }

    #[test]
    fn atoms_and_extremes_have_no_node_id() {
        assert_eq!(obj!(5).node_id(), None);
        assert_eq!(Object::Bottom.node_id(), None);
        assert_eq!(Object::Top.node_id(), None);
    }

    #[test]
    fn meta_matches_recursive_measures() {
        // First-principles recursions (NOT the `measure` module, which for
        // composites reads the very Meta fields under test).
        fn ref_depth(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) => 1,
                Object::Top => unreachable!(),
                Object::Tuple(t) => 1 + t.iter().map(|(_, v)| ref_depth(v)).max().unwrap_or(1),
                Object::Set(s) => 1 + s.iter().map(ref_depth).max().unwrap_or(1),
            }
        }
        fn ref_size(o: &Object) -> u64 {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 1,
                Object::Tuple(t) => 1 + t.iter().map(|(_, v)| ref_size(v)).sum::<u64>(),
                Object::Set(s) => 1 + s.iter().map(ref_size).sum::<u64>(),
            }
        }
        fn ref_atoms(o: &Object) -> u64 {
            match o {
                Object::Atom(_) => 1,
                Object::Bottom | Object::Top => 0,
                Object::Tuple(t) => t.iter().map(|(_, v)| ref_atoms(v)).sum(),
                Object::Set(s) => s.iter().map(ref_atoms).sum(),
            }
        }
        fn ref_fanout(o: &Object) -> usize {
            match o {
                Object::Bottom | Object::Atom(_) | Object::Top => 0,
                Object::Tuple(t) => t
                    .iter()
                    .map(|(_, v)| ref_fanout(v))
                    .max()
                    .unwrap_or(0)
                    .max(t.len()),
                Object::Set(s) => s.iter().map(ref_fanout).max().unwrap_or(0).max(s.len()),
            }
        }
        for o in [
            obj!([a: {1, 2}, b: 3]),
            obj!({[x: 1], [y: {2, {3}}]}),
            obj!({{1, 2}, {[deep: [deeper: {4, 5, 6}]]}}),
            Object::empty_set(),
            Object::empty_tuple(),
        ] {
            let meta = o.meta().expect("composite");
            assert_eq!(meta.depth, ref_depth(&o), "depth of {o}");
            assert_eq!(meta.size, ref_size(&o), "size of {o}");
            assert_eq!(meta.atom_count, ref_atoms(&o), "atom_count of {o}");
            assert_eq!(meta.max_fanout, ref_fanout(&o), "max_fanout of {o}");
        }
    }

    #[test]
    fn contains_set_and_flat_flags() {
        let flat_tuple = obj!([a: 1, b: 2]);
        let meta = flat_tuple.meta().unwrap();
        assert!(meta.flat && !meta.contains_set);

        let nested = obj!([a: {1}]);
        let meta = nested.meta().unwrap();
        assert!(!meta.flat && meta.contains_set);

        let atom_set = obj!({1, 2});
        let meta = atom_set.meta().unwrap();
        assert!(meta.flat && meta.contains_set);
    }

    #[test]
    fn store_stats_grow_monotonically() {
        let before = stats();
        let _o = obj!([unique_attr_for_store_stats: {91_182, 91_183}]);
        let after = stats();
        assert!(after.tuple_nodes > before.tuple_nodes);
        assert!(after.set_nodes > before.set_nodes);
        // New content is an intern miss; shard totals agree with the sums.
        assert!(after.intern_misses > before.intern_misses);
        let shard_tuples: usize = after.shards.iter().map(|s| s.tuple_nodes).sum();
        let shard_misses: u64 = after.shards.iter().map(|s| s.misses).sum();
        assert_eq!(shard_tuples, after.tuple_nodes);
        assert_eq!(shard_misses, after.intern_misses);
    }

    #[test]
    fn reinterning_counts_as_hits() {
        let before = stats();
        let a = obj!([unique_attr_for_hit_counter: {77_001, 77_002}]);
        let b = obj!([unique_attr_for_hit_counter: {77_001, 77_002}]);
        assert_eq!(a.node_id(), b.node_id());
        let after = stats();
        assert!(
            after.intern_hits > before.intern_hits,
            "rebuilding an existing value must count as an intern hit"
        );
    }

    #[test]
    fn parallel_interning_converges_to_one_node() {
        // Many threads race to intern the same fresh values; everyone must
        // end up with the same node per value, and the store must count the
        // duplicates as hits.
        let before = stats();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| {
                            Object::tuple([
                                ("parallel_intern_k", Object::int(i)),
                                ("parallel_intern_v", Object::int(i * 1_000_003)),
                            ])
                            .node_id()
                            .unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<NodeId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &results[1..] {
            assert_eq!(&results[0], other, "all threads see the same node ids");
        }
        let after = stats();
        // 8 threads × 64 fresh values: at most 64 (+ the atoms' parents)
        // distinct new tuple nodes; the other ~448 rebuilds were hits.
        assert!(after.intern_hits > before.intern_hits);
        assert!(after.intern_misses >= before.intern_misses + 64);
    }
}

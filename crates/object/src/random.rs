//! Random object generation for property tests and benchmark workloads.
//!
//! [`Generator`] produces canonically-formed random objects with a
//! configurable shape distribution. Because it goes through the normalizing
//! constructors, everything it emits satisfies the reduced-form invariants —
//! so it can drive lattice-law property tests directly.

use crate::{Attr, Object};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for random object generation.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Maximum nesting depth (1 = atoms only).
    pub max_depth: u32,
    /// Maximum tuple width / set cardinality at each level.
    pub max_fanout: usize,
    /// Number of distinct attribute names to draw from. Smaller pools make
    /// tuples comparable more often (more interesting lattice behaviour).
    pub attr_pool: usize,
    /// Number of distinct atoms to draw from.
    pub atom_pool: i64,
    /// Probability that a non-leaf position is a set (vs a tuple).
    pub set_bias: f64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            max_depth: 4,
            max_fanout: 4,
            attr_pool: 6,
            atom_pool: 8,
            set_bias: 0.5,
        }
    }
}

impl Profile {
    /// A profile producing shallow, narrow objects — fast tests.
    pub fn small() -> Profile {
        Profile {
            max_depth: 3,
            max_fanout: 3,
            attr_pool: 4,
            atom_pool: 5,
            set_bias: 0.5,
        }
    }

    /// A profile producing deep, wide objects — stress benchmarks.
    pub fn large() -> Profile {
        Profile {
            max_depth: 6,
            max_fanout: 8,
            attr_pool: 10,
            atom_pool: 50,
            set_bias: 0.5,
        }
    }
}

/// A seeded random object generator.
pub struct Generator {
    rng: StdRng,
    profile: Profile,
    attrs: Vec<Attr>,
}

impl Generator {
    /// Creates a generator with the given seed and profile.
    pub fn new(seed: u64, profile: Profile) -> Generator {
        let attrs = (0..profile.attr_pool)
            .map(|i| Attr::new(format!("a{i}")))
            .collect();
        Generator {
            rng: StdRng::seed_from_u64(seed),
            profile,
            attrs,
        }
    }

    /// Generates one random (canonical) object.
    pub fn object(&mut self) -> Object {
        let d = self.rng.random_range(1..=self.profile.max_depth);
        self.gen_at(d)
    }

    /// Generates `n` random objects.
    pub fn objects(&mut self, n: usize) -> Vec<Object> {
        (0..n).map(|_| self.object()).collect()
    }

    /// Generates a random flat "relation": a set of `rows` tuples over
    /// `width` attributes with atoms drawn from the profile's pool.
    pub fn relation(&mut self, rows: usize, width: usize) -> Object {
        let attrs: Vec<Attr> = (0..width).map(|i| Attr::new(format!("c{i}"))).collect();
        Object::set((0..rows).map(|_| {
            Object::tuple(attrs.iter().map(|a| {
                (
                    *a,
                    Object::int(self.rng.random_range(0..self.profile.atom_pool)),
                )
            }))
        }))
    }

    fn gen_at(&mut self, depth: u32) -> Object {
        if depth <= 1 {
            return self.atom();
        }
        if self.rng.random_bool(self.profile.set_bias) {
            let n = self.rng.random_range(0..=self.profile.max_fanout);
            Object::set((0..n).map(|_| self.gen_at(depth - 1)).collect::<Vec<_>>())
        } else {
            let n = self
                .rng
                .random_range(0..=self.profile.max_fanout.min(self.attrs.len()));
            let mut attrs = self.attrs.clone();
            // Partial Fisher-Yates: pick n distinct attributes.
            for i in 0..n {
                let j = self.rng.random_range(i..attrs.len());
                attrs.swap(i, j);
            }
            let entries: Vec<(Attr, Object)> =
                (0..n).map(|i| (attrs[i], self.gen_at(depth - 1))).collect();
            Object::tuple(entries)
        }
    }

    fn atom(&mut self) -> Object {
        match self.rng.random_range(0..4u8) {
            0 => Object::int(self.rng.random_range(0..self.profile.atom_pool)),
            1 => Object::str(format!(
                "s{}",
                self.rng.random_range(0..self.profile.atom_pool)
            )),
            2 => Object::bool(self.rng.random_bool(0.5)),
            _ => Object::float(self.rng.random_range(0..self.profile.atom_pool) as f64 * 0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{depth, Depth};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<Object> = Generator::new(42, Profile::default()).objects(10);
        let b: Vec<Object> = Generator::new(42, Profile::default()).objects(10);
        assert_eq!(a, b);
        let c: Vec<Object> = Generator::new(43, Profile::default()).objects(10);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_objects_respect_depth_bound() {
        let mut g = Generator::new(
            7,
            Profile {
                max_depth: 3,
                ..Profile::default()
            },
        );
        for o in g.objects(100) {
            match depth(&o) {
                Depth::Finite(d) => assert!(d <= 3, "depth {d} > 3 for {o}"),
                Depth::Infinite => panic!("generator must not emit ⊤"),
            }
        }
    }

    #[test]
    fn generated_relations_have_requested_shape() {
        let mut g = Generator::new(1, Profile::default());
        let r = g.relation(20, 3);
        let s = r.as_set().unwrap();
        // Duplicate rows collapse, so ≤ 20.
        assert!(s.len() <= 20 && !s.is_empty());
        for row in s.iter() {
            assert!(row.as_tuple().unwrap().len() <= 3);
        }
    }
}

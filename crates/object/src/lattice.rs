//! Lattice operations: union (least upper bound, Definition 3.4 /
//! Theorem 3.4) and intersection (greatest lower bound, Definition 3.5 /
//! Theorem 3.5).
//!
//! Together with the sub-object order these make the set of reduced complex
//! objects a lattice (Theorem 3.6) — the structure on which the whole object
//! calculus rests: interpretations and rule applications are unions of
//! instantiations, and the matcher computes maximal variable bindings as
//! intersections.
//!
//! Both operations run over interned handles ([`crate::store`]): equality
//! fast paths are pointer comparisons, and results for large operand pairs
//! are memoized by `(NodeId, NodeId)` key — `∪` and `∩` commute, so their
//! keys are symmetrized. Fixpoint evaluation unions the same sub-objects
//! every iteration, which is exactly the access pattern the memo tables
//! absorb (hit rates are visible in [`crate::store::stats`]).

use crate::store;
use crate::{Attr, Object, Tuple};
use std::cmp::Ordering;

/// `a ∪ b` — the least upper bound (Definition 3.4).
///
/// ```
/// use co_object::{obj, lattice::union, Object};
///
/// // Paper Examples 3.3:
/// assert_eq!(union(&obj!([a: 1, b: 2]), &obj!([b: 2, c: 3])), obj!([a: 1, b: 2, c: 3]));
/// assert_eq!(union(&obj!([a: 1]), &obj!([b: 2, c: 3])), obj!([a: 1, b: 2, c: 3]));
/// assert_eq!(union(&obj!([a: 1, b: 2]), &obj!([b: 3, c: 4])), Object::Top);
/// assert_eq!(union(&obj!({1, 2}), &obj!({2, 3})), obj!({1, 2, 3}));
/// assert_eq!(union(&obj!(1), &obj!(2)), Object::Top);
/// assert_eq!(union(&obj!([a: 1, b: 2]), &obj!({1, 2, 3})), Object::Top);
/// assert_eq!(
///     union(&obj!([a: 1, b: {2, 3}]), &obj!([b: {3, 4}, c: 5])),
///     obj!([a: 1, b: {2, 3, 4}, c: 5])
/// );
/// ```
pub fn union(a: &Object, b: &Object) -> Object {
    match (a, b) {
        (Object::Bottom, x) | (x, Object::Bottom) => x.clone(),
        (Object::Top, _) | (_, Object::Top) => Object::Top,
        (Object::Atom(x), Object::Atom(y)) => {
            if x == y {
                a.clone()
            } else {
                Object::Top
            }
        }
        (Object::Tuple(_), Object::Tuple(_)) | (Object::Set(_), Object::Set(_)) => {
            // Idempotence fast path: interned equality is O(1).
            if a == b {
                return a.clone();
            }
            store::union_cached(
                (a.node_id().unwrap(), a.meta().unwrap()),
                (b.node_id().unwrap(), b.meta().unwrap()),
                || union_uncached(a, b),
            )
        }
        _ => Object::Top,
    }
}

/// Same-kind composite union, bypassing the memo table.
fn union_uncached(a: &Object, b: &Object) -> Object {
    match (a, b) {
        (Object::Tuple(x), Object::Tuple(y)) => union_tuples(x, y),
        (Object::Set(x), Object::Set(y)) => {
            let mut v: Vec<Object> = Vec::with_capacity(x.len() + y.len());
            v.extend(x.iter().cloned());
            v.extend(y.iter().cloned());
            Object::set_from_vec(v)
        }
        _ => unreachable!("union_uncached called on non-matching kinds"),
    }
}

/// `a ∩ b` — the greatest lower bound (Definition 3.5).
///
/// ```
/// use co_object::{obj, lattice::intersect, Object};
///
/// // Paper Examples 3.4:
/// assert_eq!(intersect(&obj!([a: 1, b: 2]), &obj!([b: 2, c: 3])), obj!([b: 2]));
/// assert_eq!(intersect(&obj!([a: 1]), &obj!([b: 2, c: 3])), Object::empty_tuple());
/// assert_eq!(intersect(&obj!([a: 1, b: 2]), &obj!([b: 3, c: 4])), Object::empty_tuple());
/// assert_eq!(intersect(&obj!({1, 2}), &obj!({2, 3})), obj!({2}));
/// assert_eq!(intersect(&obj!(1), &obj!(2)), Object::Bottom);
/// assert_eq!(intersect(&obj!([a: 1, b: 2]), &obj!({1, 2, 3})), Object::Bottom);
/// assert_eq!(
///     intersect(&obj!([a: 1, b: {2, 3}]), &obj!([b: {3, 4}, c: 5])),
///     obj!([b: {3}])
/// );
/// ```
pub fn intersect(a: &Object, b: &Object) -> Object {
    match (a, b) {
        (Object::Top, x) | (x, Object::Top) => x.clone(),
        (Object::Bottom, _) | (_, Object::Bottom) => Object::Bottom,
        (Object::Atom(x), Object::Atom(y)) => {
            if x == y {
                a.clone()
            } else {
                Object::Bottom
            }
        }
        (Object::Tuple(_), Object::Tuple(_)) | (Object::Set(_), Object::Set(_)) => {
            // Idempotence fast path: interned equality is O(1).
            if a == b {
                return a.clone();
            }
            store::intersect_cached(
                (a.node_id().unwrap(), a.meta().unwrap()),
                (b.node_id().unwrap(), b.meta().unwrap()),
                || intersect_uncached(a, b),
            )
        }
        _ => Object::Bottom,
    }
}

/// Same-kind composite intersection, bypassing the memo table.
fn intersect_uncached(a: &Object, b: &Object) -> Object {
    match (a, b) {
        (Object::Tuple(x), Object::Tuple(y)) => intersect_tuples(x, y),
        (Object::Set(x), Object::Set(y)) => {
            // "the reduced version of the set {o1 ∩ o2 | o1 ∈ O1, o2 ∈ O2}";
            // ⊥ entries vanish and reduction absorbs dominated intersections.
            // Flat sets (cached flag) intersect atom-by-atom: a sorted merge
            // instead of the quadratic product.
            if x.meta().flat && y.meta().flat {
                let mut v: Vec<Object> = Vec::new();
                for e in x.iter() {
                    if y.contains(e) {
                        v.push(e.clone());
                    }
                }
                return Object::set_from_vec(v);
            }
            let mut v: Vec<Object> = Vec::new();
            for e in x.iter() {
                for f in y.iter() {
                    match intersect(e, f) {
                        Object::Bottom => {}
                        o => v.push(o),
                    }
                }
            }
            Object::set_from_vec(v)
        }
        _ => unreachable!("intersect_uncached called on non-matching kinds"),
    }
}

/// Tuple union: per-attribute union over the merged attribute lists
/// (missing attributes read as ⊥, the union identity). If any attribute
/// union is ⊤ the constructor collapses the whole tuple to ⊤.
fn union_tuples(x: &Tuple, y: &Tuple) -> Object {
    let xs = x.entries();
    let ys = y.entries();
    let mut v: Vec<(Attr, Object)> = Vec::with_capacity(xs.len() + ys.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].0.cmp(&ys[j].0) {
            Ordering::Less => {
                v.push(xs[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                v.push(ys[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                let u = union(&xs[i].1, &ys[j].1);
                if u.is_top() {
                    return Object::Top;
                }
                v.push((xs[i].0, u));
                i += 1;
                j += 1;
            }
        }
    }
    v.extend_from_slice(&xs[i..]);
    v.extend_from_slice(&ys[j..]);
    Object::tuple_from_sorted(v)
}

/// Tuple intersection: per-attribute glb; attributes missing on either side
/// intersect to ⊥ and are dropped, possibly leaving the empty tuple `[]`
/// (which is *not* ⊥ — see paper Examples 3.4).
fn intersect_tuples(x: &Tuple, y: &Tuple) -> Object {
    let xs = x.entries();
    let ys = y.entries();
    let mut v: Vec<(Attr, Object)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].0.cmp(&ys[j].0) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                match intersect(&xs[i].1, &ys[j].1) {
                    Object::Bottom => {}
                    o => v.push((xs[i].0, o)),
                }
                i += 1;
                j += 1;
            }
        }
    }
    Object::tuple_from_sorted(v)
}

/// n-ary union: `⋃ items`, with ⊥ as the identity of the empty union.
///
/// The empty union being ⊥ is what makes "a formula with no matching
/// substitution contributes nothing" work in the calculus (Definition 4.2).
pub fn union_all<'a, I>(items: I) -> Object
where
    I: IntoIterator<Item = &'a Object>,
{
    union_many(items.into_iter().cloned())
}

/// n-ary union over owned objects, computed **in bulk**: instead of folding
/// binary unions (which re-normalizes a growing accumulator once per item —
/// quadratic when accumulating thousands of rule derivations), the items
/// are unioned level by level: all set elements concatenate into one
/// normalization pass, tuples union attribute-wise recursively. Equal to
/// the binary fold by associativity/commutativity of the lub (Theorem 3.4);
/// the equivalence is property-tested.
pub fn union_many<I>(items: I) -> Object
where
    I: IntoIterator<Item = Object>,
{
    let mut atoms: Option<Object> = None;
    let mut tuple_parts: Option<Vec<(Attr, Vec<Object>)>> = None;
    let mut set_elems: Vec<Object> = Vec::new();
    let mut saw_set = false;
    let mut kinds = 0u8; // bit 0: atom, bit 1: tuple, bit 2: set

    for o in items {
        match o {
            Object::Bottom => {}
            Object::Top => return Object::Top,
            Object::Atom(_) => {
                kinds |= 1;
                match &atoms {
                    None => atoms = Some(o),
                    Some(prev) if *prev == o => {}
                    Some(_) => return Object::Top,
                }
            }
            Object::Tuple(t) => {
                kinds |= 2;
                let parts = tuple_parts.get_or_insert_with(Vec::new);
                for (a, v) in t.entries() {
                    match parts.binary_search_by_key(a, |(k, _)| *k) {
                        Ok(i) => parts[i].1.push(v.clone()),
                        Err(i) => parts.insert(i, (*a, vec![v.clone()])),
                    }
                }
            }
            Object::Set(s) => {
                kinds |= 4;
                saw_set = true;
                set_elems.extend(s.iter().cloned());
            }
        }
    }

    match kinds {
        0 => Object::Bottom,
        1 => atoms.expect("atom recorded"),
        2 => {
            let parts = tuple_parts.expect("tuple recorded");
            let mut entries: Vec<(Attr, Object)> = Vec::with_capacity(parts.len());
            for (a, values) in parts {
                match union_many(values) {
                    Object::Top => return Object::Top,
                    Object::Bottom => {}
                    v => entries.push((a, v)),
                }
            }
            Object::tuple_from_sorted(entries)
        }
        4 => {
            debug_assert!(saw_set);
            Object::set_from_vec(set_elems)
        }
        // Mixed kinds: the lub of incomparable constructors is ⊤.
        _ => Object::Top,
    }
}

/// n-ary intersection: `⋂ items`, with ⊤ as the identity of the empty
/// intersection. This computes the maximal binding of a variable constrained
/// from several occurrences (see the matcher in `co-calculus`).
pub fn intersect_all<'a, I>(items: I) -> Object
where
    I: IntoIterator<Item = &'a Object>,
{
    let mut acc = Object::Top;
    for o in items {
        if acc.is_bottom() {
            return Object::Bottom;
        }
        acc = intersect(&acc, o);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;
    use crate::order::le;

    #[test]
    fn examples_3_3_union() {
        assert_eq!(
            union(&obj!([a: 1, b: 2]), &obj!([b: 2, c: 3])),
            obj!([a: 1, b: 2, c: 3])
        );
        assert_eq!(
            union(&obj!([a: 1]), &obj!([b: 2, c: 3])),
            obj!([a: 1, b: 2, c: 3])
        );
        assert_eq!(union(&obj!([a: 1, b: 2]), &obj!([b: 3, c: 4])), Object::Top);
        assert_eq!(union(&obj!({1, 2}), &obj!({2, 3})), obj!({1, 2, 3}));
        assert_eq!(union(&obj!(1), &obj!(2)), Object::Top);
        assert_eq!(union(&obj!([a: 1, b: 2]), &obj!({1, 2, 3})), Object::Top);
        assert_eq!(
            union(&obj!([a: 1, b: {2, 3}]), &obj!([b: {3, 4}, c: 5])),
            obj!([a: 1, b: {2, 3, 4}, c: 5])
        );
    }

    #[test]
    fn examples_3_4_intersection() {
        assert_eq!(
            intersect(&obj!([a: 1, b: 2]), &obj!([b: 2, c: 3])),
            obj!([b: 2])
        );
        assert_eq!(
            intersect(&obj!([a: 1]), &obj!([b: 2, c: 3])),
            Object::empty_tuple()
        );
        assert_eq!(
            intersect(&obj!([a: 1, b: 2]), &obj!([b: 3, c: 4])),
            Object::empty_tuple()
        );
        assert_eq!(intersect(&obj!({1, 2}), &obj!({2, 3})), obj!({ 2 }));
        assert_eq!(intersect(&obj!(1), &obj!(2)), Object::Bottom);
        assert_eq!(
            intersect(&obj!([a: 1, b: 2]), &obj!({1, 2, 3})),
            Object::Bottom
        );
        assert_eq!(
            intersect(&obj!([a: 1, b: {2, 3}]), &obj!([b: {3, 4}, c: 5])),
            obj!([b: {3}])
        );
    }

    #[test]
    fn set_intersection_includes_more_than_set_theoretic_intersection() {
        // "if O1 and O2 are sets then O1 ∩ O2 includes the set intersection"
        // — e.g. tuple elements contribute their common parts.
        let a = obj!({[x: 1, y: 2]});
        let b = obj!({[x: 1, z: 3]});
        assert_eq!(intersect(&a, &b), obj!({[x: 1]}));
    }

    #[test]
    fn union_is_an_upper_bound_and_intersection_a_lower_bound() {
        let samples = [
            Object::Bottom,
            obj!(1),
            obj!({1, 2}),
            obj!([a: 1, b: {2}]),
            obj!({[a: 1], [b: 2]}),
            Object::Top,
        ];
        for a in &samples {
            for b in &samples {
                let u = union(a, b);
                let i = intersect(a, b);
                assert!(le(a, &u), "{a} ≤ {a} ∪ {b} = {u}");
                assert!(le(b, &u));
                assert!(le(&i, a), "{a} ∩ {b} = {i} ≤ {a}");
                assert!(le(&i, b));
            }
        }
    }

    #[test]
    fn identity_elements() {
        let x = obj!([a: {1, 2}]);
        assert_eq!(union(&Object::Bottom, &x), x);
        assert_eq!(union(&x, &Object::Bottom), x);
        assert_eq!(intersect(&Object::Top, &x), x);
        assert_eq!(intersect(&x, &Object::Top), x);
        assert_eq!(union(&Object::Top, &x), Object::Top);
        assert_eq!(intersect(&Object::Bottom, &x), Object::Bottom);
    }

    #[test]
    fn empty_set_behaviour() {
        // {} ∪ S = S, {} ∩ S = {} for set objects.
        let s = obj!({1, 2});
        assert_eq!(union(&Object::empty_set(), &s), s);
        assert_eq!(intersect(&Object::empty_set(), &s), Object::empty_set());
        // {} vs a tuple is a kind clash.
        assert_eq!(union(&Object::empty_set(), &obj!([a: 1])), Object::Top);
        assert_eq!(
            intersect(&Object::empty_set(), &obj!([a: 1])),
            Object::Bottom
        );
    }

    #[test]
    fn union_absorbs_dominated_set_elements() {
        let a = obj!({[x: 1]});
        let b = obj!({[x: 1, y: 2]});
        assert_eq!(union(&a, &b), obj!({[x: 1, y: 2]}));
    }

    #[test]
    fn disjoint_atom_sets_intersect_to_empty() {
        assert_eq!(intersect(&obj!({1, 2}), &obj!({3, 4})), Object::empty_set());
    }

    #[test]
    fn nary_operations() {
        assert_eq!(union_all([] as [&Object; 0]), Object::Bottom);
        assert_eq!(intersect_all([] as [&Object; 0]), Object::Top);
        let items = [obj!({ 1 }), obj!({ 2 }), obj!({ 3 })];
        assert_eq!(union_all(items.iter()), obj!({1, 2, 3}));
        let items2 = [obj!({1, 2, 3}), obj!({2, 3}), obj!({3, 4})];
        assert_eq!(intersect_all(items2.iter()), obj!({ 3 }));
    }

    #[test]
    fn union_many_equals_binary_fold() {
        use crate::random::{Generator, Profile};
        for seed in 0..50u64 {
            let mut g = Generator::new(seed, Profile::small());
            let items = g.objects(5);
            let folded = items.iter().fold(Object::Bottom, |acc, o| union(&acc, o));
            let bulk = union_many(items.clone());
            assert_eq!(bulk, folded, "seed {seed}: items {items:?}");
        }
    }

    #[test]
    fn union_many_special_cases() {
        assert_eq!(union_many([] as [Object; 0]), Object::Bottom);
        assert_eq!(union_many([Object::Bottom]), Object::Bottom);
        assert_eq!(union_many([Object::Top, obj!(1)]), Object::Top);
        assert_eq!(union_many([obj!(1), obj!(1)]), obj!(1));
        assert_eq!(union_many([obj!(1), obj!(2)]), Object::Top);
        assert_eq!(union_many([obj!({ 1 }), obj!([a: 1])]), Object::Top);
        assert_eq!(
            union_many([obj!([a: 1]), obj!([b: {2}]), obj!([b: {3}])]),
            obj!([a: 1, b: {2, 3}])
        );
        assert_eq!(union_many([Object::empty_set()]), Object::empty_set());
        // Conflicting atom values inside tuple attributes poison the tuple.
        assert_eq!(union_many([obj!([a: 1]), obj!([a: 2])]), Object::Top);
    }

    #[test]
    fn lub_minimality_on_samples() {
        // If a ≤ c and b ≤ c then a ∪ b ≤ c (Theorem 3.4).
        let a = obj!({[x: 1]});
        let b = obj!({[y: 2]});
        let c = obj!({[x: 1, y: 2], [z: 3]});
        assert!(le(&a, &c) && le(&b, &c));
        assert!(le(&union(&a, &b), &c));
    }

    #[test]
    fn glb_maximality_on_samples() {
        // If c ≤ a and c ≤ b then c ≤ a ∩ b (Theorem 3.5).
        let a = obj!([x: 1, y: 2]);
        let b = obj!([y: 2, z: 3]);
        let c = obj!([y: 2]);
        assert!(le(&c, &a) && le(&c, &b));
        assert!(le(&c, &intersect(&a, &b)));
    }
}

//! Path navigation inside complex objects.
//!
//! A [`Path`] is a sequence of attribute steps: `O.a.b.c`. Since the paper's
//! databases are "a single object" — typically a tuple of relations — paths
//! give the natural way to address a relation (`db.at_path(&["r1"])`) or a
//! nested component.

use crate::{Attr, Object};
use std::fmt;

/// A dotted attribute path, e.g. `family.children`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Path(Vec<Attr>);

impl Path {
    /// The empty path (addresses the object itself).
    pub fn root() -> Path {
        Path(Vec::new())
    }

    /// Builds a path from attribute steps.
    pub fn new<I, A>(steps: I) -> Path
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Path(steps.into_iter().map(Into::into).collect())
    }

    /// Parses a dotted string (`"a.b.c"`) into a path.
    pub fn parse(s: &str) -> Path {
        if s.is_empty() {
            return Path::root();
        }
        Path(s.split('.').map(Attr::new).collect())
    }

    /// Appends a step.
    pub fn push(&mut self, a: impl Into<Attr>) {
        self.0.push(a.into());
    }

    /// Removes and returns the last step.
    pub fn pop(&mut self) -> Option<Attr> {
        self.0.pop()
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[Attr] {
        &self.0
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `self` extended by one step, without mutating.
    pub fn child(&self, a: impl Into<Attr>) -> Path {
        let mut p = self.clone();
        p.push(a);
        p
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "<root>");
        }
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl Object {
    /// Follows `path` through nested tuples. Missing attributes read as ⊥
    /// (the paper's `O.a = ⊥` convention), so this returns ⊥ rather than
    /// `None` for absent attributes of tuples; `None` is reserved for
    /// navigating *into* a non-tuple (which is a shape error, not a missing
    /// value).
    pub fn get_path(&self, path: &Path) -> Option<&Object> {
        let mut cur = self;
        for a in path.steps() {
            match cur {
                Object::Tuple(_) | Object::Top => cur = cur.dot(*a),
                Object::Bottom => return Some(&Object::Bottom),
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Convenience wrapper over [`Object::get_path`] taking attribute names.
    pub fn at_path(&self, steps: &[&str]) -> Option<&Object> {
        self.get_path(&Path::new(steps.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn path_construction_and_display() {
        let p = Path::new(["a", "b"]);
        assert_eq!(p.to_string(), "a.b");
        assert_eq!(Path::parse("a.b"), p);
        assert_eq!(Path::root().to_string(), "<root>");
        assert!(Path::root().is_root());
        assert_eq!(Path::parse(""), Path::root());
        assert_eq!(Path::root().child("x").to_string(), "x");
    }

    #[test]
    fn navigation() {
        let o = obj!([name: [first: john, last: doe], age: 25]);
        assert_eq!(o.at_path(&["name", "first"]), Some(&obj!(john)));
        assert_eq!(o.at_path(&["age"]), Some(&obj!(25)));
        assert_eq!(o.at_path(&[]), Some(&o));
        // Missing attribute: ⊥, per the paper's convention.
        assert_eq!(o.at_path(&["address"]), Some(&Object::Bottom));
        // Navigating *through* a missing attribute keeps yielding ⊥.
        assert_eq!(o.at_path(&["address", "city"]), Some(&Object::Bottom));
        // Navigating into an atom is a shape error.
        assert_eq!(o.at_path(&["age", "year"]), None);
        // ⊤ projects to ⊤.
        assert_eq!(Object::Top.at_path(&["anything"]), Some(&Object::Top));
    }
}

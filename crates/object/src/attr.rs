//! Interned attribute names.
//!
//! The paper assumes "a countable set of attribute names" that "can be
//! unambiguously recognized from any other object in the system"
//! (Section 2). We intern attribute names into `u32` ids in a global,
//! process-wide table: comparing and hashing attributes is then integer work,
//! which matters because tuple operations (sub-object checks, union,
//! intersection) walk attribute lists constantly.

use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

/// An interned attribute name.
///
/// `Attr` is a copyable 4-byte handle. Two `Attr`s are equal iff their names
/// are equal. The derived `Ord` orders by interning id, which is stable for
/// the lifetime of the process and is what keeps tuple entries in canonical
/// order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(u32);

struct Interner {
    names: Vec<Arc<str>>,
    ids: FxHashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: FxHashMap::default(),
        })
    })
}

impl Attr {
    /// Interns `name` and returns its handle. Idempotent.
    pub fn new(name: impl AsRef<str>) -> Attr {
        let name = name.as_ref();
        {
            let guard = interner().read();
            if let Some(&id) = guard.ids.get(name) {
                return Attr(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.ids.get(name) {
            return Attr(id);
        }
        let id = u32::try_from(guard.names.len()).expect("attribute interner overflow");
        let arc: Arc<str> = Arc::from(name);
        guard.names.push(arc.clone());
        guard.ids.insert(arc, id);
        Attr(id)
    }

    /// The attribute's name.
    pub fn name(self) -> Arc<str> {
        interner().read().names[self.0 as usize].clone()
    }

    /// The raw interning id. Stable within a process; not meaningful across
    /// processes.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Attr({:?})", &*self.name())
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Attr::new("name");
        let b = Attr::new("name");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(&*a.name(), "name");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = Attr::new("attr_test_left");
        let b = Attr::new("attr_test_right");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn display_is_the_name() {
        assert_eq!(Attr::new("children").to_string(), "children");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Attr::new("concurrent_attr").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}

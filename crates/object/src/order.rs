//! The sub-object relationship `≤` (paper Definition 3.1).
//!
//! `O ≤ O'` holds when:
//!
//! - `O` and `O'` are tuples and `O.a ≤ O'.a` for every attribute `a`
//!   (missing attributes read as ⊥, which is below everything);
//! - `O` and `O'` are sets and every element of `O` is a sub-object of
//!   *some* element of `O'`;
//! - `O = O'` (reflexivity);
//! - `O' = ⊤` or `O = ⊥`.
//!
//! On the canonical (reduced) objects of this crate, `≤` is a partial order
//! (Theorems 3.1–3.3) and in fact a lattice order (Theorem 3.6); the lattice
//! operations live in [`crate::lattice`].
//!
//! The implementation leans on the hash-consed store ([`crate::store`]):
//! interned equality short-circuits `a ≤ a` in O(1), cached [`crate::Meta`]
//! gives monotone fast rejects (`a ≤ b ⇒ depth(a) ≤ depth(b)` and likewise
//! for size on sets' merge walks), and `≤` on large pairs is memoized by
//! `(NodeId, NodeId)` — the key is order-sensitive because `≤` is not
//! symmetric.

use crate::store;
use crate::{Object, Set, Tuple};
use std::cmp::Ordering;

/// `a ≤ b`: is `a` a sub-object of `b`? (Definition 3.1.)
///
/// ```
/// use co_object::{obj, order::le};
///
/// // Paper Example 3.1:
/// assert!(le(&obj!([a: 1, b: 2]), &obj!([a: 1, b: 2, c: 3])));
/// assert!(le(&obj!({1, 2, 3}), &obj!({1, 2, 3, 4})));
/// assert!(le(
///     &obj!({[a: 1], [a: 2, b: 3]}),
///     &obj!({[a: 1, b: 2], [a: 2, b: 3], [a: 5, b: 5, c: 5]})
/// ));
/// assert!(le(&obj!([a: {1}, b: 2]), &obj!([a: {1, 2}, b: 2])));
/// // ...and the two non-facts:
/// assert!(!le(&obj!(1), &obj!([a: 1, b: 2])));
/// assert!(!le(&obj!(1), &obj!({1, 2, 3})));
/// ```
pub fn le(a: &Object, b: &Object) -> bool {
    match (a, b) {
        (Object::Bottom, _) => true,
        (_, Object::Top) => true,
        (Object::Top, _) => false,
        (_, Object::Bottom) => false,
        (Object::Atom(x), Object::Atom(y)) => x == y,
        (Object::Tuple(x), Object::Tuple(y)) => {
            // Interned handles: equality — and hence reflexivity — is a
            // pointer check.
            if x == y {
                return true;
            }
            // Monotone-measure rejects: x ≤ y forces attrs(x) ⊆ attrs(y)
            // and depth(x) ≤ depth(y) (induction over Definition 3.1).
            if x.len() > y.len() || x.meta().depth > y.meta().depth {
                return false;
            }
            store::le_cached((x.node_id(), x.meta()), (y.node_id(), y.meta()), || {
                tuple_le(x, y)
            })
        }
        (Object::Set(x), Object::Set(y)) => {
            if x == y {
                return true;
            }
            // Element count is *not* monotone for sets, but depth is.
            if x.meta().depth > y.meta().depth {
                return false;
            }
            store::le_cached((x.node_id(), x.meta()), (y.node_id(), y.meta()), || {
                set_le(x, y)
            })
        }
        _ => false,
    }
}

/// `a < b`: strict sub-object.
pub fn lt(a: &Object, b: &Object) -> bool {
    a != b && le(a, b)
}

/// `a ≥ b`.
pub fn ge(a: &Object, b: &Object) -> bool {
    le(b, a)
}

/// True when `a` and `b` are incomparable under `≤`.
pub fn incomparable(a: &Object, b: &Object) -> bool {
    !le(a, b) && !le(b, a)
}

/// Compares two objects in the partial order, when they are comparable.
pub fn partial_cmp(a: &Object, b: &Object) -> Option<Ordering> {
    if a == b {
        Some(Ordering::Equal)
    } else if le(a, b) {
        Some(Ordering::Less)
    } else if le(b, a) {
        Some(Ordering::Greater)
    } else {
        None
    }
}

/// Tuple case of Definition 3.1(i): `x.a ≤ y.a` for **every** attribute.
///
/// Canonical tuples contain no ⊥ values, so an attribute present in `x` but
/// absent from `y` fails immediately (`x.a ≤ ⊥` only for `x.a = ⊥`);
/// attributes only in `y` are vacuous (`⊥ ≤ y.a`). Both entry lists are
/// sorted by attribute id, so this is a linear merge walk.
fn tuple_le(x: &Tuple, y: &Tuple) -> bool {
    let mut ys = y.entries().iter();
    'outer: for (a, v) in x.entries() {
        for (b, w) in ys.by_ref() {
            match b.cmp(a) {
                Ordering::Less => continue,
                Ordering::Equal => {
                    if le(v, w) {
                        continue 'outer;
                    }
                    return false;
                }
                Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Set case of Definition 3.1(ii): every element of `x` is below **some**
/// element of `y`.
///
/// Worst-case `O(|x|·|y|)` `le` checks; the equality fast path (binary
/// search in the canonically sorted `y`) removes the common case where the
/// element is literally present.
fn set_le(x: &Set, y: &Set) -> bool {
    // Flat fast path (cached flag): every element of a flat set is an atom,
    // and an atom is only below an equal atom — so `x ≤ y` degenerates to
    // subset, a binary search per element instead of a quadratic scan.
    if x.meta().flat {
        return x.iter().all(|e| y.contains(e));
    }
    x.iter()
        .all(|e| y.contains(e) || y.iter().any(|f| le(e, f)))
}

/// Returns the maximal elements of `items` under `≤` — used by reduction and
/// by clients that need a frontier of a result collection.
pub fn maximal_under_le(items: &[Object]) -> Vec<Object> {
    let mut out: Vec<Object> = Vec::new();
    for e in items {
        if items.iter().any(|f| e != f && lt(e, f)) {
            continue;
        }
        if !out.contains(e) {
            out.push(e.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn example_3_1_positive_cases() {
        assert!(le(&obj!([a: 1, b: 2]), &obj!([a: 1, b: 2, c: 3])));
        assert!(le(&obj!({1, 2, 3}), &obj!({1, 2, 3, 4})));
        assert!(le(
            &obj!({[a: 1], [a: 2, b: 3]}),
            &obj!({[a: 1, b: 2], [a: 2, b: 3], [a: 5, b: 5, c: 5]})
        ));
        assert!(le(&obj!([a: {1}, b: 2]), &obj!([a: {1, 2}, b: 2])));
    }

    #[test]
    fn example_3_1_negative_cases() {
        // "1 is not a sub-object of [a:1, b:2], nor of {1,2,3}".
        assert!(!le(&obj!(1), &obj!([a: 1, b: 2])));
        assert!(!le(&obj!(1), &obj!({1, 2, 3})));
    }

    #[test]
    fn bottom_and_top_are_extremes() {
        let samples = [
            Object::Bottom,
            obj!(1),
            obj!(x),
            obj!([a: 1]),
            obj!({ 1 }),
            Object::Top,
        ];
        for o in &samples {
            assert!(le(&Object::Bottom, o), "⊥ ≤ {o}");
            assert!(le(o, &Object::Top), "{o} ≤ ⊤");
        }
        assert!(!le(&Object::Top, &Object::Bottom));
    }

    #[test]
    fn reflexive_on_samples() {
        for o in [
            Object::Bottom,
            obj!(42),
            obj!([name: [first: john], tags: {1, 2}]),
            Object::Top,
        ] {
            assert!(le(&o, &o));
        }
    }

    #[test]
    fn tuples_with_extra_attrs_dominate() {
        assert!(le(&obj!([a: 1]), &obj!([a: 1, b: 2])));
        assert!(!le(&obj!([a: 1, b: 2]), &obj!([a: 1])));
        assert!(le(&Object::empty_tuple(), &obj!([a: 1])));
    }

    #[test]
    fn tuple_le_is_pointwise() {
        assert!(le(&obj!([a: {1}]), &obj!([a: {1, 2}])));
        assert!(!le(&obj!([a: {1, 2}]), &obj!([a: {1}])));
        assert!(!le(&obj!([a: 1]), &obj!([a: 2])));
    }

    #[test]
    fn set_le_uses_existential_witnesses() {
        // Both elements of the left set fit under the single right element.
        assert!(le(&obj!({[a: 1], [b: 2]}), &obj!({[a: 1, b: 2]})));
        // But not vice versa.
        assert!(!le(&obj!({[a: 1, b: 2]}), &obj!({[a: 1]})));
        assert!(le(&Object::empty_set(), &obj!({ 1 })));
        assert!(!le(&obj!({ 1 }), &Object::empty_set()));
    }

    #[test]
    fn mixed_kinds_are_incomparable() {
        assert!(incomparable(&obj!([a: 1]), &obj!({ 1 })));
        assert!(incomparable(&obj!(1), &obj!({ 1 })));
        assert!(incomparable(&obj!(1), &obj!(2)));
        assert!(incomparable(&Object::empty_tuple(), &Object::empty_set()));
    }

    #[test]
    fn partial_cmp_matches_le() {
        assert_eq!(
            partial_cmp(&obj!([a: 1]), &obj!([a: 1, b: 2])),
            Some(Ordering::Less)
        );
        assert_eq!(
            partial_cmp(&obj!([a: 1, b: 2]), &obj!([a: 1])),
            Some(Ordering::Greater)
        );
        assert_eq!(partial_cmp(&obj!(1), &obj!(1)), Some(Ordering::Equal));
        assert_eq!(partial_cmp(&obj!(1), &obj!(2)), None);
    }

    #[test]
    fn maximal_frontier() {
        let items = [obj!([a: 1]), obj!([a: 1, b: 2]), obj!([c: 3])];
        let max = maximal_under_le(&items);
        assert_eq!(max.len(), 2);
        assert!(max.contains(&obj!([a: 1, b: 2])));
        assert!(max.contains(&obj!([c: 3])));
    }

    #[test]
    fn anti_symmetry_on_reduced_objects() {
        // Example 3.2's counterexample cannot be built: the constructor
        // reduces {[a1:3, a2:5], [a1:3]} to {[a1:3, a2:5]}, restoring
        // anti-symmetry (Theorem 3.2).
        let o1 = obj!({[a1: 3, a2: 5], [a1: 3]});
        let o2 = obj!({[a1: 3, a2: 5]});
        assert!(le(&o1, &o2) && le(&o2, &o1));
        assert_eq!(o1, o2);
    }
}

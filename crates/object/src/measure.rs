//! Structural measures of objects: the paper's **depth** (Definition 3.2,
//! the induction measure for all of the paper's proofs) plus node counts
//! used by the engine's resource guards and the benchmarks.

use crate::Object;
use std::fmt;

/// The depth of an object (paper Definition 3.2).
///
/// - `depth(⊥) = 1`, `depth(atom) = 1`;
/// - `depth([]) = depth({}) = 2`;
/// - `depth(tuple) = max over attributes + 1`,
///   `depth(set) = max over elements + 1`;
/// - `depth(⊤) = ∞`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Depth {
    /// A finite depth. (`Finite` orders below `Infinite` — derived `Ord` on
    /// the variant order.)
    Finite(u64),
    /// The depth of ⊤.
    Infinite,
}

impl Depth {
    /// Adds one level to a depth (saturating on `Infinite`).
    pub fn succ(self) -> Depth {
        match self {
            Depth::Finite(d) => Depth::Finite(d + 1),
            Depth::Infinite => Depth::Infinite,
        }
    }

    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Depth::Finite(d) => Some(d),
            Depth::Infinite => None,
        }
    }
}

impl fmt::Display for Depth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Depth::Finite(d) => write!(f, "{d}"),
            Depth::Infinite => write!(f, "∞"),
        }
    }
}

/// Computes the paper's depth measure for `o`.
///
/// O(1) for composites: interned nodes carry their depth in cached
/// [`crate::Meta`].
pub fn depth(o: &Object) -> Depth {
    match o {
        Object::Bottom | Object::Atom(_) => Depth::Finite(1),
        Object::Top => Depth::Infinite,
        Object::Tuple(t) => Depth::Finite(t.meta().depth),
        Object::Set(s) => Depth::Finite(s.meta().depth),
    }
}

/// Total number of nodes (atoms, ⊥/⊤ leaves, tuple and set constructors) in
/// the object tree. Used by engine guards to bound database growth.
///
/// O(1) for composites (cached in [`crate::Meta`]).
pub fn size(o: &Object) -> u64 {
    match o {
        Object::Bottom | Object::Atom(_) | Object::Top => 1,
        Object::Tuple(t) => t.meta().size,
        Object::Set(s) => s.meta().size,
    }
}

/// Number of atom leaves in the object tree.
///
/// O(1) for composites (cached in [`crate::Meta`]).
pub fn atom_count(o: &Object) -> u64 {
    match o {
        Object::Atom(_) => 1,
        Object::Bottom | Object::Top => 0,
        Object::Tuple(t) => t.meta().atom_count,
        Object::Set(s) => s.meta().atom_count,
    }
}

/// Maximum fanout (tuple width or set cardinality) anywhere in the tree.
///
/// O(1) for composites (cached in [`crate::Meta`]).
pub fn max_fanout(o: &Object) -> usize {
    match o {
        Object::Bottom | Object::Atom(_) | Object::Top => 0,
        Object::Tuple(t) => t.meta().max_fanout,
        Object::Set(s) => s.meta().max_fanout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn definition_3_2_base_cases() {
        assert_eq!(depth(&Object::Bottom), Depth::Finite(1));
        assert_eq!(depth(&obj!(5)), Depth::Finite(1));
        assert_eq!(depth(&obj!(john)), Depth::Finite(1));
        assert_eq!(depth(&Object::empty_set()), Depth::Finite(2));
        assert_eq!(depth(&Object::empty_tuple()), Depth::Finite(2));
        assert_eq!(depth(&Object::Top), Depth::Infinite);
    }

    #[test]
    fn definition_3_2_recursive_cases() {
        assert_eq!(depth(&obj!([a: 1, b: 2])), Depth::Finite(2));
        assert_eq!(depth(&obj!({1, 2, 3})), Depth::Finite(2));
        assert_eq!(depth(&obj!([a: {1, 2}, b: 2])), Depth::Finite(3));
        assert_eq!(depth(&obj!({[name: [first: john]]})), Depth::Finite(4));
    }

    #[test]
    fn depth_ordering() {
        assert!(Depth::Finite(5) < Depth::Infinite);
        assert!(Depth::Finite(2) < Depth::Finite(3));
        assert_eq!(Depth::Infinite.succ(), Depth::Infinite);
        assert_eq!(Depth::Finite(1).succ(), Depth::Finite(2));
        assert_eq!(Depth::Finite(3).finite(), Some(3));
        assert_eq!(Depth::Infinite.finite(), None);
    }

    #[test]
    fn size_counts_every_node() {
        assert_eq!(size(&obj!(1)), 1);
        assert_eq!(size(&Object::empty_set()), 1);
        // {1, 2}: set node + two atoms.
        assert_eq!(size(&obj!({1, 2})), 3);
        // [a: {1, 2}, b: 3]: tuple + set + 3 atoms.
        assert_eq!(size(&obj!([a: {1, 2}, b: 3])), 5);
    }

    #[test]
    fn atom_count_and_fanout() {
        let o = obj!([a: {1, 2, 3}, b: [c: 4]]);
        assert_eq!(atom_count(&o), 4);
        assert_eq!(max_fanout(&o), 3);
        assert_eq!(max_fanout(&obj!(1)), 0);
    }
}

//! Rendering objects in the paper's notation.
//!
//! `Display` prints the compact one-line form used throughout the paper
//! (`[name: peter, age: 25]`, `{1, 2, 3}`, `bot`, `top`); [`pretty`] produces
//! an indented multi-line layout for large objects.
//!
//! Internally tuples are sorted by attribute *id* (interning order, which is
//! process-local) — printing in that order would make output depend on
//! interning history. Display therefore orders tuple entries by attribute
//! **name** and set elements by their rendered text, so the same object
//! always prints the same way, in every process.

use crate::atom::is_bare_attr;
use crate::{Attr, Object, Tuple};
use std::fmt;

/// Renders an attribute name, quoting it when it cannot stand bare.
pub fn attr_name(a: Attr) -> String {
    let n = a.name();
    if is_bare_attr(&n) {
        n.to_string()
    } else {
        format!("{:?}", &*n)
    }
}

/// Tuple entries in name order (display order).
fn entries_by_name(t: &Tuple) -> Vec<(Attr, &Object)> {
    let mut v: Vec<(Attr, &Object)> = t.entries().iter().map(|(a, o)| (*a, o)).collect();
    v.sort_by_key(|(a, _)| a.name());
    v
}

/// Set elements rendered and sorted lexicographically (display order).
fn rendered_elements(s: &crate::Set) -> Vec<String> {
    let mut v: Vec<String> = s.iter().map(|e| e.to_string()).collect();
    v.sort();
    v
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Object::Bottom => write!(f, "bot"),
            Object::Top => write!(f, "top"),
            Object::Atom(a) => write!(f, "{a}"),
            Object::Tuple(t) => {
                write!(f, "[")?;
                for (i, (a, v)) in entries_by_name(t).into_iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {v}", attr_name(a))?;
                }
                write!(f, "]")
            }
            Object::Set(s) => {
                write!(f, "{{")?;
                for (i, e) in rendered_elements(s).into_iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Pretty-prints `o` with indentation, wrapping tuples and sets whose
/// one-line form would exceed `width` columns.
pub fn pretty(o: &Object, width: usize) -> String {
    let mut out = String::new();
    pretty_into(o, 0, width, &mut out);
    out
}

fn pretty_into(o: &Object, indent: usize, width: usize, out: &mut String) {
    let flat = o.to_string();
    if indent + flat.len() <= width || matches!(o, Object::Atom(_) | Object::Bottom | Object::Top) {
        out.push_str(&flat);
        return;
    }
    match o {
        Object::Tuple(t) => {
            let entries = entries_by_name(t);
            out.push('[');
            push_block(entries.len(), indent, out, |i, out| {
                let (a, v) = &entries[i];
                let name = attr_name(*a);
                out.push_str(&name);
                out.push_str(": ");
                pretty_into(v, indent + 2 + name.len() + 2, width, out);
            });
            out.push(']');
        }
        Object::Set(s) => {
            // Order large sets the same way Display does: by rendered text.
            let mut elems: Vec<&Object> = s.iter().collect();
            elems.sort_by_key(|e| e.to_string());
            out.push('{');
            push_block(elems.len(), indent, out, |i, out| {
                pretty_into(elems[i], indent + 2, width, out);
            });
            out.push('}');
        }
        _ => out.push_str(&flat),
    }
}

fn push_block(n: usize, indent: usize, out: &mut String, mut item: impl FnMut(usize, &mut String)) {
    for i in 0..n {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', indent + 2));
        item(i, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    out.push('\n');
    out.extend(std::iter::repeat_n(' ', indent));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn compact_display_matches_paper_notation() {
        assert_eq!(obj!(bot).to_string(), "bot");
        assert_eq!(obj!(top).to_string(), "top");
        assert_eq!(obj!(25).to_string(), "25");
        assert_eq!(obj!(john).to_string(), "john");
        assert_eq!(obj!({}).to_string(), "{}");
        assert_eq!(obj!([]).to_string(), "[]");
    }

    #[test]
    fn tuple_display_orders_attributes_by_name() {
        // Stable regardless of attribute interning order.
        let t = obj!([name: peter, age: 25]);
        assert_eq!(t.to_string(), "[age: 25, name: peter]");
        let t2 = obj!([age: 25, name: peter]);
        assert_eq!(t2.to_string(), "[age: 25, name: peter]");
    }

    #[test]
    fn set_display_orders_elements_by_rendering() {
        assert_eq!(obj!({3, 1, 2}).to_string(), "{1, 2, 3}");
        assert_eq!(obj!({[b: 2], [a: 1]}).to_string(), "{[a: 1], [b: 2]}");
    }

    #[test]
    fn strings_needing_quotes_are_quoted() {
        assert_eq!(obj!("New York").to_string(), "\"New York\"");
        assert_eq!(obj!("Austin").to_string(), "\"Austin\"");
    }

    #[test]
    fn pretty_keeps_small_objects_flat() {
        let o = obj!([a: 1, b: 2]);
        assert_eq!(pretty(&o, 80), o.to_string());
    }

    #[test]
    fn pretty_wraps_large_objects() {
        let o = obj!({
            [name: peter, children: {max, susan}],
            [name: john, children: {mary, john, frank}]
        });
        let p = pretty(&o, 30);
        assert!(p.contains('\n'));
        assert!(p.contains("peter") && p.contains("frank"));
    }
}

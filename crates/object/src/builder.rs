//! Ergonomic construction: the [`obj!`](crate::obj) literal macro and the
//! [`IntoObject`] conversion trait it relies on.

use crate::{Atom, Object};

/// Conversion into [`Object`], used by the [`obj!`](crate::obj) macro for
/// literals and spliced expressions.
pub trait IntoObject {
    /// Converts `self` into an object.
    fn into_object(self) -> Object;
}

impl IntoObject for Object {
    fn into_object(self) -> Object {
        self
    }
}

impl IntoObject for &Object {
    fn into_object(self) -> Object {
        self.clone()
    }
}

impl IntoObject for Atom {
    fn into_object(self) -> Object {
        Object::Atom(self)
    }
}

macro_rules! impl_into_object_via_from {
    ($($t:ty),* $(,)?) => {
        $(impl IntoObject for $t {
            fn into_object(self) -> Object {
                Object::from(self)
            }
        })*
    };
}

impl_into_object_via_from!(i64, i32, f64, bool, &str, String);

/// Builds an [`Object`](crate::Object) with the paper's literal notation.
///
/// | Syntax | Object |
/// |---|---|
/// | `obj!(bot)` / `obj!(top)` | ⊥ / ⊤ |
/// | `obj!(25)`, `obj!(2.5)`, `obj!(true)`, `obj!("a b")` | atoms |
/// | `obj!(john)` | the string atom `john` (bare identifiers are strings, as in the paper) |
/// | `obj!([name: peter, age: 25])` | tuple |
/// | `obj!({1, 2, 3})` | set |
/// | `obj!((expr))` | splices any `IntoObject` expression |
///
/// Nesting works as expected:
///
/// ```
/// use co_object::obj;
/// let o = obj!([name: [first: john, last: doe], children: {john, mary, susan}]);
/// assert_eq!(o.dot("name").dot("first"), &obj!(john));
/// ```
#[macro_export]
macro_rules! obj {
    (bot) => { $crate::Object::Bottom };
    (top) => { $crate::Object::Top };
    ([ $($key:ident : $value:tt),* $(,)? ]) => {{
        let entries: ::std::vec::Vec<($crate::Attr, $crate::Object)> =
            ::std::vec![ $( ($crate::Attr::new(stringify!($key)), $crate::obj!($value)) ),* ];
        $crate::Object::tuple(entries)
    }};
    ({ $($elem:tt),* $(,)? }) => {{
        let elems: ::std::vec::Vec<$crate::Object> = ::std::vec![ $( $crate::obj!($elem) ),* ];
        $crate::Object::set(elems)
    }};
    (( $e:expr )) => { $crate::builder::IntoObject::into_object($e) };
    ($lit:literal) => { $crate::builder::IntoObject::into_object($lit) };
    ($id:ident) => { $crate::Object::str(stringify!($id)) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    #[test]
    fn literals() {
        assert_eq!(obj!(bot), Object::Bottom);
        assert_eq!(obj!(top), Object::Top);
        assert_eq!(obj!(25), Object::int(25));
        assert_eq!(obj!(2.5), Object::float(2.5));
        assert_eq!(obj!(true), Object::bool(true));
        assert_eq!(obj!("hello world"), Object::str("hello world"));
        assert_eq!(obj!(john), Object::str("john"));
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(obj!(-5), Object::int(-5));
        assert_eq!(obj!(-2.5), Object::float(-2.5));
    }

    #[test]
    fn tuples_and_sets() {
        let t = obj!([name: peter, age: 25]);
        assert_eq!(t.dot("name"), &Object::str("peter"));
        assert_eq!(t.dot("age"), &Object::int(25));

        let s = obj!({1, 2, 3});
        assert_eq!(s.as_set().unwrap().len(), 3);

        assert_eq!(obj!([]), Object::empty_tuple());
        assert_eq!(obj!({}), Object::empty_set());
    }

    #[test]
    fn splicing_expressions() {
        let inner = Object::set((1..=3).map(Object::int));
        let o = obj!([xs: (inner.clone()), n: (2 + 1)]);
        assert_eq!(o.dot("xs"), &inner);
        assert_eq!(o.dot("n"), &Object::int(3));
    }

    #[test]
    fn deep_nesting() {
        let db = obj!([
            r1: {[name: peter, age: 25], [name: john, age: 7]},
            r2: {[name: john, address: austin], [name: mary, address: paris]}
        ]);
        let r1 = db.dot("r1").as_set().unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(
            db.dot("r2"),
            &Object::set([
                Object::tuple([
                    (Attr::new("name"), Object::str("john")),
                    (Attr::new("address"), Object::str("austin")),
                ]),
                Object::tuple([
                    (Attr::new("name"), Object::str("mary")),
                    (Attr::new("address"), Object::str("paris")),
                ]),
            ])
        );
    }

    #[test]
    fn into_object_impls() {
        assert_eq!(5i64.into_object(), Object::int(5));
        assert_eq!(5i32.into_object(), Object::int(5));
        assert_eq!(1.5f64.into_object(), Object::float(1.5));
        assert_eq!(false.into_object(), Object::bool(false));
        assert_eq!("x".into_object(), Object::str("x"));
        assert_eq!(String::from("x").into_object(), Object::str("x"));
        assert_eq!(Atom::int(3).into_object(), Object::int(3));
        let o = Object::int(9);
        assert_eq!((&o).into_object(), o);
    }
}

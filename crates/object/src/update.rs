//! Update primitives for complex objects.
//!
//! The paper lists updates among its open issues ("we have no primitives for
//! updating the object space", §5). This module supplies the natural
//! persistent (copy-on-write) primitives over the canonical representation:
//! attribute insertion/removal on tuples, element insertion/removal on sets,
//! and a general path-targeted rewrite. All of them re-establish the
//! canonical-form invariants (⊤-propagation, reduction, …) because they
//! rebuild through the normalizing constructors.
//!
//! Note that unlike the lattice union, `insert_element` / `with_attr` are
//! **not** monotone operations — removal obviously is not, and insertion of
//! a dominated element is a no-op. They are database *maintenance* tools,
//! not calculus operators.

use crate::{Attr, Object, ObjectError, Path};

impl Object {
    /// Returns a tuple equal to `self` with attribute `a` set to `v`
    /// (replacing any previous value). Errors when `self` is not a tuple.
    pub fn with_attr(&self, a: impl Into<Attr>, v: Object) -> Result<Object, ObjectError> {
        let t = self.as_tuple().ok_or_else(|| ObjectError::WrongShape {
            expected: "tuple",
            found: self.kind_name().to_string(),
        })?;
        let a = a.into();
        let entries = t
            .entries()
            .iter()
            .filter(|(k, _)| *k != a)
            .cloned()
            .chain(std::iter::once((a, v)));
        Object::try_tuple(entries)
    }

    /// Returns a tuple equal to `self` without attribute `a`.
    pub fn without_attr(&self, a: impl Into<Attr>) -> Result<Object, ObjectError> {
        let t = self.as_tuple().ok_or_else(|| ObjectError::WrongShape {
            expected: "tuple",
            found: self.kind_name().to_string(),
        })?;
        let a = a.into();
        Object::try_tuple(t.entries().iter().filter(|(k, _)| *k != a).cloned())
    }

    /// Returns a set equal to `self` with `e` inserted. Because sets are
    /// reduced, inserting an element dominated by an existing one is a
    /// no-op, and inserting a dominating element absorbs the dominated ones.
    pub fn insert_element(&self, e: Object) -> Result<Object, ObjectError> {
        let s = self.as_set().ok_or_else(|| ObjectError::WrongShape {
            expected: "set",
            found: self.kind_name().to_string(),
        })?;
        let mut v: Vec<Object> = s.iter().cloned().collect();
        v.push(e);
        Ok(Object::set_from_vec(v))
    }

    /// Returns a set equal to `self` with every element equal to `e`
    /// removed.
    pub fn remove_element(&self, e: &Object) -> Result<Object, ObjectError> {
        let s = self.as_set().ok_or_else(|| ObjectError::WrongShape {
            expected: "set",
            found: self.kind_name().to_string(),
        })?;
        Ok(Object::set(s.iter().filter(|x| *x != e).cloned()))
    }

    /// Rewrites the sub-object at `path` with `f`, rebuilding (and
    /// re-normalizing) the spine. Errors when the path traverses a
    /// non-tuple or a missing attribute.
    pub fn update_at(
        &self,
        path: &Path,
        f: impl FnOnce(&Object) -> Object,
    ) -> Result<Object, ObjectError> {
        fn go(
            o: &Object,
            steps: &[Attr],
            path: &Path,
            f: impl FnOnce(&Object) -> Object,
        ) -> Result<Object, ObjectError> {
            match steps {
                [] => Ok(f(o)),
                [first, rest @ ..] => {
                    let t = o
                        .as_tuple()
                        .ok_or_else(|| ObjectError::PathNotFound(path.to_string()))?;
                    if !t.contains(*first) {
                        return Err(ObjectError::PathNotFound(path.to_string()));
                    }
                    let new_child = go(t.get(*first), rest, path, f)?;
                    o.with_attr(*first, new_child)
                }
            }
        }
        go(self, path.steps(), path, f)
    }

    /// Replaces the sub-object at `path` with `v`.
    pub fn set_at(&self, path: &Path, v: Object) -> Result<Object, ObjectError> {
        self.update_at(path, |_| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn with_attr_inserts_and_replaces() {
        let t = obj!([a: 1]);
        assert_eq!(t.with_attr("b", obj!(2)).unwrap(), obj!([a: 1, b: 2]));
        assert_eq!(t.with_attr("a", obj!(9)).unwrap(), obj!([a: 9]));
        // Setting to ⊥ removes (canonical form drops ⊥ attributes).
        assert_eq!(t.with_attr("a", Object::Bottom).unwrap(), obj!([]));
        // Setting to ⊤ collapses the tuple.
        assert_eq!(t.with_attr("a", Object::Top).unwrap(), Object::Top);
        assert!(obj!(5).with_attr("a", obj!(1)).is_err());
    }

    #[test]
    fn without_attr() {
        let t = obj!([a: 1, b: 2]);
        assert_eq!(t.without_attr("a").unwrap(), obj!([b: 2]));
        assert_eq!(t.without_attr("zzz").unwrap(), t);
        assert!(obj!({ 1 }).without_attr("a").is_err());
    }

    #[test]
    fn insert_element_respects_reduction() {
        let s = obj!({[a: 1, b: 2]});
        // Dominated insertion is a no-op.
        assert_eq!(s.insert_element(obj!([a: 1])).unwrap(), s);
        // Dominating insertion absorbs.
        assert_eq!(
            s.insert_element(obj!([a: 1, b: 2, c: 3])).unwrap(),
            obj!({[a: 1, b: 2, c: 3]})
        );
        // Incomparable insertion grows the set.
        assert_eq!(
            s.insert_element(obj!([z: 9]))
                .unwrap()
                .as_set()
                .unwrap()
                .len(),
            2
        );
        assert!(obj!(1).insert_element(obj!(2)).is_err());
    }

    #[test]
    fn remove_element() {
        let s = obj!({1, 2, 3});
        assert_eq!(s.remove_element(&obj!(2)).unwrap(), obj!({1, 3}));
        assert_eq!(s.remove_element(&obj!(9)).unwrap(), s);
    }

    #[test]
    fn update_at_rewrites_nested_components() {
        let db = obj!([r1: {1, 2}, r2: {3}]);
        let db2 = db
            .update_at(&Path::parse("r1"), |r1| r1.insert_element(obj!(9)).unwrap())
            .unwrap();
        assert_eq!(db2, obj!([r1: {1, 2, 9}, r2: {3}]));
        // Untouched components share structure (cheap Arc clones).
        assert_eq!(db2.dot("r2"), db.dot("r2"));
    }

    #[test]
    fn update_at_errors() {
        let db = obj!([r1: {1}]);
        assert!(matches!(
            db.update_at(&Path::parse("nope"), |o| o.clone()),
            Err(ObjectError::PathNotFound(_))
        ));
        assert!(matches!(
            db.update_at(&Path::parse("r1.deeper"), |o| o.clone()),
            Err(ObjectError::PathNotFound(_))
        ));
    }

    #[test]
    fn set_at_replaces() {
        let db = obj!([r1: {1}]);
        assert_eq!(
            db.set_at(&Path::parse("r1"), obj!({ 7 })).unwrap(),
            obj!([r1: {7}])
        );
    }
}

//! Atomic objects (paper Definition 2.1(i)): integers, floats, strings, and
//! booleans.
//!
//! Atoms are totally ordered and hashable so that set objects can keep a
//! canonical element order and so that equality of atoms (Definition 2.2(i):
//! "two atomic objects are equal if and only if they are the same") is plain
//! `==`.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A floating-point atom with total equality, ordering, and hashing.
///
/// The paper treats floats as opaque atoms compared by identity, so we need
/// `Eq`/`Ord`/`Hash` — which raw `f64` does not provide. `F64` canonicalizes
/// the two representations that would otherwise break the `Eq`/`Hash`
/// contract:
///
/// - every NaN is collapsed to one canonical NaN bit pattern, so
///   `F64::new(f64::NAN) == F64::new(-f64::NAN)`;
/// - `-0.0` is canonicalized to `+0.0`.
///
/// Ordering follows [`f64::total_cmp`], which after canonicalization is
/// consistent with bit equality.
#[derive(Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, canonicalizing NaN and negative zero.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(f64::NAN)
        } else if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// The underlying float value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_nan() {
            write!(f, "nan")
        } else if self.0 == f64::INFINITY {
            write!(f, "inf")
        } else if self.0 == f64::NEG_INFINITY {
            write!(f, "-inf")
        } else {
            // `{:?}` is the shortest representation that round-trips and
            // always contains `.` or an exponent, so the lexer reads it
            // back as a float (never as an out-of-range integer).
            write!(f, "{:?}", self.0)
        }
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

/// An atomic object: boolean, integer, float, or string
/// (paper Definition 2.1(i)).
///
/// Two atoms are equal iff they are *the same* atom (Definition 2.2(i)); in
/// particular `Int(1)` and `Float(1.0)` are **different** atoms — the paper
/// performs no coercion between atom kinds, and neither do we.
///
/// The derived `Ord` gives the canonical cross-kind order used to keep set
/// objects in a deterministic representation:
/// `Bool < Int < Float < Str`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// A boolean atom.
    Bool(bool),
    /// A 64-bit signed integer atom.
    Int(i64),
    /// A float atom with total order (see [`F64`]).
    Float(F64),
    /// A string atom. Stored in an [`Arc`] so cloning atoms (which happens
    /// constantly in lattice operations) never copies string data.
    Str(Arc<str>),
}

impl Atom {
    /// Builds a string atom.
    pub fn str(s: impl AsRef<str>) -> Self {
        Atom::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer atom.
    pub fn int(v: i64) -> Self {
        Atom::Int(v)
    }

    /// Builds a float atom (canonicalizing NaN / -0.0, see [`F64`]).
    pub fn float(v: f64) -> Self {
        Atom::Float(F64::new(v))
    }

    /// Builds a boolean atom.
    pub fn bool(v: bool) -> Self {
        Atom::Bool(v)
    }

    /// Returns the string payload if this is a string atom.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an integer atom.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is a float atom.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Atom::Float(v) => Some(v.get()),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a boolean atom.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Atom::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// A short name for the atom's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Atom::Bool(_) => "bool",
            Atom::Int(_) => "int",
            Atom::Float(_) => "float",
            Atom::Str(_) => "string",
        }
    }
}

/// Words with a reserved meaning in the concrete syntax: they lex as
/// something other than a string atom, so string atoms spelled like them
/// must print quoted.
pub const RESERVED_WORDS: &[&str] = &["bot", "top", "true", "false", "inf", "nan"];

/// True when `s` prints as a bare identifier in the paper's concrete syntax:
/// a lowercase letter followed by letters, digits, `_`, and not a reserved
/// word. Anything else must be quoted on output.
pub fn is_bare_ident(s: &str) -> bool {
    if RESERVED_WORDS.contains(&s) {
        return false;
    }
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// True when `s` can stand bare in *attribute-name* position (attribute
/// names may start upper- or lowercase — the paper writes `[A: X, B: b]`).
pub fn is_bare_attr(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Float(v) => write!(f, "{v}"),
            Atom::Str(s) => {
                if is_bare_ident(s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s:?}")
                }
            }
        }
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<i32> for Atom {
    fn from(v: i32) -> Self {
        Atom::Int(v as i64)
    }
}

impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::float(v)
    }
}

impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bool(v)
    }
}

impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::str(v)
    }
}

impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn atoms_equal_iff_same() {
        assert_eq!(Atom::int(25), Atom::int(25));
        assert_ne!(Atom::int(25), Atom::int(26));
        assert_ne!(Atom::int(1), Atom::float(1.0));
        assert_ne!(Atom::str("john"), Atom::str("mary"));
        assert_eq!(Atom::str("john"), Atom::str("john"));
        assert_ne!(Atom::Bool(true), Atom::Bool(false));
    }

    #[test]
    fn nan_is_canonical() {
        let a = Atom::float(f64::NAN);
        let b = Atom::float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_is_canonical() {
        let a = Atom::float(0.0);
        let b = Atom::float(-0.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn float_ordering_is_total() {
        let mut v = [
            Atom::float(f64::NAN),
            Atom::float(1.5),
            Atom::float(f64::NEG_INFINITY),
            Atom::float(-2.0),
            Atom::float(0.0),
            Atom::float(f64::INFINITY),
        ];
        v.sort();
        assert_eq!(v[0], Atom::float(f64::NEG_INFINITY));
        assert_eq!(v[1], Atom::float(-2.0));
        assert_eq!(v[2], Atom::float(0.0));
        assert_eq!(v[3], Atom::float(1.5));
        assert_eq!(v[4], Atom::float(f64::INFINITY));
        assert_eq!(v[5], Atom::float(f64::NAN));
    }

    #[test]
    fn cross_kind_order_is_stable() {
        let mut v = [
            Atom::str("a"),
            Atom::float(0.5),
            Atom::int(3),
            Atom::Bool(true),
        ];
        v.sort();
        assert!(matches!(v[0], Atom::Bool(_)));
        assert!(matches!(v[1], Atom::Int(_)));
        assert!(matches!(v[2], Atom::Float(_)));
        assert!(matches!(v[3], Atom::Str(_)));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Atom::str("john").to_string(), "john");
        assert_eq!(Atom::str("John Doe").to_string(), "\"John Doe\"");
        assert_eq!(Atom::str("Austin").to_string(), "\"Austin\"");
        assert_eq!(Atom::int(25).to_string(), "25");
        assert_eq!(Atom::float(2.0).to_string(), "2.0");
        assert_eq!(Atom::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessors() {
        assert_eq!(Atom::int(7).as_int(), Some(7));
        assert_eq!(Atom::int(7).as_str(), None);
        assert_eq!(Atom::str("x").as_str(), Some("x"));
        assert_eq!(Atom::float(1.5).as_float(), Some(1.5));
        assert_eq!(Atom::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn bare_ident_rules() {
        assert!(is_bare_ident("john"));
        assert!(is_bare_ident("john_doe2"));
        assert!(!is_bare_ident("John"));
        assert!(!is_bare_ident("2john"));
        assert!(!is_bare_ident(""));
        assert!(!is_bare_ident("john doe"));
        // Reserved words must print quoted to round-trip as strings.
        assert!(!is_bare_ident("bot"));
        assert!(!is_bare_ident("true"));
        assert!(!is_bare_ident("nan"));
        assert_eq!(Atom::str("top").to_string(), "\"top\"");
    }

    #[test]
    fn bare_attr_rules() {
        assert!(is_bare_attr("name"));
        assert!(is_bare_attr("A"));
        assert!(is_bare_attr("R1"));
        assert!(is_bare_attr("_x"));
        assert!(!is_bare_attr("2x"));
        assert!(!is_bare_attr("a b"));
        assert!(!is_bare_attr(""));
    }
}

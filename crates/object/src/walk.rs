//! Child-walk helpers over the object graph.
//!
//! Interned objects form a DAG: canonically-equal subtrees are one shared
//! node (see [`crate::store`]). Consumers that serialize, analyze, or
//! otherwise traverse that DAG — the `co-wire` snapshot writer is the
//! canonical example — need two stable primitives:
//!
//! - [`Object::children`] — the immediate sub-objects of a composite, in
//!   canonical order (tuple entries by attribute id, set elements by the
//!   canonical total order);
//! - [`visit_unique_postorder`] — every **distinct** composite node
//!   reachable from a set of roots, children strictly before parents,
//!   each node exactly once regardless of how often it is shared.
//!
//! Both are cheap: children iterate borrowed slices, and the unique walk
//! deduplicates on [`NodeId`], so a deeply shared structure is traversed
//! in time proportional to its *node count*, not its tree expansion.

use crate::store::NodeId;
use crate::{Attr, Object};
use rustc_hash::FxHashSet;

/// Iterator over the immediate sub-objects of an object, in canonical
/// order. Atoms, ⊥, and ⊤ have no children. See [`Object::children`].
pub struct Children<'a> {
    inner: ChildrenInner<'a>,
}

enum ChildrenInner<'a> {
    None,
    Tuple(std::slice::Iter<'a, (Attr, Object)>),
    Set(std::slice::Iter<'a, Object>),
}

impl<'a> Iterator for Children<'a> {
    type Item = &'a Object;

    fn next(&mut self) -> Option<&'a Object> {
        match &mut self.inner {
            ChildrenInner::None => None,
            ChildrenInner::Tuple(it) => it.next().map(|(_, o)| o),
            ChildrenInner::Set(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            ChildrenInner::None => (0, Some(0)),
            ChildrenInner::Tuple(it) => it.size_hint(),
            ChildrenInner::Set(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Children<'_> {}

impl Object {
    /// Iterates the immediate sub-objects of this object in canonical
    /// order: tuple values by attribute id, set elements by the canonical
    /// total order. Atoms, ⊥, and ⊤ yield nothing.
    ///
    /// ```
    /// use co_object::obj;
    ///
    /// let o = obj!([a: 1, b: {2, 3}]);
    /// let kinds: Vec<_> = o.children().map(|c| c.kind_name()).collect();
    /// assert_eq!(kinds, ["atom", "set"]);
    /// ```
    pub fn children(&self) -> Children<'_> {
        let inner = match self {
            Object::Tuple(t) => ChildrenInner::Tuple(t.entries().iter()),
            Object::Set(s) => ChildrenInner::Set(s.elements().iter()),
            _ => ChildrenInner::None,
        };
        Children { inner }
    }
}

/// Visits every **distinct** composite (tuple/set) node reachable from
/// `roots`, in a postorder: a node's composite children are always visited
/// before the node itself, and each node is visited exactly once even when
/// it is shared by many parents (or repeated across roots).
///
/// This is precisely the order a serializer needs to emit a
/// topologically-ordered node table in one pass — every child reference
/// points backwards. Atom/⊥/⊤ roots contribute nothing.
///
/// ```
/// use co_object::{obj, walk::visit_unique_postorder};
///
/// let shared = obj!({1, 2});
/// let a = obj!([left: {1, 2}, right: {1, 2}]);
/// let mut seen = Vec::new();
/// visit_unique_postorder([&a, &shared], |o| seen.push(o.clone()));
/// // The shared set appears once, before its parent tuple.
/// assert_eq!(seen, vec![shared, a]);
/// ```
pub fn visit_unique_postorder<'a, I, F>(roots: I, visit: F)
where
    I: IntoIterator<Item = &'a Object>,
    F: FnMut(&Object),
{
    visit_unique_postorder_pruned(roots, |_| false, visit)
}

/// [`visit_unique_postorder`] with a prune predicate: any composite for
/// which `prune` returns `true` is neither visited nor descended into —
/// its entire subtree is cut off (unless some part of it is also
/// reachable through a non-pruned path).
///
/// This is the primitive a **delta** serializer needs: pruning on
/// "`NodeId` is already in the base snapshot" enumerates exactly the
/// nodes the base lacks. Because every snapshot is closed under children
/// (a node's descendants are always written with it), a base-resident
/// node can never shadow a missing descendant, so the pruned walk is
/// complete — and it runs in O(new nodes), not O(reachable nodes).
///
/// ```
/// use co_object::{obj, walk::visit_unique_postorder_pruned};
///
/// let old = obj!({1, 2});
/// let db = obj!([stale: {1, 2}, fresh: {3}]);
/// let base = old.node_id().unwrap();
/// let mut new_nodes = Vec::new();
/// visit_unique_postorder_pruned([&db], |id| id == base, |o| {
///     new_nodes.push(o.clone())
/// });
/// // Only the fresh set and the wrapper tuple are new.
/// assert_eq!(new_nodes, vec![obj!({3}), db.clone()]);
/// ```
pub fn visit_unique_postorder_pruned<'a, I, P, F>(roots: I, mut prune: P, mut visit: F)
where
    I: IntoIterator<Item = &'a Object>,
    P: FnMut(NodeId) -> bool,
    F: FnMut(&Object),
{
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    // Explicit stack: (object, children-expanded?). Objects are cheap to
    // clone (Arc bumps), but we can borrow since roots outlive the walk…
    // children borrow from their parent though, so hold parents by clone.
    enum Frame {
        Enter(Object),
        Exit(Object),
    }
    let mut stack: Vec<Frame> = Vec::new();
    for root in roots {
        if root.node_id().is_some() {
            stack.push(Frame::Enter(root.clone()));
        }
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(o) => {
                    let id = o.node_id().expect("only composites are stacked");
                    if !seen.insert(id) {
                        continue;
                    }
                    if prune(id) {
                        // Marked seen above: the predicate is asked at most
                        // once per distinct node, however shared it is.
                        continue;
                    }
                    let children: Vec<Object> = o
                        .children()
                        .filter(|c| c.node_id().is_some_and(|cid| !seen.contains(&cid)))
                        .cloned()
                        .collect();
                    stack.push(Frame::Exit(o));
                    // Reverse so canonical-order children are entered
                    // first (purely cosmetic: any postorder is topological).
                    for child in children.into_iter().rev() {
                        stack.push(Frame::Enter(child));
                    }
                }
                Frame::Exit(o) => visit(&o),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn children_of_leaves_are_empty() {
        assert_eq!(obj!(5).children().count(), 0);
        assert_eq!(Object::Bottom.children().count(), 0);
        assert_eq!(Object::Top.children().count(), 0);
    }

    #[test]
    fn children_follow_canonical_order() {
        let o = obj!([b: 2, a: 1]);
        let vals: Vec<_> = o.children().cloned().collect();
        // Entries are sorted by attribute id (a interned before b in this
        // test's literal, but order is by id — compare against entries()).
        let expected: Vec<_> = o
            .as_tuple()
            .unwrap()
            .entries()
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(vals, expected);
        assert_eq!(o.children().len(), 2);
    }

    #[test]
    fn postorder_emits_children_before_parents_once() {
        let leaf = obj!({1, 2});
        let mid = obj!([x: {1, 2}]);
        let top = obj!({[x: {1, 2}], {1, 2}});
        let mut order: Vec<Object> = Vec::new();
        visit_unique_postorder([&top], |o| order.push(o.clone()));
        // Every distinct node once…
        assert_eq!(order.len(), 3);
        // …children strictly before parents.
        let pos = |o: &Object| order.iter().position(|x| x == o).unwrap();
        assert!(pos(&leaf) < pos(&mid));
        assert!(pos(&mid) < pos(&top));
        assert!(pos(&leaf) < pos(&top));
    }

    #[test]
    fn postorder_dedups_across_roots() {
        let a = obj!({1, 2});
        let b = obj!([k: {1, 2}]);
        let mut count = 0;
        visit_unique_postorder([&a, &b, &a], |_| count += 1);
        assert_eq!(count, 2); // the set node + the tuple node
    }

    #[test]
    fn pruned_walk_skips_whole_subtrees_but_keeps_shared_survivors() {
        // base: {1, 2} and its wrapper [k: {1, 2}] — a closed id-set.
        let leaf = obj!({1, 2});
        let wrapped = obj!([k: {1, 2}]);
        let base: Vec<_> = [&leaf, &wrapped]
            .iter()
            .map(|o| o.node_id().unwrap())
            .collect();
        // New structure referencing the base leaf and a fresh set.
        let db = obj!({[k: {1, 2}], [fresh: {3, 4}]});
        let mut new_nodes = Vec::new();
        visit_unique_postorder_pruned(
            [&db],
            |id| base.contains(&id),
            |o| new_nodes.push(o.clone()),
        );
        // The base leaf and wrapper are pruned; only {3,4}, its wrapper
        // tuple, and the outer set are new — children before parents.
        assert_eq!(new_nodes.len(), 3);
        assert_eq!(new_nodes[0], obj!({3, 4}));
        assert_eq!(new_nodes[2], db);
        assert!(!new_nodes.contains(&leaf));
        assert!(!new_nodes.contains(&wrapped));
    }

    #[test]
    fn pruned_walk_on_an_exponential_tower_is_linear_in_new_nodes() {
        // Base: a 30-level tower. New: 10 more levels on top. The pruned
        // walk must touch only the 10 new nodes, not re-enumerate the 31
        // base nodes (let alone the 2^40 tree expansion).
        let mut level = obj!({ 1 });
        let mut base_ids = Vec::new();
        base_ids.push(level.node_id().unwrap());
        for _ in 0..30 {
            level = Object::tuple([("l", level.clone()), ("r", level)]);
            base_ids.push(level.node_id().unwrap());
        }
        let base_set: std::collections::HashSet<_> = base_ids.into_iter().collect();
        for _ in 0..10 {
            level = Object::tuple([("l", level.clone()), ("r", level)]);
        }
        let mut count = 0u64;
        visit_unique_postorder_pruned([&level], |id| base_set.contains(&id), |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn deeply_shared_structure_is_linear_in_nodes() {
        // A tower where each level contains the previous twice: 2^n tree
        // expansion, n + 1 distinct nodes.
        let mut level = obj!({ 1 });
        for i in 0..40 {
            level = Object::tuple([("l", level.clone()), ("r", level), ("tag", obj!((i)))]);
        }
        let mut count = 0u64;
        visit_unique_postorder([&level], |_| count += 1);
        assert_eq!(count, 41);
    }
}

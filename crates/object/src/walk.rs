//! Child-walk helpers over the object graph.
//!
//! Interned objects form a DAG: canonically-equal subtrees are one shared
//! node (see [`crate::store`]). Consumers that serialize, analyze, or
//! otherwise traverse that DAG — the `co-wire` snapshot writer is the
//! canonical example — need two stable primitives:
//!
//! - [`Object::children`] — the immediate sub-objects of a composite, in
//!   canonical order (tuple entries by attribute id, set elements by the
//!   canonical total order);
//! - [`visit_unique_postorder`] — every **distinct** composite node
//!   reachable from a set of roots, children strictly before parents,
//!   each node exactly once regardless of how often it is shared.
//!
//! Both are cheap: children iterate borrowed slices, and the unique walk
//! deduplicates on [`NodeId`], so a deeply shared structure is traversed
//! in time proportional to its *node count*, not its tree expansion.

use crate::store::NodeId;
use crate::{Attr, Object};
use rustc_hash::FxHashSet;

/// Iterator over the immediate sub-objects of an object, in canonical
/// order. Atoms, ⊥, and ⊤ have no children. See [`Object::children`].
pub struct Children<'a> {
    inner: ChildrenInner<'a>,
}

enum ChildrenInner<'a> {
    None,
    Tuple(std::slice::Iter<'a, (Attr, Object)>),
    Set(std::slice::Iter<'a, Object>),
}

impl<'a> Iterator for Children<'a> {
    type Item = &'a Object;

    fn next(&mut self) -> Option<&'a Object> {
        match &mut self.inner {
            ChildrenInner::None => None,
            ChildrenInner::Tuple(it) => it.next().map(|(_, o)| o),
            ChildrenInner::Set(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            ChildrenInner::None => (0, Some(0)),
            ChildrenInner::Tuple(it) => it.size_hint(),
            ChildrenInner::Set(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Children<'_> {}

impl Object {
    /// Iterates the immediate sub-objects of this object in canonical
    /// order: tuple values by attribute id, set elements by the canonical
    /// total order. Atoms, ⊥, and ⊤ yield nothing.
    ///
    /// ```
    /// use co_object::obj;
    ///
    /// let o = obj!([a: 1, b: {2, 3}]);
    /// let kinds: Vec<_> = o.children().map(|c| c.kind_name()).collect();
    /// assert_eq!(kinds, ["atom", "set"]);
    /// ```
    pub fn children(&self) -> Children<'_> {
        let inner = match self {
            Object::Tuple(t) => ChildrenInner::Tuple(t.entries().iter()),
            Object::Set(s) => ChildrenInner::Set(s.elements().iter()),
            _ => ChildrenInner::None,
        };
        Children { inner }
    }
}

/// Visits every **distinct** composite (tuple/set) node reachable from
/// `roots`, in a postorder: a node's composite children are always visited
/// before the node itself, and each node is visited exactly once even when
/// it is shared by many parents (or repeated across roots).
///
/// This is precisely the order a serializer needs to emit a
/// topologically-ordered node table in one pass — every child reference
/// points backwards. Atom/⊥/⊤ roots contribute nothing.
///
/// ```
/// use co_object::{obj, walk::visit_unique_postorder};
///
/// let shared = obj!({1, 2});
/// let a = obj!([left: {1, 2}, right: {1, 2}]);
/// let mut seen = Vec::new();
/// visit_unique_postorder([&a, &shared], |o| seen.push(o.clone()));
/// // The shared set appears once, before its parent tuple.
/// assert_eq!(seen, vec![shared, a]);
/// ```
pub fn visit_unique_postorder<'a, I, F>(roots: I, mut visit: F)
where
    I: IntoIterator<Item = &'a Object>,
    F: FnMut(&Object),
{
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    // Explicit stack: (object, children-expanded?). Objects are cheap to
    // clone (Arc bumps), but we can borrow since roots outlive the walk…
    // children borrow from their parent though, so hold parents by clone.
    enum Frame {
        Enter(Object),
        Exit(Object),
    }
    let mut stack: Vec<Frame> = Vec::new();
    for root in roots {
        if root.node_id().is_some() {
            stack.push(Frame::Enter(root.clone()));
        }
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(o) => {
                    let id = o.node_id().expect("only composites are stacked");
                    if !seen.insert(id) {
                        continue;
                    }
                    let children: Vec<Object> = o
                        .children()
                        .filter(|c| c.node_id().is_some_and(|cid| !seen.contains(&cid)))
                        .cloned()
                        .collect();
                    stack.push(Frame::Exit(o));
                    // Reverse so canonical-order children are entered
                    // first (purely cosmetic: any postorder is topological).
                    for child in children.into_iter().rev() {
                        stack.push(Frame::Enter(child));
                    }
                }
                Frame::Exit(o) => visit(&o),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    #[test]
    fn children_of_leaves_are_empty() {
        assert_eq!(obj!(5).children().count(), 0);
        assert_eq!(Object::Bottom.children().count(), 0);
        assert_eq!(Object::Top.children().count(), 0);
    }

    #[test]
    fn children_follow_canonical_order() {
        let o = obj!([b: 2, a: 1]);
        let vals: Vec<_> = o.children().cloned().collect();
        // Entries are sorted by attribute id (a interned before b in this
        // test's literal, but order is by id — compare against entries()).
        let expected: Vec<_> = o
            .as_tuple()
            .unwrap()
            .entries()
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(vals, expected);
        assert_eq!(o.children().len(), 2);
    }

    #[test]
    fn postorder_emits_children_before_parents_once() {
        let leaf = obj!({1, 2});
        let mid = obj!([x: {1, 2}]);
        let top = obj!({[x: {1, 2}], {1, 2}});
        let mut order: Vec<Object> = Vec::new();
        visit_unique_postorder([&top], |o| order.push(o.clone()));
        // Every distinct node once…
        assert_eq!(order.len(), 3);
        // …children strictly before parents.
        let pos = |o: &Object| order.iter().position(|x| x == o).unwrap();
        assert!(pos(&leaf) < pos(&mid));
        assert!(pos(&mid) < pos(&top));
        assert!(pos(&leaf) < pos(&top));
    }

    #[test]
    fn postorder_dedups_across_roots() {
        let a = obj!({1, 2});
        let b = obj!([k: {1, 2}]);
        let mut count = 0;
        visit_unique_postorder([&a, &b, &a], |_| count += 1);
        assert_eq!(count, 2); // the set node + the tuple node
    }

    #[test]
    fn deeply_shared_structure_is_linear_in_nodes() {
        // A tower where each level contains the previous twice: 2^n tree
        // expansion, n + 1 distinct nodes.
        let mut level = obj!({ 1 });
        for i in 0..40 {
            level = Object::tuple([("l", level.clone()), ("r", level), ("tag", obj!((i)))]);
        }
        let mut count = 0u64;
        visit_unique_postorder([&level], |_| count += 1);
        assert_eq!(count, 41);
    }
}

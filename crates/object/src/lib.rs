//! # co-object — the complex-object data model
//!
//! This crate implements Sections 2 and 3 of Bancilhon & Khoshafian,
//! *A Calculus for Complex Objects* (PODS 1986 / JCSS 1989):
//!
//! - [`Object`] — objects built freely from atoms, tuples, and sets, plus
//!   the special objects ⊤ (inconsistent) and ⊥ (undefined)
//!   (Definition 2.1), kept in a **canonical reduced form** so that the
//!   paper's semantic equality (Definition 2.2) is structural `==`;
//! - [`order`] — the sub-object partial order `≤` (Definition 3.1,
//!   Theorems 3.1–3.3);
//! - [`lattice`] — union (lub) and intersection (glb) making the object
//!   space a lattice (Definitions 3.4/3.5, Theorems 3.4–3.6);
//! - [`measure`] — the paper's depth measure (Definition 3.2) and sizes;
//! - [`obj!`] — literal syntax mirroring the paper's notation;
//! - [`path`]/[`update`] — navigation and persistent update primitives
//!   (the update primitives answer a §5 future-work item);
//! - [`walk`] — child iteration and the unique-postorder DAG walk that
//!   serializers (`co-wire`) build on;
//! - [`random`] — seeded random object generation (for property tests and
//!   benchmarks);
//! - serde support (feature `serde`, on by default) with re-normalization
//!   on deserialization.
//!
//! ## Example
//!
//! ```
//! use co_object::{obj, lattice, order, Object};
//!
//! let a = obj!([name: peter, hobbies: {chess}]);
//! let b = obj!([name: peter, age: 25]);
//!
//! // Union merges compatible tuples (Definition 3.4)…
//! assert_eq!(
//!     lattice::union(&a, &b),
//!     obj!([name: peter, hobbies: {chess}, age: 25])
//! );
//! // …intersection keeps the common part (Definition 3.5)…
//! assert_eq!(lattice::intersect(&a, &b), obj!([name: peter]));
//! // …and both are bounds in the sub-object order (Theorems 3.4/3.5).
//! assert!(order::le(&a, &lattice::union(&a, &b)));
//! assert!(order::le(&lattice::intersect(&a, &b), &b));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod atom;
mod attr;
pub mod builder;
pub mod columnar;
pub mod display;
mod error;
pub mod lattice;
pub mod measure;
pub mod order;
pub mod path;
#[cfg(feature = "rand")]
pub mod random;
#[cfg(feature = "serde")]
mod serde_impl;
pub mod store;
pub mod update;
mod value;
pub mod walk;

pub use atom::{is_bare_attr, is_bare_ident, Atom, F64, RESERVED_WORDS};
pub use attr::Attr;
pub use builder::IntoObject;
pub use error::ObjectError;
pub use measure::{atom_count, depth, max_fanout, size, Depth};
pub use path::Path;
pub use store::{MemoPolicy, Meta, NodeId, Root, SweepStats};
pub use value::{Object, Set, Tuple};

#[cfg(test)]
mod proptests {
    //! Property tests for the paper's theorems, on randomly generated
    //! canonical objects (Experiment E11).

    use crate::lattice::{intersect, union};
    use crate::order::le;
    use crate::random::{Generator, Profile};
    use crate::Object;
    use proptest::prelude::*;

    /// Strategy: a random canonical object from a seeded [`Generator`].
    fn arb_object() -> impl Strategy<Value = Object> {
        (any::<u64>(), 0usize..16).prop_map(|(seed, skip)| {
            let mut g = Generator::new(seed, Profile::small());
            g.objects(skip + 1).pop().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Theorem 3.1 — reflexivity.
        #[test]
        fn le_is_reflexive(a in arb_object()) {
            prop_assert!(le(&a, &a));
        }

        /// Theorem 3.1 — transitivity: a ≤ a∪b ≤ (a∪b)∪c, and glb versions.
        #[test]
        fn le_is_transitive_on_constructed_chains(
            a in arb_object(), b in arb_object(), c in arb_object()
        ) {
            let ab = union(&a, &b);
            let abc = union(&ab, &c);
            prop_assert!(le(&a, &ab) && le(&ab, &abc));
            prop_assert!(le(&a, &abc), "transitivity failed: {a} vs {abc}");
            let ab_i = intersect(&a, &b);
            let abc_i = intersect(&ab_i, &c);
            prop_assert!(le(&abc_i, &ab_i) && le(&ab_i, &a));
            prop_assert!(le(&abc_i, &a));
        }

        /// Theorem 3.2 — anti-symmetry on (always-)reduced objects.
        #[test]
        fn le_is_antisymmetric(a in arb_object(), b in arb_object()) {
            if le(&a, &b) && le(&b, &a) {
                prop_assert_eq!(a, b);
            }
        }

        /// Theorem 3.4 — union is an upper bound and is below any
        /// constructed upper bound.
        #[test]
        fn union_is_least_upper_bound(
            a in arb_object(), b in arb_object(), extra in arb_object()
        ) {
            let u = union(&a, &b);
            prop_assert!(le(&a, &u));
            prop_assert!(le(&b, &u));
            // c := (a ∪ b) ∪ extra is an upper bound of a and b;
            // minimality demands u ≤ c.
            let c = union(&u, &extra);
            prop_assert!(le(&u, &c));
        }

        /// Theorem 3.5 — intersection is a lower bound and above any
        /// constructed lower bound.
        #[test]
        fn intersection_is_greatest_lower_bound(
            a in arb_object(), b in arb_object(), extra in arb_object()
        ) {
            let i = intersect(&a, &b);
            prop_assert!(le(&i, &a));
            prop_assert!(le(&i, &b));
            let c = intersect(&i, &extra);
            prop_assert!(le(&c, &i));
        }

        /// Lattice laws: commutativity and idempotence.
        #[test]
        fn union_and_intersection_commute_and_idempotent(
            a in arb_object(), b in arb_object()
        ) {
            prop_assert_eq!(union(&a, &b), union(&b, &a));
            prop_assert_eq!(intersect(&a, &b), intersect(&b, &a));
            prop_assert_eq!(union(&a, &a), a.clone());
            prop_assert_eq!(intersect(&a, &a), a.clone());
        }

        /// Lattice laws: associativity.
        #[test]
        fn union_and_intersection_associate(
            a in arb_object(), b in arb_object(), c in arb_object()
        ) {
            prop_assert_eq!(union(&union(&a, &b), &c), union(&a, &union(&b, &c)));
            prop_assert_eq!(
                intersect(&intersect(&a, &b), &c),
                intersect(&a, &intersect(&b, &c))
            );
        }

        /// Lattice laws: absorption.
        #[test]
        fn absorption_laws(a in arb_object(), b in arb_object()) {
            prop_assert_eq!(union(&a, &intersect(&a, &b)), a.clone());
            prop_assert_eq!(intersect(&a, &union(&a, &b)), a.clone());
        }

        /// Order/lattice consistency: a ≤ b ⟺ a∪b = b ⟺ a∩b = a.
        #[test]
        fn order_consistency(a in arb_object(), b in arb_object()) {
            let l = le(&a, &b);
            prop_assert_eq!(l, union(&a, &b) == b);
            prop_assert_eq!(l, intersect(&a, &b) == a);
        }

        /// Canonical total order is consistent with equality and antisymmetric.
        #[test]
        fn canonical_order_laws(a in arb_object(), b in arb_object()) {
            use std::cmp::Ordering;
            prop_assert_eq!(a.cmp(&b) == Ordering::Equal, a == b);
            prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        }

        /// Monotonicity of constructors: wrapping preserves ≤ (used
        /// implicitly by the matcher's correctness argument).
        #[test]
        fn constructors_are_monotone(a in arb_object(), b in arb_object()) {
            if le(&a, &b) {
                prop_assert!(le(&Object::set([a.clone()]), &Object::set([b.clone()])));
                prop_assert!(le(
                    &Object::tuple([("w", a.clone())]),
                    &Object::tuple([("w", b.clone())])
                ));
            }
        }
    }
}

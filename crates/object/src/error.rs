//! Error types for object construction and manipulation.

use crate::Attr;
use std::fmt;

/// Errors produced when constructing or updating objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectError {
    /// A tuple literal used the same attribute name twice with different
    /// values. The paper requires tuple attribute names to be distinct
    /// (Definition 2.1(iii)).
    DuplicateAttribute(Attr),
    /// A path-based operation was applied at a path that does not exist or
    /// traverses a non-tuple.
    PathNotFound(String),
    /// A path-based update expected a particular shape (e.g. a set to insert
    /// into) and found something else.
    WrongShape {
        /// What the operation needed.
        expected: &'static str,
        /// What it found, rendered.
        found: String,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::DuplicateAttribute(a) => {
                write!(
                    f,
                    "duplicate attribute `{a}` with conflicting values in tuple literal"
                )
            }
            ObjectError::PathNotFound(p) => write!(f, "path `{p}` not found"),
            ObjectError::WrongShape { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

//! A blocking client for the serving protocol.
//!
//! One [`Client`] is one session: a TCP connection speaking
//! request/response frames. Result payloads are re-interned into the
//! local store via [`co_wire::read_snapshot`] — in-process (the tests,
//! the load generator) that means the returned [`Object`] carries the
//! **same `NodeId`s** as the server-side result, which is what lets the
//! differential tests assert bit-identical snapshot reads.

use crate::frame::{read_frame, write_frame};
use crate::protocol::{ErrorCode, Request, Response, StatsDigest};
use crate::ProtocolError;
use co_object::Object;
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or the framing failed.
    Protocol(ProtocolError),
    /// The server answered with a typed error response.
    Server {
        /// The failure category.
        code: ErrorCode,
        /// The server's rendering of the failure.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong kind
    /// for the request (a misbehaving server, not corruption — corrupted
    /// frames surface as [`ClientError::Protocol`]).
    Unexpected(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(resp) => {
                write!(f, "unexpected response kind: {resp:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// What a committed [`Client::advance`] did, client-side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advanced {
    /// The head version after the commit.
    pub version: u64,
    /// The new head root's interned id.
    pub root: Option<u64>,
    /// Fixpoint iterations the run took.
    pub iterations: u64,
}

/// One serving session over TCP. See the crate docs for an example.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: u64,
}

impl Client {
    /// Connects a new session. The frame cap mirrors the server's env
    /// default (`CO_SERVER_MAX_FRAME`), since responses carry whole
    /// result objects. Talking to a server configured programmatically
    /// with a different [`ServerConfig::max_frame_len`]? Use
    /// [`Client::connect_with`] so large valid responses are not
    /// rejected as oversized.
    ///
    /// [`ServerConfig::max_frame_len`]: crate::ServerConfig::max_frame_len
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, crate::frame::max_frame_len_from_env())
    }

    /// Connects a new session accepting response frames up to
    /// `max_frame` bytes — pass the serving
    /// [`ServerConfig::max_frame_len`](crate::ServerConfig::max_frame_len)
    /// when it differs from the `CO_SERVER_MAX_FRAME` env default.
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame: u64) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::from)?;
        stream.set_nodelay(true).map_err(ProtocolError::from)?;
        let reader = BufReader::new(stream.try_clone().map_err(ProtocolError::from)?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame,
        })
    }

    /// Sends one request and reads the one response. The raw hook —
    /// prefer the typed methods below.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        let body = read_frame(&mut self.reader, self.max_frame)?.ok_or(
            // The server never closes between our request and its reply
            // unless it is rejecting/aborting the session.
            ProtocolError::Truncated {
                context: "response (connection closed)",
            },
        )?;
        match Response::decode(&body)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// The current head's `(version, root id)`, without pinning.
    pub fn head(&mut self) -> Result<(u64, Option<u64>), ClientError> {
        match self.request(&Request::Head)? {
            Response::Head { version, root } => Ok((version, root)),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// Pins the current head as this session's read snapshot and returns
    /// its `(version, root id)`. Until [`Client::release`], every
    /// [`Client::query`]/[`Client::eval`] runs against this frozen
    /// version regardless of concurrent writers.
    pub fn snapshot(&mut self) -> Result<(u64, Option<u64>), ClientError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot { version, root } => Ok((version, root)),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// Releases the pinned snapshot; `true` if one was held.
    pub fn release(&mut self) -> Result<bool, ClientError> {
        match self.request(&Request::Release)? {
            Response::Released { was_pinned } => Ok(was_pinned),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    fn objects(&mut self, request: &Request) -> Result<(u64, Object), ClientError> {
        match self.request(request)? {
            Response::Objects { version, payload } => {
                let snap =
                    co_wire::read_snapshot(payload.as_slice()).map_err(ProtocolError::from)?;
                match <[Object; 1]>::try_from(snap.roots) {
                    Ok([root]) => Ok((version, root)),
                    Err(roots) => Err(ClientError::Protocol(ProtocolError::Malformed {
                        detail: format!("result payload has {} roots, expected 1", roots.len()),
                    })),
                }
            }
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// Interprets `formula` against the session's read snapshot (the
    /// pinned one, or the instantaneous head), returning `(snapshot
    /// version, result object)`.
    pub fn query(&mut self, formula: &str) -> Result<(u64, Object), ClientError> {
        self.objects(&Request::Query {
            formula: formula.to_owned(),
        })
    }

    /// Runs `program` to its fixpoint against the session's read snapshot
    /// **without committing**, returning `(snapshot version, closed
    /// database)`.
    pub fn eval(&mut self, program: &str) -> Result<(u64, Object), ClientError> {
        self.objects(&Request::Eval {
            program: program.to_owned(),
        })
    }

    /// Runs `program` over the latest committed head and commits the
    /// fixpoint as the new head.
    pub fn advance(&mut self, program: &str) -> Result<Advanced, ClientError> {
        match self.request(&Request::Advance {
            program: program.to_owned(),
        })? {
            Response::Advanced {
                version,
                root,
                iterations,
            } => Ok(Advanced {
                version,
                root,
                iterations,
            }),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// The server's store-ledger digest.
    pub fn stats(&mut self) -> Result<StatsDigest, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(digest) => Ok(digest),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }

    /// The server's whole co-obs metric registry as a typed snapshot:
    /// every counter, gauge, and histogram (request-lifecycle
    /// histograms, ledger counters, engine/store/wire timings). Fetch
    /// once before and once after a run and diff with
    /// [`co_obs::Snapshot::minus`] to isolate the run's contribution.
    pub fn metrics(&mut self) -> Result<co_obs::Snapshot, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            resp => Err(ClientError::Unexpected(resp)),
        }
    }
}

//! # co-server — a multi-client serving layer with snapshot-isolated reads
//!
//! A TCP front-end over one shared
//! [`SharedEngine`] — many concurrent sessions
//! submit programs and queries against a single hash-consed object store,
//! and every read runs against a *pinned snapshot* — frozen, GC-protected,
//! bit-identical to a single-threaded run quiesced at that version — while
//! writers advance the head underneath (see `co_engine::shared` for why
//! the store's immutable, never-recycled-id design makes this MVCC for
//! free).
//!
//! ## Serving cores
//!
//! Two interchangeable I/O cores drive the same application layer
//! ([`protocol::handle`]), selected by [`ServerConfig::core`] /
//! `CO_SERVER_CORE`:
//!
//! - [`ServingCore::WorkerPool`] (default) — a readiness-driven reactor:
//!   one thread `poll(2)`s the whole session fd set (nonblocking sockets,
//!   the vendored `polling` shim — no async runtime), reassembles frames
//!   incrementally, and feeds bounded per-session queues drained by a
//!   fixed worker pool. Full queues pause the socket (TCP pushes back to
//!   the client); a server-wide in-flight cap answers excess requests
//!   with typed [`ErrorCode::Overloaded`] rejections instead of
//!   collapsing.
//! - [`ServingCore::ThreadPerSession`] — the classic one-thread-per
//!   -connection core: simple, and the baseline the load generator
//!   compares the pool against.
//!
//! Both cores share every session semantics: the MVCC contract, the
//! typed-error protocol discipline, and shutdown that wakes and drains
//! idle sessions (`active_sessions` reaches zero).
//!
//! ## Protocol
//!
//! Length-prefixed, checksummed [`frame`]s carry [`Request`]/[`Response`]
//! messages; results ship back as co-wire snapshot payloads (the same
//! hash-cons-aware encoding checkpoints use). Corruption anywhere —
//! truncation at any byte, any single bit flip, frames fragmented across
//! readiness wakeups — yields a typed [`ProtocolError`], never a panic
//! and never a silently-wrong reply (`tests/protocol_adversarial.rs`
//! proves this exhaustively against both cores).
//!
//! ## Serving a store
//!
//! ```no_run
//! use co_engine::{Engine, SharedEngine};
//! use co_parser::parse_object;
//! use co_server::{Client, Server, ServerConfig};
//!
//! let db = parse_object("[edge: {[s: a, t: b]}]").unwrap();
//! let shared = SharedEngine::new(Engine::new(Default::default()), db);
//! let handle = Server::bind(shared, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.snapshot().unwrap(); // pin: reads now snapshot-isolated
//! let (_version, result) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
//! assert!(result.dot("edge").as_set().is_some());
//! handle.shutdown();
//! ```
//!
//! ## Knobs
//!
//! | env | default | meaning |
//! |---|---|---|
//! | `CO_SERVER_ADDR` | `127.0.0.1:0` | listen address (`:0` = ephemeral port) |
//! | `CO_SERVER_CORE` | `pool` | serving core: `pool` (reactor + workers) or `threaded` (thread per session) |
//! | `CO_SERVER_WORKERS` | `0` (auto) | worker threads for the pool core; `0` = `max(2 × available_parallelism, 4)` (workers can park on the engine's writer mutex, so the pool oversubscribes the cores) |
//! | `CO_SERVER_SESSION_QUEUE` | `16` | per-session queued-request bound; at the bound the socket stops being read (backpressure) |
//! | `CO_SERVER_MAX_INFLIGHT` | `1024` | server-wide admitted-request cap; beyond it requests get a typed `Overloaded` rejection |
//! | `CO_SERVER_MAX_SESSIONS` | `1024` | concurrent sessions before new connections are rejected with a typed `SessionLimit` error |
//! | `CO_SERVER_MAX_FRAME` | 16 MiB | per-frame body cap, enforced before allocation |
//! | `CO_METRICS` | on | `0`/`off`/`false` disable the co-obs metric registry (counters/histograms become no-ops; the `Request::Metrics` frame still answers, with frozen values) |
//! | `CO_TRACE` | off | `1`/`stderr` emit JSON-lines spans to stderr; any other value is an append-mode file path |
//!
//! A set-but-unparsable value keeps the default **and emits a one-line
//! structured warning** (a single JSON line through the co-obs event
//! emitter — stderr unless `CO_TRACE` routes it to a file) naming the
//! variable and the rejected value. Engine knobs (`CO_ENGINE_THREADS`,
//! `CO_GC_EVERY_ROUND`, …) apply unchanged — the serving layer adds no
//! semantics of its own.
//!
//! ## Observability
//!
//! Every request on either core is stamped through its lifecycle
//! (decoded → enqueued → dequeued → handled → written) into the global
//! [`co_obs`] registry: `server.queue_wait_ns` / `server.handle_ns` /
//! `server.write_ns` histograms plus the decode/handle/reject ledger
//! counters (see the `obs` module docs for the exact invariants). The
//! [`Request::Metrics`] frame returns the whole registry as a typed
//! [`co_obs::Snapshot`]; [`Client::metrics`] fetches it.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod error;
pub mod frame;
pub(crate) mod obs;
mod pool;
pub mod protocol;
mod reactor;
mod session;

pub use client::{Advanced, Client, ClientError};
pub use error::ProtocolError;
pub use frame::{FrameDecoder, DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN};
pub use protocol::{handle, ErrorCode, Request, Response, SessionState, StatsDigest};

use co_engine::SharedEngine;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The thread-per-session accept loop's initial (and minimum) idle
/// sleep; doubles while no connection arrives, up to [`ACCEPT_POLL_MAX`].
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// Idle-backoff ceiling for the accept loop — also its worst-case
/// shutdown reaction latency.
const ACCEPT_POLL_MAX: Duration = Duration::from_millis(64);
/// How long [`ServerHandle::shutdown`] waits for live sessions to finish
/// their in-flight request after being woken and half-closed.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

/// Which I/O core serves sessions (the application layer is shared).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServingCore {
    /// Readiness-driven reactor + fixed worker pool with bounded
    /// per-session queues, backpressure, and admission control.
    #[default]
    WorkerPool,
    /// One blocking thread per connection (the PR 7 core, kept as the
    /// comparison baseline).
    ThreadPerSession,
}

impl ServingCore {
    /// The core requested by `CO_SERVER_CORE`: `pool`/`worker-pool` or
    /// `threaded`/`thread-per-session`; unset or unrecognized mean
    /// [`ServingCore::WorkerPool`] (use [`ServerConfig::from_env`] for
    /// the warning on unrecognized values).
    pub fn from_env() -> ServingCore {
        std::env::var("CO_SERVER_CORE")
            .ok()
            .and_then(|v| ServingCore::parse(&v))
            .unwrap_or_default()
    }

    fn parse(v: &str) -> Option<ServingCore> {
        match v.trim().to_ascii_lowercase().as_str() {
            "pool" | "worker-pool" | "workers" => Some(ServingCore::WorkerPool),
            "threaded" | "thread-per-session" | "threads" => Some(ServingCore::ThreadPerSession),
            _ => None,
        }
    }
}

/// Listener configuration. [`ServerConfig::from_env`] reads the knobs
/// documented at the crate root.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (default `127.0.0.1:0` — an ephemeral port,
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Concurrent-session cap; further connections get a typed
    /// [`ErrorCode::SessionLimit`] rejection and are closed.
    pub max_sessions: usize,
    /// Per-frame body cap in bytes, enforced before allocation.
    pub max_frame_len: u64,
    /// Which I/O core serves sessions. Defaults to the environment's
    /// choice ([`ServingCore::from_env`]) so a whole test suite can be
    /// re-run against either core without code changes.
    pub core: ServingCore,
    /// Worker threads for the pool core; `0` = auto
    /// (`max(2 × available_parallelism, 4)` — oversubscribed because a
    /// worker running an `advance` parks on the engine's writer mutex,
    /// and writers must never be able to occupy the whole pool).
    pub workers: usize,
    /// Per-session queued-request bound. At the bound the reactor stops
    /// reading that socket: kernel buffer + TCP window push back to the
    /// client instead of the server buffering unboundedly.
    pub session_queue: usize,
    /// Server-wide admitted-request cap; requests arriving beyond it get
    /// a typed [`ErrorCode::Overloaded`] rejection (no engine work).
    pub max_inflight: usize,
}

/// A set-but-rejected configuration variable, reported by
/// [`ServerConfig::from_vars`] and emitted by [`ServerConfig::from_env`]
/// as one structured warning line through the co-obs event emitter. The
/// fields are separate (not a pre-baked message) so the emitted JSON
/// carries `variable` and `rejected` as machine-readable fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigWarning {
    /// The `CO_SERVER_*` variable that was set.
    pub variable: String,
    /// The value that failed to parse, verbatim.
    pub rejected: String,
    /// Why it was rejected and which default is kept.
    pub detail: String,
}

impl ConfigWarning {
    fn new(variable: &str, rejected: &str, detail: String) -> ConfigWarning {
        ConfigWarning {
            variable: variable.to_owned(),
            rejected: rejected.to_owned(),
            detail,
        }
    }
}

impl std::fmt::Display for ConfigWarning {
    /// The human rendering, shaped like the pre-structured stderr line:
    /// `ignoring CO_SERVER_MAX_FRAME="-5": not a positive byte count;
    /// keeping 16777216`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ignoring {}={:?}: {}",
            self.variable, self.rejected, self.detail
        )
    }
}

impl Default for ServerConfig {
    /// Baseline knob values, with the `CO_SERVER_*` environment applied
    /// on top (silently — [`ServerConfig::from_env`] is the constructor
    /// that warns about rejected values). Reading the environment here
    /// mirrors the engine's `Default` honoring `CO_ENGINE_THREADS`, and
    /// lets a whole test suite be re-run against either core or any knob
    /// setting without code changes.
    fn default() -> ServerConfig {
        ServerConfig::from_vars(|key| std::env::var(key).ok()).0
    }
}

impl ServerConfig {
    /// Configuration from the `CO_SERVER_*` environment. A variable that
    /// is set but unparsable keeps its default and emits one structured
    /// warning line (JSON, stderr by default — the `co-obs` event
    /// emitter) naming the variable and the rejected value — silent
    /// fallback hides typos like `CO_SERVER_MAX_SESSIONS=1k` until the
    /// cap bites in production.
    pub fn from_env() -> ServerConfig {
        let (config, warnings) = ServerConfig::from_vars(|key| std::env::var(key).ok());
        for w in &warnings {
            co_obs::warn(
                "co-server",
                "ignoring unparsable configuration variable",
                &[
                    ("variable", co_obs::FieldValue::Str(&w.variable)),
                    ("rejected", co_obs::FieldValue::Str(&w.rejected)),
                    ("detail", co_obs::FieldValue::Str(&w.detail)),
                ],
            );
        }
        config
    }

    /// [`ServerConfig::from_env`] with the variable source injected —
    /// the testable core. Returns the configuration plus the warnings
    /// for set-but-rejected values.
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> (ServerConfig, Vec<ConfigWarning>) {
        // The environment-free baseline (`Default` layers the env on top
        // of this, so it cannot be written in terms of `Default`).
        let mut cfg = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_sessions: 1024,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            core: ServingCore::WorkerPool,
            workers: 0,
            session_queue: 16,
            max_inflight: 1024,
        };
        let mut warnings = Vec::new();

        if let Some(addr) = get("CO_SERVER_ADDR") {
            let addr = addr.trim();
            if addr.is_empty() {
                warnings.push(ConfigWarning::new(
                    "CO_SERVER_ADDR",
                    "",
                    format!("empty address; keeping \"{}\"", cfg.addr),
                ));
            } else {
                cfg.addr = addr.to_owned();
            }
        }
        let mut usize_knob = |key: &str, min: usize, slot: &mut usize, meaning: &str| {
            if let Some(raw) = get(key) {
                match raw.trim().parse::<usize>() {
                    Ok(n) if n >= min => *slot = n,
                    _ => warnings.push(ConfigWarning::new(
                        key,
                        &raw,
                        format!("not {meaning}; keeping {}", *slot),
                    )),
                }
            }
        };
        usize_knob(
            "CO_SERVER_MAX_SESSIONS",
            1,
            &mut cfg.max_sessions,
            "a positive session count",
        );
        usize_knob(
            "CO_SERVER_WORKERS",
            0,
            &mut cfg.workers,
            "a worker count (0 = auto)",
        );
        usize_knob(
            "CO_SERVER_SESSION_QUEUE",
            1,
            &mut cfg.session_queue,
            "a positive queue bound",
        );
        usize_knob(
            "CO_SERVER_MAX_INFLIGHT",
            1,
            &mut cfg.max_inflight,
            "a positive in-flight cap",
        );
        if let Some(raw) = get("CO_SERVER_MAX_FRAME") {
            match raw.trim().parse::<u64>() {
                Ok(n) if n >= 1 => cfg.max_frame_len = n,
                _ => warnings.push(ConfigWarning::new(
                    "CO_SERVER_MAX_FRAME",
                    &raw,
                    format!("not a positive byte count; keeping {}", cfg.max_frame_len),
                )),
            }
        }
        if let Some(raw) = get("CO_SERVER_CORE") {
            match ServingCore::parse(&raw) {
                Some(core) => cfg.core = core,
                None => warnings.push(ConfigWarning::new(
                    "CO_SERVER_CORE",
                    &raw,
                    format!("expected \"pool\" or \"threaded\"; keeping {:?}", cfg.core),
                )),
            }
        }
        (cfg, warnings)
    }

    /// The worker count the pool core actually spawns: `workers`, or —
    /// when `0` (auto) — `max(2 × available_parallelism, 4)`. Workers
    /// are not purely CPU-bound: an `advance` parks its worker on the
    /// engine's writer mutex for the whole fixpoint, so a pool sized
    /// exactly to the cores would let a few concurrent writers stall
    /// every read; modest oversubscription keeps readers flowing (and
    /// measurably halves the open-loop p99 on small machines).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            let cores = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            (cores * 2).max(4)
        }
    }
}

/// What an accept-loop error means for the loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AcceptDisposition {
    /// Nothing queued (`WouldBlock`): back off and poll again.
    Idle,
    /// A per-connection failure (the peer reset mid-handshake, a stray
    /// signal, fd pressure that may clear): skip it, keep accepting.
    Transient,
    /// The listener itself is broken: log and stop accepting — retrying
    /// at poll frequency would spin forever on a dead socket.
    Fatal,
}

pub(crate) fn classify_accept_error(e: &io::Error) -> AcceptDisposition {
    match e.kind() {
        io::ErrorKind::WouldBlock => AcceptDisposition::Idle,
        // Peer-side failures surfaced through accept, and resource
        // pressure that backing off can relieve.
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::Interrupted
        | io::ErrorKind::TimedOut => AcceptDisposition::Transient,
        _ => AcceptDisposition::Fatal,
    }
}

/// The serving front-end. [`Server::bind`] starts the chosen core and
/// returns a [`ServerHandle`]; there is no long-lived `Server` value.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts serving sessions against `shared`
    /// on [`ServerConfig::core`]. Reads are snapshot-isolated per the
    /// [`co_engine::shared`] contract on either core.
    pub fn bind(shared: SharedEngine, config: ServerConfig) -> io::Result<ServerHandle> {
        // Warm the dedicated GC collector thread (when `CO_GC_COLLECTOR`
        // enables it) before any session exists: the thread is otherwise
        // spawned lazily by the first high-water nudge, which would put
        // a thread-spawn syscall on a request's intern path.
        if co_object::store::gc_collector_enabled() {
            co_object::store::set_gc_collector(true);
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let (thread, wake) = match config.core {
            ServingCore::ThreadPerSession => {
                let registry = Arc::new(session::Registry::default());
                let thread = {
                    let shutdown = Arc::clone(&shutdown);
                    let active = Arc::clone(&active);
                    let registry = Arc::clone(&registry);
                    thread::Builder::new()
                        .name("co-server-accept".to_owned())
                        .spawn(move || {
                            accept_loop(listener, shared, config, shutdown, active, registry)
                        })?
                };
                (thread, CoreWake::Threaded(registry))
            }
            ServingCore::WorkerPool => {
                let waker = polling::Waker::new()?;
                let pool_shared = Arc::new(pool::PoolShared::new(
                    config.max_inflight,
                    config.session_queue,
                    waker,
                ));
                let thread = {
                    let shutdown = Arc::clone(&shutdown);
                    let active = Arc::clone(&active);
                    let pool_shared = Arc::clone(&pool_shared);
                    thread::Builder::new()
                        .name("co-server-reactor".to_owned())
                        .spawn(move || {
                            reactor::run(listener, shared, &config, pool_shared, &shutdown, &active)
                        })?
                };
                (thread, CoreWake::Pool(pool_shared))
            }
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            active,
            thread: Some(thread),
            wake,
        })
    }
}

/// Releases one claimed session slot on drop — even when the session
/// thread unwinds from a panic mid-request.
pub(crate) struct SlotGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: SharedEngine,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    registry: Arc<session::Registry>,
) {
    let mut idle_backoff = ACCEPT_POLL;
    while !shutdown.load(Ordering::Acquire) {
        // Drain everything queued, then sleep the current idle backoff.
        let mut accepted_any = false;
        loop {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    accepted_any = true;
                    // Nagle + delayed ACK would put ~40ms under every
                    // small request/response round-trip; the client side
                    // already disables it (`client.rs`), the session side
                    // must too.
                    let _ = stream.set_nodelay(true);
                    // Claim a session slot optimistically; hand it back if
                    // over the cap (keeps the check race-free without a lock).
                    if active.fetch_add(1, Ordering::AcqRel) >= config.max_sessions {
                        active.fetch_sub(1, Ordering::AcqRel);
                        session::send_session_limit(&mut stream, config.max_sessions);
                        continue;
                    }
                    let shared = shared.clone();
                    let registry = Arc::clone(&registry);
                    // The guard owns the claimed slot: it decrements on
                    // drop, so the slot is released whether the session
                    // returns, unwinds from a panic, or the spawn itself
                    // fails (the closure is dropped unrun) — a panicking
                    // handler can never ratchet `active` up to the cap.
                    let slot = SlotGuard(Arc::clone(&active));
                    let max_frame = config.max_frame_len;
                    // Default-size stacks: sessions run the recursive-descent
                    // parser and interpreter on client-supplied text, and the
                    // pages beyond what a session actually touches are never
                    // committed, so thousands still coexist cheaply.
                    let _ = thread::Builder::new()
                        .name("co-server-session".to_owned())
                        .spawn(move || {
                            let _slot = slot;
                            session::serve_session(stream, shared, max_frame, &registry);
                        });
                }
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Idle => break,
                    // Per-connection failures (peer reset mid-handshake,
                    // fd pressure): keep serving the sessions that exist.
                    AcceptDisposition::Transient => continue,
                    AcceptDisposition::Fatal => {
                        eprintln!(
                            "co-server: listener failed fatally ({e}); accept loop \
                             shutting down, existing sessions keep being served"
                        );
                        return;
                    }
                },
            }
        }
        // Exponential idle backoff: an idle server polls at 1ms only
        // briefly, then settles at ACCEPT_POLL_MAX instead of spinning at
        // 1kHz forever; any accepted connection snaps it back.
        if accepted_any {
            idle_backoff = ACCEPT_POLL;
        }
        thread::sleep(idle_backoff);
        idle_backoff = (idle_backoff * 2).min(ACCEPT_POLL_MAX);
    }
}

/// How `shutdown` reaches the sessions of the running core.
enum CoreWake {
    /// Half-close every registered session stream so blocked reads wake.
    Threaded(Arc<session::Registry>),
    /// Nudge the reactor's self-pipe; it closes every socket and joins
    /// the pool before its thread exits.
    Pool(Arc<pool::PoolShared>),
}

/// A running server: its bound address and its shutdown lever. Dropping
/// the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    thread: Option<thread::JoinHandle<()>>,
    wake: CoreWake,
}

impl ServerHandle {
    /// The bound listen address (the real port when `addr` asked for
    /// `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stops accepting, wakes every session parked in a read (idle
    /// sessions drain immediately — none is abandoned until process
    /// exit), then waits (bounded) for in-flight requests to finish.
    /// Returns the sessions still undrained at the deadline — `0` on a
    /// clean shutdown, which tests assert.
    pub fn shutdown(mut self) -> usize {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> usize {
        self.shutdown.store(true, Ordering::Release);
        match &self.wake {
            CoreWake::Threaded(registry) => registry.shutdown_all(),
            CoreWake::Pool(pool_shared) => pool_shared.waker.wake(),
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // The pool core drains synchronously before its thread exits; the
        // threaded core's sessions wake on the half-close and drain here.
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(ACCEPT_POLL);
        }
        self.active.load(Ordering::Acquire)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use std::collections::HashMap;

    fn vars(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        move |key| map.get(key).cloned()
    }

    #[test]
    fn parsable_values_override_defaults_without_warnings() {
        let (cfg, warnings) = ServerConfig::from_vars(vars(&[
            ("CO_SERVER_MAX_SESSIONS", "7"),
            ("CO_SERVER_MAX_FRAME", "4096"),
            ("CO_SERVER_WORKERS", "3"),
            ("CO_SERVER_SESSION_QUEUE", "2"),
            ("CO_SERVER_MAX_INFLIGHT", "9"),
            ("CO_SERVER_CORE", "threaded"),
            ("CO_SERVER_ADDR", "127.0.0.1:0"),
        ]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(cfg.max_sessions, 7);
        assert_eq!(cfg.max_frame_len, 4096);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.session_queue, 2);
        assert_eq!(cfg.max_inflight, 9);
        assert_eq!(cfg.core, ServingCore::ThreadPerSession);
    }

    #[test]
    fn unparsable_values_keep_defaults_and_warn_naming_the_variable() {
        let (cfg, warnings) = ServerConfig::from_vars(vars(&[
            ("CO_SERVER_MAX_SESSIONS", "1k"),
            ("CO_SERVER_MAX_FRAME", "-5"),
            ("CO_SERVER_CORE", "epoll"),
        ]));
        let defaults = ServerConfig {
            core: ServingCore::WorkerPool,
            ..ServerConfig::default()
        };
        assert_eq!(cfg.max_sessions, defaults.max_sessions);
        assert_eq!(cfg.max_frame_len, defaults.max_frame_len);
        assert_eq!(cfg.core, ServingCore::WorkerPool);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        for (warning, var, rejected) in [
            (&warnings[0], "CO_SERVER_MAX_SESSIONS", "1k"),
            (&warnings[1], "CO_SERVER_MAX_FRAME", "-5"),
            (&warnings[2], "CO_SERVER_CORE", "epoll"),
        ] {
            assert_eq!(warning.variable, var);
            assert_eq!(warning.rejected, rejected);
            let rendered = warning.to_string();
            assert!(rendered.contains(var), "{rendered}");
            assert!(rendered.contains(rejected), "{rendered}");
            assert!(rendered.starts_with("ignoring "), "{rendered}");
        }
    }

    #[test]
    fn zero_caps_are_rejected_but_zero_workers_means_auto() {
        let (cfg, warnings) = ServerConfig::from_vars(vars(&[
            ("CO_SERVER_MAX_SESSIONS", "0"),
            ("CO_SERVER_SESSION_QUEUE", "0"),
            ("CO_SERVER_MAX_INFLIGHT", "0"),
            ("CO_SERVER_WORKERS", "0"),
        ]));
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert_eq!(cfg.max_sessions, 1024);
        assert_eq!(cfg.session_queue, 16);
        assert_eq!(cfg.max_inflight, 1024);
        assert_eq!(cfg.workers, 0);
        assert!(cfg.resolved_workers() >= 4, "auto floors at four workers");
    }

    #[test]
    fn unset_environment_is_silent_defaults() {
        let (cfg, warnings) = ServerConfig::from_vars(|_| None);
        assert!(warnings.is_empty());
        assert_eq!(cfg.max_sessions, 1024);
        assert_eq!(cfg.core, ServingCore::WorkerPool);
    }

    #[test]
    fn accept_errors_classify_idle_transient_fatal() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            classify_accept_error(&Error::from(ErrorKind::WouldBlock)),
            AcceptDisposition::Idle
        );
        for transient in [
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::Interrupted,
            ErrorKind::TimedOut,
        ] {
            assert_eq!(
                classify_accept_error(&Error::from(transient)),
                AcceptDisposition::Transient,
                "{transient:?}"
            );
        }
        for fatal in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidInput,
        ] {
            assert_eq!(
                classify_accept_error(&Error::from(fatal)),
                AcceptDisposition::Fatal,
                "{fatal:?}"
            );
        }
    }
}

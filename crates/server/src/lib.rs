//! # co-server — a multi-client serving layer with snapshot-isolated reads
//!
//! A threaded TCP front-end over one shared
//! [`SharedEngine`] — many concurrent sessions
//! submit programs and queries against a single hash-consed object store,
//! and every read runs against a *pinned snapshot* — frozen, GC-protected,
//! bit-identical to a single-threaded run quiesced at that version — while
//! writers advance the head underneath (see `co_engine::shared` for why
//! the store's immutable, never-recycled-id design makes this MVCC for
//! free).
//!
//! ## Protocol
//!
//! Length-prefixed, checksummed [`frame`]s carry [`Request`]/[`Response`]
//! messages; results ship back as co-wire snapshot payloads (the same
//! hash-cons-aware encoding checkpoints use). Corruption anywhere —
//! truncation at any byte, any single bit flip — yields a typed
//! [`ProtocolError`], never a panic and never a silently-wrong reply
//! (`tests/protocol_adversarial.rs` proves this exhaustively).
//!
//! ## Serving a store
//!
//! ```no_run
//! use co_engine::{Engine, SharedEngine};
//! use co_parser::parse_object;
//! use co_server::{Client, Server, ServerConfig};
//!
//! let db = parse_object("[edge: {[s: a, t: b]}]").unwrap();
//! let shared = SharedEngine::new(Engine::new(Default::default()), db);
//! let handle = Server::bind(shared, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.snapshot().unwrap(); // pin: reads now snapshot-isolated
//! let (_version, result) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
//! assert!(result.dot("edge").as_set().is_some());
//! handle.shutdown();
//! ```
//!
//! ## Knobs
//!
//! | env | default | meaning |
//! |---|---|---|
//! | `CO_SERVER_ADDR` | `127.0.0.1:0` | listen address (`:0` = ephemeral port) |
//! | `CO_SERVER_MAX_SESSIONS` | `1024` | concurrent sessions before new connections are rejected with a typed `SessionLimit` error |
//! | `CO_SERVER_MAX_FRAME` | 16 MiB | per-frame body cap, enforced before allocation |
//!
//! Engine-side knobs (`CO_ENGINE_THREADS`, `CO_GC_EVERY_ROUND`, …) apply
//! unchanged — the serving layer adds no semantics of its own.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod error;
pub mod frame;
pub mod protocol;
mod session;

pub use client::{Advanced, Client, ClientError};
pub use error::ProtocolError;
pub use frame::{DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN};
pub use protocol::{ErrorCode, Request, Response, StatsDigest};

use co_engine::SharedEngine;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How the accept loop polls its shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// How long [`ServerHandle::shutdown`] waits for live sessions to drain
/// before abandoning them (they die with the process; a session blocked
/// on a read holds no server lock).
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

/// Listener configuration. [`ServerConfig::from_env`] reads the knobs
/// documented at the crate root.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (default `127.0.0.1:0` — an ephemeral port,
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Concurrent-session cap; further connections get a typed
    /// [`ErrorCode::SessionLimit`] rejection and are closed.
    pub max_sessions: usize,
    /// Per-frame body cap in bytes, enforced before allocation.
    pub max_frame_len: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_sessions: 1024,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

impl ServerConfig {
    /// Configuration from `CO_SERVER_ADDR`, `CO_SERVER_MAX_SESSIONS`, and
    /// `CO_SERVER_MAX_FRAME`; unset or unparsable variables keep the
    /// defaults.
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("CO_SERVER_ADDR") {
            let addr = addr.trim();
            if !addr.is_empty() {
                cfg.addr = addr.to_owned();
            }
        }
        if let Some(n) = std::env::var("CO_SERVER_MAX_SESSIONS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            cfg.max_sessions = n;
        }
        cfg.max_frame_len = frame::max_frame_len_from_env();
        cfg
    }
}

/// The serving front-end. [`Server::bind`] starts the accept loop and
/// returns a [`ServerHandle`]; there is no long-lived `Server` value.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts accepting sessions against
    /// `shared`. Each session runs on its own thread; reads are
    /// snapshot-isolated per the [`co_engine::shared`] contract.
    pub fn bind(shared: SharedEngine, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            thread::Builder::new()
                .name("co-server-accept".to_owned())
                .spawn(move || accept_loop(listener, shared, config, shutdown, active))?
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            active,
            accept: Some(accept),
        })
    }
}

/// Releases one claimed session slot on drop — even when the session
/// thread unwinds from a panic mid-request.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: SharedEngine,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
) {
    while !shutdown.load(Ordering::Acquire) {
        // Drain everything queued, then sleep one poll tick.
        loop {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    // Claim a session slot optimistically; hand it back if
                    // over the cap (keeps the check race-free without a lock).
                    if active.fetch_add(1, Ordering::AcqRel) >= config.max_sessions {
                        active.fetch_sub(1, Ordering::AcqRel);
                        session::send_session_limit(&mut stream, config.max_sessions);
                        continue;
                    }
                    let shared = shared.clone();
                    // The guard owns the claimed slot: it decrements on
                    // drop, so the slot is released whether the session
                    // returns, unwinds from a panic, or the spawn itself
                    // fails (the closure is dropped unrun) — a panicking
                    // handler can never ratchet `active` up to the cap.
                    let slot = SlotGuard(Arc::clone(&active));
                    let max_frame = config.max_frame_len;
                    // Default-size stacks: sessions run the recursive-descent
                    // parser and interpreter on client-supplied text, and the
                    // pages beyond what a session actually touches are never
                    // committed, so thousands still coexist cheaply.
                    let _ = thread::Builder::new()
                        .name("co-server-session".to_owned())
                        .spawn(move || {
                            let _slot = slot;
                            session::serve_session(stream, shared, max_frame);
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient accept failures (per-connection resets, fd
                // pressure): keep serving the sessions that exist.
                Err(_) => break,
            }
        }
        thread::sleep(ACCEPT_POLL);
    }
}

/// A running server: its bound address and its shutdown lever. Dropping
/// the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (the real port when `addr` asked for
    /// `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stops accepting, then waits (bounded) for live sessions to drain.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(ACCEPT_POLL);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

//! Typed protocol errors.
//!
//! Every way a frame or its body can be unreadable maps to one
//! [`ProtocolError`] variant with a precise `Display` rendering, mirroring
//! `co_wire::WireError`'s discipline: the decoder **never panics** on
//! malformed input, and corruption can never produce a silently-wrong
//! message (the frame header's checksum covers every body byte).

use co_wire::WireError;
use std::fmt;
use std::io;

/// Why a request/response frame could not be read or written.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket/stream failed.
    Io(io::Error),
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The frame header declares a zero-length body. Every valid body
    /// carries at least its kind byte, so this is corruption (or a
    /// hostile peer), rejected before any allocation.
    ZeroLengthFrame,
    /// The frame header declares a body larger than the configured
    /// maximum, rejected **before** any allocation — a flipped length
    /// bit or a hostile peer cannot make the server reserve gigabytes.
    Oversized {
        /// The declared body length.
        declared: u64,
        /// The maximum this endpoint accepts.
        max: u64,
    },
    /// The body does not hash to the checksum the frame header declares:
    /// the frame was corrupted in flight. No decoded content escapes —
    /// the checksum is verified before the body is parsed.
    ChecksumMismatch {
        /// The checksum recorded in the frame header.
        expected: u64,
        /// The checksum of the body actually read.
        actual: u64,
    },
    /// An unknown message-kind byte.
    BadKind {
        /// The kind byte found.
        kind: u8,
        /// Whether a request or a response was being decoded.
        context: &'static str,
    },
    /// The frame decoded but violates a structural invariant (trailing
    /// bytes after the message, an out-of-range field, …).
    Malformed {
        /// What invariant was violated.
        detail: String,
    },
    /// An embedded `co-wire` object payload failed to decode (the outer
    /// frame was intact — its checksum passed — so this indicates a
    /// misbehaving peer, not transport corruption).
    Wire(WireError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol io error: {e}"),
            ProtocolError::Truncated { context } => write!(
                f,
                "truncated frame: unexpected end of input while reading {context}"
            ),
            ProtocolError::ZeroLengthFrame => {
                write!(f, "malformed frame: zero-length body declared")
            }
            ProtocolError::Oversized { declared, max } => write!(
                f,
                "oversized frame: declared body of {declared} bytes exceeds the \
                 {max}-byte limit"
            ),
            ProtocolError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: header declares {expected:#018x}, \
                 body hashes to {actual:#018x}"
            ),
            ProtocolError::BadKind { kind, context } => {
                write!(f, "malformed frame: unknown {context} kind {kind:#04x}")
            }
            ProtocolError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            ProtocolError::Wire(e) => write!(f, "embedded object payload unreadable: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        // An EOF from `read_exact` mid-frame is a truncated frame, not an
        // environment failure; keep the distinction callers match on.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "frame" }
        } else {
            ProtocolError::Io(e)
        }
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

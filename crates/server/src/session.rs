//! Per-connection request loop.
//!
//! Each accepted connection gets one session thread running
//! [`serve_session`]: read a frame, decode the request, serve it against
//! the shared engine, write the response frame, repeat until the peer
//! closes. The only per-session state is the optional pinned snapshot —
//! everything else lives in the [`SharedEngine`] — so a session is cheap
//! enough to run thousands of.
//!
//! Failure discipline: an unreadable frame (truncated, corrupted,
//! malformed) gets a best-effort [`Response::Error`] with
//! [`ErrorCode::Protocol`] and the connection closes — after corruption
//! the stream offset can no longer be trusted, so resynchronising would
//! risk serving a mis-framed request. Application failures (a formula
//! that does not parse, a diverging program) are ordinary error responses
//! and the session continues.

use crate::frame::{read_frame, write_frame};
use crate::protocol::{ErrorCode, Request, Response, StatsDigest};
use crate::ProtocolError;
use co_engine::{EngineError, PinnedDb, SharedEngine};
use co_object::{store, NodeId, Object};
use co_parser::{parse_formula, parse_program};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

/// The mutable state of one session.
struct Session {
    shared: SharedEngine,
    /// The snapshot pinned by a `Snapshot` request, if any. While held,
    /// every `Query`/`Eval` runs against this frozen version.
    pinned: Option<PinnedDb>,
}

fn opt_id(id: Option<NodeId>) -> Option<u64> {
    id.map(NodeId::get)
}

/// Renders `result` as a co-wire snapshot payload with exactly one root.
fn objects_response(version: u64, result: &Object) -> Result<Response, ProtocolError> {
    let mut payload = Vec::new();
    co_wire::write_snapshot(
        &mut payload,
        std::slice::from_ref(result),
        b"co-server result",
    )?;
    Ok(Response::Objects { version, payload })
}

fn engine_error(e: EngineError) -> Response {
    Response::Error {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }
}

fn parse_error(e: impl std::fmt::Display) -> Response {
    Response::Error {
        code: ErrorCode::Parse,
        message: e.to_string(),
    }
}

impl Session {
    /// The snapshot a read-only request runs against: the session's pin,
    /// or a fresh pin of the instantaneous head.
    fn read_view(&self) -> PinnedDb {
        match &self.pinned {
            Some(p) => p.clone(),
            None => self.shared.head(),
        }
    }

    fn serve(&mut self, request: Request) -> Result<Response, ProtocolError> {
        match request {
            Request::Ping => Ok(Response::Pong),
            Request::Head => {
                let head = self.shared.head();
                Ok(Response::Head {
                    version: head.version(),
                    root: opt_id(head.root_id()),
                })
            }
            Request::Snapshot => {
                let pinned = self.shared.head();
                let resp = Response::Snapshot {
                    version: pinned.version(),
                    root: opt_id(pinned.root_id()),
                };
                self.pinned = Some(pinned);
                Ok(resp)
            }
            Request::Release => Ok(Response::Released {
                was_pinned: self.pinned.take().is_some(),
            }),
            Request::Query { formula } => {
                let f = match parse_formula(&formula) {
                    Ok(f) => f,
                    Err(e) => return Ok(parse_error(e)),
                };
                let view = self.read_view();
                let result = co_calculus::interpret(&f, view.object(), self.shared.policy());
                objects_response(view.version(), &result)
            }
            Request::Eval { program } => {
                let p = match parse_program(&program) {
                    Ok(p) => p,
                    Err(e) => return Ok(parse_error(e)),
                };
                let view = self.read_view();
                match self.shared.eval_db(&p, &view) {
                    Ok((db, _)) => objects_response(view.version(), &db),
                    Err(e) => Ok(engine_error(e)),
                }
            }
            Request::Advance { program } => {
                let p = match parse_program(&program) {
                    Ok(p) => p,
                    Err(e) => return Ok(parse_error(e)),
                };
                match self.shared.advance(&p) {
                    Ok(out) => Ok(Response::Advanced {
                        version: out.version,
                        root: opt_id(out.database.node_id()),
                        iterations: out.stats.iterations,
                    }),
                    Err(e) => Ok(engine_error(e)),
                }
            }
            Request::Stats => {
                let s = store::stats();
                Ok(Response::Stats(StatsDigest {
                    live_nodes: (s.tuple_nodes + s.set_nodes) as u64,
                    pinned_roots: s.pinned_roots as u64,
                    intern_hits: s.intern_hits,
                    intern_misses: s.intern_misses,
                    gc_sweeps: s.gc_sweeps,
                    gc_freed_nodes: s.gc_freed_nodes,
                }))
            }
        }
    }
}

/// Runs the request loop for one accepted connection until the peer
/// closes cleanly, the stream fails, or a frame is unreadable.
pub(crate) fn serve_session(stream: TcpStream, shared: SharedEngine, max_frame: u64) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut session = Session {
        shared,
        pinned: None,
    };
    loop {
        let body = match read_frame(&mut reader, max_frame) {
            Ok(Some(body)) => body,
            // Clean close at a frame boundary: the normal end of a session.
            Ok(None) => return,
            Err(e) => {
                send_protocol_error(&mut writer, &e);
                return;
            }
        };
        let response = match Request::decode(&body) {
            Ok(request) => match session.serve(request) {
                Ok(response) => response,
                // Only rendering the response can fail here; report and
                // close rather than leave the peer waiting.
                Err(e) => {
                    send_protocol_error(&mut writer, &e);
                    return;
                }
            },
            Err(e) => {
                send_protocol_error(&mut writer, &e);
                return;
            }
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            // The peer vanished mid-reply; nothing left to tell it.
            return;
        }
    }
}

/// Best-effort typed report before closing a poisoned connection: the
/// peer gets *why* (for its logs), never a silently-wrong reply.
fn send_protocol_error<W: std::io::Write>(w: &mut W, e: &ProtocolError) {
    let resp = Response::Error {
        code: ErrorCode::Protocol,
        message: e.to_string(),
    };
    let _ = write_frame(w, &resp.encode());
}

/// Writes the session-limit rejection on a connection that will not get a
/// session thread.
pub(crate) fn send_session_limit(stream: &mut TcpStream, max_sessions: usize) {
    let resp = Response::Error {
        code: ErrorCode::SessionLimit,
        message: format!("server is at its session limit ({max_sessions})"),
    };
    let _ = write_frame(stream, &resp.encode());
}

//! The thread-per-session serving core's per-connection request loop.
//!
//! Each accepted connection gets one session thread running
//! [`serve_session`]: read a frame, decode the request, serve it with
//! [`protocol::handle`], write the response frame, repeat until the peer
//! closes. The application layer lives entirely in
//! [`protocol::SessionState`]/[`protocol::handle`] — shared verbatim with
//! the reactor/worker-pool core — so a session here is nothing but
//! blocking I/O around the same handler.
//!
//! Failure discipline: an unreadable frame (truncated, corrupted,
//! malformed) gets a best-effort [`Response::Error`] with
//! [`ErrorCode::Protocol`] and the connection closes — after corruption
//! the stream offset can no longer be trusted, so resynchronising would
//! risk serving a mis-framed request. Application failures (a formula
//! that does not parse, a diverging program) are ordinary error responses
//! and the session continues.
//!
//! Shutdown: every live session registers its stream in a [`Registry`];
//! [`crate::ServerHandle::shutdown`] calls `TcpStream::shutdown` on each,
//! so a session parked in a blocking read wakes with a clean EOF and
//! drains instead of being abandoned until process exit.

use crate::frame::{read_frame, write_frame};
use crate::obs;
use crate::protocol::{self, ErrorCode, Request, Response, SessionState};
use crate::ProtocolError;
use co_engine::SharedEngine;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The live-session stream registry: shutdown's lever for waking
/// sessions parked in blocking reads. Keys are monotonic session ids;
/// values are stream clones whose only use is `TcpStream::shutdown`.
#[derive(Default)]
pub(crate) struct Registry {
    next: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl Registry {
    /// Registers a session's stream, returning the ticket that
    /// deregisters it.
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().unwrap().insert(id, stream);
        id
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().unwrap().remove(&id);
    }

    /// Half-closes every registered stream: blocked `read`s return EOF,
    /// sessions run their clean-close path and drain. Idempotent.
    pub(crate) fn shutdown_all(&self) {
        for stream in self.streams.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Runs the request loop for one accepted connection until the peer
/// closes cleanly, the stream fails, a frame is unreadable, or server
/// shutdown closes the socket under it.
pub(crate) fn serve_session(
    stream: TcpStream,
    shared: SharedEngine,
    max_frame: u64,
    registry: &Registry,
) {
    let registered = match stream.try_clone() {
        Ok(clone) => registry.register(clone),
        Err(_) => return,
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            registry.deregister(registered);
            return;
        }
    });
    let mut writer = BufWriter::new(stream);
    let mut state = SessionState::new(shared);
    let instruments = obs::instruments();
    loop {
        let body = match read_frame(&mut reader, max_frame) {
            Ok(Some(body)) => body,
            // Clean close at a frame boundary: the normal end of a session
            // (peer hangup, or shutdown's half-close).
            Ok(None) => break,
            Err(e) => {
                send_protocol_error(&mut writer, &e);
                break;
            }
        };
        // Lifecycle stamp: the frame is decoded. There is no queue on
        // this core — handling starts immediately — so the queue-wait
        // sample is taken right away (before `Request::decode`, exactly
        // like the pool core measures reactor-enqueue→worker-dequeue
        // before decoding): it reads ~0 rather than decode time.
        instruments.decoded();
        let decoded_at = std::time::Instant::now();
        let queue_wait = decoded_at.elapsed();
        instruments.queue_wait_ns.record_duration(queue_wait);
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(e) => {
                instruments.rejected();
                send_protocol_error(&mut writer, &e);
                break;
            }
        };
        let handle_start = std::time::Instant::now();
        let response = match protocol::handle(&mut state, request) {
            Ok(response) => response,
            // Only rendering the response can fail here; report and
            // close rather than leave the peer waiting.
            Err(e) => {
                instruments.handled();
                send_protocol_error(&mut writer, &e);
                break;
            }
        };
        let handle_elapsed = handle_start.elapsed();
        instruments.handle_ns.record_duration(handle_elapsed);
        let write_start = std::time::Instant::now();
        let write_ok = write_frame(&mut writer, &response.encode()).is_ok();
        let write_elapsed = write_start.elapsed();
        instruments.write_ns.record_duration(write_elapsed);
        instruments.handled();
        if co_obs::trace_enabled() {
            obs::emit_request_span(
                "threaded",
                registered,
                Some(queue_wait),
                handle_elapsed,
                write_elapsed,
                write_ok,
            );
        }
        if !write_ok {
            // The peer vanished mid-reply; nothing left to tell it.
            break;
        }
    }
    registry.deregister(registered);
}

/// Best-effort typed report before closing a poisoned connection: the
/// peer gets *why* (for its logs), never a silently-wrong reply.
fn send_protocol_error<W: std::io::Write>(w: &mut W, e: &ProtocolError) {
    let resp = Response::Error {
        code: ErrorCode::Protocol,
        message: e.to_string(),
    };
    let _ = write_frame(w, &resp.encode());
}

/// Writes the session-limit rejection on a connection that will not get a
/// session thread.
pub(crate) fn send_session_limit(stream: &mut TcpStream, max_sessions: usize) {
    let resp = Response::Error {
        code: ErrorCode::SessionLimit,
        message: format!("server is at its session limit ({max_sessions})"),
    };
    let _ = write_frame(stream, &resp.encode());
}

//! The serving layer's registry instruments, resolved once.
//!
//! Both cores stamp the same request lifecycle against the same names,
//! so a [`co_obs::Snapshot`] reads identically whichever core served:
//!
//! - `server.requests_decoded` — complete frame bodies taken off a
//!   socket (the ledger's top line);
//! - `server.requests_handled` — requests that reached
//!   [`protocol::handle`](crate::protocol::handle) (even if the
//!   response write then failed);
//! - `server.requests_rejected` — decoded but never handled: admission
//!   control (`server.rejected_overloaded` sub-counts those), request
//!   decode failures, and frames abandoned when their session closed;
//! - `server.inflight` — decoded minus (handled + rejected): zero at
//!   quiesce, making `decoded == handled + rejected` checkable from a
//!   snapshot alone;
//! - `server.queue_wait_ns` — decode→dequeue (the pool core's
//!   session-queue wait; ~0 on the threaded core, which stamps the same
//!   points so the histograms stay comparable);
//! - `server.handle_ns` / `server.write_ns` — time inside
//!   `protocol::handle` / writing the response frame;
//! - `server.write_stall_waits` — POLLOUT waits while a peer dawdled;
//! - `server.reactor_polls`, `server.backpressure_pauses`,
//!   `server.sessions_accepted` — reactor loop health.
//!
//! Everything here is a relaxed atomic mutation through a cached `Arc`
//! — the registry's lock is touched once per process, not per request.

use co_obs::{Counter, FieldValue, Gauge, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub(crate) struct ServerInstruments {
    pub(crate) requests_decoded: Arc<Counter>,
    pub(crate) requests_handled: Arc<Counter>,
    pub(crate) requests_rejected: Arc<Counter>,
    pub(crate) rejected_overloaded: Arc<Counter>,
    pub(crate) backpressure_pauses: Arc<Counter>,
    pub(crate) reactor_polls: Arc<Counter>,
    pub(crate) sessions_accepted: Arc<Counter>,
    pub(crate) write_stall_waits: Arc<Counter>,
    pub(crate) inflight: Arc<Gauge>,
    pub(crate) queue_wait_ns: Arc<Histogram>,
    pub(crate) handle_ns: Arc<Histogram>,
    pub(crate) write_ns: Arc<Histogram>,
}

pub(crate) fn instruments() -> &'static ServerInstruments {
    static CELL: OnceLock<ServerInstruments> = OnceLock::new();
    CELL.get_or_init(|| ServerInstruments {
        requests_decoded: co_obs::counter("server.requests_decoded"),
        requests_handled: co_obs::counter("server.requests_handled"),
        requests_rejected: co_obs::counter("server.requests_rejected"),
        rejected_overloaded: co_obs::counter("server.rejected_overloaded"),
        backpressure_pauses: co_obs::counter("server.backpressure_pauses"),
        reactor_polls: co_obs::counter("server.reactor_polls"),
        sessions_accepted: co_obs::counter("server.sessions_accepted"),
        write_stall_waits: co_obs::counter("server.write_stall_waits"),
        inflight: co_obs::gauge("server.inflight"),
        queue_wait_ns: co_obs::histogram("server.queue_wait_ns"),
        handle_ns: co_obs::histogram("server.handle_ns"),
        write_ns: co_obs::histogram("server.write_ns"),
    })
}

impl ServerInstruments {
    /// One decoded frame entered the ledger.
    #[inline]
    pub(crate) fn decoded(&self) {
        self.requests_decoded.inc();
        self.inflight.inc();
    }

    /// A decoded request left the ledger without being handled.
    #[inline]
    pub(crate) fn rejected(&self) {
        self.requests_rejected.inc();
        self.inflight.dec();
    }

    /// A decoded request reached `protocol::handle`.
    #[inline]
    pub(crate) fn handled(&self) {
        self.requests_handled.inc();
        self.inflight.dec();
    }
}

/// One `server.request` span per served request when `CO_TRACE` is on:
/// the decoded→dequeued→handled→written stamps as durations, plus which
/// core served it. Callers pass `queue_wait` `None` on paths where the
/// request never sat in a queue.
pub(crate) fn emit_request_span(
    core: &'static str,
    session: u64,
    queue_wait: Option<Duration>,
    handle: Duration,
    write: Duration,
    ok: bool,
) {
    co_obs::emit(
        "server.request",
        &[
            ("core", FieldValue::Str(core)),
            ("session", FieldValue::U64(session)),
            (
                "queue_wait_ns",
                FieldValue::U64(queue_wait.unwrap_or(Duration::ZERO).as_nanos() as u64),
            ),
            ("handle_ns", FieldValue::U64(handle.as_nanos() as u64)),
            ("write_ns", FieldValue::U64(write.as_nanos() as u64)),
            ("ok", FieldValue::Bool(ok)),
        ],
    );
}

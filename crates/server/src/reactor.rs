//! The readiness-driven serving core's I/O hub: one thread owning the
//! listener and every session socket, multiplexed with `poll(2)` (the
//! vendored [`polling`] shim — no async runtime).
//!
//! The reactor accepts nonblocking connections (TCP_NODELAY set on every
//! accepted stream), reads whatever the kernel has whenever a socket
//! polls readable, reassembles frames with the incremental
//! [`FrameDecoder`] (frames may arrive fragmented across wakeups), and
//! feeds verified bodies into the owning session's bounded queue for the
//! [`WorkerPool`](crate::pool::WorkerPool) to drain. Control flows back
//! through a self-pipe [`polling::Waker`]: workers nudge it to resume a
//! backpressure-paused socket or to deregister a finished session, and
//! `ServerHandle::shutdown` nudges it to stop the world.
//!
//! **Backpressure**: when a session's queue reaches its bound the
//! reactor stops polling that socket for readability — the kernel buffer
//! fills, the TCP window closes, and the *client* blocks, instead of the
//! server buffering unboundedly. **Admission control**: a request
//! arriving while the server-wide in-flight count is at its cap is
//! answered with a typed [`ErrorCode::Overloaded`] rejection enqueued in
//! arrival order (the session survives; the rejection costs no engine
//! work). **Shutdown**: the reactor closes every socket and joins the
//! pool before exiting, so `active_sessions` provably drains to zero —
//! no session is ever abandoned inside a blocked read.

use crate::frame::FrameDecoder;
use crate::obs;
use crate::pool::{Job, PoolShared, SessionEntry, WorkerPool};
use crate::protocol::{ErrorCode, SessionState};
use crate::{classify_accept_error, AcceptDisposition, ServerConfig, SlotGuard};
use co_engine::SharedEngine;
use polling::{PollFd, POLLIN};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on bytes read from one session per wakeup: keeps one
/// fire-hose client from starving the rest of the fd set.
const READ_BUDGET_PER_WAKEUP: usize = 256 * 1024;
/// Scratch read chunk.
const READ_CHUNK: usize = 16 * 1024;
/// Safety-net poll timeout; every real transition also wakes the pipe.
const POLL_TIMEOUT_MS: i32 = 1_000;

/// Reactor-private per-session state (the shared half lives in
/// [`SessionEntry`]).
struct Conn {
    stream: TcpStream,
    entry: Arc<SessionEntry>,
    decoder: FrameDecoder,
    /// POLLIN withdrawn: the session queue is at its bound.
    paused: bool,
    /// Never read again (peer EOF, read error, or poisoned stream);
    /// the session closes once its queue drains.
    stop_reading: bool,
}

pub(crate) fn run(
    listener: TcpListener,
    shared_engine: SharedEngine,
    config: &ServerConfig,
    pool_shared: Arc<PoolShared>,
    shutdown: &AtomicBool,
    active: &Arc<AtomicUsize>,
) {
    let pool = WorkerPool::spawn(config.resolved_workers(), Arc::clone(&pool_shared));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut listener_alive = true;
    let mut scratch = vec![0u8; READ_CHUNK];
    // Parallel vectors rebuilt each iteration: the fd set is small (one
    // fd per session) and rebuild keeps pause/close bookkeeping trivial.
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();

    #[derive(Clone, Copy, PartialEq)]
    enum Token {
        Waker,
        Listener,
        Session(u64),
    }

    while !shutdown.load(Ordering::Acquire) {
        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(pool_shared.waker.poll_fd(), POLLIN));
        tokens.push(Token::Waker);
        if listener_alive {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
            tokens.push(Token::Listener);
        }
        for (id, conn) in &conns {
            if !conn.paused && !conn.stop_reading {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), POLLIN));
                tokens.push(Token::Session(*id));
            }
        }
        obs::instruments().reactor_polls.inc();
        if polling::poll_fds(&mut fds, POLL_TIMEOUT_MS).is_err() {
            // EINTR is retried inside the shim; anything else here means
            // the fd set itself is broken — re-check shutdown and retry.
            continue;
        }
        if shutdown.load(Ordering::Acquire) {
            break;
        }

        let mut accept_ready = false;
        let mut read_ready: Vec<u64> = Vec::new();
        for (fd, token) in fds.iter().zip(&tokens) {
            match token {
                Token::Waker if fd.readable() => pool_shared.waker.drain(),
                Token::Listener if fd.readable() => accept_ready = true,
                Token::Session(id) if fd.readable() => read_ready.push(*id),
                _ => {}
            }
        }

        process_control(&pool_shared, &mut conns);

        if accept_ready {
            listener_alive = accept_burst(
                &listener,
                &shared_engine,
                config,
                &pool_shared,
                active,
                &mut conns,
                &mut next_id,
            );
        }

        for id in read_ready {
            // The control pass may have closed it already.
            if conns.contains_key(&id) {
                service_readable(&pool_shared, &mut conns, id, &mut scratch);
            }
        }
    }

    // Shutdown: stop the pool first (workers drop their entry refs), then
    // drop every socket and registry entry — the SlotGuards inside the
    // entries release as the last Arc goes, draining `active` to zero
    // before the reactor thread exits (ServerHandle::shutdown joins us).
    pool.shutdown();
    conns.clear();
    pool_shared.sessions.lock().unwrap().clear();
    pool_shared.resume.lock().unwrap().clear();
    pool_shared.closed.lock().unwrap().clear();
}

/// Applies worker notifications: resume reading for drained sessions,
/// deregister finished ones.
fn process_control(pool_shared: &PoolShared, conns: &mut HashMap<u64, Conn>) {
    let resume: Vec<u64> = std::mem::take(&mut *pool_shared.resume.lock().unwrap());
    for id in resume {
        if let Some(conn) = conns.get_mut(&id) {
            if conn.paused && conn.entry.queue.lock().unwrap().len() < pool_shared.session_queue {
                conn.paused = false;
                conn.entry.read_paused.store(false, Ordering::Release);
                // The pause may have left complete frames sitting in the
                // decoder with the socket already drained — POLLIN would
                // never fire for them. Extract now (may re-pause).
                if !conn.stop_reading {
                    extract_frames(pool_shared, conn);
                }
            }
        }
    }
    let closed: Vec<u64> = std::mem::take(&mut *pool_shared.closed.lock().unwrap());
    for id in closed {
        remove_session(pool_shared, conns, id);
    }
}

/// Deregisters a session everywhere and balances the in-flight ledger
/// for any jobs that will now never run.
fn remove_session(pool_shared: &PoolShared, conns: &mut HashMap<u64, Conn>, id: u64) {
    conns.remove(&id);
    let entry = pool_shared.sessions.lock().unwrap().remove(&id);
    if let Some(entry) = entry {
        // If no worker holds the session (scheduled=false), its queue can
        // never be drained again — drop the jobs and balance the ledger.
        // A still-scheduled session's worker does this itself.
        if !entry.scheduled.load(Ordering::Acquire) {
            crate::pool::abandon_remaining(pool_shared, &entry);
        }
    }
}

/// Accepts everything queued on the listener. Returns `false` if the
/// listener failed fatally (logged; existing sessions keep being
/// served).
fn accept_burst(
    listener: &TcpListener,
    shared_engine: &SharedEngine,
    config: &ServerConfig,
    pool_shared: &PoolShared,
    active: &Arc<AtomicUsize>,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
) -> bool {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Request/response round-trips are latency-bound on small
                // frames: Nagle + delayed ACK would add ~40ms to every
                // one. The client side already disables it; the session
                // side must too.
                let _ = stream.set_nodelay(true);
                if active.load(Ordering::Acquire) >= config.max_sessions {
                    // Still blocking: the one-frame rejection fits any
                    // socket buffer.
                    crate::session::send_session_limit(&mut stream, config.max_sessions);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let write_half = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                active.fetch_add(1, Ordering::AcqRel);
                let id = *next_id;
                *next_id += 1;
                let entry = Arc::new(SessionEntry {
                    id,
                    stream: write_half,
                    queue: Mutex::new(VecDeque::new()),
                    scheduled: AtomicBool::new(false),
                    read_paused: AtomicBool::new(false),
                    close_after_drain: AtomicBool::new(false),
                    state: Mutex::new(SessionState::new(shared_engine.clone())),
                    _slot: SlotGuard(Arc::clone(active)),
                });
                obs::instruments().sessions_accepted.inc();
                pool_shared
                    .sessions
                    .lock()
                    .unwrap()
                    .insert(id, Arc::clone(&entry));
                conns.insert(
                    id,
                    Conn {
                        stream,
                        entry,
                        decoder: FrameDecoder::new(config.max_frame_len),
                        paused: false,
                        stop_reading: false,
                    },
                );
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptDisposition::Idle => return true,
                AcceptDisposition::Transient => continue,
                AcceptDisposition::Fatal => {
                    co_obs::warn(
                        "co-server",
                        "listener failed fatally; no further sessions will be accepted, \
                         existing sessions keep being served",
                        &[("error", co_obs::FieldValue::Str(&e.to_string()))],
                    );
                    return false;
                }
            },
        }
    }
}

/// Reads what the kernel has for one session, extracts complete frames,
/// and enqueues them (with admission control) for the pool.
fn service_readable(
    pool_shared: &PoolShared,
    conns: &mut HashMap<u64, Conn>,
    id: u64,
    scratch: &mut [u8],
) {
    let conn = conns.get_mut(&id).expect("caller checked presence");
    let mut budget = READ_BUDGET_PER_WAKEUP;
    let mut peer_closed = false;
    while budget > 0 && !conn.paused && !conn.stop_reading {
        match conn.stream.read(scratch) {
            Ok(0) => {
                peer_closed = true;
                break;
            }
            Ok(n) => {
                budget = budget.saturating_sub(n);
                conn.decoder.push(&scratch[..n]);
                extract_frames(pool_shared, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // The socket is gone; nothing to report to the peer.
                peer_closed = true;
                break;
            }
        }
    }
    if peer_closed {
        finish_reading(pool_shared, conns, id);
    }
}

/// Pulls every complete frame out of the decoder into the session queue.
/// Admission control happens here: over the in-flight cap, the request
/// becomes an immediate typed `Overloaded` rejection in queue order.
/// Queue-at-bound pauses the socket (backpressure). A decode failure
/// enqueues the typed protocol report and poisons the stream.
fn extract_frames(pool_shared: &PoolShared, conn: &mut Conn) {
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(body)) => {
                let instruments = obs::instruments();
                // Lifecycle stamp: a complete frame left the socket. An
                // admission-control rejection is still a *decoded*
                // request — it enters and immediately leaves the ledger.
                instruments.decoded();
                let over = pool_shared.inflight.load(Ordering::Acquire) >= pool_shared.max_inflight;
                let job = if over {
                    instruments.rejected();
                    instruments.rejected_overloaded.inc();
                    Job::Reject {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "server over its in-flight request cap ({}); retry",
                            pool_shared.max_inflight
                        ),
                        close: false,
                    }
                } else {
                    pool_shared.inflight.fetch_add(1, Ordering::AcqRel);
                    Job::Frame {
                        body,
                        decoded_at: std::time::Instant::now(),
                    }
                };
                let len = {
                    let mut queue = conn.entry.queue.lock().unwrap();
                    queue.push_back(job);
                    queue.len()
                };
                pool_shared.schedule(&conn.entry);
                if len >= pool_shared.session_queue {
                    conn.paused = true;
                    conn.entry.read_paused.store(true, Ordering::Release);
                    // Lost-resume race: a fast worker may have drained the
                    // queue between the push and the flag store — its
                    // resume check saw `read_paused` still unset, so no
                    // resume is coming. Recheck under the queue lock: any
                    // job still present will be popped *after* the store
                    // (mutex ordering) and its post-pop check will see the
                    // flag; an already-drained queue we unpause ourselves.
                    if conn.entry.queue.lock().unwrap().len() < pool_shared.session_queue {
                        conn.paused = false;
                        conn.entry.read_paused.store(false, Ordering::Release);
                    } else {
                        // Frames already buffered in the decoder stay
                        // there until the resume — the bound is on queued
                        // work.
                        obs::instruments().backpressure_pauses.inc();
                        return;
                    }
                }
            }
            Ok(None) => return,
            Err(e) => {
                conn.stop_reading = true;
                conn.entry.queue.lock().unwrap().push_back(Job::Reject {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                    close: true,
                });
                pool_shared.schedule(&conn.entry);
                return;
            }
        }
    }
}

/// The peer closed (or the socket died): type a truncation if it quit
/// mid-frame, then close now if idle or after the queue drains.
fn finish_reading(pool_shared: &PoolShared, conns: &mut HashMap<u64, Conn>, id: u64) {
    let conn = conns.get_mut(&id).expect("caller checked presence");
    conn.stop_reading = true;
    if conn.decoder.mid_frame() {
        conn.entry.queue.lock().unwrap().push_back(Job::Reject {
            code: ErrorCode::Protocol,
            message: "truncated frame: connection closed mid-frame".to_owned(),
            close: true,
        });
        pool_shared.schedule(&conn.entry);
        return;
    }
    conn.entry.close_after_drain.store(true, Ordering::Release);
    let idle = !conn.entry.scheduled.load(Ordering::Acquire)
        && conn.entry.queue.lock().unwrap().is_empty();
    if idle {
        remove_session(pool_shared, conns, id);
    }
    // Otherwise the draining worker sees close_after_drain and reports
    // the close itself.
}

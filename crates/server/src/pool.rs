//! The worker side of the readiness-driven serving core: a fixed pool
//! draining bounded per-session queues.
//!
//! The [`reactor`](crate::reactor) decodes frames off ready sockets and
//! enqueues them as [`Job`]s on the owning session's queue; workers pull
//! whole sessions off a shared ready list and drain them — batching
//! every request that arrived since the session's last wakeup — through
//! the same [`protocol::handle`] the thread-per-session core uses, so
//! the MVCC contract is untouched by the I/O rewrite.
//!
//! Two invariants carry the core's correctness:
//!
//! - **Per-session serialization.** A session is on the ready list (or
//!   being drained) at most once, guarded by its `scheduled` flag — so
//!   its requests execute in arrival order, its responses leave in the
//!   same order, and its [`SessionState`] needs no finer locking.
//! - **Bounded memory.** The reactor never lets a session's queue grow
//!   past its bound (it pauses reading the socket instead — kernel
//!   buffer and TCP window push back to the client), and a server-wide
//!   in-flight cap turns excess admitted work into immediate typed
//!   [`ErrorCode::Overloaded`] rejections *in queue order*, so an
//!   overloaded server degrades into cheap error frames instead of
//!   collapsing under buffered work.

use crate::frame::encode_frame;
use crate::obs;
use crate::protocol::{self, ErrorCode, Request, Response, SessionState};
use crate::SlotGuard;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long a worker will tolerate a write-stalled peer (one that sent
/// requests but stops reading responses) before abandoning the session.
/// Generous: a healthy client drains its socket in microseconds.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Poll granularity while waiting out a write stall (also the shutdown
/// reaction latency of a stalled write).
const WRITE_POLL: Duration = Duration::from_millis(100);

/// One unit of session work.
pub(crate) enum Job {
    /// A verified frame body to decode and serve. `decoded_at` is the
    /// reactor's extraction stamp — the dequeue-side read of it is the
    /// request's queue wait.
    Frame { body: Vec<u8>, decoded_at: Instant },
    /// A pre-judged rejection to render (admission control, protocol
    /// failure). `close` poisons the session after the report.
    Reject {
        code: ErrorCode,
        message: String,
        close: bool,
    },
}

/// Everything the pool and reactor share about one live session.
pub(crate) struct SessionEntry {
    pub(crate) id: u64,
    /// The worker-side write handle (a dup of the reactor's read handle).
    pub(crate) stream: TcpStream,
    pub(crate) queue: Mutex<VecDeque<Job>>,
    /// On the ready list or being drained right now.
    pub(crate) scheduled: AtomicBool,
    /// Set by the reactor when it paused reading this session's socket
    /// (queue at bound); tells the draining worker to request a resume.
    pub(crate) read_paused: AtomicBool,
    /// The peer closed (or errored): once the queue drains, the session
    /// is done.
    pub(crate) close_after_drain: AtomicBool,
    pub(crate) state: Mutex<SessionState>,
    /// Releases the session's slot in `ServerHandle::active_sessions`
    /// when the last reference drops.
    pub(crate) _slot: SlotGuard,
}

/// State shared between the reactor thread and every worker.
pub(crate) struct PoolShared {
    /// Sessions with work, each present at most once (`scheduled`).
    /// Holds the entry itself so the worker hot path never touches the
    /// global `sessions` map.
    ready: Mutex<VecDeque<Arc<SessionEntry>>>,
    ready_cond: Condvar,
    /// All live sessions, by id. The reactor inserts on accept; the
    /// reactor removes on close.
    pub(crate) sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    /// Admitted-but-uncompleted requests across all sessions.
    pub(crate) inflight: AtomicUsize,
    pub(crate) max_inflight: usize,
    /// Per-session queue bound (backpressure threshold).
    pub(crate) session_queue: usize,
    /// Pool shutdown flag (the server-wide flag is the reactor's).
    shutdown: AtomicBool,
    /// Wakes the reactor's `poll` (resume/close notifications).
    pub(crate) waker: polling::Waker,
    /// Sessions whose sockets should be read again (queue drained below
    /// the bound after a backpressure pause).
    pub(crate) resume: Mutex<Vec<u64>>,
    /// Sessions a worker finished closing (error, write failure, or
    /// close-after-drain); the reactor deregisters them.
    pub(crate) closed: Mutex<Vec<u64>>,
}

impl PoolShared {
    pub(crate) fn new(
        max_inflight: usize,
        session_queue: usize,
        waker: polling::Waker,
    ) -> PoolShared {
        PoolShared {
            ready: Mutex::new(VecDeque::new()),
            ready_cond: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
            max_inflight,
            session_queue,
            shutdown: AtomicBool::new(false),
            waker,
            resume: Mutex::new(Vec::new()),
            closed: Mutex::new(Vec::new()),
        }
    }

    /// Puts the session on the ready list unless it is already
    /// scheduled. Called by the reactor after enqueueing jobs.
    pub(crate) fn schedule(&self, entry: &Arc<SessionEntry>) {
        if !entry.scheduled.swap(true, Ordering::AcqRel) {
            self.ready.lock().unwrap().push_back(Arc::clone(entry));
            // Notify after unlocking: the woken worker's first act is to
            // take the ready lock, so signalling under it would wake it
            // straight into a futex wait.
            self.ready_cond.notify_one();
        }
    }

    fn next_ready(&self) -> Option<Arc<SessionEntry>> {
        let mut ready = self.ready.lock().unwrap();
        loop {
            if let Some(entry) = ready.pop_front() {
                return Some(entry);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            ready = self.ready_cond.wait(ready).unwrap();
        }
    }

    /// Tells the reactor a paused session's queue has room again.
    fn request_resume(&self, id: u64) {
        self.resume.lock().unwrap().push(id);
        self.waker.wake();
    }

    /// Tells the reactor a session is finished.
    fn report_closed(&self, id: u64) {
        self.closed.lock().unwrap().push(id);
        self.waker.wake();
    }
}

/// The fixed worker pool. Dropping it (after [`WorkerPool::shutdown`])
/// joins every worker.
pub(crate) struct WorkerPool {
    workers: Vec<thread::JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns `workers` threads draining `shared`'s ready list.
    pub(crate) fn spawn(workers: usize, shared: Arc<PoolShared>) -> WorkerPool {
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("co-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { workers, shared }
    }

    /// Stops the pool and joins every worker. Queued-but-undrained jobs
    /// are dropped — the server is going away with their sockets.
    pub(crate) fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready_cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    while let Some(entry) = shared.next_ready() {
        drain_session(shared, &entry);
    }
}

/// Drains one session's queue to empty (or to a poisoning failure),
/// serving each job in arrival order, then releases the `scheduled`
/// claim — re-claiming it if the reactor raced new jobs in.
fn drain_session(shared: &PoolShared, entry: &SessionEntry) {
    loop {
        let mut close = false;
        loop {
            let job = entry.queue.lock().unwrap().pop_front();
            let Some(job) = job else { break };
            match job {
                Job::Frame { body, decoded_at } => {
                    let instruments = obs::instruments();
                    let queue_wait = decoded_at.elapsed();
                    instruments.queue_wait_ns.record_duration(queue_wait);
                    // `None` means the request never reached the handler
                    // (its decode failed): a rejection in the ledger.
                    let mut handle_elapsed: Option<Duration> = None;
                    let response = match Request::decode(&body) {
                        Ok(request) => {
                            let mut state = entry.state.lock().unwrap();
                            let handle_start = Instant::now();
                            let handled = protocol::handle(&mut state, request);
                            handle_elapsed = Some(handle_start.elapsed());
                            match handled {
                                Ok(response) => response,
                                // Only response rendering can fail: report
                                // and poison, like the threaded core.
                                Err(e) => {
                                    close = true;
                                    Response::Error {
                                        code: ErrorCode::Protocol,
                                        message: e.to_string(),
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            close = true;
                            Response::Error {
                                code: ErrorCode::Protocol,
                                message: e.to_string(),
                            }
                        }
                    };
                    let write_start = Instant::now();
                    let sent = write_response(shared, entry, &response);
                    let write_elapsed = write_start.elapsed();
                    instruments.write_ns.record_duration(write_elapsed);
                    shared.inflight.fetch_sub(1, Ordering::AcqRel);
                    match handle_elapsed {
                        Some(h) => {
                            instruments.handle_ns.record_duration(h);
                            instruments.handled();
                        }
                        None => instruments.rejected(),
                    }
                    if co_obs::trace_enabled() {
                        obs::emit_request_span(
                            "pool",
                            entry.id,
                            Some(queue_wait),
                            handle_elapsed.unwrap_or_default(),
                            write_elapsed,
                            sent,
                        );
                    }
                    if !sent {
                        close = true;
                    }
                }
                Job::Reject {
                    code,
                    message,
                    close: close_after,
                } => {
                    let sent = write_response(shared, entry, &Response::Error { code, message });
                    if !sent || close_after {
                        close = true;
                    }
                }
            }
            if close {
                break;
            }
            // Backpressure release: the reactor paused this socket when
            // the queue hit its bound; once below it, ask for a resume.
            if entry.read_paused.load(Ordering::Acquire)
                && entry.queue.lock().unwrap().len() < shared.session_queue
            {
                shared.request_resume(entry.id);
            }
        }
        if close {
            abandon_remaining(shared, entry);
            entry.close_after_drain.store(true, Ordering::Release);
            entry.scheduled.store(false, Ordering::Release);
            shared.report_closed(entry.id);
            return;
        }
        entry.scheduled.store(false, Ordering::Release);
        if entry.close_after_drain.load(Ordering::Acquire) && entry.queue.lock().unwrap().is_empty()
        {
            shared.report_closed(entry.id);
            return;
        }
        // Jobs may have raced in between the final pop and the flag
        // store; reclaim the session unless someone else already did.
        if entry.queue.lock().unwrap().is_empty() {
            return;
        }
        if entry.scheduled.swap(true, Ordering::AcqRel) {
            return;
        }
    }
}

/// Drops every remaining queued job on a session being abandoned,
/// keeping the in-flight ledgers (admission control's and the metrics
/// registry's) balanced: an abandoned frame was decoded but will never
/// be handled, so it counts as rejected.
pub(crate) fn abandon_remaining(shared: &PoolShared, entry: &SessionEntry) {
    let mut queue = entry.queue.lock().unwrap();
    for job in queue.drain(..) {
        if matches!(job, Job::Frame { .. }) {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            obs::instruments().rejected();
        }
    }
}

/// Writes one response frame to the session's nonblocking socket,
/// waiting out short `WouldBlock` stalls with a single-fd poll. Returns
/// `false` (socket unusable / peer stalled past the timeout / shutdown)
/// when the session should be abandoned.
fn write_response(shared: &PoolShared, entry: &SessionEntry, response: &Response) -> bool {
    let bytes = encode_frame(&response.encode());
    let deadline = Instant::now() + WRITE_STALL_TIMEOUT;
    let mut off = 0;
    while off < bytes.len() {
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        match (&entry.stream).write(&bytes[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return false;
                }
                obs::instruments().write_stall_waits.inc();
                let ready = polling::wait(
                    entry.stream.as_raw_fd(),
                    polling::POLLOUT,
                    WRITE_POLL.as_millis() as i32,
                );
                if ready.is_err() {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

//! Length-prefixed, checksummed frames: the transport unit of the
//! serving protocol.
//!
//! ```text
//! header   12 bytes   body length u32 LE · FNV-1a-64 body checksum u64 LE
//! body     1..=max    kind byte + message fields (see `protocol`)
//! ```
//!
//! The header is validated **before** any allocation: a declared length
//! of zero (no valid body lacks its kind byte) or above the configured
//! maximum is rejected while only the 12 header bytes are in memory, so
//! a flipped length bit or a hostile peer cannot make an endpoint
//! reserve gigabytes. The checksum — the same FNV-1a-64 the snapshot
//! format uses — covers every body byte and is verified before the body
//! is parsed, so a single bit flip anywhere in a frame is a typed
//! [`ProtocolError`], never a silently-wrong message
//! (`tests/protocol_adversarial.rs` proves this byte by byte).

use crate::ProtocolError;
use co_wire::codec::checksum;
use std::io::{Read, Write};

/// Fixed size of the frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 12;

/// The default cap on a frame body, in bytes (16 MiB). Override with
/// [`ServerConfig::max_frame_len`](crate::ServerConfig) /
/// `CO_SERVER_MAX_FRAME`.
pub const DEFAULT_MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

/// The frame-body cap requested by the `CO_SERVER_MAX_FRAME` environment
/// variable (bytes); unset, unparsable, or zero mean
/// [`DEFAULT_MAX_FRAME_LEN`].
pub fn max_frame_len_from_env() -> u64 {
    match std::env::var("CO_SERVER_MAX_FRAME")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => DEFAULT_MAX_FRAME_LEN,
    }
}

/// Frames `body` into a standalone byte vector (header + body).
///
/// # Panics
///
/// If `body` is empty or longer than `u32::MAX` — both impossible for
/// the bodies this crate's encoders produce.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(!body.is_empty(), "a frame body carries at least its kind");
    let len = u32::try_from(body.len()).expect("frame body exceeds u32::MAX");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes one frame to `w` and flushes.
pub fn write_frame<W: Write>(mut w: W, body: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(&encode_frame(body))?;
    w.flush()?;
    Ok(())
}

/// Validates a frame header, returning the body length to read.
fn parse_header(header: &[u8; FRAME_HEADER_LEN], max: u64) -> Result<(usize, u64), ProtocolError> {
    let declared = u64::from(u32::from_le_bytes(
        header[0..4].try_into().expect("4 bytes"),
    ));
    let expected = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    if declared == 0 {
        return Err(ProtocolError::ZeroLengthFrame);
    }
    if declared > max {
        return Err(ProtocolError::Oversized { declared, max });
    }
    Ok((declared as usize, expected))
}

/// Verifies `body` against the header's declared checksum.
fn verify(body: &[u8], expected: u64) -> Result<(), ProtocolError> {
    let actual = checksum(body);
    if actual != expected {
        return Err(ProtocolError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

/// Reads one frame from `r`, returning its verified body — or `None` for
/// a clean end-of-stream (the peer closed between frames, the normal end
/// of a session). EOF *inside* a frame is [`ProtocolError::Truncated`].
pub fn read_frame<R: Read>(mut r: R, max: u64) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Hand-rolled first read: zero bytes at a frame boundary is a clean
    // close, not a truncation.
    let mut have = 0usize;
    while have < FRAME_HEADER_LEN {
        // Retry EINTR like read_exact does for the body — a stray signal
        // must not tear down the session.
        let n = match r.read(&mut header[have..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            if have == 0 {
                return Ok(None);
            }
            return Err(ProtocolError::Truncated {
                context: "frame header",
            });
        }
        have += n;
    }
    let (len, expected) = parse_header(&header, max)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated {
                context: "frame body",
            }
        } else {
            ProtocolError::Io(e)
        }
    })?;
    verify(&body, expected)?;
    Ok(Some(body))
}

/// Incremental frame decoder for readiness-driven reads.
///
/// The reactor core reads whatever the kernel has — frames arrive split
/// across wakeups, several per chunk, or one byte at a time — and feeds
/// the raw bytes in with [`FrameDecoder::push`]; [`FrameDecoder::next_frame`]
/// yields each complete, checksum-verified body in arrival order. The
/// validation order is identical to the blocking [`read_frame`] path:
/// the header is judged the moment its 12 bytes are buffered, so a
/// zero-length or oversized declaration is rejected **before** any body
/// byte is accumulated, and the checksum is verified before a body is
/// handed out. After an error the decoder is poisoned — the stream
/// offset can no longer be trusted, and every further `next_frame` returns the
/// same kind of failure, matching the close-on-protocol-error session
/// discipline.
#[derive(Debug)]
pub struct FrameDecoder {
    max: u64,
    buf: Vec<u8>,
    /// Bytes before `start` are already consumed; compacted lazily so a
    /// long session does not re-shift the buffer on every frame.
    start: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder enforcing the given per-frame body cap.
    pub fn new(max: u64) -> FrameDecoder {
        FrameDecoder {
            max,
            buf: Vec::new(),
            start: 0,
            poisoned: false,
        }
    }

    /// Appends freshly read bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Is the decoder mid-frame? An EOF here is a truncation, not a
    /// clean close.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// The next complete verified body, or `None` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Malformed {
                detail: "frame stream already failed; offset untrusted".to_owned(),
            });
        }
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let header: &[u8; FRAME_HEADER_LEN] =
            pending[..FRAME_HEADER_LEN].try_into().expect("12 bytes");
        let (len, expected) = match parse_header(header, self.max) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        if pending.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let body = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        if let Err(e) = verify(body, expected) {
            self.poisoned = true;
            return Err(e);
        }
        let body = body.to_vec();
        self.start += FRAME_HEADER_LEN + len;
        Ok(Some(body))
    }
}

/// Decodes `bytes` as exactly one frame, returning the verified body.
/// Pure — the adversarial harness drives every truncation and bit flip
/// through this. Shorter input than the frame promises is
/// [`ProtocolError::Truncated`]; longer is [`ProtocolError::Malformed`]
/// (a stream would mis-frame everything after).
pub fn decode_frame(bytes: &[u8], max: u64) -> Result<&[u8], ProtocolError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(ProtocolError::Truncated {
            context: "frame header",
        });
    }
    let header: &[u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().expect("12 bytes");
    let (len, expected) = parse_header(header, max)?;
    let rest = &bytes[FRAME_HEADER_LEN..];
    if rest.len() < len {
        return Err(ProtocolError::Truncated {
            context: "frame body",
        });
    }
    if rest.len() > len {
        return Err(ProtocolError::Malformed {
            detail: format!("{} bytes after the declared frame end", rest.len() - len),
        });
    }
    let body = &rest[..len];
    verify(body, expected)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_streams_and_buffers() {
        let body = b"\x01hello frame".to_vec();
        let framed = encode_frame(&body);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + body.len());
        assert_eq!(
            decode_frame(&framed, DEFAULT_MAX_FRAME_LEN).unwrap(),
            &body[..]
        );
        let mut stream = Vec::new();
        write_frame(&mut stream, &body).unwrap();
        write_frame(&mut stream, b"\x02").unwrap();
        let mut r = stream.as_slice();
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(),
            body
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(),
            b"\x02"
        );
        // Clean end-of-stream at a frame boundary.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn zero_length_and_oversize_are_rejected_before_allocation() {
        let mut zero = encode_frame(b"x");
        zero[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&zero, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            ProtocolError::ZeroLengthFrame
        ));
        // A header declaring 4 GiB - 1 with no body behind it: rejected on
        // the declaration alone — before allocation — not on truncation.
        let mut huge = u32::MAX.to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 8]);
        let err = decode_frame(&huge, DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert!(
            matches!(
                err,
                ProtocolError::Oversized { declared, max }
                    if declared == u64::from(u32::MAX) && max == DEFAULT_MAX_FRAME_LEN
            ),
            "got: {err}"
        );
        // Same through the stream reader.
        let err = read_frame(huge.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, ProtocolError::Oversized { .. }), "got: {err}");
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut framed = encode_frame(b"\x01abc");
        framed.push(0);
        assert!(matches!(
            decode_frame(&framed, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            ProtocolError::Malformed { .. }
        ));
    }

    #[test]
    fn mid_frame_eof_is_truncation_not_clean_close() {
        let framed = encode_frame(b"\x01abcdef");
        for cut in 1..framed.len() {
            let err = read_frame(&framed[..cut], DEFAULT_MAX_FRAME_LEN).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn decoder_reassembles_frames_split_at_every_boundary() {
        let bodies: Vec<Vec<u8>> = vec![
            b"\x01".to_vec(),
            b"\x05a longer body with content".to_vec(),
            b"\x02x".to_vec(),
        ];
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        // Byte-at-a-time, and every two-chunk split of the whole stream:
        // the decoder must yield exactly the original bodies, in order.
        for chunk in [1usize, 2, 3, 5, 7, stream.len()] {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
            let mut out = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.push(piece);
                while let Some(body) = dec.next_frame().unwrap() {
                    out.push(body);
                }
            }
            assert_eq!(out, bodies, "chunk size {chunk}");
            assert!(!dec.mid_frame(), "chunk size {chunk}: no leftover bytes");
        }
    }

    #[test]
    fn decoder_rejects_bad_headers_before_buffering_a_body() {
        // Oversized declaration split across pushes: the error fires the
        // moment the 12th header byte lands, with zero body bytes seen.
        let mut huge = u32::MAX.to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 8]);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.push(&huge[..11]);
        assert!(
            dec.next_frame().unwrap().is_none(),
            "11 bytes: still waiting"
        );
        dec.push(&huge[11..]);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
        // Poisoned: the failure is sticky.
        assert!(dec.next_frame().is_err());

        let mut zero = encode_frame(b"x");
        zero[0..4].copy_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.push(&zero);
        assert!(matches!(
            dec.next_frame().unwrap_err(),
            ProtocolError::ZeroLengthFrame
        ));
    }

    #[test]
    fn decoder_types_corruption_even_when_fragmented() {
        let good = encode_frame(b"\x01payload bytes");
        for bit in 0..good.len() * 8 {
            let mut mutated = good.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
            // Deliver the corrupted frame in two fragments around the flip.
            let cut = (bit / 8 + 1).min(mutated.len());
            dec.push(&mutated[..cut]);
            let early = dec.next_frame();
            dec.push(&mutated[cut..]);
            // A length-field flip may leave the decoder legitimately
            // waiting for more bytes (the declared frame is longer); any
            // *complete* decode must fail typed — silence is impossible
            // because the checksum covers every body byte.
            match early.and_then(|first| match first {
                Some(body) => Ok(Some(body)),
                None => dec.next_frame(),
            }) {
                Ok(Some(_)) => panic!("bit flip {bit} decoded silently"),
                Ok(None) => {} // still mid-frame: the stream would close → truncation
                Err(_) => {}   // typed error
            }
        }
    }

    #[test]
    fn decoder_mid_frame_flags_truncation_at_close() {
        let framed = encode_frame(b"\x01abcdef");
        for cut in 1..framed.len() {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
            dec.push(&framed[..cut]);
            match dec.next_frame() {
                Ok(None) => assert!(dec.mid_frame(), "cut {cut}: bytes pending"),
                Ok(Some(_)) => panic!("cut {cut}: truncated frame decoded"),
                Err(_) => {} // header-stage rejection is fine too
            }
        }
    }

    #[test]
    fn env_cap_parses_like_the_other_knobs() {
        // Not an env-mutation test (process-wide state); just the parse.
        assert_eq!(max_frame_len_from_env(), DEFAULT_MAX_FRAME_LEN);
    }
}

//! Request/response messages and their byte encodings.
//!
//! A message is one frame body: a kind byte followed by the message's
//! fields in the `co_wire::codec` primitives (LEB128 varints,
//! length-prefixed UTF-8 strings). Programs and formulae travel as
//! concrete-syntax text (the `Display` ↔ `co_parser` round-trip is
//! property-tested in the parser crate); **results travel as co-wire
//! snapshot payloads** — the same hash-cons-aware encoding checkpoints
//! use, so a result's size tracks its DAG and the client re-interns it
//! bit-identically ([`co_wire::read_snapshot`]).
//!
//! Decoding never panics and never accepts trailing bytes; every failure
//! is a typed [`ProtocolError`].

use crate::ProtocolError;
use co_engine::{EngineError, PinnedDb, SharedEngine};
use co_object::{store, NodeId, Object};
use co_parser::{parse_formula, parse_program};
use co_wire::codec::{put_str, put_varint, put_varint_i64, Cursor};
use co_wire::WireError;

/// What a client asks of the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// The current head version and root id, without pinning.
    Head,
    /// Pin the current head as this session's read snapshot: every
    /// following [`Request::Query`]/[`Request::Eval`] runs against it
    /// until [`Request::Release`] or a new `Snapshot`. Answered with
    /// [`Response::Snapshot`].
    Snapshot,
    /// Release the session's pinned snapshot (no-op when none is held).
    Release,
    /// Interpret a well-formed formula (concrete syntax) against the
    /// session snapshot — or the instantaneous head when none is pinned.
    /// Answered with [`Response::Objects`] carrying `E(O)`.
    Query {
        /// The formula text, e.g. `[r1: {[a: X, b: 10]}]`.
        formula: String,
    },
    /// Run a program (concrete syntax) to its fixpoint against the
    /// session snapshot — or the instantaneous head — **without
    /// committing**. Answered with [`Response::Objects`] carrying the
    /// closed database.
    Eval {
        /// The program text (rules terminated by `.`).
        program: String,
    },
    /// Run a program to its fixpoint over the latest committed head and
    /// commit the result as the new head (writers serialize; readers are
    /// never blocked). Answered with [`Response::Advanced`].
    Advance {
        /// The program text.
        program: String,
    },
    /// A digest of the shared store's ledgers ([`Response::Stats`]).
    Stats,
    /// The server's full observability registry — every counter, gauge,
    /// and histogram the process has published — as a typed
    /// [`co_obs::Snapshot`] ([`Response::Metrics`]). The wide-spectrum
    /// sibling of [`Request::Stats`]: where `Stats` digests the object
    /// store's ledgers, `Metrics` carries request-lifecycle histograms
    /// (queue wait, handle, write), engine round timings, GC pauses, and
    /// wire codec costs, diffable client-side via
    /// [`co_obs::Snapshot::minus`].
    Metrics,
}

/// Application-level failure categories carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request's program/formula text failed to parse.
    Parse,
    /// The engine rejected the run (divergence guard).
    Engine,
    /// The server is at its configured session limit.
    SessionLimit,
    /// The peer's previous frame was unreadable (the rendered
    /// [`ProtocolError`] is in the message; the connection closes after).
    Protocol,
    /// The server-wide in-flight request cap was hit when this request
    /// arrived: admission control rejected it **before** any engine work.
    /// The session stays open — back off and retry.
    Overloaded,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::Parse => 1,
            ErrorCode::Engine => 2,
            ErrorCode::SessionLimit => 3,
            ErrorCode::Protocol => 4,
            ErrorCode::Overloaded => 5,
        }
    }

    fn from_code(code: u8) -> Result<ErrorCode, ProtocolError> {
        match code {
            1 => Ok(ErrorCode::Parse),
            2 => Ok(ErrorCode::Engine),
            3 => Ok(ErrorCode::SessionLimit),
            4 => Ok(ErrorCode::Protocol),
            5 => Ok(ErrorCode::Overloaded),
            other => Err(ProtocolError::Malformed {
                detail: format!("unknown error code {other}"),
            }),
        }
    }
}

/// A point-in-time digest of the shared object store's ledgers, for
/// clients auditing accounting balance (see `tests/soak.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsDigest {
    /// Distinct interned nodes currently live (tuples + sets).
    pub live_nodes: u64,
    /// Distinct node ids currently pinned by live roots.
    pub pinned_roots: u64,
    /// Intern calls answered with an existing node, since process start.
    pub intern_hits: u64,
    /// Intern calls that created a node, since process start.
    pub intern_misses: u64,
    /// Store collections since process start.
    pub gc_sweeps: u64,
    /// Nodes freed by those collections.
    pub gc_freed_nodes: u64,
}

/// What the server answers. Kind bytes live in `0x81..`, disjoint from
/// request kinds, so a stream cannot be mis-parsed in the wrong
/// direction even before the checksum is consulted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Liveness echo.
    Pong,
    /// The head at the moment the request was served.
    Head {
        /// The head version (seed database = 1).
        version: u64,
        /// The head root's interned id (`None` for an atom/⊥/⊤ head).
        root: Option<u64>,
    },
    /// The session's newly pinned snapshot.
    Snapshot {
        /// The pinned version.
        version: u64,
        /// The pinned root's interned id.
        root: Option<u64>,
    },
    /// The pin release outcome.
    Released {
        /// Whether a snapshot was actually held.
        was_pinned: bool,
    },
    /// A query/eval result: one root object, shipped as a co-wire
    /// snapshot payload.
    Objects {
        /// The snapshot version the result was computed against.
        version: u64,
        /// [`co_wire::write_snapshot`] bytes with exactly one root.
        payload: Vec<u8>,
    },
    /// A committed write.
    Advanced {
        /// The head version after the commit.
        version: u64,
        /// The new head root's interned id.
        root: Option<u64>,
        /// Fixpoint iterations the run took (0 for a pure merge).
        iterations: u64,
    },
    /// The store-ledger digest.
    Stats(StatsDigest),
    /// The process-wide observability registry at the moment the request
    /// was served.
    Metrics(co_obs::Snapshot),
    /// An application-level failure; the session stays open except after
    /// [`ErrorCode::Protocol`] / [`ErrorCode::SessionLimit`].
    Error {
        /// The failure category.
        code: ErrorCode,
        /// A human-readable rendering (parse diagnostics, guard reason…).
        message: String,
    },
}

/// The per-session serving state: everything a request needs beyond its
/// own fields. Both serving cores — thread-per-session and the
/// reactor/worker-pool — drive the same [`handle`] against one of these,
/// which is what carries the MVCC contract (and every differential proof
/// built on it) across the I/O-layer rewrite unchanged.
pub struct SessionState {
    shared: SharedEngine,
    /// The snapshot pinned by a `Snapshot` request, if any. While held,
    /// every `Query`/`Eval` runs against this frozen version.
    pinned: Option<PinnedDb>,
}

impl SessionState {
    /// Fresh state for a newly accepted session: nothing pinned.
    pub fn new(shared: SharedEngine) -> SessionState {
        SessionState {
            shared,
            pinned: None,
        }
    }

    /// The snapshot a read-only request runs against: the session's pin,
    /// or a fresh pin of the instantaneous head.
    fn read_view(&self) -> PinnedDb {
        match &self.pinned {
            Some(p) => p.clone(),
            None => self.shared.head(),
        }
    }
}

fn opt_id(id: Option<NodeId>) -> Option<u64> {
    id.map(NodeId::get)
}

/// Renders `result` as a co-wire snapshot payload with exactly one root.
fn objects_response(version: u64, result: &Object) -> Result<Response, ProtocolError> {
    let mut payload = Vec::new();
    co_wire::write_snapshot(
        &mut payload,
        std::slice::from_ref(result),
        b"co-server result",
    )?;
    Ok(Response::Objects { version, payload })
}

fn engine_error(e: EngineError) -> Response {
    Response::Error {
        code: ErrorCode::Engine,
        message: e.to_string(),
    }
}

fn parse_error(e: impl std::fmt::Display) -> Response {
    Response::Error {
        code: ErrorCode::Parse,
        message: e.to_string(),
    }
}

/// Serves one decoded request against one session's state. This is the
/// entire application layer: the serving cores differ only in how bytes
/// reach this function and how its response bytes leave. An `Err` means
/// only that rendering the response failed (a wire-encode error) — every
/// application-level failure is an ordinary [`Response::Error`].
pub fn handle(state: &mut SessionState, request: Request) -> Result<Response, ProtocolError> {
    match request {
        Request::Ping => Ok(Response::Pong),
        Request::Head => {
            let head = state.shared.head();
            Ok(Response::Head {
                version: head.version(),
                root: opt_id(head.root_id()),
            })
        }
        Request::Snapshot => {
            let pinned = state.shared.head();
            let resp = Response::Snapshot {
                version: pinned.version(),
                root: opt_id(pinned.root_id()),
            };
            state.pinned = Some(pinned);
            Ok(resp)
        }
        Request::Release => Ok(Response::Released {
            was_pinned: state.pinned.take().is_some(),
        }),
        Request::Query { formula } => {
            let f = match parse_formula(&formula) {
                Ok(f) => f,
                Err(e) => return Ok(parse_error(e)),
            };
            let view = state.read_view();
            let result = co_calculus::interpret(&f, view.object(), state.shared.policy());
            objects_response(view.version(), &result)
        }
        Request::Eval { program } => {
            let p = match parse_program(&program) {
                Ok(p) => p,
                Err(e) => return Ok(parse_error(e)),
            };
            let view = state.read_view();
            match state.shared.eval_db(&p, &view) {
                Ok((db, _)) => objects_response(view.version(), &db),
                Err(e) => Ok(engine_error(e)),
            }
        }
        Request::Advance { program } => {
            let p = match parse_program(&program) {
                Ok(p) => p,
                Err(e) => return Ok(parse_error(e)),
            };
            match state.shared.advance(&p) {
                Ok(out) => Ok(Response::Advanced {
                    version: out.version,
                    root: opt_id(out.database.node_id()),
                    iterations: out.stats.iterations,
                }),
                Err(e) => Ok(engine_error(e)),
            }
        }
        Request::Stats => {
            let s = store::stats();
            Ok(Response::Stats(StatsDigest {
                live_nodes: (s.tuple_nodes + s.set_nodes) as u64,
                pinned_roots: s.pinned_roots as u64,
                intern_hits: s.intern_hits,
                intern_misses: s.intern_misses,
                gc_sweeps: s.gc_sweeps,
                gc_freed_nodes: s.gc_freed_nodes,
            }))
        }
        Request::Metrics => Ok(Response::Metrics(co_obs::global().snapshot())),
    }
}

const REQ_PING: u8 = 0x01;
const REQ_HEAD: u8 = 0x02;
const REQ_SNAPSHOT: u8 = 0x03;
const REQ_RELEASE: u8 = 0x04;
const REQ_QUERY: u8 = 0x05;
const REQ_EVAL: u8 = 0x06;
const REQ_ADVANCE: u8 = 0x07;
const REQ_STATS: u8 = 0x08;
const REQ_METRICS: u8 = 0x09;

const RESP_PONG: u8 = 0x81;
const RESP_HEAD: u8 = 0x82;
const RESP_SNAPSHOT: u8 = 0x83;
const RESP_RELEASED: u8 = 0x84;
const RESP_OBJECTS: u8 = 0x85;
const RESP_ADVANCED: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_METRICS: u8 = 0x88;
const RESP_ERROR: u8 = 0xEF;

/// Field-level decode failures surface through the shared cursor; keep
/// truncations typed as truncations and everything else as malformed.
fn field(e: WireError) -> ProtocolError {
    match e {
        WireError::Truncated { context } => ProtocolError::Truncated { context },
        e => ProtocolError::Malformed {
            detail: e.to_string(),
        },
    }
}

fn put_opt_id(buf: &mut Vec<u8>, id: Option<u64>) {
    match id {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_varint(buf, v);
        }
    }
}

fn get_opt_id(c: &mut Cursor<'_>, context: &'static str) -> Result<Option<u64>, ProtocolError> {
    match c.u8(context).map_err(field)? {
        0 => Ok(None),
        1 => Ok(Some(c.varint(context).map_err(field)?)),
        other => Err(ProtocolError::Malformed {
            detail: format!("bad presence byte {other} in {context}"),
        }),
    }
}

/// Rejects bodies with bytes after the decoded message.
fn finish<T>(value: T, c: &Cursor<'_>) -> Result<T, ProtocolError> {
    if c.remaining() != 0 {
        return Err(ProtocolError::Malformed {
            detail: format!("{} trailing bytes after the message", c.remaining()),
        });
    }
    Ok(value)
}

/// Encodes a registry snapshot: three `(count, entries…)` sections
/// (counters, gauges, histograms), every integer a varint, every name a
/// length-prefixed string. The canonical form — what the registry and
/// [`co_obs::Histogram::snapshot`] produce — has names in strictly
/// increasing order within each section, histogram buckets as
/// `(index, count)` pairs in strictly increasing index order with
/// nonzero counts, and `min <= max` whenever `count > 0`. The decoder
/// enforces exactly that, so a decoded snapshot re-encodes verbatim,
/// its `binary_search`-based lookups and merges are sound, and a
/// corrupt frame is a typed error.
fn encode_snapshot(b: &mut Vec<u8>, s: &co_obs::Snapshot) {
    put_varint(b, s.counters.len() as u64);
    for (name, value) in &s.counters {
        put_str(b, name);
        put_varint(b, *value);
    }
    put_varint(b, s.gauges.len() as u64);
    for (name, value) in &s.gauges {
        put_str(b, name);
        put_varint_i64(b, *value);
    }
    put_varint(b, s.histograms.len() as u64);
    for (name, h) in &s.histograms {
        put_str(b, name);
        put_varint(b, h.count);
        put_varint(b, h.sum);
        put_varint(b, h.min);
        put_varint(b, h.max);
        put_varint(b, h.buckets.len() as u64);
        for &(index, count) in &h.buckets {
            put_varint(b, u64::from(index));
            put_varint(b, count);
        }
    }
}

fn decode_snapshot(c: &mut Cursor<'_>) -> Result<co_obs::Snapshot, ProtocolError> {
    /// Declared-count sanity bound: an entry of this kind costs at
    /// least `min_entry_bytes` encoded bytes (name length prefix +
    /// value varints), so a count the remaining body cannot possibly
    /// hold is malformed without allocating for it.
    fn len(
        c: &mut Cursor<'_>,
        min_entry_bytes: u64,
        context: &'static str,
    ) -> Result<usize, ProtocolError> {
        let n = c.varint(context).map_err(field)?;
        if n > c.remaining() as u64 / min_entry_bytes {
            return Err(ProtocolError::Malformed {
                detail: format!("{context} count {n} exceeds the body"),
            });
        }
        Ok(n as usize)
    }
    /// Initial reservation cap: the byte bound above still allows a
    /// crafted count to reserve far more memory than the frame itself
    /// occupies, so reserve modestly and let the `Vec` grow only as
    /// entries actually decode.
    const RESERVE_CAP: usize = 1024;
    /// Names within a section must be strictly increasing — the order
    /// the registry emits and the one `Snapshot`'s `binary_search`
    /// lookups and `merge_with` require.
    fn check_order(prev: &Option<String>, name: &str) -> Result<(), ProtocolError> {
        if prev.as_deref().is_some_and(|p| p >= name) {
            return Err(ProtocolError::Malformed {
                detail: format!("metrics name {name:?} not in sorted order"),
            });
        }
        Ok(())
    }
    let n_counters = len(c, 2, "metrics counter count")?;
    let mut counters = Vec::with_capacity(n_counters.min(RESERVE_CAP));
    let mut prev: Option<String> = None;
    for _ in 0..n_counters {
        let name = c.str("metrics counter name").map_err(field)?.to_owned();
        check_order(&prev, &name)?;
        let value = c.varint("metrics counter value").map_err(field)?;
        prev = Some(name.clone());
        counters.push((name, value));
    }
    let n_gauges = len(c, 2, "metrics gauge count")?;
    let mut gauges = Vec::with_capacity(n_gauges.min(RESERVE_CAP));
    let mut prev: Option<String> = None;
    for _ in 0..n_gauges {
        let name = c.str("metrics gauge name").map_err(field)?.to_owned();
        check_order(&prev, &name)?;
        let value = c.varint_i64("metrics gauge value").map_err(field)?;
        prev = Some(name.clone());
        gauges.push((name, value));
    }
    let n_histograms = len(c, 6, "metrics histogram count")?;
    let mut histograms = Vec::with_capacity(n_histograms.min(RESERVE_CAP));
    let mut prev: Option<String> = None;
    for _ in 0..n_histograms {
        let name = c.str("metrics histogram name").map_err(field)?.to_owned();
        check_order(&prev, &name)?;
        prev = Some(name.clone());
        let count = c.varint("metrics histogram count").map_err(field)?;
        let sum = c.varint("metrics histogram sum").map_err(field)?;
        let min = c.varint("metrics histogram min").map_err(field)?;
        let max = c.varint("metrics histogram max").map_err(field)?;
        if count > 0 && min > max {
            return Err(ProtocolError::Malformed {
                detail: format!("histogram min {min} exceeds max {max}"),
            });
        }
        let n_buckets = len(c, 2, "metrics bucket count")?;
        let mut buckets = Vec::with_capacity(n_buckets.min(RESERVE_CAP));
        let mut prev: Option<u32> = None;
        for _ in 0..n_buckets {
            let index = c.varint("metrics bucket index").map_err(field)?;
            let index = u32::try_from(index)
                .ok()
                .filter(|&i| (i as usize) < co_obs::NUM_BUCKETS)
                .ok_or_else(|| ProtocolError::Malformed {
                    detail: format!("histogram bucket index {index} out of range"),
                })?;
            if prev.is_some_and(|p| p >= index) {
                return Err(ProtocolError::Malformed {
                    detail: format!("histogram bucket index {index} not increasing"),
                });
            }
            prev = Some(index);
            let bucket_count = c.varint("metrics bucket value").map_err(field)?;
            if bucket_count == 0 {
                return Err(ProtocolError::Malformed {
                    detail: "zero-count histogram bucket".to_owned(),
                });
            }
            buckets.push((index, bucket_count));
        }
        histograms.push((
            name,
            co_obs::HistogramSnapshot {
                count,
                sum,
                min,
                max,
                buckets,
            },
        ));
    }
    Ok(co_obs::Snapshot {
        counters,
        gauges,
        histograms,
    })
}

impl Request {
    /// Encodes this request as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Ping => b.push(REQ_PING),
            Request::Head => b.push(REQ_HEAD),
            Request::Snapshot => b.push(REQ_SNAPSHOT),
            Request::Release => b.push(REQ_RELEASE),
            Request::Query { formula } => {
                b.push(REQ_QUERY);
                put_str(&mut b, formula);
            }
            Request::Eval { program } => {
                b.push(REQ_EVAL);
                put_str(&mut b, program);
            }
            Request::Advance { program } => {
                b.push(REQ_ADVANCE);
                put_str(&mut b, program);
            }
            Request::Stats => b.push(REQ_STATS),
            Request::Metrics => b.push(REQ_METRICS),
        }
        b
    }

    /// Decodes a frame body as a request.
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let mut c = Cursor::new(body);
        let kind = c.u8("request kind").map_err(field)?;
        let req = match kind {
            REQ_PING => Request::Ping,
            REQ_HEAD => Request::Head,
            REQ_SNAPSHOT => Request::Snapshot,
            REQ_RELEASE => Request::Release,
            REQ_QUERY => Request::Query {
                formula: c.str("query formula").map_err(field)?.to_owned(),
            },
            REQ_EVAL => Request::Eval {
                program: c.str("eval program").map_err(field)?.to_owned(),
            },
            REQ_ADVANCE => Request::Advance {
                program: c.str("advance program").map_err(field)?.to_owned(),
            },
            REQ_STATS => Request::Stats,
            REQ_METRICS => Request::Metrics,
            kind => {
                return Err(ProtocolError::BadKind {
                    kind,
                    context: "request",
                })
            }
        };
        finish(req, &c)
    }
}

impl Response {
    /// Encodes this response as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Pong => b.push(RESP_PONG),
            Response::Head { version, root } => {
                b.push(RESP_HEAD);
                put_varint(&mut b, *version);
                put_opt_id(&mut b, *root);
            }
            Response::Snapshot { version, root } => {
                b.push(RESP_SNAPSHOT);
                put_varint(&mut b, *version);
                put_opt_id(&mut b, *root);
            }
            Response::Released { was_pinned } => {
                b.push(RESP_RELEASED);
                b.push(u8::from(*was_pinned));
            }
            Response::Objects { version, payload } => {
                b.push(RESP_OBJECTS);
                put_varint(&mut b, *version);
                put_varint(&mut b, payload.len() as u64);
                b.extend_from_slice(payload);
            }
            Response::Advanced {
                version,
                root,
                iterations,
            } => {
                b.push(RESP_ADVANCED);
                put_varint(&mut b, *version);
                put_opt_id(&mut b, *root);
                put_varint(&mut b, *iterations);
            }
            Response::Stats(d) => {
                b.push(RESP_STATS);
                for v in [
                    d.live_nodes,
                    d.pinned_roots,
                    d.intern_hits,
                    d.intern_misses,
                    d.gc_sweeps,
                    d.gc_freed_nodes,
                ] {
                    put_varint(&mut b, v);
                }
            }
            Response::Metrics(snapshot) => {
                b.push(RESP_METRICS);
                encode_snapshot(&mut b, snapshot);
            }
            Response::Error { code, message } => {
                b.push(RESP_ERROR);
                b.push(code.code());
                put_str(&mut b, message);
            }
        }
        b
    }

    /// Decodes a frame body as a response.
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let mut c = Cursor::new(body);
        let kind = c.u8("response kind").map_err(field)?;
        let resp = match kind {
            RESP_PONG => Response::Pong,
            RESP_HEAD => Response::Head {
                version: c.varint("head version").map_err(field)?,
                root: get_opt_id(&mut c, "head root")?,
            },
            RESP_SNAPSHOT => Response::Snapshot {
                version: c.varint("snapshot version").map_err(field)?,
                root: get_opt_id(&mut c, "snapshot root")?,
            },
            RESP_RELEASED => Response::Released {
                was_pinned: match c.u8("released flag").map_err(field)? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ProtocolError::Malformed {
                            detail: format!("bad released flag {other}"),
                        })
                    }
                },
            },
            RESP_OBJECTS => {
                let version = c.varint("objects version").map_err(field)?;
                let len = c.varint("objects payload length").map_err(field)?;
                let len = usize::try_from(len).map_err(|_| ProtocolError::Malformed {
                    detail: format!("objects payload length {len} overflows"),
                })?;
                let payload = c.take(len, "objects payload").map_err(field)?.to_vec();
                Response::Objects { version, payload }
            }
            RESP_ADVANCED => Response::Advanced {
                version: c.varint("advanced version").map_err(field)?,
                root: get_opt_id(&mut c, "advanced root")?,
                iterations: c.varint("advanced iterations").map_err(field)?,
            },
            RESP_STATS => {
                let mut vals = [0u64; 6];
                for v in &mut vals {
                    *v = c.varint("stats digest").map_err(field)?;
                }
                Response::Stats(StatsDigest {
                    live_nodes: vals[0],
                    pinned_roots: vals[1],
                    intern_hits: vals[2],
                    intern_misses: vals[3],
                    gc_sweeps: vals[4],
                    gc_freed_nodes: vals[5],
                })
            }
            RESP_METRICS => Response::Metrics(decode_snapshot(&mut c)?),
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_code(c.u8("error code").map_err(field)?)?,
                message: c.str("error message").map_err(field)?.to_owned(),
            },
            kind => {
                return Err(ProtocolError::BadKind {
                    kind,
                    context: "response",
                })
            }
        };
        finish(resp, &c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_corpus() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Head,
            Request::Snapshot,
            Request::Release,
            Request::Query {
                formula: "[r1: {[a: X, b: 10]}]".into(),
            },
            Request::Eval {
                program: "[doa: {p0}].".into(),
            },
            Request::Advance {
                program: "[doa: {X}] :- [family: {[name: X]}].".into(),
            },
            Request::Stats,
            Request::Metrics,
        ]
    }

    /// A representative registry snapshot: counters, a negative gauge,
    /// and a histogram whose buckets exercise the canonical-form checks.
    fn metrics_snapshot() -> co_obs::Snapshot {
        co_obs::Snapshot {
            counters: vec![
                ("server.requests_decoded".into(), 12345),
                ("server.requests_handled".into(), 12000),
            ],
            gauges: vec![("server.inflight".into(), -2)],
            histograms: vec![(
                "server.handle_ns".into(),
                co_obs::HistogramSnapshot {
                    count: 3,
                    sum: 1_000_100,
                    min: 50,
                    max: 1_000_000,
                    buckets: vec![(50, 1), (160, 1), (921, 1)],
                },
            )],
        }
    }

    fn response_corpus() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Head {
                version: 7,
                root: Some(123),
            },
            Response::Snapshot {
                version: 7,
                root: None,
            },
            Response::Released { was_pinned: true },
            Response::Objects {
                version: 9,
                payload: b"not-really-a-snapshot".to_vec(),
            },
            Response::Advanced {
                version: 8,
                root: Some(77),
                iterations: 4,
            },
            Response::Stats(StatsDigest {
                live_nodes: 1000,
                pinned_roots: 3,
                intern_hits: 500,
                intern_misses: 400,
                gc_sweeps: 2,
                gc_freed_nodes: 123,
            }),
            Response::Metrics(metrics_snapshot()),
            Response::Metrics(co_obs::Snapshot::default()),
            Response::Error {
                code: ErrorCode::Parse,
                message: "unexpected token".into(),
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "server over its in-flight cap".into(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in request_corpus() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in response_corpus() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_typed() {
        assert!(matches!(
            Request::decode(&[0x7f]).unwrap_err(),
            ProtocolError::BadKind {
                kind: 0x7f,
                context: "request"
            }
        ));
        assert!(matches!(
            Response::decode(&[0x02]).unwrap_err(),
            ProtocolError::BadKind {
                kind: 0x02,
                context: "response"
            }
        ));
        let mut body = Request::Ping.encode();
        body.push(9);
        assert!(matches!(
            Request::decode(&body).unwrap_err(),
            ProtocolError::Malformed { .. }
        ));
        assert!(matches!(
            Request::decode(&[]).unwrap_err(),
            ProtocolError::Truncated { .. }
        ));
    }
}

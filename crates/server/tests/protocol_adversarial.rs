//! Adversarial protocol harness: truncation at **every byte boundary**
//! and a flip of **every bit** of every frame in a representative corpus
//! must yield a typed [`ProtocolError`] — zero panics, and never a
//! silently-wrong message. Oversized and zero-length frame declarations
//! are rejected on the header alone, before any body allocation. A live
//! server answers each poisoned connection with a typed error frame and
//! keeps serving fresh sessions.

use co_engine::{Engine, SharedEngine};
use co_parser::parse_object;
use co_server::frame::{decode_frame, encode_frame, read_frame, DEFAULT_MAX_FRAME_LEN};
use co_server::{
    Client, ErrorCode, ProtocolError, Request, Response, Server, ServerConfig, ServingCore,
    StatsDigest,
};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A representative message corpus: every request kind, every response
/// kind, including an embedded co-wire object payload.
fn corpus() -> Vec<Vec<u8>> {
    let mut payload = Vec::new();
    let obj = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    co_wire::write_snapshot(&mut payload, &[obj], b"adversarial").unwrap();
    let messages: Vec<Vec<u8>> = [
        Request::Ping.encode(),
        Request::Head.encode(),
        Request::Snapshot.encode(),
        Request::Release.encode(),
        Request::Query {
            formula: "[edge: {[s: X, t: Y]}]".into(),
        }
        .encode(),
        Request::Eval {
            program: "[doa: {abraham}].".into(),
        }
        .encode(),
        Request::Advance {
            program: "[doa: {X}] :- [family: {[name: X]}].".into(),
        }
        .encode(),
        Request::Stats.encode(),
        Request::Metrics.encode(),
        Response::Pong.encode(),
        Response::Head {
            version: 42,
            root: Some(7),
        }
        .encode(),
        Response::Objects {
            version: 3,
            payload,
        }
        .encode(),
        Response::Advanced {
            version: 4,
            root: None,
            iterations: 9,
        }
        .encode(),
        Response::Stats(StatsDigest {
            live_nodes: 10,
            pinned_roots: 2,
            intern_hits: 100,
            intern_misses: 50,
            gc_sweeps: 1,
            gc_freed_nodes: 5,
        })
        .encode(),
        Response::Metrics(co_obs::Snapshot {
            counters: vec![
                ("server.requests_decoded".into(), 12345),
                ("server.requests_handled".into(), 12000),
            ],
            gauges: vec![("server.inflight".into(), -2)],
            histograms: vec![(
                "server.handle_ns".into(),
                co_obs::HistogramSnapshot {
                    count: 3,
                    sum: 1_000_100,
                    min: 50,
                    max: 1_000_000,
                    buckets: vec![(50, 1), (160, 1), (921, 1)],
                },
            )],
        })
        .encode(),
        Response::Error {
            code: ErrorCode::Parse,
            message: "unexpected token `]`".into(),
        }
        .encode(),
    ]
    .into_iter()
    .collect();
    messages.iter().map(|m| encode_frame(m)).collect()
}

/// The full receive pipeline on arbitrary bytes: frame decode (length,
/// checksum), then message decode, then — for object-carrying messages —
/// the embedded co-wire payload. Must never panic.
fn pipeline(bytes: &[u8]) -> Result<(), ProtocolError> {
    let body = decode_frame(bytes, DEFAULT_MAX_FRAME_LEN)?;
    let decoded = if body.first().is_some_and(|k| k & 0x80 != 0) {
        let resp = Response::decode(body)?;
        if let Response::Objects { payload, .. } = &resp {
            co_wire::read_snapshot(payload.as_slice())?;
        }
        resp.encode()
    } else {
        Request::decode(body)?.encode()
    };
    assert_eq!(decoded, body, "a decoded message must re-encode verbatim");
    Ok(())
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for frame in corpus() {
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            let result = catch_unwind(AssertUnwindSafe(|| pipeline(prefix)));
            let outcome = result.unwrap_or_else(|_| panic!("panicked at cut {cut}"));
            assert!(
                outcome.is_err(),
                "truncation to {cut}/{} bytes must fail",
                frame.len()
            );
        }
    }
}

#[test]
fn every_bit_flip_of_every_frame_is_a_typed_error() {
    for frame in corpus() {
        for bit in 0..frame.len() * 8 {
            let mut mutated = frame.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            let result = catch_unwind(AssertUnwindSafe(|| pipeline(&mutated)));
            let outcome = result.unwrap_or_else(|_| panic!("panicked at bit {bit}"));
            // A flip in the length field can only shrink/grow the declared
            // body away from the actual byte count (typed), a flip in the
            // checksum or body trips verification (typed): nothing may
            // decode.
            assert!(outcome.is_err(), "bit flip {bit} must fail");
        }
    }
}

/// Message-level truncation behind an *intact* frame: re-frame every
/// prefix of every body with a correct header. The checksum passes, so
/// the message decoder itself must type the failure — or, where a prefix
/// happens to be a complete shorter message (`[Ping]` inside a longer
/// body), decode to exactly that message, never to garbage.
#[test]
fn truncated_bodies_behind_valid_frames_never_decode_silently_wrong() {
    for frame in corpus() {
        let body = decode_frame(&frame, DEFAULT_MAX_FRAME_LEN).unwrap();
        for cut in 1..body.len() {
            let reframed = encode_frame(&body[..cut]);
            let result = catch_unwind(AssertUnwindSafe(|| pipeline(&reframed)));
            // `pipeline` itself asserts any Ok decode re-encodes to the
            // exact prefix — a silently-wrong decode would panic there.
            let _ = result.unwrap_or_else(|_| panic!("panicked at body cut {cut}"));
        }
    }
}

#[test]
fn oversized_and_zero_length_declarations_are_rejected_before_allocation() {
    // 4 GiB - 1 declared, nothing behind it: the error must be Oversized
    // (header-stage), not Truncated (body-stage) — proof the reader never
    // tried to buffer the declared body.
    let mut huge = u32::MAX.to_le_bytes().to_vec();
    huge.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        decode_frame(&huge, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
        ProtocolError::Oversized {
            declared,
            max,
        } if declared == u64::from(u32::MAX) && max == DEFAULT_MAX_FRAME_LEN
    ));
    assert!(matches!(
        read_frame(huge.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap_err(),
        ProtocolError::Oversized { .. }
    ));

    let mut zero = encode_frame(&Request::Ping.encode());
    zero[0..4].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        decode_frame(&zero, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
        ProtocolError::ZeroLengthFrame
    ));
}

/// The live server: each poisoned connection gets a typed `Protocol`
/// error frame back (never a silently-wrong reply), the connection
/// closes, and the server keeps serving fresh sessions afterwards.
#[test]
fn live_server_answers_corruption_with_typed_errors_and_survives() {
    let shared = SharedEngine::new(
        Engine::new(Default::default()),
        parse_object("[edge: {[s: a, t: b]}]").unwrap(),
    );
    let handle = Server::bind(shared, ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let expect_protocol_error = |raw: &[u8], what: &str| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("{what}: reply unreadable: {e}"))
            .unwrap_or_else(|| panic!("{what}: server closed without a typed reply"));
        match Response::decode(&body).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol, "{what}"),
            other => panic!("{what}: silently-wrong reply {other:?}"),
        }
        // The connection is closed after the report.
        assert!(read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    };

    // Oversized declaration.
    let mut huge = u32::MAX.to_le_bytes().to_vec();
    huge.extend_from_slice(&[0u8; 8]);
    expect_protocol_error(&huge, "oversized declaration");

    // Zero-length declaration.
    let mut zero = encode_frame(&Request::Ping.encode());
    zero[0..4].copy_from_slice(&0u32.to_le_bytes());
    expect_protocol_error(&zero, "zero-length declaration");

    // Truncations at every byte boundary of a real request frame.
    let frame = encode_frame(
        &Request::Query {
            formula: "[edge: {[s: X, t: Y]}]".into(),
        }
        .encode(),
    );
    for cut in 1..frame.len() {
        expect_protocol_error(&frame[..cut], &format!("truncation at byte {cut}"));
    }

    // A body bit flip behind a correct length: checksum mismatch.
    let mut flipped = frame.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    expect_protocol_error(&flipped, "body bit flip");

    // An unknown kind behind a *valid* checksum: typed BadKind.
    expect_protocol_error(&encode_frame(&[0x7f, 1, 2, 3]), "unknown request kind");

    // After all of that, the server still serves new sessions.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let (version, _) = client.head().unwrap();
    assert_eq!(version, 1);
    handle.shutdown();
}

/// Split delivery: frames fragmented across many TCP segments (and so,
/// on the pool core, across many readiness wakeups) must reassemble into
/// exactly the same behavior as one-shot delivery — correct replies for
/// valid frames, typed errors for corrupted ones, a typed truncation
/// report for a peer that quits mid-frame. Run against both cores
/// explicitly: the threaded core's blocking `read_exact` and the pool
/// core's incremental `FrameDecoder` must be indistinguishable here.
#[test]
fn fragmented_frames_reassemble_identically_on_both_cores() {
    for core in [ServingCore::WorkerPool, ServingCore::ThreadPerSession] {
        let shared = SharedEngine::new(
            Engine::new(Default::default()),
            parse_object("[edge: {[s: a, t: b]}]").unwrap(),
        );
        let config = ServerConfig {
            core,
            ..ServerConfig::default()
        };
        let handle = Server::bind(shared, config).unwrap();
        let addr = handle.addr();

        // Dribble a frame `step` bytes at a time, pausing so fragments
        // land in separate segments/wakeups rather than coalescing.
        let write_fragmented = |stream: &mut TcpStream, raw: &[u8], step: usize| {
            for chunk in raw.chunks(step) {
                stream.write_all(chunk).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        let query_frame = encode_frame(
            &Request::Query {
                formula: "[edge: {[s: X, t: Y]}]".into(),
            }
            .encode(),
        );

        // Valid frame, byte-by-byte and in awkward chunk sizes: the reply
        // must be a real Objects response, same as one-shot delivery.
        for step in [1, 3, 7] {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            write_fragmented(&mut stream, &query_frame, step);
            let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .expect("a reply frame");
            match Response::decode(&body).unwrap() {
                Response::Objects { version, .. } => assert_eq!(version, 1, "{core:?}/{step}"),
                other => panic!("{core:?} step {step}: wrong reply {other:?}"),
            }
        }

        // Corrupted frame (body bit flip), fragmented: still a typed
        // Protocol error, detected only once the checksum can run.
        let mut flipped = query_frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let mut stream = TcpStream::connect(addr).unwrap();
        write_fragmented(&mut stream, &flipped, 2);
        stream.shutdown(Shutdown::Write).unwrap();
        let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("a typed error frame");
        match Response::decode(&body).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol, "{core:?}"),
            other => panic!("{core:?}: silently-wrong reply {other:?}"),
        }

        // Peer quits mid-frame after fragmented delivery: typed truncation
        // report, then close — never a hang, never silence.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_fragmented(&mut stream, &query_frame[..query_frame.len() / 2], 2);
        stream.shutdown(Shutdown::Write).unwrap();
        let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("a typed truncation report");
        match Response::decode(&body).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Protocol, "{core:?}");
                assert!(message.contains("trunc"), "{core:?}: {message}");
            }
            other => panic!("{core:?}: silently-wrong reply {other:?}"),
        }

        // The server kept serving through all of it.
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(handle.shutdown(), 0, "{core:?}: drain to zero");
    }
}

/// A well-formed frame carrying a pathologically nested formula must not
/// recurse the session thread's parser off its stack (which would abort
/// the whole process — an unauthenticated remote DoS). The parser's
/// nesting cap types the failure as an ordinary `Parse` error and the
/// session keeps serving.
#[test]
fn deeply_nested_input_is_a_parse_error_not_a_stack_overflow() {
    let shared = SharedEngine::new(
        Engine::new(Default::default()),
        parse_object("[edge: {[s: a, t: b]}]").unwrap(),
    );
    let handle = Server::bind(shared, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // ~50 KB of openers — a few thousand nesting levels, far past any
    // realistic stack if recursion were unbounded.
    let bomb = format!("{}X{}", "{[a: ".repeat(5_000), "]}".repeat(5_000));
    for (what, result) in [
        ("query", client.query(&bomb).map(|_| ())),
        ("eval", client.eval(&format!("{bomb}.")).map(|_| ())),
        ("advance", client.advance(&format!("{bomb}.")).map(|_| ())),
    ] {
        match result {
            Err(co_server::ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Parse, "{what}");
                assert!(message.contains("nesting deeper"), "{what}: {message}");
            }
            other => panic!("{what}: expected a typed Parse error, got {other:?}"),
        }
    }

    // The session survived all three — an application error, not poison.
    client.ping().unwrap();
    assert!(client.query("[edge: {[s: X, t: Y]}]").is_ok());
    handle.shutdown();
}

//! Regression: a checkpoint of the shared head must not block reads (or
//! writes) while sessions hold pinned roots.
//!
//! The lever is a *gating writer*: an `io::Write` that parks the
//! checkpoint on its very first byte until the test releases it. While
//! the checkpoint is provably mid-write, server sessions pin snapshots,
//! query, and commit advances to completion — none of which would finish
//! if `SharedEngine::checkpoint_to` held the head lock (or the writer
//! mutex) across serialization.

use co_engine::{Engine, SharedEngine};
use co_parser::parse_object;
use co_server::{Client, Server, ServerConfig};
use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Shared gate state: `started` flips when the checkpoint reaches the
/// writer; `released` lets it proceed.
#[derive(Default)]
struct GateState {
    started: bool,
    released: bool,
}

#[derive(Clone, Default)]
struct Gate {
    state: Arc<(Mutex<GateState>, Condvar)>,
}

impl Gate {
    /// Blocks until the checkpoint has hit the gate (is mid-write).
    fn wait_started(&self) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        while !st.started {
            st = cvar.wait(st).unwrap();
        }
    }

    fn release(&self) {
        let (lock, cvar) = &*self.state;
        lock.lock().unwrap().released = true;
        cvar.notify_all();
    }

    fn is_released(&self) -> bool {
        self.state.0.lock().unwrap().released
    }
}

/// The gating writer: parks on the first byte, then sinks into a buffer
/// so the finished checkpoint can be verified byte-for-byte.
struct GatingWriter {
    gate: Gate,
    parked_once: bool,
    sink: Vec<u8>,
}

impl Write for GatingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.parked_once {
            self.parked_once = true;
            let (lock, cvar) = &*self.gate.state;
            let mut st = lock.lock().unwrap();
            st.started = true;
            cvar.notify_all();
            while !st.released {
                st = cvar.wait(st).unwrap();
            }
        }
        self.sink.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn checkpoint_mid_write_blocks_neither_readers_nor_writers() {
    let seed = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    let shared = SharedEngine::new(Engine::new(Default::default()), seed);
    let handle = Server::bind(shared.clone(), ServerConfig::default()).unwrap();

    // A session pins a root *before* the checkpoint starts — the exact
    // state the original hazard was about.
    let mut pinned_session = Client::connect(handle.addr()).unwrap();
    let (pinned_version, _) = pinned_session.snapshot().unwrap();
    assert_eq!(pinned_version, 1);
    let (_, frozen) = pinned_session.query("[edge: {[s: X, t: Y]}]").unwrap();

    let gate = Gate::default();
    let checkpoint = {
        let gate = gate.clone();
        let shared = shared.clone();
        std::thread::spawn(move || {
            let mut w = GatingWriter {
                gate,
                parked_once: false,
                sink: Vec::new(),
            };
            let (stats, pinned) = shared.checkpoint_to(&mut w).unwrap();
            (stats, pinned.version(), w.sink)
        })
    };
    gate.wait_started();
    assert!(!gate.is_released(), "the checkpoint is parked mid-write");

    // While parked: fresh sessions connect, pin, read, and commit —
    // deterministically concurrent with the in-flight checkpoint.
    let mut live = Client::connect(handle.addr()).unwrap();
    live.ping().unwrap();
    let (v, _) = live.snapshot().unwrap();
    assert_eq!(v, 1);
    let (_, seen) = live.query("[edge: {[s: X, t: Y]}]").unwrap();
    assert_eq!(seen.node_id(), frozen.node_id());
    live.release().unwrap();
    let out = live.advance("[edge: {[s: c, t: d]}].").unwrap();
    assert_eq!(out.version, 2);
    let (_, after) = pinned_session.query("[edge: {[s: X, t: Y]}]").unwrap();
    assert_eq!(after.node_id(), frozen.node_id(), "pin survives everything");

    // Only now let the checkpoint finish; it wrote the version it pinned
    // (1 — the head moved to 2 after it started), and the bytes decode to
    // a snapshot whose first root is that frozen database.
    gate.release();
    let (stats, ckpt_version, bytes) = checkpoint.join().unwrap();
    assert_eq!(ckpt_version, 1);
    assert!(stats.nodes > 0);
    let snap = co_wire::read_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(
        snap.roots[0].dot("edge").as_set().unwrap().len(),
        2,
        "the checkpoint froze version 1, not the concurrently advanced head"
    );

    // And a checkpoint taken after the advance sees version 2.
    let mut w = GatingWriter {
        gate: {
            let g = Gate::default();
            g.release(); // no parking this time
            g
        },
        parked_once: true,
        sink: Vec::new(),
    };
    let (_, pinned) = shared.checkpoint_to(&mut w).unwrap();
    assert_eq!(pinned.version(), 2);
    let snap = co_wire::read_snapshot(w.sink.as_slice()).unwrap();
    assert_eq!(snap.roots[0].dot("edge").as_set().unwrap().len(), 3);

    handle.shutdown();
}

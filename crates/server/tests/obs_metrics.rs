//! The observability contract, proven over the wire:
//!
//! - **Ledger invariants** — at quiesce (all clients gone, server shut
//!   down) the request ledger balances on both cores:
//!   `server.requests_decoded == server.requests_handled +
//!   server.requests_rejected` and the `server.inflight` gauge is back
//!   to zero, checkable from the registry snapshot alone.
//! - **Histogram/counter coherence** — every handled request records
//!   exactly one `server.handle_ns` observation, so the histogram count
//!   equals the handled-counter delta.
//! - **Snapshot algebra** — `Snapshot::minus` then `merge` round-trips:
//!   the before-snapshot plus the run's delta reproduces the
//!   after-snapshot exactly (counters and histogram buckets).
//! - **Typed corruption** — a `Response::Metrics` frame whose histogram
//!   section violates canonical form (out-of-range index, non-increasing
//!   indexes, zero-count bucket) decodes to a typed [`ProtocolError`],
//!   never a panic and never a silently-wrong snapshot.
//! - **Trace battery** — with `CO_TRACE` routed to a file, a busy pass
//!   over both cores (queries, advances, a GC'd engine run, decode
//!   failures) emits only lines that parse as JSON objects.
//!
//! The co-obs registry and trace sink are process-global, so every test
//! takes one shared lock: the assertions diff before/after snapshots and
//! must not see a concurrent test's traffic in between.

use co_engine::{Engine, SharedEngine};
use co_parser::parse_object;
use co_server::frame::encode_frame;
use co_server::{Client, ProtocolError, Request, Response, Server, ServerConfig, ServingCore};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

/// Serializes the tests: the global registry cannot tell two concurrent
/// servers' requests apart.
static GLOBAL_OBS: Mutex<()> = Mutex::new(());

fn seed_server(core: ServingCore) -> co_server::ServerHandle {
    let shared = SharedEngine::new(
        Engine::new(Default::default()),
        parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap(),
    );
    Server::bind(
        shared,
        ServerConfig {
            core,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// One busy client pass: pings, a pinned query, an advance, and finally
/// a deliberately undecodable request frame (valid framing, unknown
/// request kind `0x7f`) that the server must count as decoded + rejected.
fn busy_pass(handle: &co_server::ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    client.snapshot().unwrap();
    let (_v, result) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
    assert!(result.dot("edge").as_set().is_some());
    client.release().unwrap();
    client
        .advance("[reach: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].")
        .unwrap();
    drop(client);

    // The undecodable request: the frame layer accepts it (so the server
    // counts a *decoded* frame), `Request::decode` rejects it.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&encode_frame(&[0x7f])).unwrap();
    raw.flush().unwrap();
    // Wait for the typed error response (or close) so the rejection has
    // landed in the ledger before we snapshot.
    let mut buf = [0u8; 256];
    use std::io::Read;
    let _ = raw.read(&mut buf);
    drop(raw);
}

fn ledger_balances_on(core: ServingCore) {
    let _guard = GLOBAL_OBS.lock().unwrap();
    let before = co_obs::global().snapshot();
    let handle = seed_server(core);
    busy_pass(&handle);
    assert_eq!(handle.shutdown(), 0);
    let after = co_obs::global().snapshot();
    let delta = after.minus(&before);

    let decoded = delta.counter("server.requests_decoded").unwrap_or(0);
    let handled = delta.counter("server.requests_handled").unwrap_or(0);
    let rejected = delta.counter("server.requests_rejected").unwrap_or(0);
    assert!(
        decoded >= 6,
        "{core:?}: expected a busy pass, saw {decoded}"
    );
    assert_eq!(
        decoded,
        handled + rejected,
        "{core:?}: ledger must balance at quiesce ({delta})"
    );
    assert!(rejected >= 1, "{core:?}: the 0x7f frame must be rejected");
    // The gauge is absolute (not a delta): zero means every decoded
    // request in the whole process history was handled or rejected.
    assert_eq!(
        after.gauge("server.inflight"),
        Some(0),
        "{core:?}: in-flight gauge must return to zero at quiesce"
    );

    // Histogram/counter coherence: one handle_ns observation per handled
    // request, one queue-wait observation per dequeued frame.
    let handle_hist = delta.histogram("server.handle_ns").expect("handle_ns");
    assert_eq!(
        handle_hist.count, handled,
        "{core:?}: handle_ns count must equal the handled counter"
    );
    assert!(handle_hist.max >= handle_hist.min);
    let queue_hist = delta.histogram("server.queue_wait_ns").expect("queue_wait");
    assert!(
        queue_hist.count >= handled,
        "{core:?}: every handled request passed through the queue stamp"
    );

    // Snapshot algebra: before + (after - before) == after.
    let mut rebuilt = before.clone();
    rebuilt.merge(&delta);
    assert_eq!(
        rebuilt.counter("server.requests_decoded"),
        after.counter("server.requests_decoded")
    );
    let rebuilt_h = rebuilt.histogram("server.handle_ns").unwrap();
    let after_h = after.histogram("server.handle_ns").unwrap();
    assert_eq!(rebuilt_h.count, after_h.count);
    assert_eq!(rebuilt_h.sum, after_h.sum);
    assert_eq!(rebuilt_h.buckets, after_h.buckets);
}

#[test]
fn pool_ledger_balances_at_quiesce() {
    ledger_balances_on(ServingCore::WorkerPool);
}

#[test]
fn threaded_ledger_balances_at_quiesce() {
    ledger_balances_on(ServingCore::ThreadPerSession);
}

/// `Client::metrics` fetches the live registry over the wire, and the
/// decoded snapshot is the server's: the request-lifecycle instruments
/// the pass just exercised are present with consistent values.
#[test]
fn metrics_frame_reports_server_side_ledger_over_the_wire() {
    let _guard = GLOBAL_OBS.lock().unwrap();
    let handle = seed_server(ServingCore::WorkerPool);
    let mut client = Client::connect(handle.addr()).unwrap();
    let first = client.metrics().unwrap();
    for _ in 0..5 {
        client.ping().unwrap();
    }
    let second = client.metrics().unwrap();
    let delta = second.minus(&first);
    // 5 pings + the second Metrics request itself were decoded between
    // the two fetches (the first Metrics fetch snapshots *before* its
    // own handled/write stamps land, so deltas here are ≥, not ==).
    let decoded = delta.counter("server.requests_decoded").unwrap_or(0);
    assert!(decoded >= 6, "saw {decoded} ({delta})");
    assert!(second.counter("server.requests_decoded") >= first.counter("server.requests_decoded"));
    assert!(second.histogram("server.handle_ns").is_some());
    assert_eq!(handle.shutdown(), 0);
}

/// Corrupt `Response::Metrics` frames are typed errors. Each corruption
/// is a histogram section violating the canonical form the decoder
/// enforces; none may panic or decode to a wrong snapshot.
#[test]
fn corrupt_metrics_frames_are_typed_errors() {
    let snapshot_with_buckets = |buckets: Vec<(u32, u64)>| co_obs::Snapshot {
        counters: vec![("server.requests_decoded".into(), 1)],
        gauges: vec![],
        histograms: vec![(
            "server.handle_ns".into(),
            co_obs::HistogramSnapshot {
                count: buckets.iter().map(|(_, c)| *c).sum(),
                sum: 100,
                min: 1,
                max: 99,
                buckets,
            },
        )],
    };
    let min_above_max = {
        let mut s = snapshot_with_buckets(vec![(50, 1)]);
        s.histograms[0].1.min = 100;
        s.histograms[0].1.max = 1;
        s
    };
    let counters_unsorted = co_obs::Snapshot {
        counters: vec![("server.z".into(), 1), ("server.a".into(), 2)],
        gauges: vec![],
        histograms: vec![],
    };
    let gauges_duplicated = co_obs::Snapshot {
        counters: vec![],
        gauges: vec![("server.inflight".into(), 1), ("server.inflight".into(), 2)],
        histograms: vec![],
    };
    let cases: Vec<(&str, co_obs::Snapshot)> = vec![
        (
            "bucket index out of range",
            snapshot_with_buckets(vec![(co_obs::NUM_BUCKETS as u32, 1)]),
        ),
        (
            "bucket indexes not strictly increasing",
            snapshot_with_buckets(vec![(160, 1), (50, 1)]),
        ),
        ("zero-count bucket", snapshot_with_buckets(vec![(50, 0)])),
        ("histogram min above max", min_above_max),
        ("counter names not sorted", counters_unsorted),
        ("duplicate gauge names", gauges_duplicated),
    ];
    for (what, snapshot) in cases {
        let bytes = Response::Metrics(snapshot).encode();
        match Response::decode(&bytes) {
            Err(ProtocolError::Malformed { .. }) => {}
            other => panic!("{what}: expected a typed Malformed error, got {other:?}"),
        }
    }
    // And a well-formed one round-trips verbatim.
    let good = Response::Metrics(snapshot_with_buckets(vec![(50, 1), (160, 1)]));
    let bytes = good.encode();
    assert_eq!(Response::decode(&bytes).unwrap().encode(), bytes);
    // The request side is trivial but must round-trip too.
    let req = Request::Metrics.encode();
    assert_eq!(Request::decode(&req).unwrap().encode(), req);
}

/// The CO_TRACE battery: route the trace sink to a file, run a busy
/// pass over both cores plus a GC'd engine advance, and assert every
/// emitted line parses as a JSON object — the exactness CI relies on.
#[test]
fn trace_file_battery_emits_only_valid_json_lines() {
    let _guard = GLOBAL_OBS.lock().unwrap();
    let path = std::env::temp_dir().join(format!("co-obs-battery-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    co_obs::set_trace_output(co_obs::TraceOutput::File(path.clone()));

    for core in [ServingCore::WorkerPool, ServingCore::ThreadPerSession] {
        let handle = seed_server(core);
        busy_pass(&handle);
        assert_eq!(handle.shutdown(), 0);
    }
    // A config warning goes through the same sink as one JSON line.
    let (_cfg, warnings) =
        ServerConfig::from_vars(|key| (key == "CO_SERVER_MAX_FRAME").then(|| "-5".to_owned()));
    assert_eq!(warnings.len(), 1);
    co_obs::warn(
        "co-server",
        "ignoring unparsable configuration variable",
        &[
            ("variable", co_obs::FieldValue::Str(&warnings[0].variable)),
            ("rejected", co_obs::FieldValue::Str(&warnings[0].rejected)),
        ],
    );

    co_obs::set_trace_output(co_obs::TraceOutput::Off);
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 10,
        "expected request + engine spans, got {} lines",
        lines.len()
    );
    for (i, line) in lines.iter().enumerate() {
        co_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e}): {line}"));
        assert!(
            line.starts_with("{\"ts_us\":") && line.contains("\"event\":"),
            "line {i} lacks the span shape: {line}"
        );
    }
    // Both cores' request spans and the warn line made it.
    assert!(lines.iter().any(|l| l.contains("\"core\":\"pool\"")));
    assert!(lines.iter().any(|l| l.contains("\"core\":\"threaded\"")));
    assert!(lines.iter().any(|l| l.contains("\"event\":\"warn\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"event\":\"engine.round\"")));
}

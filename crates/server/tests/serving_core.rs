//! Serving-core behavior proofs, run against both I/O cores where the
//! behavior is shared and against the pool core alone where it is
//! pool-specific:
//!
//! - the TCP_NODELAY regression: small request/response round-trips must
//!   complete orders of magnitude under Nagle + delayed-ACK timescales
//!   (~40ms per round-trip when the server forgets `set_nodelay`, the
//!   PR 7 bug);
//! - pipelined requests keep arrival order through backpressure pauses
//!   (a session queue bound of 2 forces the reactor to stop and resume
//!   reading the socket many times mid-burst);
//! - admission control: past the server-wide in-flight cap, requests get
//!   typed [`ErrorCode::Overloaded`] rejections *in order*, and the
//!   session survives to serve again once the load passes;
//! - shutdown wakes idle sessions and drains `active_sessions` to zero
//!   on both cores.

use co_engine::{Engine, SharedEngine};
use co_parser::parse_object;
use co_server::frame::{encode_frame, read_frame, DEFAULT_MAX_FRAME_LEN};
use co_server::{Client, ErrorCode, Request, Response, Server, ServerConfig, ServingCore};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn seed_server(config: ServerConfig) -> co_server::ServerHandle {
    let shared = SharedEngine::new(
        Engine::new(Default::default()),
        parse_object("[edge: {[s: a, t: b]}]").unwrap(),
    );
    Server::bind(shared, config).unwrap()
}

fn config(core: ServingCore) -> ServerConfig {
    ServerConfig {
        core,
        ..ServerConfig::default()
    }
}

/// The Nagle regression. With `TCP_NODELAY` missing on the server side
/// (the PR 7 bug), each small request/response round-trip can stall on
/// Nagle + delayed-ACK (~40ms): 100 round-trips would take seconds.
/// With it set on both sides, 100 round-trips are comfortably sub-second
/// on either core.
#[test]
fn small_round_trips_complete_well_under_nagle_timescales() {
    const ROUND_TRIPS: u32 = 100;
    // 100 Nagle-stalled round-trips would be ≥ 4s; a healthy loopback
    // server does them in single-digit milliseconds total. The bar leaves
    // two orders of magnitude of CI-noise headroom on each side.
    const BUDGET: Duration = Duration::from_secs(2);
    for core in [ServingCore::WorkerPool, ServingCore::ThreadPerSession] {
        let handle = seed_server(config(core));
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap(); // connection + first-touch warmup
        let started = Instant::now();
        for _ in 0..ROUND_TRIPS {
            client.ping().unwrap();
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < BUDGET,
            "{core:?}: {ROUND_TRIPS} round-trips took {elapsed:?} — Nagle-class stalls"
        );
        assert_eq!(handle.shutdown(), 0);
    }
}

/// Pipelining through backpressure: with a session queue bound of 2, a
/// burst of 48 requests forces the reactor to pause and resume the
/// socket over and over; every response must still come back, in arrival
/// order, with the kind matching its request.
#[test]
fn pipelined_burst_keeps_order_through_backpressure_pauses() {
    const BURST: usize = 48;
    let handle = seed_server(ServerConfig {
        session_queue: 2,
        ..config(ServingCore::WorkerPool)
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Alternate pings and queries so misordering is detectable by kind.
    let mut burst = Vec::new();
    for i in 0..BURST {
        let body = if i % 2 == 0 {
            Request::Ping.encode()
        } else {
            Request::Query {
                formula: "[edge: {[s: X, t: Y]}]".into(),
            }
            .encode()
        };
        burst.extend_from_slice(&encode_frame(&body));
    }
    stream.write_all(&burst).unwrap();

    for i in 0..BURST {
        let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap_or_else(|| panic!("server closed before reply {i}"));
        match (i % 2, Response::decode(&body).unwrap()) {
            (0, Response::Pong) => {}
            (_, Response::Objects { version, .. }) if i % 2 == 1 => assert_eq!(version, 1),
            (_, other) => panic!("reply {i} out of order: {other:?}"),
        }
    }
    assert_eq!(handle.shutdown(), 0);
}

/// Admission control: with the server-wide in-flight cap at 1, a burst
/// of one slow eval plus pipelined pings turns every ping into a typed
/// `Overloaded` rejection — in queue order, costing no engine work — and
/// the session stays usable once the eval completes.
#[test]
fn over_the_inflight_cap_requests_get_typed_overloaded_rejections() {
    const PINGS: usize = 8;
    // A chain of 40 edges: the transitive closure derives ~800 paths over
    // ~40 fixpoint iterations — plenty slow for the burst to arrive while
    // it is the one admitted in-flight request.
    let edges: Vec<String> = (0..40)
        .map(|i| format!("[s: n{i}, t: n{}]", i + 1))
        .collect();
    let shared = SharedEngine::new(
        Engine::new(Default::default()),
        parse_object(&format!("[edge: {{{}}}]", edges.join(", "))).unwrap(),
    );
    let handle = Server::bind(
        shared,
        ServerConfig {
            max_inflight: 1,
            session_queue: 64,
            ..config(ServingCore::WorkerPool)
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut burst = encode_frame(
        &Request::Eval {
            program: "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
                      [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}]."
                .into(),
        }
        .encode(),
    );
    for _ in 0..PINGS {
        burst.extend_from_slice(&encode_frame(&Request::Ping.encode()));
    }
    stream.write_all(&burst).unwrap();

    // Reply 1: the admitted eval, served for real.
    let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
    match Response::decode(&body).unwrap() {
        Response::Objects { version, .. } => assert_eq!(version, 1),
        other => panic!("the admitted eval must be served: {other:?}"),
    }
    // Replies 2..: typed Overloaded rejections, in order, session alive.
    for i in 0..PINGS {
        let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap_or_else(|| panic!("closed before rejection {i}"));
        match Response::decode(&body).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Overloaded, "rejection {i}");
                assert!(message.contains("in-flight"), "rejection {i}: {message}");
            }
            other => panic!("rejection {i}: expected Overloaded, got {other:?}"),
        }
    }
    // The cap freed up: the same session serves normally again.
    stream
        .write_all(&encode_frame(&Request::Ping.encode()))
        .unwrap();
    let body = read_frame(&stream, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
    assert!(matches!(Response::decode(&body).unwrap(), Response::Pong));
    assert_eq!(handle.shutdown(), 0);
}

/// Shutdown wakes sessions parked in idle reads on both cores: the
/// session counter provably drains to zero instead of leaking slots
/// until process exit (the PR 7 bug on the threaded core).
#[test]
fn shutdown_wakes_and_drains_idle_sessions_on_both_cores() {
    for core in [ServingCore::WorkerPool, ServingCore::ThreadPerSession] {
        let handle = seed_server(config(core));
        let clients: Vec<Client> = (0..3)
            .map(|_| {
                let mut c = Client::connect(handle.addr()).unwrap();
                c.ping().unwrap();
                c
            })
            .collect();
        // All three sessions are now idle, parked waiting for a frame.
        let deadline = Instant::now() + Duration::from_secs(2);
        while handle.active_sessions() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.active_sessions(), 3, "{core:?}");
        assert_eq!(handle.shutdown(), 0, "{core:?}: idle sessions must drain");
        drop(clients);
    }
}

/// The worker count knob is honored exactly: a pool told `workers: 1`
/// still serves concurrent sessions correctly (per-session order is a
/// scheduling invariant, not a thread-count accident).
#[test]
fn a_single_worker_still_serves_many_sessions() {
    let handle = seed_server(ServerConfig {
        workers: 1,
        ..config(ServingCore::WorkerPool)
    });
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..20 {
                    client.ping().unwrap();
                    let (v, _) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
                    assert_eq!(v, 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(handle.shutdown(), 0);
}

//! The snapshot-isolation differential: readers pinned at version R see
//! results **NodeId-identical** to a single-threaded run quiesced at R,
//! no matter how many writers advance the head or how often the store
//! collects in between.
//!
//! Shape: compute the single-threaded reference results against the seed
//! database first; start a server; have N reader sessions pin version 1;
//! then let a writer commit a stream of advances (with the engine
//! sweeping the store every round) while each reader re-runs its query
//! and fixpoint eval over and over, asserting every result is the same
//! interned node as the reference — same `NodeId`, not merely equal.
//! Run at 1 and 4 reader threads; CI re-runs the whole file under
//! `CO_GC_EVERY_ROUND=1` and `CO_ENGINE_THREADS=4`.

use co_engine::{Engine, GcCadence, SharedEngine};
use co_object::{store, NodeId, Object};
use co_parser::{parse_formula, parse_object, parse_program};
use co_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const SEED: &str = "[edge: {[s: n0, t: n1], [s: n1, t: n2], [s: n2, t: n3]}]";
const QUERY: &str = "[edge: {[s: X, t: Y]}]";
const CLOSURE: &str = "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
                       [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].";

/// How many advances the writer commits while readers re-read.
const WRITER_COMMITS: usize = 12;
/// How many times each reader re-checks its frozen view.
const READS_PER_READER: usize = 8;

fn seed() -> Object {
    parse_object(SEED).unwrap()
}

fn template() -> Engine {
    // GC every fixpoint round: the most adversarial cadence for pinned
    // readers — every advance sweeps the store repeatedly mid-run.
    Engine::new(Default::default()).gc_cadence(GcCadence::EveryRounds(1))
}

/// The single-threaded reference: what a run quiesced at version 1 sees.
/// Returned objects are held by the caller, so their ids stay valid.
fn references(shared: &SharedEngine) -> (Object, Object) {
    let db = seed();
    let q = parse_formula(QUERY).unwrap();
    let ref_query = co_calculus::interpret(&q, &db, shared.policy());
    let ref_eval = template()
        .with_program(parse_program(CLOSURE).unwrap())
        .run(&db)
        .unwrap()
        .database;
    (ref_query, ref_eval)
}

fn ids(o: &Object) -> Option<NodeId> {
    o.node_id()
}

fn run_differential(reader_threads: usize) {
    let shared = SharedEngine::new(template(), seed());
    let (ref_query, ref_eval) = references(&shared);
    let handle = Server::bind(shared, ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // Every reader pins version 1 before the writer commits anything.
    let pinned = Arc::new(Barrier::new(reader_threads + 1));
    let writer_done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..reader_threads)
        .map(|_| {
            let pinned = Arc::clone(&pinned);
            let writer_done = Arc::clone(&writer_done);
            let (ref_query, ref_eval) = (ref_query.clone(), ref_eval.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (version, _root) = client.snapshot().unwrap();
                assert_eq!(version, 1, "readers must pin the seed version");
                pinned.wait();
                let mut reads = 0;
                // Keep re-reading until the planned reads are done AND the
                // writer has finished (so some reads provably race commits
                // and GC sweeps).
                while reads < READS_PER_READER || !writer_done.load(Ordering::Acquire) {
                    let (v, got) = client.query(QUERY).unwrap();
                    assert_eq!(v, 1);
                    assert_eq!(got, ref_query);
                    assert_eq!(ids(&got), ids(&ref_query), "query ids must match");
                    let (v, got) = client.eval(CLOSURE).unwrap();
                    assert_eq!(v, 1);
                    assert_eq!(got, ref_eval);
                    assert_eq!(ids(&got), ids(&ref_eval), "eval ids must match");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    pinned.wait();
    // The writer: commit a stream of fresh facts and run the closure over
    // them, sweeping the store explicitly after every commit on top of
    // the engine's own every-round cadence.
    let mut writer = Client::connect(addr).unwrap();
    for i in 0..WRITER_COMMITS {
        let fact = format!("[edge: {{[s: w{i}, t: n0]}}].");
        let out = writer.advance(&fact).unwrap();
        assert_eq!(out.version, 2 + i as u64 * 2);
        let out = writer.advance(CLOSURE).unwrap();
        assert_eq!(out.version, 3 + i as u64 * 2);
        assert!(out.iterations >= 1);
        store::collect();
    }
    writer_done.store(true, Ordering::Release);

    for r in readers {
        assert!(r.join().unwrap() >= READS_PER_READER);
    }

    // Unpinned sessions see the advanced head, and it differs from the
    // frozen view the readers held.
    let (head_version, head_root) = writer.head().unwrap();
    assert_eq!(head_version, 1 + 2 * WRITER_COMMITS as u64);
    assert_ne!(head_root, ids(&ref_query).map(NodeId::get));
    let (v, now) = writer.query(QUERY).unwrap();
    assert_eq!(v, head_version);
    assert_ne!(now, ref_query, "the head really advanced under the pins");

    handle.shutdown();
}

#[test]
fn one_pinned_reader_is_isolated_from_a_writer() {
    run_differential(1);
}

#[test]
fn four_pinned_readers_are_isolated_from_a_writer() {
    run_differential(4);
}

/// Release-then-repin observes the new head — isolation is per-pin, not
/// per-connection.
#[test]
fn repinning_moves_a_session_forward() {
    let shared = SharedEngine::new(template(), seed());
    let handle = Server::bind(shared, ServerConfig::default()).unwrap();
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();

    let (v1, _) = a.snapshot().unwrap();
    let (_, frozen) = a.query(QUERY).unwrap();
    b.advance("[edge: {[s: x9, t: n0]}].").unwrap();

    // Still frozen…
    let (v, again) = a.query(QUERY).unwrap();
    assert_eq!((v, &again), (v1, &frozen));
    assert_eq!(again.node_id(), frozen.node_id());

    // …until the session re-pins.
    assert!(a.release().unwrap());
    let (v2, _) = a.snapshot().unwrap();
    assert_eq!(v2, v1 + 1);
    let (_, fresh) = a.query(QUERY).unwrap();
    assert_ne!(fresh, frozen);
    handle.shutdown();
}

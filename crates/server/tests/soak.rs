//! Concurrency soak: N client threads × M mixed requests against one
//! shared store with the engine sweeping the store **every fixpoint
//! round** — no panics, no deadlocks, per-session responses
//! deterministic, and the store's ledgers balance when the dust settles.
//!
//! One `#[test]` function on purpose: the final ledger reconciliation
//! reads process-global counters, so the file must quiesce before
//! auditing them (the harness runs separate test *files* in separate
//! processes, but functions within a file share the store).

use co_engine::{Engine, GcCadence, SharedEngine};
use co_object::store;
use co_parser::parse_object;
use co_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENT_THREADS: usize = 12;
const REQUESTS_PER_CLIENT: usize = 100;

/// One client's deterministic mixed workload. Each session's requests
/// are seeded by its index, so re-running the soak replays the same
/// interleaving candidates; the thread returns its commit count.
fn client_workload(addr: std::net::SocketAddr, id: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(0xC0DE + id as u64);
    let mut client = Client::connect(addr).unwrap();
    let mut commits = 0;
    // Determinism probe: while a snapshot is pinned, the same query must
    // return the same interned node every single time.
    let mut pinned_baseline = None;
    for step in 0..REQUESTS_PER_CLIENT {
        match rng.random_range(0..10u32) {
            0 => client.ping().unwrap(),
            1 => {
                let (version, _) = client.head().unwrap();
                assert!(version >= 1);
            }
            2 => {
                let (version, root) = client.snapshot().unwrap();
                let (v, obj) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
                assert_eq!(v, version);
                pinned_baseline = Some((version, root, obj));
            }
            3 => {
                let released = client.release().unwrap();
                assert_eq!(released, pinned_baseline.take().is_some());
            }
            4..=6 => {
                let (v, obj) = client.query("[edge: {[s: X, t: Y]}]").unwrap();
                if let Some((version, _, baseline)) = &pinned_baseline {
                    assert_eq!(v, *version, "client {id} step {step}: version drifted");
                    assert_eq!(obj, *baseline, "client {id} step {step}: value drifted");
                    assert_eq!(
                        obj.node_id(),
                        baseline.node_id(),
                        "client {id} step {step}: ids drifted"
                    );
                }
            }
            7 => {
                let (_, db) = client
                    .eval(
                        "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
                         [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
                    )
                    .unwrap();
                assert!(db.dot("path").as_set().is_some());
            }
            8 => {
                let fact = format!("[edge: {{[s: c{id}x{step}, t: n0]}}].");
                let out = client.advance(&fact).unwrap();
                assert!(out.version >= 2);
                commits += 1;
            }
            _ => {
                let digest = client.stats().unwrap();
                assert!(
                    digest.intern_hits + digest.intern_misses > 0,
                    "a live store has interned"
                );
            }
        }
        // Parse errors are typed, keep the session usable, and poison
        // nothing.
        if step == REQUESTS_PER_CLIENT / 2 {
            match client.query("[[[ not a formula").unwrap_err() {
                ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Parse),
                other => panic!("client {id}: expected a parse error, got {other}"),
            }
            client.ping().unwrap();
        }
    }
    commits
}

#[test]
fn soak_mixed_requests_with_gc_every_round() {
    let seed = parse_object("[edge: {[s: n0, t: n1], [s: n1, t: n2]}]").unwrap();
    let shared = SharedEngine::new(
        Engine::new(Default::default()).gc_cadence(GcCadence::EveryRounds(1)),
        seed,
    );
    let handle = Server::bind(shared.clone(), ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // Quiesced baseline for the final reconciliation.
    store::collect();
    let before = store::stats();

    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|id| std::thread::spawn(move || client_workload(addr, id)))
        .collect();
    let total_commits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total_commits > 0, "the mix must include committed writes");

    // Every committed write advanced the version exactly once.
    let mut audit = Client::connect(addr).unwrap();
    let (head_version, _) = audit.head().unwrap();
    assert_eq!(head_version, 1 + total_commits as u64);

    // All session threads drained: their pins are gone, only the head pin
    // (and any baseline pins) remain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.active_sessions() > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(handle.active_sessions(), 1, "only the audit session left");

    // Ledger reconciliation on the quiesced store, through the protocol:
    // every node ever created was a miss, every node ever freed was
    // swept, and what is live is exactly the difference.
    store::collect();
    let digest = audit.stats().unwrap();
    assert_eq!(
        digest.live_nodes,
        digest.intern_misses - digest.gc_freed_nodes,
        "creation − frees must equal the live population"
    );
    assert!(
        digest.gc_sweeps > before.gc_sweeps,
        "GC-every-round plus explicit collects must have swept"
    );
    assert!(
        digest.intern_misses > before.intern_misses,
        "the soak must have created nodes"
    );
    assert_eq!(
        digest.pinned_roots, before.pinned_roots as u64,
        "session pins must all be released (the head pin persists)"
    );

    // The store's own view agrees with what the protocol reported.
    let now = store::stats();
    assert_eq!(digest.live_nodes, (now.tuple_nodes + now.set_nodes) as u64);
    assert_eq!(digest.gc_freed_nodes, now.gc_freed_nodes);

    // Shutdown must wake the audit session out of its blocked read (it is
    // idle — no request in flight) and drain it: the session counter hits
    // zero instead of leaking the slot until process exit.
    assert_eq!(
        handle.shutdown(),
        0,
        "shutdown must wake and drain idle sessions"
    );
    drop(audit);
}

//! Low-level byte codec shared by the snapshot format and by consumers
//! embedding their own metadata blobs (see `co-engine`'s checkpoints).
//!
//! Integers use LEB128 varints (signed values zigzag-encoded first);
//! strings are a varint length followed by UTF-8 bytes. Decoding never
//! panics: every underrun or overlong form is a typed [`WireError`].

use crate::WireError;

/// Appends a LEB128-encoded unsigned integer.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a zigzag + LEB128 encoded signed integer.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reading position over a byte slice.
///
/// Every accessor takes a `context` naming what is being read, so an
/// underrun surfaces as `WireError::Truncated { context }` pointing at
/// the exact structure that was cut short.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a LEB128 unsigned integer.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::Malformed {
                    detail: format!("varint overflow while reading {context}"),
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag + LEB128 signed integer.
    pub fn varint_i64(&mut self, context: &'static str) -> Result<i64, WireError> {
        let z = self.varint(context)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, WireError> {
        let len = self.varint(context)?;
        let len = usize::try_from(len).map_err(|_| WireError::Malformed {
            detail: format!("string length {len} overflows while reading {context}"),
        })?;
        let bytes = self.take(len, context)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::Malformed {
            detail: format!("invalid UTF-8 while reading {context}"),
        })
    }
}

/// The FNV-1a 64-bit hash of `bytes` — the snapshot checksum. Not
/// cryptographic: it detects truncation and bit rot, not tampering.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint("test").unwrap(), v);
            assert_eq!(c.remaining(), 0);
        }
    }

    #[test]
    fn signed_varint_roundtrips() {
        for &v in &[0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint_i64(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint_i64("test").unwrap(), v);
        }
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo wörld");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.str("test").unwrap(), "héllo wörld");
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        put_str(&mut buf, "long enough");
        buf.truncate(4);
        let mut c = Cursor::new(&buf);
        let err = c.str("symbol table").unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                context: "symbol table"
            }
        ));
    }

    #[test]
    fn overlong_varint_is_malformed() {
        let buf = [0xff; 11];
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.varint("test").unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }
}

//! Typed snapshot errors.
//!
//! Every way a snapshot can be unreadable — wrong file, wrong version,
//! truncation, bit rot, internal inconsistency — maps to one
//! [`WireError`] variant with a precise `Display` rendering. The reader
//! **never panics** on malformed input; corrupt bytes always surface as a
//! value of this type.

use std::fmt;
use std::io;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The first eight bytes are not the `co-wire` magic: this is not a
    /// snapshot file (or its header was destroyed).
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The header declares a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A delta (version-2) snapshot was read without its base: delta
    /// records only carry the nodes their base lacks, so they can only be
    /// restored as a chain (see `read_chain` / `load_chain`).
    BaseRequired {
        /// Payload checksum of the base the delta was written against.
        checksum: u64,
        /// Node count of that base (cumulative over its own chain).
        nodes: u64,
    },
    /// A delta snapshot was applied to the wrong base: the base identity
    /// the delta declares (payload checksum + cumulative node count) does
    /// not match the chain restored so far.
    BaseMismatch {
        /// The base checksum the delta declares.
        expected_checksum: u64,
        /// The base node count the delta declares.
        expected_nodes: u64,
        /// The checksum of the base actually supplied.
        found_checksum: u64,
        /// The node count of the base actually supplied.
        found_nodes: u64,
    },
    /// A snapshot chain exceeds [`MAX_CHAIN_DEPTH`](crate::MAX_CHAIN_DEPTH)
    /// layers. Compact it (`compact_chain`) instead of growing it further.
    ChainTooDeep {
        /// How many layers the chain has.
        depth: usize,
    },
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The payload does not hash to the checksum the header declares:
    /// the snapshot was corrupted after it was written.
    ChecksumMismatch {
        /// The checksum recorded in the header.
        expected: u64,
        /// The checksum of the payload actually read.
        actual: u64,
    },
    /// A node record referenced a local id at or past its own position —
    /// the node table is not the topological order the format requires,
    /// or the reference itself is garbage.
    DanglingRef {
        /// The local id that was referenced.
        id: u64,
        /// How many nodes had been decoded when the reference appeared.
        defined: u64,
    },
    /// An unknown tag byte where a node or value tag was expected.
    BadTag {
        /// The tag byte found.
        tag: u8,
        /// What kind of tag was expected.
        context: &'static str,
    },
    /// The input decoded but violates a structural invariant of the
    /// format (out-of-range symbol, ⊥/⊤ inside a composite node,
    /// trailing bytes, …).
    Malformed {
        /// What invariant was violated.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "snapshot io error: {e}"),
            WireError::BadMagic { found } => {
                write!(f, "corrupt snapshot header: bad magic [")?;
                for (i, b) in found.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b:02x}")?;
                }
                write!(f, "]")
            }
            WireError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this reader supports versions {}-{})",
                crate::FORMAT_VERSION,
                crate::FORMAT_VERSION_DELTA
            ),
            WireError::BaseRequired { checksum, nodes } => write!(
                f,
                "delta snapshot requires its base (checksum {checksum:#018x}, {nodes} nodes): \
                 restore the chain base-first"
            ),
            WireError::BaseMismatch {
                expected_checksum,
                expected_nodes,
                found_checksum,
                found_nodes,
            } => write!(
                f,
                "delta snapshot base mismatch: written against base {expected_checksum:#018x} \
                 with {expected_nodes} nodes, but the supplied base is {found_checksum:#018x} \
                 with {found_nodes} nodes"
            ),
            WireError::ChainTooDeep { depth } => write!(
                f,
                "snapshot chain of {depth} layers exceeds the maximum depth {} — compact it \
                 into a full snapshot first",
                crate::MAX_CHAIN_DEPTH
            ),
            WireError::Truncated { context } => write!(
                f,
                "truncated snapshot: unexpected end of input while reading {context}"
            ),
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header declares {expected:#018x}, \
                 payload hashes to {actual:#018x}"
            ),
            WireError::DanglingRef { id, defined } => write!(
                f,
                "dangling node reference: local id {id} referenced before definition \
                 (only {defined} nodes decoded)"
            ),
            WireError::BadTag { tag, context } => {
                write!(f, "malformed snapshot: invalid {context} tag {tag:#04x}")
            }
            WireError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // An EOF from `read_exact` is a truncated snapshot, not an
        // environment failure; keep the distinction callers match on.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "input" }
        } else {
            WireError::Io(e)
        }
    }
}

//! # co-wire — hash-cons-aware binary snapshots
//!
//! The object store ([`co_object::store`]) hash-conses every composite:
//! a deeply shared structure is a DAG of distinct interned nodes, however
//! large its tree expansion. This crate turns that in-memory sharing into
//! an **on-disk asset**: a snapshot serializes a set of root objects as a
//! topologically-ordered *node table* in which each distinct node is
//! encoded exactly once and referenced by a dense local id — so the file
//! size tracks the store's node count, not the exponential tree size.
//!
//! # Format (version 1 — full snapshots)
//!
//! ```text
//! header   48 bytes  magic "COWIRE\r\n" · version u32 · reserved u32
//!                    (zero in versions 1 and 2; the columnar record
//!                    count in version 3)
//!                    · node count u64 · root count u64
//!                    · payload length u64 · FNV-1a-64 checksum u64
//! payload            symbol table   varint count, then per symbol a
//!                                   length-prefixed UTF-8 string
//!                                   (attribute names + string atoms,
//!                                   each distinct spelling once)
//!                    node table     `node count` records, children
//!                                   strictly before parents; each record
//!                                   is a tuple/set tag, a child count,
//!                                   and per child an attribute symbol
//!                                   (tuples only) plus a value
//!                    root table     `root count` values
//!                    metadata       varint length + opaque bytes for the
//!                                   embedding application (co-engine
//!                                   stores its program and config here)
//! ```
//!
//! A *value* is one tagged unit: ⊥, ⊤, an inline atom (bool/int/float,
//! strings by symbol index), or a backward reference into the node table.
//! Forward or out-of-range references are a typed error — the topological
//! order is what lets the reader work in one streaming pass.
//!
//! # Format (version 2 — delta snapshots)
//!
//! The node table is content-addressed by construction: every distinct
//! node is written exactly once, so a snapshot of a database that mostly
//! overlaps an earlier one re-pays for all the shared nodes. A **delta**
//! snapshot fixes that. [`write_delta_snapshot`] encodes, against a named
//! *base* — identified by the base's payload checksum plus its cumulative
//! node count — only the nodes the base lacks. The layout is version 1's
//! with one prepended structure:
//!
//! ```text
//! payload            base link      base checksum u64 (little-endian)
//!                                   · base node count u64
//!                    symbol table, node table, root table, metadata
//!                                   as in version 1
//! ```
//!
//! Local ids live in a **combined id space**: ids `0..base_nodes` name
//! base-resident nodes (the base's own local ids, or for a chained base
//! the concatenation of its layers), and ids from `base_nodes` upward
//! name this delta's new nodes in table order. References still point
//! strictly backwards.
//!
//! A chain `full → delta → delta → …` is restored with [`read_chain`] /
//! [`load_chain`], which streams each layer through the same bottom-up
//! re-interning pass, verifying each link: a layer whose declared base
//! identity does not match the chain restored so far is rejected with
//! [`WireError::BaseMismatch`], a delta without its base with
//! [`WireError::BaseRequired`], and chains deeper than
//! [`MAX_CHAIN_DEPTH`] with [`WireError::ChainTooDeep`] — compact them
//! first with [`compact_chain`]. [`describe`] inspects any snapshot file
//! without restoring it.
//!
//! # Format (version 3 — columnar full snapshots)
//!
//! A flat relation — a set whose elements are all same-schema tuples of
//! atoms — shares almost nothing: every row tuple is distinct, so the
//! node table pays a full record (tag, arity, and one attribute symbol
//! index per column) for every row. [`write_snapshot_columnar`] encodes
//! such sets as one **columnar** record instead:
//!
//! ```text
//! flat-set record    tag 0x12 · arity varint
//!                    · per column an attribute symbol index
//!                    · row count varint
//!                    · the cells, column-major: per column `row count`
//!                      atom values (inline tags only — never ⊥/⊤ and
//!                      never a node reference)
//! ```
//!
//! The schema is spelled once, and row tuples whose only references are
//! from columnar sets are **pruned** from the node table entirely (a row
//! tuple that is also a root or a child of an ordinary node keeps its
//! record — the columns carry an inline copy). The reader rebuilds every
//! row bottom-up through the same canonicalizing constructors as any
//! other node, so a columnar snapshot restores to bit-identical objects
//! and `NodeId`s. Eligibility and the row threshold are
//! [`co_object::columnar`]'s (`CO_COLUMNAR_MIN_ROWS`); when no set
//! qualifies, the writer falls back to a byte-identical **version 1**
//! snapshot, and a version-3 file that contains no columnar record is
//! rejected as [`WireError::Malformed`] — so a flipped version byte
//! cannot silently reinterpret a v1 payload. Deltas (version 2) never
//! emit the columnar tag.
//!
//! A version-3 header stores the columnar record count in the 4 bytes
//! that versions 1 and 2 reserve as zero: [`describe`] can report it
//! without restoring, and a flipped version byte fails **header**
//! validation in either direction (a v3 header with a zero count, or a
//! v1/v2 header with a nonzero "reserved" field, is malformed). The
//! reader additionally verifies the declared count against the records
//! actually decoded.
//!
//! **Compatibility policy:** version 1 remains readable forever — every
//! reader entry point accepts it, and full snapshots are still written as
//! version 1 so older tooling can read new checkpoints that don't use
//! deltas or the columnar fast path. Unknown versions are hard
//! [`WireError::UnsupportedVersion`] errors, never a best-effort parse.
//!
//! # Re-interning
//!
//! The reader rebuilds each node **bottom-up through the ordinary
//! canonicalizing constructors** and the hash-consing store. Two
//! consequences:
//!
//! - a loaded snapshot is structurally bit-identical to what was saved
//!   (canonical form is unique, whatever attribute-interning order the
//!   reading process happens to have), and
//! - loading **re-deduplicates against whatever is already live**: nodes
//!   the process already interned are recognized, not duplicated, so
//!   restoring a snapshot into a warm server costs only the nodes it did
//!   not already have.
//!
//! Corrupt, truncated, or wrong-version input never panics — every
//! failure is a [`WireError`] with a precise rendering.
//!
//! ```
//! use co_object::obj;
//!
//! let shared = obj!({[k: 1, v: {a, b}], [k: 2, v: {a, b}]});
//! let mut bytes = Vec::new();
//! co_wire::write_snapshot(&mut bytes, &[shared.clone()], b"").unwrap();
//! let snap = co_wire::read_snapshot(bytes.as_slice()).unwrap();
//! assert_eq!(snap.roots, vec![shared.clone()]);
//! // Same process, same content: re-interning finds the same node.
//! assert_eq!(snap.roots[0].node_id(), shared.node_id());
//! ```
//!
//! Delta round-trip, in memory:
//!
//! ```
//! use co_object::obj;
//!
//! let v1 = obj!([db: {1, 2}]);
//! let mut base = Vec::new();
//! let (_, handle) = co_wire::write_snapshot_handle(&mut base, &[v1], b"").unwrap();
//!
//! let v2 = obj!([db: {1, 2, 3}]);
//! let mut delta = Vec::new();
//! let (stats, _) =
//!     co_wire::write_delta_snapshot(&mut delta, &[v2.clone()], b"", &handle).unwrap();
//! assert!(stats.nodes < 3); // only what the base lacks
//!
//! let (snap, _) = co_wire::read_chain([base.as_slice(), delta.as_slice()]).unwrap();
//! assert_eq!(snap.roots, vec![v2]);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
mod error;

pub use error::WireError;

use co_object::walk::{visit_unique_postorder, visit_unique_postorder_pruned};
use co_object::{Atom, Attr, NodeId, Object};
use codec::{checksum, put_str, put_varint, put_varint_i64, Cursor};
use rustc_hash::{FxHashMap, FxHashSet};
use std::io::{Read, Write};
use std::path::Path;

/// The eight magic bytes opening every snapshot. The `\r\n` tail detects
/// line-ending translation by transfer tools that treated the file as
/// text.
pub const MAGIC: [u8; 8] = *b"COWIRE\r\n";

/// The format version this build writes for **full** snapshots, readable
/// by every `co-wire` since PR 4 — version 1 stays readable forever.
pub const FORMAT_VERSION: u32 = 1;

/// The format version this build writes for **delta** snapshots (nodes
/// encoded against a base snapshot; restored as a chain).
pub const FORMAT_VERSION_DELTA: u32 = 2;

/// The format version [`write_snapshot_columnar`] writes when at least
/// one flat relation qualified for a columnar record (see the module
/// docs); with no qualifying set it falls back to [`FORMAT_VERSION`].
pub const FORMAT_VERSION_COLUMNAR: u32 = 3;

/// The maximum number of layers (one full + deltas) a snapshot chain may
/// have. Deeper chains are rejected with [`WireError::ChainTooDeep`];
/// compact them with [`compact_chain`]. Restore cost and failure surface
/// grow with every link, so the cap keeps both bounded.
pub const MAX_CHAIN_DEPTH: usize = 16;

/// Fixed size of the snapshot header in bytes.
pub const HEADER_LEN: usize = 48;

// Node-record tags (node table). `NODE_FLAT_SET` is only accepted in
// version-3 payloads; anywhere else it is a [`WireError::BadTag`].
const NODE_TUPLE: u8 = 0x10;
const NODE_SET: u8 = 0x11;
const NODE_FLAT_SET: u8 = 0x12;

// Value tags (inside node records and the root table).
const VAL_BOTTOM: u8 = 0x00;
const VAL_TOP: u8 = 0x01;
const VAL_FALSE: u8 = 0x02;
const VAL_TRUE: u8 = 0x03;
const VAL_INT: u8 = 0x04;
const VAL_FLOAT: u8 = 0x05;
const VAL_STR: u8 = 0x06;
const VAL_NODE: u8 = 0x07;

/// A decoded snapshot: the root objects (re-interned, canonical) and the
/// embedding application's opaque metadata blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The root objects, in the order they were passed to the writer.
    pub roots: Vec<Object>,
    /// The opaque metadata blob the writer attached (empty if none).
    pub meta: Vec<u8>,
}

/// The identity of a snapshot as a **delta base**: enough to verify that
/// a delta is being applied to the content it was written against.
///
/// The checksum is the base layer's payload checksum; the node count is
/// cumulative over the base's own chain. Together they pin the base's
/// content *and* its local-id space: two bases with equal checksums and
/// node counts decode to identical node tables, so every base-local id a
/// delta uses means the same node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaseId {
    /// Payload checksum of the base's last layer.
    pub checksum: u64,
    /// Cumulative node count of the base chain.
    pub nodes: u64,
}

/// A live handle onto a written (or restored) snapshot: what
/// [`write_delta_snapshot`] needs to encode a new layer against it.
///
/// The handle maps the **live `NodeId`** of every node in the snapshot to
/// its combined-space local id. It holds no strong references: freed ids
/// are never recycled by the store, so a stale entry can never be looked
/// up again (a re-derivation of freed content gets a fresh id, misses the
/// map, and is simply re-encoded in the next delta — larger, never
/// wrong). Handles come from [`write_snapshot_handle`],
/// [`write_delta_snapshot`], [`read_chain`], and their path variants.
#[derive(Clone, Debug)]
pub struct SnapshotHandle {
    /// Payload checksum of the newest layer.
    checksum: u64,
    /// Cumulative node count across all layers.
    count: u64,
    /// Live `NodeId` → combined-space local id.
    locals: FxHashMap<NodeId, u64>,
}

impl SnapshotHandle {
    /// The identity a delta written against this handle will declare.
    pub fn base_id(&self) -> BaseId {
        BaseId {
            checksum: self.checksum,
            nodes: self.count,
        }
    }

    /// Payload checksum of the newest layer of this snapshot.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Cumulative node count across all layers of this snapshot.
    pub fn nodes(&self) -> u64 {
        self.count
    }

    /// Whether the live node `id` is resident in this snapshot.
    pub fn contains(&self, id: NodeId) -> bool {
        self.locals.contains_key(&id)
    }
}

/// What one snapshot write produced — the inputs for capacity planning
/// and for the sharing-ratio accounting the benches record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Format version written: [`FORMAT_VERSION`] for full snapshots,
    /// [`FORMAT_VERSION_DELTA`] for deltas, [`FORMAT_VERSION_COLUMNAR`]
    /// for full snapshots that used the columnar fast path (0 for a
    /// default value that never came from a write).
    pub version: u32,
    /// Distinct composite nodes encoded (each exactly once). For a delta,
    /// only the nodes the base lacked.
    pub nodes: u64,
    /// Root values encoded.
    pub roots: u64,
    /// Distinct symbols (attribute names + string atoms) encoded.
    pub symbols: u64,
    /// Bytes of payload (everything after the header).
    pub payload_bytes: u64,
    /// Total bytes written, header included.
    pub total_bytes: u64,
    /// Distinct base-resident nodes this delta references by base-local
    /// id instead of re-encoding (0 for full snapshots). Together with
    /// `nodes`, this reconciles against a full write of the same roots:
    /// `full.nodes == delta.nodes + reachable base nodes`, of which
    /// `base_nodes_reused` are the ones referenced directly.
    pub base_nodes_reused: u64,
    /// Flat relations encoded as columnar records (0 unless the write
    /// came from [`write_snapshot_columnar`] and at least one set
    /// qualified — in which case `version` is
    /// [`FORMAT_VERSION_COLUMNAR`]). Counted in `nodes`; the row tuples
    /// the columns absorbed are not.
    pub columnar_sets: u64,
}

impl WriteStats {
    /// Average on-disk payload bytes per distinct node; `None` for a
    /// snapshot of zero composite nodes.
    pub fn bytes_per_node(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.payload_bytes as f64 / self.nodes as f64)
    }
}

impl std::fmt::Display for WriteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.version == FORMAT_VERSION_DELTA {
            write!(
                f,
                "delta snapshot: {} new nodes (+{} referenced from base), {} roots, \
                 {} symbols, {} payload bytes ({} total)",
                self.nodes,
                self.base_nodes_reused,
                self.roots,
                self.symbols,
                self.payload_bytes,
                self.total_bytes
            )
        } else {
            write!(
                f,
                "snapshot: {} nodes, {} roots, {} symbols, {} payload bytes ({} total)",
                self.nodes, self.roots, self.symbols, self.payload_bytes, self.total_bytes
            )?;
            if self.columnar_sets > 0 {
                write!(f, ", {} columnar relations", self.columnar_sets)?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Write-side state threaded through value encoding: the symbol table
/// under construction, this layer's local ids, and the optional base.
struct Encoder<'a> {
    symbols: Vec<String>,
    by_name: FxHashMap<String, u64>,
    /// New nodes of this layer → combined-space local id.
    locals: FxHashMap<NodeId, u64>,
    base: Option<&'a SnapshotHandle>,
    /// Distinct base-resident nodes referenced (delta accounting).
    reused: FxHashSet<NodeId>,
}

impl Encoder<'_> {
    /// Interns a symbol (attribute name or string-atom payload) into the
    /// write-side symbol table, returning its dense index.
    fn symbol(&mut self, name: &str) -> u64 {
        if let Some(&ix) = self.by_name.get(name) {
            return ix;
        }
        let ix = self.symbols.len() as u64;
        self.symbols.push(name.to_owned());
        self.by_name.insert(name.to_owned(), ix);
        ix
    }

    /// Encodes one atom (inline, never a node reference) into `out` —
    /// the cell encoding of columnar records, shared with [`Self::value`].
    fn atom(&mut self, out: &mut Vec<u8>, a: &Atom) {
        match a {
            Atom::Bool(false) => out.push(VAL_FALSE),
            Atom::Bool(true) => out.push(VAL_TRUE),
            Atom::Int(v) => {
                out.push(VAL_INT);
                put_varint_i64(out, *v);
            }
            Atom::Float(v) => {
                out.push(VAL_FLOAT);
                out.extend_from_slice(&v.get().to_bits().to_le_bytes());
            }
            Atom::Str(s) => {
                out.push(VAL_STR);
                let ix = self.symbol(s);
                put_varint(out, ix);
            }
        }
    }

    /// Encodes one value (an immediate child or a root) into `out`.
    fn value(&mut self, out: &mut Vec<u8>, o: &Object) {
        match o {
            Object::Bottom => out.push(VAL_BOTTOM),
            Object::Top => out.push(VAL_TOP),
            Object::Atom(a) => self.atom(out, a),
            Object::Tuple(_) | Object::Set(_) => {
                let id = o.node_id().expect("composites have node ids");
                let local = match self.locals.get(&id) {
                    Some(&local) => local,
                    None => {
                        // Pruned from the walk, so it must be in the base.
                        let base = self.base.expect("full writes enumerate every composite");
                        self.reused.insert(id);
                        base.locals[&id]
                    }
                };
                out.push(VAL_NODE);
                put_varint(out, local);
            }
        }
    }
}

/// The crate's registry instruments, resolved once: every snapshot
/// encode/decode lands in `wire.encode_ns` / `wire.decode_ns` (one
/// observation per layer), so serving-side stalls can be attributed to
/// serialization from a [`co_obs::Snapshot`] alone.
struct WireInstruments {
    encode_ns: std::sync::Arc<co_obs::Histogram>,
    decode_ns: std::sync::Arc<co_obs::Histogram>,
}

fn wire_instruments() -> &'static WireInstruments {
    static CELL: std::sync::OnceLock<WireInstruments> = std::sync::OnceLock::new();
    CELL.get_or_init(|| WireInstruments {
        encode_ns: co_obs::histogram("wire.encode_ns"),
        decode_ns: co_obs::histogram("wire.decode_ns"),
    })
}

/// The shared writer: encodes `roots` (plus `meta`) as one layer — full
/// when `base` is `None`, a delta against `base` otherwise — and returns
/// the stats plus a handle onto the written snapshot (base included).
fn write_snapshot_impl<W: Write>(
    w: W,
    roots: &[Object],
    meta: &[u8],
    base: Option<&SnapshotHandle>,
    columnar: bool,
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    let start = std::time::Instant::now();
    let out = write_snapshot_inner(w, roots, meta, base, columnar);
    wire_instruments()
        .encode_ns
        .record_duration(start.elapsed());
    out
}

fn write_snapshot_inner<W: Write>(
    mut w: W,
    roots: &[Object],
    meta: &[u8],
    base: Option<&SnapshotHandle>,
    columnar: bool,
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    let base_count = base.map_or(0, |b| b.count);

    // Pass 1: the distinct-node table, children before parents — pruned
    // at base-resident nodes for a delta (every node in a snapshot has
    // all its descendants there too, so pruning loses nothing).
    let mut nodes: Vec<Object> = Vec::new();
    match base {
        Some(b) => visit_unique_postorder_pruned(
            roots.iter(),
            |id| b.contains(id),
            |o| nodes.push(o.clone()),
        ),
        None => visit_unique_postorder(roots.iter(), |o| nodes.push(o.clone())),
    }

    // Columnar pass (full snapshots only): pick the flat relations that
    // get a `NODE_FLAT_SET` record, then prune the row tuples whose only
    // references are from those relations — their cells carry them. A
    // row tuple that is also a root, or a child of any ordinary node,
    // keeps its own record (`Encoder::value` must be able to name it).
    let mut columnar_of: FxHashMap<NodeId, std::sync::Arc<co_object::columnar::ColumnarRel>> =
        FxHashMap::default();
    if columnar && base.is_none() {
        for node in &nodes {
            if let Object::Set(s) = node {
                if let Some(cols) = co_object::columnar::arena_for(s) {
                    columnar_of.insert(s.node_id(), cols);
                }
            }
        }
        if !columnar_of.is_empty() {
            let mut prunable: FxHashSet<NodeId> = FxHashSet::default();
            for node in &nodes {
                let id = node.node_id().expect("walk yields composites");
                if columnar_of.contains_key(&id) {
                    for row in node.children() {
                        prunable.insert(row.node_id().expect("flat-relation rows are tuples"));
                    }
                }
            }
            for node in &nodes {
                let id = node.node_id().expect("walk yields composites");
                if columnar_of.contains_key(&id) {
                    continue;
                }
                for child in node.children() {
                    if let Some(cid) = child.node_id() {
                        prunable.remove(&cid);
                    }
                }
            }
            for root in roots {
                if let Some(rid) = root.node_id() {
                    prunable.remove(&rid);
                }
            }
            nodes.retain(|n| !prunable.contains(&n.node_id().expect("walk yields composites")));
        }
    }

    let mut enc = Encoder {
        symbols: Vec::new(),
        by_name: FxHashMap::default(),
        locals: FxHashMap::default(),
        base,
        reused: FxHashSet::default(),
    };
    for (ix, node) in nodes.iter().enumerate() {
        enc.locals.insert(
            node.node_id().expect("walk yields composites"),
            base_count + ix as u64,
        );
    }

    // Pass 2: encode node records (interning symbols as they appear).
    let mut table: Vec<u8> = Vec::new();
    for node in &nodes {
        if let Some(cols) = node.node_id().and_then(|id| columnar_of.get(&id)) {
            // Columnar record: the schema spelled once, then the cells
            // column-major — all inline atoms, no node references.
            table.push(NODE_FLAT_SET);
            put_varint(&mut table, cols.arity() as u64);
            for attr in cols.schema() {
                let ix = enc.symbol(&attr.name());
                put_varint(&mut table, ix);
            }
            put_varint(&mut table, cols.rows() as u64);
            for c in 0..cols.arity() {
                for atom in cols.column(c) {
                    enc.atom(&mut table, atom);
                }
            }
            continue;
        }
        match node {
            Object::Tuple(t) => {
                table.push(NODE_TUPLE);
                put_varint(&mut table, t.len() as u64);
                for (attr, value) in t.entries() {
                    let ix = enc.symbol(&attr.name());
                    put_varint(&mut table, ix);
                    enc.value(&mut table, value);
                }
            }
            Object::Set(s) => {
                table.push(NODE_SET);
                put_varint(&mut table, s.len() as u64);
                for element in s.elements() {
                    enc.value(&mut table, element);
                }
            }
            _ => unreachable!("the unique walk only yields composites"),
        }
    }
    let mut root_table: Vec<u8> = Vec::new();
    for root in roots {
        enc.value(&mut root_table, root);
    }

    // Assemble the payload: [base link,] symbols, nodes, roots, metadata.
    let mut payload: Vec<u8> = Vec::new();
    if let Some(b) = base {
        payload.extend_from_slice(&b.checksum.to_le_bytes());
        payload.extend_from_slice(&b.count.to_le_bytes());
    }
    put_varint(&mut payload, enc.symbols.len() as u64);
    for s in &enc.symbols {
        put_str(&mut payload, s);
    }
    payload.extend_from_slice(&table);
    payload.extend_from_slice(&root_table);
    put_varint(&mut payload, meta.len() as u64);
    payload.extend_from_slice(meta);

    // Header last: it needs the counts and the payload checksum. A
    // columnar write with zero qualifying sets emitted no 0x12 records,
    // so it *is* a plain version-1 snapshot — label it as one.
    let version = if base.is_some() {
        FORMAT_VERSION_DELTA
    } else if !columnar_of.is_empty() {
        FORMAT_VERSION_COLUMNAR
    } else {
        FORMAT_VERSION
    };
    let sum = checksum(&payload);
    let columnar_count =
        u32::try_from(columnar_of.len()).expect("columnar record count fits the header field");
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&version.to_le_bytes());
    // Reserved in versions 1 and 2 (zero); the columnar count in v3.
    header.extend_from_slice(&columnar_count.to_le_bytes());
    header.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
    header.extend_from_slice(&(roots.len() as u64).to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&sum.to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);

    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;

    let stats = WriteStats {
        version,
        nodes: nodes.len() as u64,
        roots: roots.len() as u64,
        symbols: enc.symbols.len() as u64,
        payload_bytes: payload.len() as u64,
        total_bytes: (HEADER_LEN + payload.len()) as u64,
        base_nodes_reused: enc.reused.len() as u64,
        columnar_sets: columnar_of.len() as u64,
    };
    let locals = match base {
        Some(b) => {
            let mut combined = b.locals.clone();
            combined.extend(enc.locals.iter().map(|(id, local)| (*id, *local)));
            combined
        }
        None => enc.locals,
    };
    let handle = SnapshotHandle {
        checksum: sum,
        count: base_count + nodes.len() as u64,
        locals,
    };
    Ok((stats, handle))
}

/// Serializes `roots` (plus `meta`, an opaque blob the reader hands back
/// verbatim) as one full (version 1) snapshot into `w`. Each distinct
/// interned node reachable from the roots is encoded exactly once,
/// children before parents.
///
/// The writer holds strong references to every root for the whole write,
/// so a concurrent [`co_object::store::collect`] cannot free anything
/// mid-serialization; callers that also want the ids pinned across later
/// sweeps should pin roots themselves (see `Engine::checkpoint`).
pub fn write_snapshot<W: Write>(
    w: W,
    roots: &[Object],
    meta: &[u8],
) -> Result<WriteStats, WireError> {
    write_snapshot_impl(w, roots, meta, None, false).map(|(stats, _)| stats)
}

/// [`write_snapshot`], additionally returning a [`SnapshotHandle`] for
/// writing delta snapshots against the result.
pub fn write_snapshot_handle<W: Write>(
    w: W,
    roots: &[Object],
    meta: &[u8],
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    write_snapshot_impl(w, roots, meta, None, false)
}

/// [`write_snapshot`], with the **columnar fast path**: flat relations
/// that qualify for a [`co_object::columnar`] arena (same-schema rows of
/// atoms, at least `CO_COLUMNAR_MIN_ROWS` of them) are encoded as
/// schema-once column-major records, and their row tuples — when nothing
/// outside the relation references them — are pruned from the node
/// table. Writes [`FORMAT_VERSION_COLUMNAR`] when at least one set
/// qualified (see [`WriteStats::columnar_sets`]), otherwise falls back
/// to a byte-identical version-1 snapshot.
///
/// Restoring re-interns every row through the canonicalizing
/// constructors, so the result is bit-identical to a version-1 write of
/// the same roots — the columnar record is purely an encoding choice.
pub fn write_snapshot_columnar<W: Write>(
    w: W,
    roots: &[Object],
    meta: &[u8],
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    write_snapshot_impl(w, roots, meta, None, true)
}

/// Serializes `roots` as a **delta** (version 2) snapshot against `base`:
/// only nodes the base lacks are encoded; everything already resident is
/// referenced by its base-local id. Returns the stats and a handle onto
/// the extended chain, for writing the next delta.
///
/// Restore the result with [`read_chain`] / [`load_chain`], supplying the
/// base's layers first.
pub fn write_delta_snapshot<W: Write>(
    w: W,
    roots: &[Object],
    meta: &[u8],
    base: &SnapshotHandle,
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    write_snapshot_impl(w, roots, meta, Some(base), false)
}

// ---------------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------------

/// Runs `write` against a same-directory temporary for `path` and renames
/// the result over `path` only once fully written and synced — a crash
/// mid-write can never leave a half-snapshot under the final name, only
/// an orphan temporary (see [`is_snapshot_temp`]).
fn save_atomically<T>(
    path: &Path,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<T, WireError>,
) -> Result<T, WireError> {
    // Unique per process AND per call: two threads checkpointing to the
    // same destination concurrently must not interleave writes into one
    // temp inode (the loser's rename would install a corrupt file).
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut buffered = std::io::BufWriter::new(file);
        let out = write(&mut buffered)?;
        buffered
            .into_inner()
            .map_err(|e| e.into_error())?
            .sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(out)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Whether `path` looks like an orphaned snapshot temporary — the
/// `<dest>.tmp.<pid>.<seq>` name [`save_to_path`] writes through before
/// its atomic rename. A crash mid-save leaves such a file next to an
/// intact `<dest>`; it is safe to ignore or delete.
pub fn is_snapshot_temp(path: impl AsRef<Path>) -> bool {
    let Some(name) = path.as_ref().file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let Some((_, suffix)) = name.rsplit_once(".tmp.") else {
        return false;
    };
    let mut parts = suffix.split('.');
    matches!(
        (parts.next(), parts.next(), parts.next()),
        (Some(pid), Some(seq), None)
            if !pid.is_empty()
                && !seq.is_empty()
                && pid.bytes().all(|b| b.is_ascii_digit())
                && seq.bytes().all(|b| b.is_ascii_digit())
    )
}

/// [`write_snapshot`] to a file, atomically: the bytes go to a
/// same-directory temporary first and are renamed over `path` only once
/// fully written, so a crash mid-write can never leave a half-snapshot
/// under the final name.
pub fn save_to_path(
    path: impl AsRef<Path>,
    roots: &[Object],
    meta: &[u8],
) -> Result<WriteStats, WireError> {
    save_atomically(path.as_ref(), |w| write_snapshot(w, roots, meta))
}

/// [`save_to_path`], additionally returning a [`SnapshotHandle`] for
/// writing delta snapshots against the saved file.
pub fn save_to_path_handle(
    path: impl AsRef<Path>,
    roots: &[Object],
    meta: &[u8],
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    save_atomically(path.as_ref(), |w| write_snapshot_handle(w, roots, meta))
}

/// [`write_snapshot_columnar`] to a file, atomically (same temp + rename
/// contract as [`save_to_path`]).
pub fn save_columnar_to_path(
    path: impl AsRef<Path>,
    roots: &[Object],
    meta: &[u8],
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    save_atomically(path.as_ref(), |w| write_snapshot_columnar(w, roots, meta))
}

/// [`write_delta_snapshot`] to a file, atomically (same temp + rename
/// contract as [`save_to_path`]).
pub fn save_delta_to_path(
    path: impl AsRef<Path>,
    roots: &[Object],
    meta: &[u8],
    base: &SnapshotHandle,
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    save_atomically(path.as_ref(), |w| {
        write_delta_snapshot(w, roots, meta, base)
    })
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A validated snapshot header.
struct Header {
    version: u32,
    /// Columnar records declared (version 3 only; zero otherwise).
    columnar: u32,
    node_count: u64,
    root_count: u64,
    payload_len: usize,
    checksum: u64,
}

/// Reads and structurally validates the 48-byte header: magic, version
/// window, zeroed reserved bytes, and count plausibility (each node and
/// root record is at least one payload byte). The header is not covered
/// by the payload checksum, so these checks are what stands between a
/// flipped header bit and a misparse.
fn read_header<R: Read>(r: &mut R) -> Result<Header, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "header" }
        } else {
            WireError::Io(e)
        }
    })?;
    let magic: [u8; 8] = header[0..8].try_into().expect("8 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION
        && version != FORMAT_VERSION_DELTA
        && version != FORMAT_VERSION_COLUMNAR
    {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let reserved = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
    if version == FORMAT_VERSION_COLUMNAR {
        if reserved == 0 {
            return Err(WireError::Malformed {
                detail: "version 3 header declares zero columnar records — a plain full \
                         snapshot must declare version 1"
                    .into(),
            });
        }
    } else if reserved != 0 {
        return Err(WireError::Malformed {
            detail: format!("reserved header bytes are not zero ({reserved:#010x})"),
        });
    }
    let node_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if u64::from(reserved) > node_count {
        return Err(WireError::Malformed {
            detail: format!(
                "declared columnar record count {reserved} exceeds the node count {node_count}"
            ),
        });
    }
    let root_count = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
    let declared_checksum = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
    if node_count > payload_len {
        return Err(WireError::Malformed {
            detail: format!(
                "declared node count {node_count} exceeds the {payload_len}-byte payload"
            ),
        });
    }
    if root_count > payload_len {
        return Err(WireError::Malformed {
            detail: format!(
                "declared root count {root_count} exceeds the {payload_len}-byte payload"
            ),
        });
    }
    let payload_len = usize::try_from(payload_len).map_err(|_| WireError::Malformed {
        detail: format!("declared payload length {payload_len} exceeds addressable memory"),
    })?;
    Ok(Header {
        version,
        columnar: reserved,
        node_count,
        root_count,
        payload_len,
        checksum: declared_checksum,
    })
}

/// Reads exactly the declared payload and verifies its checksum before
/// any of the structure is trusted.
fn read_payload<R: Read>(r: &mut R, h: &Header) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(h.payload_len as u64)
        .read_to_end(&mut payload)?;
    if got < h.payload_len {
        return Err(WireError::Truncated { context: "payload" });
    }
    let actual = checksum(&payload);
    if actual != h.checksum {
        return Err(WireError::ChecksumMismatch {
            expected: h.checksum,
            actual,
        });
    }
    Ok(payload)
}

/// Decodes one value; composites must be backward references into the
/// already-decoded prefix of the (combined, for chains) node table.
fn get_value(
    c: &mut Cursor<'_>,
    context: &'static str,
    nodes: &[Object],
    symbols: &[String],
    allow_extremes: bool,
) -> Result<Object, WireError> {
    let tag = c.u8(context)?;
    match tag {
        VAL_BOTTOM | VAL_TOP if !allow_extremes => Err(WireError::Malformed {
            detail: format!(
                "{} inside a composite node (canonical nodes contain neither)",
                if tag == VAL_BOTTOM { "⊥" } else { "⊤" }
            ),
        }),
        VAL_BOTTOM => Ok(Object::Bottom),
        VAL_TOP => Ok(Object::Top),
        VAL_FALSE => Ok(Object::bool(false)),
        VAL_TRUE => Ok(Object::bool(true)),
        VAL_INT => Ok(Object::int(c.varint_i64(context)?)),
        VAL_FLOAT => {
            let bytes: [u8; 8] = c.take(8, context)?.try_into().expect("8 bytes");
            Ok(Object::float(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        VAL_STR => {
            let ix = c.varint(context)?;
            let s = symbols
                .get(usize::try_from(ix).unwrap_or(usize::MAX))
                .ok_or_else(|| WireError::Malformed {
                    detail: format!(
                        "symbol index {ix} out of range ({} symbols) in {context}",
                        symbols.len()
                    ),
                })?;
            Ok(Object::str(s))
        }
        VAL_NODE => {
            let id = c.varint(context)?;
            match usize::try_from(id).ok().and_then(|ix| nodes.get(ix)) {
                Some(node) => Ok(node.clone()),
                None => Err(WireError::DanglingRef {
                    id,
                    defined: nodes.len() as u64,
                }),
            }
        }
        tag => Err(WireError::BadTag { tag, context }),
    }
}

/// Decodes one columnar (`NODE_FLAT_SET`) record into a canonical set:
/// schema, row count, then the cells column-major. Every cell must be an
/// inline atom — ⊥/⊤ are refused by `get_value` and node references are
/// refused here (a flat relation's rows contain no composites). Rows are
/// rebuilt through [`Object::try_tuple`] / [`Object::set`], so whatever
/// the writing process's attribute order was, the result re-interns to
/// the canonical node.
fn decode_flat_set(
    c: &mut Cursor<'_>,
    nodes: &[Object],
    symbols: &[String],
) -> Result<Object, WireError> {
    let context = "columnar node";
    let arity = c.varint(context)?;
    let arity = usize::try_from(arity)
        .ok()
        .filter(|&a| a > 0 && a <= c.remaining())
        .ok_or_else(|| WireError::Malformed {
            detail: format!("columnar record declares an implausible arity ({arity})"),
        })?;
    let mut schema: Vec<Attr> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let ix = c.varint(context)?;
        let name = symbols
            .get(usize::try_from(ix).unwrap_or(usize::MAX))
            .ok_or_else(|| WireError::Malformed {
                detail: format!(
                    "attribute symbol index {ix} out of range ({} symbols) in {context}",
                    symbols.len()
                ),
            })?;
        schema.push(Attr::new(name));
    }
    let rows = c.varint(context)?;
    // Each cell is at least one payload byte, so `arity × rows` beyond
    // the remaining payload cannot be honest — fail before allocating.
    let rows = usize::try_from(rows)
        .ok()
        .filter(|&r| {
            r > 0
                && r.checked_mul(arity)
                    .is_some_and(|cells| cells <= c.remaining())
        })
        .ok_or_else(|| WireError::Malformed {
            detail: format!(
                "columnar record declares an implausible row count ({rows} rows × {arity} \
                 columns against {} remaining payload bytes)",
                c.remaining()
            ),
        })?;
    let mut columns: Vec<Vec<Object>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut column = Vec::with_capacity(rows);
        for _ in 0..rows {
            let value = get_value(c, context, nodes, symbols, false)?;
            if !matches!(value, Object::Atom(_)) {
                return Err(WireError::Malformed {
                    detail: "node reference inside a columnar record (rows are atoms only)".into(),
                });
            }
            column.push(value);
        }
        columns.push(column);
    }
    let mut elements: Vec<Object> = Vec::with_capacity(rows);
    for r in 0..rows {
        let entries = schema
            .iter()
            .zip(&columns)
            .map(|(attr, column)| (*attr, column[r].clone()));
        elements.push(
            Object::try_tuple(entries).map_err(|e| WireError::Malformed {
                detail: format!("invalid columnar row: {e}"),
            })?,
        );
    }
    Ok(Object::set(elements))
}

/// One decoded chain layer: its roots and metadata (each layer carries
/// its own) and its payload checksum (the next layer's base identity).
struct Layer {
    roots: Vec<Object>,
    meta: Vec<u8>,
    checksum: u64,
}

/// Reads one layer from `r`, appending its nodes to the combined table
/// `nodes`. `base_checksum` is the payload checksum of the previously
/// restored layer (`None` when this is the first); a version-2 layer's
/// declared base link is verified against it and `nodes.len()`.
fn read_layer<R: Read>(
    r: R,
    nodes: &mut Vec<Object>,
    base_checksum: Option<u64>,
    first: bool,
) -> Result<Layer, WireError> {
    let start = std::time::Instant::now();
    let out = read_layer_inner(r, nodes, base_checksum, first);
    wire_instruments()
        .decode_ns
        .record_duration(start.elapsed());
    out
}

fn read_layer_inner<R: Read>(
    mut r: R,
    nodes: &mut Vec<Object>,
    base_checksum: Option<u64>,
    first: bool,
) -> Result<Layer, WireError> {
    let header = read_header(&mut r)?;
    let payload = read_payload(&mut r, &header)?;
    let mut c = Cursor::new(&payload);

    if header.version == FORMAT_VERSION_DELTA {
        let declared_checksum =
            u64::from_le_bytes(c.take(8, "base link")?.try_into().expect("8 bytes"));
        let declared_nodes =
            u64::from_le_bytes(c.take(8, "base link")?.try_into().expect("8 bytes"));
        match base_checksum {
            None => {
                return Err(WireError::BaseRequired {
                    checksum: declared_checksum,
                    nodes: declared_nodes,
                })
            }
            Some(found) => {
                if declared_checksum != found || declared_nodes != nodes.len() as u64 {
                    return Err(WireError::BaseMismatch {
                        expected_checksum: declared_checksum,
                        expected_nodes: declared_nodes,
                        found_checksum: found,
                        found_nodes: nodes.len() as u64,
                    });
                }
            }
        }
    } else if !first {
        return Err(WireError::Malformed {
            detail: "full snapshot in the middle of a chain — only the first layer may \
                     be full"
                .into(),
        });
    }

    // Symbol table (layer-local: every layer carries its own spellings).
    let symbol_count = c.varint("symbol table")?;
    let mut symbols: Vec<String> = Vec::new();
    for _ in 0..symbol_count {
        symbols.push(c.str("symbol table")?.to_owned());
    }

    // Node table, bottom-up: every child reference resolves into the
    // combined prefix decoded so far (base layers included), and every
    // decoded node goes straight through the interning constructors.
    let mut columnar_records = 0u64;
    for _ in 0..header.node_count {
        let tag = c.u8("node table")?;
        let node = match tag {
            NODE_TUPLE => {
                let len = c.varint("node table")?;
                let mut entries: Vec<(Attr, Object)> = Vec::new();
                for _ in 0..len {
                    let ix = c.varint("node table")?;
                    let name = symbols
                        .get(usize::try_from(ix).unwrap_or(usize::MAX))
                        .ok_or_else(|| WireError::Malformed {
                            detail: format!(
                                "attribute symbol index {ix} out of range ({} symbols)",
                                symbols.len()
                            ),
                        })?;
                    let value = get_value(&mut c, "node table", nodes, &symbols, false)?;
                    entries.push((Attr::new(name), value));
                }
                Object::try_tuple(entries).map_err(|e| WireError::Malformed {
                    detail: format!("invalid tuple node: {e}"),
                })?
            }
            NODE_SET => {
                let len = c.varint("node table")?;
                let mut elements: Vec<Object> = Vec::new();
                for _ in 0..len {
                    elements.push(get_value(&mut c, "node table", nodes, &symbols, false)?);
                }
                Object::set(elements)
            }
            NODE_FLAT_SET if header.version == FORMAT_VERSION_COLUMNAR => {
                columnar_records += 1;
                decode_flat_set(&mut c, nodes, &symbols)?
            }
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    context: "node table",
                })
            }
        };
        nodes.push(node);
    }
    if columnar_records != u64::from(header.columnar) {
        return Err(WireError::Malformed {
            detail: format!(
                "header declares {} columnar records, the node table contains {columnar_records}",
                header.columnar
            ),
        });
    }

    // Roots and metadata.
    let mut roots: Vec<Object> = Vec::new();
    for _ in 0..header.root_count {
        roots.push(get_value(&mut c, "root table", nodes, &symbols, true)?);
    }
    let meta_len = c.varint("metadata")?;
    let meta_len = usize::try_from(meta_len).map_err(|_| WireError::Malformed {
        detail: format!("metadata length {meta_len} exceeds addressable memory"),
    })?;
    let meta = c.take(meta_len, "metadata")?.to_vec();
    if c.remaining() != 0 {
        return Err(WireError::Malformed {
            detail: format!(
                "{} trailing bytes after the snapshot payload",
                c.remaining()
            ),
        });
    }
    Ok(Layer {
        roots,
        meta,
        checksum: header.checksum,
    })
}

/// Reads one **full** snapshot from `r`, re-interning every node
/// bottom-up through the canonicalizing constructors — see the module
/// docs for why the result is structurally identical to what was written
/// and deduplicates against nodes already live in this process's store.
///
/// A version-2 delta is rejected with [`WireError::BaseRequired`]: deltas
/// only restore as a chain ([`read_chain`] / [`load_chain`]).
pub fn read_snapshot<R: Read>(r: R) -> Result<Snapshot, WireError> {
    let mut nodes = Vec::new();
    let layer = read_layer(r, &mut nodes, None, true)?;
    Ok(Snapshot {
        roots: layer.roots,
        meta: layer.meta,
    })
}

/// Restores a snapshot **chain** — one full layer followed by zero or
/// more deltas, oldest first — returning the last layer's snapshot (its
/// roots and metadata) and a [`SnapshotHandle`] for writing further
/// deltas against the restored state.
///
/// Every link is verified: a delta whose declared base identity (payload
/// checksum + cumulative node count) does not match the layers restored
/// before it fails with [`WireError::BaseMismatch`]; chains deeper than
/// [`MAX_CHAIN_DEPTH`] fail with [`WireError::ChainTooDeep`]; an empty
/// chain is [`WireError::Malformed`].
pub fn read_chain<R, I>(layers: I) -> Result<(Snapshot, SnapshotHandle), WireError>
where
    R: Read,
    I: IntoIterator<Item = R>,
{
    read_chain_observed(layers, |_, _| {})
}

/// A [`SnapshotHandle`] over the combined `nodes` restored so far, whose
/// newest layer hashed to `checksum`.
fn handle_from(nodes: &[Object], checksum: u64) -> SnapshotHandle {
    let mut locals: FxHashMap<NodeId, u64> = FxHashMap::default();
    locals.reserve(nodes.len());
    for (ix, node) in nodes.iter().enumerate() {
        locals.insert(
            node.node_id().expect("decoded nodes are composites"),
            ix as u64,
        );
    }
    SnapshotHandle {
        checksum,
        count: nodes.len() as u64,
        locals,
    }
}

/// [`read_chain`] with a per-layer observer: after each layer decodes,
/// `observe(depth, state)` sees the chain-so-far (depth is 1-based).
/// This is how [`compact_chain`] captures the first layer's handle
/// without restoring the base twice.
fn read_chain_observed<R, I>(
    layers: I,
    mut observe: impl FnMut(usize, &ChainState<'_>),
) -> Result<(Snapshot, SnapshotHandle), WireError>
where
    R: Read,
    I: IntoIterator<Item = R>,
{
    let mut nodes: Vec<Object> = Vec::new();
    let mut prev_checksum: Option<u64> = None;
    let mut last: Option<(Vec<Object>, Vec<u8>)> = None;
    let mut depth = 0usize;
    for r in layers {
        depth += 1;
        if depth > MAX_CHAIN_DEPTH {
            return Err(WireError::ChainTooDeep { depth });
        }
        let layer = read_layer(r, &mut nodes, prev_checksum, depth == 1)?;
        prev_checksum = Some(layer.checksum);
        observe(
            depth,
            &ChainState {
                nodes: &nodes,
                checksum: layer.checksum,
            },
        );
        last = Some((layer.roots, layer.meta));
    }
    let Some((roots, meta)) = last else {
        return Err(WireError::Malformed {
            detail: "empty snapshot chain".into(),
        });
    };
    let handle = handle_from(&nodes, prev_checksum.expect("at least one layer was read"));
    Ok((Snapshot { roots, meta }, handle))
}

/// What [`read_chain_observed`] shows its observer after each layer.
struct ChainState<'a> {
    nodes: &'a [Object],
    checksum: u64,
}

impl ChainState<'_> {
    fn handle(&self) -> SnapshotHandle {
        handle_from(self.nodes, self.checksum)
    }
}

/// [`read_snapshot`] from a file.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Snapshot, WireError> {
    let file = std::fs::File::open(path.as_ref())?;
    read_snapshot(std::io::BufReader::new(file))
}

/// [`read_chain`] from files: `layers[0]` is the full base, the rest are
/// deltas in write order.
pub fn load_chain<P: AsRef<Path>>(layers: &[P]) -> Result<(Snapshot, SnapshotHandle), WireError> {
    if layers.len() > MAX_CHAIN_DEPTH {
        return Err(WireError::ChainTooDeep {
            depth: layers.len(),
        });
    }
    let mut files = Vec::with_capacity(layers.len());
    for p in layers {
        files.push(std::io::BufReader::new(std::fs::File::open(p.as_ref())?));
    }
    read_chain(files)
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

/// How [`compact_chain`] rewrites a chain into fewer layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compaction {
    /// Rewrite the whole chain as a single **full** (version 1) snapshot:
    /// self-contained, readable by any `co-wire` since version 1.
    Full,
    /// Merge every delta into a single **delta** (version 2) against the
    /// chain's first layer: the base file is reused as-is, and the new
    /// layer carries the union of all the deltas' new nodes. Useful when
    /// the base is large, replicated, or immutable.
    Rebase,
}

/// Rewrites the chain `layers` (oldest first) as `out`: one full
/// snapshot, or one delta against the chain's first layer, per `mode`.
/// The last layer's roots and metadata are preserved; intermediate
/// layers' are compacted away. Returns the write stats and a handle onto
/// the compacted snapshot (for `Rebase`, the first layer plus the merged
/// delta).
pub fn compact_chain<P: AsRef<Path>>(
    layers: &[P],
    out: impl AsRef<Path>,
    mode: Compaction,
) -> Result<(WriteStats, SnapshotHandle), WireError> {
    match mode {
        Compaction::Full => {
            let (snap, _) = load_chain(layers)?;
            save_to_path_handle(out, &snap.roots, &snap.meta)
        }
        Compaction::Rebase => {
            // One pass: restore the whole chain, capturing the first
            // layer's handle on the way through (the rebase target).
            if layers.len() > MAX_CHAIN_DEPTH {
                return Err(WireError::ChainTooDeep {
                    depth: layers.len(),
                });
            }
            let mut files = Vec::with_capacity(layers.len());
            for p in layers {
                files.push(std::io::BufReader::new(std::fs::File::open(p.as_ref())?));
            }
            let mut base: Option<SnapshotHandle> = None;
            let (snap, _) = read_chain_observed(files, |depth, state| {
                if depth == 1 {
                    base = Some(state.handle());
                }
            })?;
            let base = base.expect("a non-empty chain has a first layer");
            save_delta_to_path(out, &snap.roots, &snap.meta, &base)
        }
    }
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// What [`describe`] reports about a snapshot file, without restoring
/// (re-interning) any of it: the header fields, checksum-verified, plus
/// the base link for deltas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version ([`FORMAT_VERSION`], [`FORMAT_VERSION_DELTA`], or
    /// [`FORMAT_VERSION_COLUMNAR`]).
    pub version: u32,
    /// Node records in this file (for a delta: new nodes only).
    pub nodes: u64,
    /// Root values in this file.
    pub roots: u64,
    /// Payload bytes (everything after the 48-byte header).
    pub payload_bytes: u64,
    /// Total file bytes, header included.
    pub total_bytes: u64,
    /// FNV-1a-64 payload checksum — verified against the payload before
    /// this struct is returned, and the identity the next delta in a
    /// chain names this snapshot by.
    pub checksum: u64,
    /// The base this delta was written against; `None` for full
    /// snapshots.
    pub base: Option<BaseId>,
    /// Columnar records in the node table (nonzero exactly when
    /// `version` is [`FORMAT_VERSION_COLUMNAR`]).
    pub columnar_sets: u64,
}

impl SnapshotInfo {
    /// Whether this is a delta (version 2) snapshot needing a base chain.
    pub fn is_delta(&self) -> bool {
        self.base.is_some()
    }
}

impl std::fmt::Display for SnapshotInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.base {
            None => write!(
                f,
                "co-wire v{} {}snapshot: {} nodes, {} roots, {} payload bytes \
                 ({} total), checksum {:#018x}",
                self.version,
                if self.version == FORMAT_VERSION_COLUMNAR {
                    "columnar full "
                } else {
                    "full "
                },
                self.nodes,
                self.roots,
                self.payload_bytes,
                self.total_bytes,
                self.checksum
            ),
            Some(base) => write!(
                f,
                "co-wire v{} delta snapshot: {} new nodes over base {:#018x} ({} nodes), \
                 {} roots, {} payload bytes ({} total), checksum {:#018x}",
                self.version,
                self.nodes,
                base.checksum,
                base.nodes,
                self.roots,
                self.payload_bytes,
                self.total_bytes,
                self.checksum
            ),
        }
    }
}

/// Inspects the snapshot at `path` without restoring it: validates the
/// header, verifies the payload checksum, and reports the format
/// version, counts, sizes, and (for deltas) the base identity. Unknown
/// versions are [`WireError::UnsupportedVersion`] — the same hard error
/// every reader entry point gives, never a best-effort parse.
pub fn describe(path: impl AsRef<Path>) -> Result<SnapshotInfo, WireError> {
    let file = std::fs::File::open(path.as_ref())?;
    describe_snapshot(std::io::BufReader::new(file))
}

/// [`describe`] over any reader.
pub fn describe_snapshot<R: Read>(mut r: R) -> Result<SnapshotInfo, WireError> {
    let header = read_header(&mut r)?;
    let payload = read_payload(&mut r, &header)?;
    let base = if header.version == FORMAT_VERSION_DELTA {
        let mut c = Cursor::new(&payload);
        let checksum = u64::from_le_bytes(c.take(8, "base link")?.try_into().expect("8 bytes"));
        let nodes = u64::from_le_bytes(c.take(8, "base link")?.try_into().expect("8 bytes"));
        Some(BaseId { checksum, nodes })
    } else {
        None
    };
    Ok(SnapshotInfo {
        version: header.version,
        nodes: header.node_count,
        roots: header.root_count,
        payload_bytes: payload.len() as u64,
        total_bytes: (HEADER_LEN + payload.len()) as u64,
        checksum: header.checksum,
        base,
        columnar_sets: u64::from(header.columnar),
    })
}

// ---------------------------------------------------------------------------
// Naive-encoding accounting (the sharing-ratio denominator)
// ---------------------------------------------------------------------------

/// The size in bytes this snapshot's *values* would occupy in a naive
/// tree encoding — same tags, varints, and inline strings, but **no node
/// table and no symbol table**: every shared subtree re-encoded at every
/// occurrence, every attribute name spelled out inline. The ratio
/// `naive_encoding_len / WriteStats::payload_bytes` is the sharing factor
/// a snapshot gains from hash-consing (≥ 1; equal only for structures
/// with no sharing at all).
///
/// Computed arithmetically over the DAG — a bottom-up pass over the
/// distinct nodes (no call-stack recursion, so graph depth is bounded by
/// heap, like the writer's own walk) — so it is O(nodes) even when the
/// naive expansion itself would be exponential; saturates at `u64::MAX`
/// rather than overflowing.
pub fn naive_encoding_len(roots: &[Object]) -> u64 {
    fn varint_len(v: u64) -> u64 {
        (64 - u64::from(v.leading_zeros())).max(1).div_ceil(7)
    }
    /// The inline length of a non-composite value; `None` for composites
    /// (their lengths come from the memo).
    fn leaf_len(o: &Object) -> Option<u64> {
        match o {
            Object::Bottom | Object::Top | Object::Atom(Atom::Bool(_)) => Some(1),
            Object::Atom(Atom::Int(v)) => Some(1 + varint_len(((v << 1) ^ (v >> 63)) as u64)),
            Object::Atom(Atom::Float(_)) => Some(9),
            Object::Atom(Atom::Str(s)) => Some(1 + varint_len(s.len() as u64) + s.len() as u64),
            Object::Tuple(_) | Object::Set(_) => None,
        }
    }
    // Postorder: every composite child's length is memoized before its
    // parent is visited.
    let mut memo: FxHashMap<co_object::NodeId, u64> = FxHashMap::default();
    visit_unique_postorder(roots.iter(), |o| {
        let id = o.node_id().expect("the walk yields composites");
        let mut n: u64 = 1 + varint_len(o.children().len() as u64);
        if let Object::Tuple(t) = o {
            for (attr, _) in t.entries() {
                let name = attr.name();
                n = n.saturating_add(varint_len(name.len() as u64) + name.len() as u64);
            }
        }
        for child in o.children() {
            let len =
                leaf_len(child).unwrap_or_else(|| memo[&child.node_id().expect("composite child")]);
            n = n.saturating_add(len);
        }
        memo.insert(id, n);
    });
    roots.iter().fold(0u64, |acc, r| {
        let len = leaf_len(r).unwrap_or_else(|| memo[&r.node_id().expect("composite root")]);
        acc.saturating_add(len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    #[test]
    fn empty_snapshot_roundtrips() {
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &[], b"hello").unwrap();
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.version, FORMAT_VERSION);
        assert_eq!(stats.total_bytes as usize, bytes.len());
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert!(snap.roots.is_empty());
        assert_eq!(snap.meta, b"hello");
    }

    #[test]
    fn atoms_and_extremes_roundtrip_as_roots() {
        let roots = vec![
            Object::Bottom,
            Object::Top,
            obj!(42),
            obj!(-7),
            Object::float(2.5),
            Object::bool(true),
            Object::str("héllo wörld"),
        ];
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &roots, b"").unwrap();
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, roots);
    }

    #[test]
    fn nested_objects_roundtrip_to_the_same_nodes() {
        let o = obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}]
        }]);
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, std::slice::from_ref(&o), b"").unwrap();
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, vec![o.clone()]);
        // Same process: re-interning must find the identical node.
        assert_eq!(snap.roots[0].node_id(), o.node_id());
    }

    #[test]
    fn shared_subtrees_are_encoded_once() {
        // 2^20 tree expansion, 21 distinct nodes.
        let mut level = obj!({ base });
        for _ in 0..20 {
            level = Object::tuple([("l", level.clone()), ("r", level)]);
        }
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &[level.clone()], b"").unwrap();
        assert_eq!(stats.nodes, 21);
        assert!(
            bytes.len() < 1024,
            "a 21-node DAG must stay tiny on disk, got {}",
            bytes.len()
        );
        let naive = naive_encoding_len(&[level.clone()]);
        assert!(
            naive / stats.payload_bytes > 1000,
            "sharing ratio must be enormous here: naive {naive} vs {}",
            stats.payload_bytes
        );
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots[0], level);
    }

    #[test]
    fn repeated_roots_share_the_table() {
        let a = obj!({1, 2, 3});
        let roots = vec![a.clone(), a.clone(), a];
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"").unwrap();
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.roots, 3);
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, roots);
        assert_eq!(snap.roots[0].node_id(), snap.roots[2].node_id());
    }

    #[test]
    fn save_and_load_paths() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("co_wire_test_{}.cow", std::process::id()));
        let o = obj!([r: {[a: 1], [a: 2]}]);
        save_to_path(&path, std::slice::from_ref(&o), b"meta").unwrap();
        let snap = load_from_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(snap.roots, vec![o]);
        assert_eq!(snap.meta, b"meta");
    }

    /// A flat relation of `rows` same-schema atom tuples — large enough
    /// (≥ the default `CO_COLUMNAR_MIN_ROWS` of 64) to qualify for a
    /// columnar arena without touching the process-global threshold.
    fn flat_relation(rows: i64) -> Object {
        Object::set((0..rows).map(|i| {
            Object::tuple([
                ("id", Object::int(i)),
                ("name", Object::str(format!("n{}", i % 7))),
                ("score", Object::float(i as f64 / 2.0)),
            ])
        }))
    }

    #[test]
    fn columnar_snapshot_roundtrips_to_identical_nodes() {
        let rel = flat_relation(100);
        let wrapper = Object::tuple([("r", rel.clone())]);
        let mut bytes = Vec::new();
        let (stats, handle) =
            write_snapshot_columnar(&mut bytes, std::slice::from_ref(&wrapper), b"m").unwrap();
        assert_eq!(stats.version, FORMAT_VERSION_COLUMNAR);
        assert_eq!(stats.columnar_sets, 1);
        // The 100 row tuples were pruned: only the set and the wrapper remain.
        assert_eq!(stats.nodes, 2);
        assert_eq!(handle.nodes(), 2);
        assert!(stats.to_string().contains("1 columnar relations"));

        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, vec![wrapper.clone()]);
        assert_eq!(snap.roots[0].node_id(), wrapper.node_id());
        assert_eq!(snap.meta, b"m");

        let info = describe_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(info.version, FORMAT_VERSION_COLUMNAR);
        assert!(!info.is_delta());
        assert!(info.to_string().contains("columnar full snapshot"));
    }

    #[test]
    fn columnar_encoding_is_smaller_than_row_encoding() {
        let rel = flat_relation(500);
        let mut row_bytes = Vec::new();
        write_snapshot(&mut row_bytes, std::slice::from_ref(&rel), b"").unwrap();
        let mut col_bytes = Vec::new();
        let (stats, _) =
            write_snapshot_columnar(&mut col_bytes, std::slice::from_ref(&rel), b"").unwrap();
        assert_eq!(stats.columnar_sets, 1);
        assert!(
            col_bytes.len() * 10 < row_bytes.len() * 8,
            "columnar must be well under 80% of the row encoding: {} vs {}",
            col_bytes.len(),
            row_bytes.len()
        );
    }

    #[test]
    fn columnar_write_without_flat_relations_is_plain_version_1() {
        let o = obj!([family: {[name: a, children: {[name: b]}]}, n: 3]);
        let mut plain = Vec::new();
        write_snapshot(&mut plain, std::slice::from_ref(&o), b"x").unwrap();
        let mut columnar = Vec::new();
        let (stats, _) =
            write_snapshot_columnar(&mut columnar, std::slice::from_ref(&o), b"x").unwrap();
        assert_eq!(stats.version, FORMAT_VERSION);
        assert_eq!(stats.columnar_sets, 0);
        assert_eq!(plain, columnar, "the fallback must be byte-identical");
    }

    #[test]
    fn externally_referenced_rows_keep_their_node_records() {
        let rel = flat_relation(80);
        let pinned_row = rel.as_set().unwrap().elements()[3].clone();
        // The row is both inside the columnar relation and a root — it
        // must stay in the node table for the root reference to resolve.
        let roots = vec![rel.clone(), pinned_row.clone()];
        let mut bytes = Vec::new();
        let (stats, _) = write_snapshot_columnar(&mut bytes, &roots, b"").unwrap();
        assert_eq!(stats.columnar_sets, 1);
        assert_eq!(stats.nodes, 2, "the relation plus the one pinned row");
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, roots);
        assert_eq!(snap.roots[1].node_id(), pinned_row.node_id());
    }

    #[test]
    fn deltas_against_a_columnar_base_roundtrip() {
        let v1 = flat_relation(70);
        let mut base = Vec::new();
        let (_, handle) =
            write_snapshot_columnar(&mut base, std::slice::from_ref(&v1), b"").unwrap();
        let v2 = co_object::lattice::union(&v1, &Object::set([Object::int(999)]));
        let mut delta = Vec::new();
        let (stats, _) =
            write_delta_snapshot(&mut delta, std::slice::from_ref(&v2), b"", &handle).unwrap();
        assert_eq!(stats.version, FORMAT_VERSION_DELTA);
        let (snap, _) = read_chain([base.as_slice(), delta.as_slice()]).unwrap();
        assert_eq!(snap.roots, vec![v2.clone()]);
        assert_eq!(snap.roots[0].node_id(), v2.node_id());
    }

    #[test]
    fn version_3_without_columnar_records_is_rejected() {
        // A plain v1 snapshot whose version byte was flipped to 3 must
        // fail typed, not silently reparse.
        let o = obj!({1, 2, 3});
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, std::slice::from_ref(&o), b"").unwrap();
        bytes[8] = 3;
        match read_snapshot(bytes.as_slice()) {
            Err(WireError::Malformed { detail }) => {
                assert!(detail.contains("zero columnar records"), "got: {detail}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The flip fails at the header, so `describe` refuses it too.
        assert!(matches!(
            describe_snapshot(bytes.as_slice()),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn columnar_tag_outside_version_3_is_a_bad_tag() {
        let rel = flat_relation(90);
        let mut bytes = Vec::new();
        write_snapshot_columnar(&mut bytes, std::slice::from_ref(&rel), b"").unwrap();
        // A version flip alone dies at the header: v1 demands a zeroed
        // reserved field, which v3 uses for the columnar count.
        let mut flipped = bytes.clone();
        flipped[8] = 1;
        assert!(matches!(
            read_snapshot(flipped.as_slice()),
            Err(WireError::Malformed { .. })
        ));
        // Forging a fully self-consistent v1 header over the same
        // payload still fails: the columnar tag is not a v1 node tag.
        let mut forged = bytes;
        forged[8] = 1;
        forged[12..16].fill(0);
        match read_snapshot(forged.as_slice()) {
            Err(WireError::BadTag { tag, .. }) => assert_eq!(tag, NODE_FLAT_SET),
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn naive_len_counts_every_occurrence() {
        let leaf = obj!({1, 2});
        let shared = Object::tuple([("l", leaf.clone()), ("r", leaf.clone())]);
        let single = Object::tuple([("l", leaf.clone())]);
        let n_leaf = naive_encoding_len(&[leaf]);
        let n_single = naive_encoding_len(&[single]);
        let n_shared = naive_encoding_len(&[shared]);
        // The shared tuple pays for the leaf twice.
        assert!(n_shared > n_single);
        assert!(n_shared >= 2 * n_leaf);
    }

    #[test]
    fn delta_encodes_only_new_nodes_and_chains_restore() {
        let v1 = obj!([db: {[k: 1, v: {a, b}], [k: 2, v: {a, b}]}]);
        let mut base = Vec::new();
        let (base_stats, handle) =
            write_snapshot_handle(&mut base, std::slice::from_ref(&v1), b"m1").unwrap();
        assert_eq!(base_stats.version, FORMAT_VERSION);
        assert_eq!(handle.nodes(), base_stats.nodes);

        // One new fact: the new tuple, the grown relation set, the grown
        // wrapper — everything else rides on base references.
        let v2 = obj!([db: {[k: 1, v: {a, b}], [k: 2, v: {a, b}], [k: 3, v: {a, b}]}]);
        let mut delta = Vec::new();
        let (delta_stats, handle2) =
            write_delta_snapshot(&mut delta, std::slice::from_ref(&v2), b"m2", &handle).unwrap();
        assert_eq!(delta_stats.version, FORMAT_VERSION_DELTA);
        assert_eq!(delta_stats.nodes, 3, "tuple + set + wrapper are new");
        assert!(delta_stats.base_nodes_reused >= 1);
        assert_eq!(handle2.nodes(), handle.nodes() + 3);

        let (snap, restored_handle) = read_chain([base.as_slice(), delta.as_slice()]).unwrap();
        assert_eq!(snap.roots, vec![v2.clone()]);
        assert_eq!(snap.meta, b"m2");
        assert_eq!(snap.roots[0].node_id(), v2.node_id());
        assert_eq!(restored_handle.nodes(), handle2.nodes());
        assert_eq!(restored_handle.checksum(), handle2.checksum());
    }

    #[test]
    fn a_chain_of_three_deltas_restores_the_final_state() {
        let mut layers: Vec<Vec<u8>> = Vec::new();
        let mut db = obj!({ 0 });
        let mut bytes = Vec::new();
        let (_, mut handle) =
            write_snapshot_handle(&mut bytes, std::slice::from_ref(&db), b"0").unwrap();
        layers.push(bytes);
        for i in 1..=3i64 {
            db = co_object::lattice::union(&db, &Object::set([Object::int(i)]));
            let mut bytes = Vec::new();
            let (_, next) = write_delta_snapshot(
                &mut bytes,
                std::slice::from_ref(&db),
                i.to_string().as_bytes(),
                &handle,
            )
            .unwrap();
            handle = next;
            layers.push(bytes);
        }
        let (snap, _) = read_chain(layers.iter().map(|l| l.as_slice())).unwrap();
        assert_eq!(snap.roots, vec![obj!({0, 1, 2, 3})]);
        assert_eq!(snap.meta, b"3");
    }

    #[test]
    fn a_delta_alone_demands_its_base() {
        let v1 = obj!({ 1 });
        let mut base = Vec::new();
        let (_, handle) = write_snapshot_handle(&mut base, &[v1], b"").unwrap();
        let mut delta = Vec::new();
        write_delta_snapshot(&mut delta, &[obj!({1, 2})], b"", &handle).unwrap();
        let err = read_snapshot(delta.as_slice()).unwrap_err();
        assert!(
            matches!(err, WireError::BaseRequired { checksum, nodes }
                if checksum == handle.checksum() && nodes == handle.nodes()),
            "got: {err}"
        );
    }

    #[test]
    fn the_wrong_base_is_rejected() {
        let mut base_a = Vec::new();
        let (_, handle_a) = write_snapshot_handle(&mut base_a, &[obj!({ 1 })], b"").unwrap();
        let mut base_b = Vec::new();
        write_snapshot_handle(&mut base_b, &[obj!({ 2 })], b"").unwrap();
        let mut delta = Vec::new();
        write_delta_snapshot(&mut delta, &[obj!({1, 9})], b"", &handle_a).unwrap();
        let err = read_chain([base_b.as_slice(), delta.as_slice()]).unwrap_err();
        assert!(matches!(err, WireError::BaseMismatch { .. }), "got: {err}");
    }

    #[test]
    fn compaction_full_and_rebase() {
        let dir = std::env::temp_dir().join(format!("co_wire_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = obj!([db: {1, 2}]);
        let (_, h1) =
            save_to_path_handle(dir.join("0.cow"), std::slice::from_ref(&v1), b"a").unwrap();
        let v2 = obj!([db: {1, 2, 3}]);
        let (_, h2) =
            save_delta_to_path(dir.join("1.cow"), std::slice::from_ref(&v2), b"b", &h1).unwrap();
        let v3 = obj!([db: {1, 2, 3, 4}]);
        save_delta_to_path(dir.join("2.cow"), std::slice::from_ref(&v3), b"c", &h2).unwrap();
        let chain = [dir.join("0.cow"), dir.join("1.cow"), dir.join("2.cow")];

        // Full: a single self-contained v1 file.
        compact_chain(&chain, dir.join("full.cow"), Compaction::Full).unwrap();
        let info = describe(dir.join("full.cow")).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        let snap = load_from_path(dir.join("full.cow")).unwrap();
        assert_eq!(snap.roots, vec![v3.clone()]);
        assert_eq!(snap.meta, b"c");

        // Rebase: base + one merged delta replaces base + two deltas.
        compact_chain(&chain, dir.join("merged.cow"), Compaction::Rebase).unwrap();
        let info = describe(dir.join("merged.cow")).unwrap();
        assert_eq!(info.version, FORMAT_VERSION_DELTA);
        assert_eq!(info.base.unwrap().checksum, h1.checksum());
        let (snap, _) = load_chain(&[dir.join("0.cow"), dir.join("merged.cow")]).unwrap();
        assert_eq!(snap.roots, vec![v3]);
        assert_eq!(snap.meta, b"c");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chains_deeper_than_the_cap_are_rejected() {
        // A real chain one layer past the cap: the reader must refuse the
        // excess layer (after restoring the permitted prefix), typed.
        let mut layers: Vec<Vec<u8>> = Vec::new();
        let mut bytes = Vec::new();
        let (_, mut handle) = write_snapshot_handle(&mut bytes, &[obj!({ 0 })], b"").unwrap();
        layers.push(bytes);
        for i in 1..=MAX_CHAIN_DEPTH as i64 {
            let db = Object::set((0..=i).map(Object::int));
            let mut bytes = Vec::new();
            let (_, next) =
                write_delta_snapshot(&mut bytes, std::slice::from_ref(&db), b"", &handle).unwrap();
            handle = next;
            layers.push(bytes);
        }
        assert_eq!(layers.len(), MAX_CHAIN_DEPTH + 1);
        let err = read_chain(layers.iter().map(|l| l.as_slice())).unwrap_err();
        assert!(
            matches!(err, WireError::ChainTooDeep { depth } if depth == MAX_CHAIN_DEPTH + 1),
            "got: {err}"
        );
        // The cap itself is fine.
        let (snap, _) = read_chain(layers[..MAX_CHAIN_DEPTH].iter().map(|l| l.as_slice())).unwrap();
        assert_eq!(snap.roots.len(), 1);
        // An empty chain is typed, not a panic.
        let err = read_chain(std::iter::empty::<&[u8]>()).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }), "got: {err}");
    }

    #[test]
    fn temp_names_are_recognized() {
        assert!(is_snapshot_temp("db.cow.tmp.1234.7"));
        assert!(is_snapshot_temp("/var/data/db.cow.tmp.99.0"));
        assert!(!is_snapshot_temp("db.cow"));
        assert!(!is_snapshot_temp("db.cow.tmp"));
        assert!(!is_snapshot_temp("db.cow.tmp.12ab.7"));
        assert!(!is_snapshot_temp("db.cow.tmp.1.2.3"));
    }
}

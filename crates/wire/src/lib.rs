//! # co-wire — hash-cons-aware binary snapshots
//!
//! The object store ([`co_object::store`]) hash-conses every composite:
//! a deeply shared structure is a DAG of distinct interned nodes, however
//! large its tree expansion. This crate turns that in-memory sharing into
//! an **on-disk asset**: a snapshot serializes a set of root objects as a
//! topologically-ordered *node table* in which each distinct node is
//! encoded exactly once and referenced by a dense local id — so the file
//! size tracks the store's node count, not the exponential tree size.
//!
//! # Format (version 1)
//!
//! ```text
//! header   48 bytes  magic "COWIRE\r\n" · version u32 · reserved u32
//!                    · node count u64 · root count u64
//!                    · payload length u64 · FNV-1a-64 checksum u64
//! payload            symbol table   varint count, then per symbol a
//!                                   length-prefixed UTF-8 string
//!                                   (attribute names + string atoms,
//!                                   each distinct spelling once)
//!                    node table     `node count` records, children
//!                                   strictly before parents; each record
//!                                   is a tuple/set tag, a child count,
//!                                   and per child an attribute symbol
//!                                   (tuples only) plus a value
//!                    root table     `root count` values
//!                    metadata       varint length + opaque bytes for the
//!                                   embedding application (co-engine
//!                                   stores its program and config here)
//! ```
//!
//! A *value* is one tagged unit: ⊥, ⊤, an inline atom (bool/int/float,
//! strings by symbol index), or a backward reference into the node table.
//! Forward or out-of-range references are a typed error — the topological
//! order is what lets the reader work in one streaming pass.
//!
//! # Re-interning
//!
//! The reader rebuilds each node **bottom-up through the ordinary
//! canonicalizing constructors** and the hash-consing store. Two
//! consequences:
//!
//! - a loaded snapshot is structurally bit-identical to what was saved
//!   (canonical form is unique, whatever attribute-interning order the
//!   reading process happens to have), and
//! - loading **re-deduplicates against whatever is already live**: nodes
//!   the process already interned are recognized, not duplicated, so
//!   restoring a snapshot into a warm server costs only the nodes it did
//!   not already have.
//!
//! Corrupt, truncated, or wrong-version input never panics — every
//! failure is a [`WireError`] with a precise rendering.
//!
//! ```
//! use co_object::obj;
//!
//! let shared = obj!({[k: 1, v: {a, b}], [k: 2, v: {a, b}]});
//! let mut bytes = Vec::new();
//! co_wire::write_snapshot(&mut bytes, &[shared.clone()], b"").unwrap();
//! let snap = co_wire::read_snapshot(bytes.as_slice()).unwrap();
//! assert_eq!(snap.roots, vec![shared.clone()]);
//! // Same process, same content: re-interning finds the same node.
//! assert_eq!(snap.roots[0].node_id(), shared.node_id());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
mod error;

pub use error::WireError;

use co_object::walk::visit_unique_postorder;
use co_object::{Atom, Attr, Object};
use codec::{checksum, put_str, put_varint, put_varint_i64, Cursor};
use rustc_hash::FxHashMap;
use std::io::{Read, Write};
use std::path::Path;

/// The eight magic bytes opening every snapshot. The `\r\n` tail detects
/// line-ending translation by transfer tools that treated the file as
/// text.
pub const MAGIC: [u8; 8] = *b"COWIRE\r\n";

/// The format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed size of the snapshot header in bytes.
pub const HEADER_LEN: usize = 48;

// Node-record tags (node table).
const NODE_TUPLE: u8 = 0x10;
const NODE_SET: u8 = 0x11;

// Value tags (inside node records and the root table).
const VAL_BOTTOM: u8 = 0x00;
const VAL_TOP: u8 = 0x01;
const VAL_FALSE: u8 = 0x02;
const VAL_TRUE: u8 = 0x03;
const VAL_INT: u8 = 0x04;
const VAL_FLOAT: u8 = 0x05;
const VAL_STR: u8 = 0x06;
const VAL_NODE: u8 = 0x07;

/// A decoded snapshot: the root objects (re-interned, canonical) and the
/// embedding application's opaque metadata blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The root objects, in the order they were passed to the writer.
    pub roots: Vec<Object>,
    /// The opaque metadata blob the writer attached (empty if none).
    pub meta: Vec<u8>,
}

/// What one snapshot write produced — the inputs for capacity planning
/// and for the sharing-ratio accounting the benches record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Distinct composite nodes encoded (each exactly once).
    pub nodes: u64,
    /// Root values encoded.
    pub roots: u64,
    /// Distinct symbols (attribute names + string atoms) encoded.
    pub symbols: u64,
    /// Bytes of payload (everything after the header).
    pub payload_bytes: u64,
    /// Total bytes written, header included.
    pub total_bytes: u64,
}

impl WriteStats {
    /// Average on-disk payload bytes per distinct node; `None` for a
    /// snapshot of zero composite nodes.
    pub fn bytes_per_node(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.payload_bytes as f64 / self.nodes as f64)
    }
}

impl std::fmt::Display for WriteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot: {} nodes, {} roots, {} symbols, {} payload bytes ({} total)",
            self.nodes, self.roots, self.symbols, self.payload_bytes, self.total_bytes
        )
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Interns a symbol (attribute name or string-atom payload) into the
/// write-side symbol table, returning its dense index.
fn symbol_index(
    symbols: &mut Vec<String>,
    by_name: &mut FxHashMap<String, u64>,
    name: &str,
) -> u64 {
    if let Some(&ix) = by_name.get(name) {
        return ix;
    }
    let ix = symbols.len() as u64;
    symbols.push(name.to_owned());
    by_name.insert(name.to_owned(), ix);
    ix
}

/// Encodes one value (an immediate child or a root) into `out`.
fn put_value(
    out: &mut Vec<u8>,
    o: &Object,
    locals: &FxHashMap<co_object::NodeId, u64>,
    symbols: &mut Vec<String>,
    by_name: &mut FxHashMap<String, u64>,
) {
    match o {
        Object::Bottom => out.push(VAL_BOTTOM),
        Object::Top => out.push(VAL_TOP),
        Object::Atom(Atom::Bool(false)) => out.push(VAL_FALSE),
        Object::Atom(Atom::Bool(true)) => out.push(VAL_TRUE),
        Object::Atom(Atom::Int(v)) => {
            out.push(VAL_INT);
            put_varint_i64(out, *v);
        }
        Object::Atom(Atom::Float(v)) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&v.get().to_bits().to_le_bytes());
        }
        Object::Atom(Atom::Str(s)) => {
            out.push(VAL_STR);
            put_varint(out, symbol_index(symbols, by_name, s));
        }
        Object::Tuple(_) | Object::Set(_) => {
            let id = o.node_id().expect("composites have node ids");
            let local = locals[&id];
            out.push(VAL_NODE);
            put_varint(out, local);
        }
    }
}

/// Serializes `roots` (plus `meta`, an opaque blob the reader hands back
/// verbatim) as one snapshot into `w`. Each distinct interned node
/// reachable from the roots is encoded exactly once, children before
/// parents.
///
/// The writer holds strong references to every root for the whole write,
/// so a concurrent [`co_object::store::collect`] cannot free anything
/// mid-serialization; callers that also want the ids pinned across later
/// sweeps should pin roots themselves (see `Engine::checkpoint`).
pub fn write_snapshot<W: Write>(
    mut w: W,
    roots: &[Object],
    meta: &[u8],
) -> Result<WriteStats, WireError> {
    // Pass 1: the distinct-node table, children before parents.
    let mut nodes: Vec<Object> = Vec::new();
    visit_unique_postorder(roots.iter(), |o| nodes.push(o.clone()));
    let mut locals: FxHashMap<co_object::NodeId, u64> = FxHashMap::default();
    for (ix, node) in nodes.iter().enumerate() {
        locals.insert(node.node_id().expect("walk yields composites"), ix as u64);
    }

    // Pass 2: encode node records (interning symbols as they appear).
    let mut symbols: Vec<String> = Vec::new();
    let mut by_name: FxHashMap<String, u64> = FxHashMap::default();
    let mut table: Vec<u8> = Vec::new();
    for node in &nodes {
        match node {
            Object::Tuple(t) => {
                table.push(NODE_TUPLE);
                put_varint(&mut table, t.len() as u64);
                for (attr, value) in t.entries() {
                    let ix = symbol_index(&mut symbols, &mut by_name, &attr.name());
                    put_varint(&mut table, ix);
                    put_value(&mut table, value, &locals, &mut symbols, &mut by_name);
                }
            }
            Object::Set(s) => {
                table.push(NODE_SET);
                put_varint(&mut table, s.len() as u64);
                for element in s.elements() {
                    put_value(&mut table, element, &locals, &mut symbols, &mut by_name);
                }
            }
            _ => unreachable!("the unique walk only yields composites"),
        }
    }
    let mut root_table: Vec<u8> = Vec::new();
    for root in roots {
        put_value(&mut root_table, root, &locals, &mut symbols, &mut by_name);
    }

    // Assemble the payload: symbols, nodes, roots, metadata.
    let mut payload: Vec<u8> = Vec::new();
    put_varint(&mut payload, symbols.len() as u64);
    for s in &symbols {
        put_str(&mut payload, s);
    }
    payload.extend_from_slice(&table);
    payload.extend_from_slice(&root_table);
    put_varint(&mut payload, meta.len() as u64);
    payload.extend_from_slice(meta);

    // Header last: it needs the counts and the payload checksum.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes()); // reserved
    header.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
    header.extend_from_slice(&(roots.len() as u64).to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&checksum(&payload).to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);

    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(WriteStats {
        nodes: nodes.len() as u64,
        roots: roots.len() as u64,
        symbols: symbols.len() as u64,
        payload_bytes: payload.len() as u64,
        total_bytes: (HEADER_LEN + payload.len()) as u64,
    })
}

/// [`write_snapshot`] to a file, atomically: the bytes go to a
/// same-directory temporary first and are renamed over `path` only once
/// fully written, so a crash mid-write can never leave a half-snapshot
/// under the final name.
pub fn save_to_path(
    path: impl AsRef<Path>,
    roots: &[Object],
    meta: &[u8],
) -> Result<WriteStats, WireError> {
    // Unique per process AND per call: two threads checkpointing to the
    // same destination concurrently must not interleave writes into one
    // temp inode (the loser's rename would install a corrupt file).
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut buffered = std::io::BufWriter::new(file);
        let stats = write_snapshot(&mut buffered, roots, meta)?;
        buffered
            .into_inner()
            .map_err(|e| e.into_error())?
            .sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(stats)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Decodes one value; composites must be backward references into the
/// already-decoded prefix of the node table.
fn get_value(
    c: &mut Cursor<'_>,
    context: &'static str,
    nodes: &[Object],
    symbols: &[String],
    allow_extremes: bool,
) -> Result<Object, WireError> {
    let tag = c.u8(context)?;
    match tag {
        VAL_BOTTOM | VAL_TOP if !allow_extremes => Err(WireError::Malformed {
            detail: format!(
                "{} inside a composite node (canonical nodes contain neither)",
                if tag == VAL_BOTTOM { "⊥" } else { "⊤" }
            ),
        }),
        VAL_BOTTOM => Ok(Object::Bottom),
        VAL_TOP => Ok(Object::Top),
        VAL_FALSE => Ok(Object::bool(false)),
        VAL_TRUE => Ok(Object::bool(true)),
        VAL_INT => Ok(Object::int(c.varint_i64(context)?)),
        VAL_FLOAT => {
            let bytes: [u8; 8] = c.take(8, context)?.try_into().expect("8 bytes");
            Ok(Object::float(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        VAL_STR => {
            let ix = c.varint(context)?;
            let s = symbols
                .get(usize::try_from(ix).unwrap_or(usize::MAX))
                .ok_or_else(|| WireError::Malformed {
                    detail: format!(
                        "symbol index {ix} out of range ({} symbols) in {context}",
                        symbols.len()
                    ),
                })?;
            Ok(Object::str(s))
        }
        VAL_NODE => {
            let id = c.varint(context)?;
            match usize::try_from(id).ok().and_then(|ix| nodes.get(ix)) {
                Some(node) => Ok(node.clone()),
                None => Err(WireError::DanglingRef {
                    id,
                    defined: nodes.len() as u64,
                }),
            }
        }
        tag => Err(WireError::BadTag { tag, context }),
    }
}

/// Reads one snapshot from `r`, re-interning every node bottom-up through
/// the canonicalizing constructors — see the module docs for why the
/// result is structurally identical to what was written and deduplicates
/// against nodes already live in this process's store.
pub fn read_snapshot<R: Read>(mut r: R) -> Result<Snapshot, WireError> {
    // Header.
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "header" }
        } else {
            WireError::Io(e)
        }
    })?;
    let magic: [u8; 8] = header[0..8].try_into().expect("8 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let node_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let root_count = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
    let declared_checksum = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));

    // Payload: read exactly the declared bytes, then verify the checksum
    // before trusting any of the structure.
    let payload_len = usize::try_from(payload_len).map_err(|_| WireError::Malformed {
        detail: format!("declared payload length {payload_len} exceeds addressable memory"),
    })?;
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(payload_len as u64)
        .read_to_end(&mut payload)?;
    if got < payload_len {
        return Err(WireError::Truncated { context: "payload" });
    }
    let actual = checksum(&payload);
    if actual != declared_checksum {
        return Err(WireError::ChecksumMismatch {
            expected: declared_checksum,
            actual,
        });
    }

    let mut c = Cursor::new(&payload);

    // Symbol table.
    let symbol_count = c.varint("symbol table")?;
    let mut symbols: Vec<String> = Vec::new();
    for _ in 0..symbol_count {
        symbols.push(c.str("symbol table")?.to_owned());
    }

    // Node table, bottom-up: every child reference resolves into the
    // prefix decoded so far, and every decoded node goes straight through
    // the interning constructors.
    let mut nodes: Vec<Object> = Vec::new();
    for _ in 0..node_count {
        let tag = c.u8("node table")?;
        let node = match tag {
            NODE_TUPLE => {
                let len = c.varint("node table")?;
                let mut entries: Vec<(Attr, Object)> = Vec::new();
                for _ in 0..len {
                    let ix = c.varint("node table")?;
                    let name = symbols
                        .get(usize::try_from(ix).unwrap_or(usize::MAX))
                        .ok_or_else(|| WireError::Malformed {
                            detail: format!(
                                "attribute symbol index {ix} out of range ({} symbols)",
                                symbols.len()
                            ),
                        })?;
                    let value = get_value(&mut c, "node table", &nodes, &symbols, false)?;
                    entries.push((Attr::new(name), value));
                }
                Object::try_tuple(entries).map_err(|e| WireError::Malformed {
                    detail: format!("invalid tuple node: {e}"),
                })?
            }
            NODE_SET => {
                let len = c.varint("node table")?;
                let mut elements: Vec<Object> = Vec::new();
                for _ in 0..len {
                    elements.push(get_value(&mut c, "node table", &nodes, &symbols, false)?);
                }
                Object::set(elements)
            }
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    context: "node table",
                })
            }
        };
        nodes.push(node);
    }

    // Roots and metadata.
    let mut roots: Vec<Object> = Vec::new();
    for _ in 0..root_count {
        roots.push(get_value(&mut c, "root table", &nodes, &symbols, true)?);
    }
    let meta_len = c.varint("metadata")?;
    let meta_len = usize::try_from(meta_len).map_err(|_| WireError::Malformed {
        detail: format!("metadata length {meta_len} exceeds addressable memory"),
    })?;
    let meta = c.take(meta_len, "metadata")?.to_vec();
    if c.remaining() != 0 {
        return Err(WireError::Malformed {
            detail: format!(
                "{} trailing bytes after the snapshot payload",
                c.remaining()
            ),
        });
    }
    Ok(Snapshot { roots, meta })
}

/// [`read_snapshot`] from a file.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Snapshot, WireError> {
    let file = std::fs::File::open(path.as_ref())?;
    read_snapshot(std::io::BufReader::new(file))
}

// ---------------------------------------------------------------------------
// Naive-encoding accounting (the sharing-ratio denominator)
// ---------------------------------------------------------------------------

/// The size in bytes this snapshot's *values* would occupy in a naive
/// tree encoding — same tags, varints, and inline strings, but **no node
/// table and no symbol table**: every shared subtree re-encoded at every
/// occurrence, every attribute name spelled out inline. The ratio
/// `naive_encoding_len / WriteStats::payload_bytes` is the sharing factor
/// a snapshot gains from hash-consing (≥ 1; equal only for structures
/// with no sharing at all).
///
/// Computed arithmetically over the DAG — a bottom-up pass over the
/// distinct nodes (no call-stack recursion, so graph depth is bounded by
/// heap, like the writer's own walk) — so it is O(nodes) even when the
/// naive expansion itself would be exponential; saturates at `u64::MAX`
/// rather than overflowing.
pub fn naive_encoding_len(roots: &[Object]) -> u64 {
    fn varint_len(v: u64) -> u64 {
        (64 - u64::from(v.leading_zeros())).max(1).div_ceil(7)
    }
    /// The inline length of a non-composite value; `None` for composites
    /// (their lengths come from the memo).
    fn leaf_len(o: &Object) -> Option<u64> {
        match o {
            Object::Bottom | Object::Top | Object::Atom(Atom::Bool(_)) => Some(1),
            Object::Atom(Atom::Int(v)) => Some(1 + varint_len(((v << 1) ^ (v >> 63)) as u64)),
            Object::Atom(Atom::Float(_)) => Some(9),
            Object::Atom(Atom::Str(s)) => Some(1 + varint_len(s.len() as u64) + s.len() as u64),
            Object::Tuple(_) | Object::Set(_) => None,
        }
    }
    // Postorder: every composite child's length is memoized before its
    // parent is visited.
    let mut memo: FxHashMap<co_object::NodeId, u64> = FxHashMap::default();
    visit_unique_postorder(roots.iter(), |o| {
        let id = o.node_id().expect("the walk yields composites");
        let mut n: u64 = 1 + varint_len(o.children().len() as u64);
        if let Object::Tuple(t) = o {
            for (attr, _) in t.entries() {
                let name = attr.name();
                n = n.saturating_add(varint_len(name.len() as u64) + name.len() as u64);
            }
        }
        for child in o.children() {
            let len =
                leaf_len(child).unwrap_or_else(|| memo[&child.node_id().expect("composite child")]);
            n = n.saturating_add(len);
        }
        memo.insert(id, n);
    });
    roots.iter().fold(0u64, |acc, r| {
        let len = leaf_len(r).unwrap_or_else(|| memo[&r.node_id().expect("composite root")]);
        acc.saturating_add(len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    #[test]
    fn empty_snapshot_roundtrips() {
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &[], b"hello").unwrap();
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.total_bytes as usize, bytes.len());
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert!(snap.roots.is_empty());
        assert_eq!(snap.meta, b"hello");
    }

    #[test]
    fn atoms_and_extremes_roundtrip_as_roots() {
        let roots = vec![
            Object::Bottom,
            Object::Top,
            obj!(42),
            obj!(-7),
            Object::float(2.5),
            Object::bool(true),
            Object::str("héllo wörld"),
        ];
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &roots, b"").unwrap();
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, roots);
    }

    #[test]
    fn nested_objects_roundtrip_to_the_same_nodes() {
        let o = obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}]
        }]);
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, std::slice::from_ref(&o), b"").unwrap();
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, vec![o.clone()]);
        // Same process: re-interning must find the identical node.
        assert_eq!(snap.roots[0].node_id(), o.node_id());
    }

    #[test]
    fn shared_subtrees_are_encoded_once() {
        // 2^20 tree expansion, 21 distinct nodes.
        let mut level = obj!({ base });
        for _ in 0..20 {
            level = Object::tuple([("l", level.clone()), ("r", level)]);
        }
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &[level.clone()], b"").unwrap();
        assert_eq!(stats.nodes, 21);
        assert!(
            bytes.len() < 1024,
            "a 21-node DAG must stay tiny on disk, got {}",
            bytes.len()
        );
        let naive = naive_encoding_len(&[level.clone()]);
        assert!(
            naive / stats.payload_bytes > 1000,
            "sharing ratio must be enormous here: naive {naive} vs {}",
            stats.payload_bytes
        );
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots[0], level);
    }

    #[test]
    fn repeated_roots_share_the_table() {
        let a = obj!({1, 2, 3});
        let roots = vec![a.clone(), a.clone(), a];
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"").unwrap();
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.roots, 3);
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snap.roots, roots);
        assert_eq!(snap.roots[0].node_id(), snap.roots[2].node_id());
    }

    #[test]
    fn save_and_load_paths() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("co_wire_test_{}.cow", std::process::id()));
        let o = obj!([r: {[a: 1], [a: 2]}]);
        save_to_path(&path, std::slice::from_ref(&o), b"meta").unwrap();
        let snap = load_from_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(snap.roots, vec![o]);
        assert_eq!(snap.meta, b"meta");
    }

    #[test]
    fn naive_len_counts_every_occurrence() {
        let leaf = obj!({1, 2});
        let shared = Object::tuple([("l", leaf.clone()), ("r", leaf.clone())]);
        let single = Object::tuple([("l", leaf.clone())]);
        let n_leaf = naive_encoding_len(&[leaf]);
        let n_single = naive_encoding_len(&[single]);
        let n_shared = naive_encoding_len(&[shared]);
        // The shared tuple pays for the leaf twice.
        assert!(n_shared > n_single);
        assert!(n_shared >= 2 * n_leaf);
    }
}

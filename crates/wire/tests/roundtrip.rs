//! Property tests: snapshots round-trip random deep objects exactly —
//! same canonical structure, same interned node (within one process) —
//! and sharing makes the wire encoding no larger than (usually far
//! smaller than) the naive tree encoding.

use co_object::random::{Generator, Profile};
use co_object::{obj, Object};
use co_wire::{naive_encoding_len, read_snapshot, write_snapshot};
use proptest::prelude::*;

fn arb_objects() -> impl Strategy<Value = Vec<Object>> {
    (any::<u64>(), 1usize..5, any::<bool>()).prop_map(|(seed, n, large)| {
        let profile = if large {
            Profile::large()
        } else {
            Profile::small()
        };
        Generator::new(seed, profile).objects(n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Write → read is the identity on canonical objects, down to node
    /// identity (re-interning finds the same nodes in-process).
    #[test]
    fn snapshot_roundtrips_random_objects(roots in arb_objects()) {
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"prop-meta").unwrap();
        prop_assert_eq!(stats.total_bytes as usize, bytes.len());
        let snap = read_snapshot(bytes.as_slice()).unwrap();
        prop_assert_eq!(&snap.roots, &roots);
        prop_assert_eq!(snap.meta.as_slice(), b"prop-meta".as_slice());
        for (loaded, original) in snap.roots.iter().zip(&roots) {
            prop_assert_eq!(loaded.node_id(), original.node_id());
        }
    }

    /// Writing the same roots twice yields byte-identical snapshots
    /// (the format is deterministic — a requirement for content-addressed
    /// storage and for diffing checkpoints).
    #[test]
    fn snapshots_are_deterministic(roots in arb_objects()) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_snapshot(&mut a, &roots, b"m").unwrap();
        write_snapshot(&mut b, &roots, b"m").unwrap();
        prop_assert_eq!(a, b);
    }

    /// Sharing structure: no node is ever encoded twice, so a second
    /// copy of every root is almost free (a reference, not a re-encoding
    /// — the naive tree encoding would double).
    #[test]
    fn duplicated_roots_cost_references_not_reencodings(roots in arb_objects()) {
        let mut bytes = Vec::new();
        let stats = write_snapshot(&mut bytes, &roots, b"").unwrap();

        let doubled: Vec<Object> = roots.iter().chain(roots.iter()).cloned().collect();
        let mut bytes2 = Vec::new();
        let stats2 = write_snapshot(&mut bytes2, &doubled, b"").unwrap();
        prop_assert_eq!(stats2.nodes, stats.nodes, "no node is ever encoded twice");
        // Composite roots repeat as a node reference; atom roots repeat
        // inline — either way at most 11 bytes (a max-length int varint).
        prop_assert!(
            stats2.payload_bytes <= stats.payload_bytes + 11 * stats.roots,
            "duplicate roots must cost only references: {} vs {}",
            stats2.payload_bytes,
            stats.payload_bytes
        );
        // Meanwhile the naive encoding really does double.
        prop_assert_eq!(
            naive_encoding_len(&doubled),
            naive_encoding_len(&roots).saturating_mul(2)
        );
    }
}

#[test]
fn deep_chains_do_not_overflow_the_stack() {
    // 20 000 nesting levels: the writer's walk, the reader's streaming
    // pass, and the naive-length accounting must all be iterative (test
    // threads get small stacks — recursion this deep would abort).
    let mut o = Object::empty_tuple();
    for _ in 0..20_000 {
        o = Object::tuple([("d", o)]);
    }
    let mut bytes = Vec::new();
    let stats = write_snapshot(&mut bytes, std::slice::from_ref(&o), b"").unwrap();
    assert_eq!(stats.nodes, 20_001);
    // A pure chain has no sharing: naive pays ~4 bytes per level (tag,
    // width, inline "d"), the wire table slightly more (backward refs).
    let naive = naive_encoding_len(std::slice::from_ref(&o));
    assert!(naive >= 4 * 20_000, "naive chain accounting: {naive}");
    let snap = read_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(snap.roots[0].node_id(), o.node_id());
}

#[test]
fn measured_sharing_on_a_deep_tower() {
    // The motivating case: 2^16 tree expansion, 17 distinct nodes.
    let mut level = obj!({ widget });
    for _ in 0..16 {
        level = Object::tuple([("left", level.clone()), ("right", level)]);
    }
    let mut bytes = Vec::new();
    let stats = write_snapshot(&mut bytes, &[level.clone()], b"").unwrap();
    let naive = naive_encoding_len(&[level]);
    let ratio = naive as f64 / stats.payload_bytes as f64;
    assert!(
        ratio > 100.0,
        "tower sharing ratio should be huge, got {ratio:.1} ({naive} vs {})",
        stats.payload_bytes
    );
}

//! Pins the atomic-rename contract of `save_to_path` /
//! `save_delta_to_path` in tests instead of only in docs: a crash
//! mid-save — the temp file written (possibly partially), the rename
//! never issued — leaves the destination byte-identical and restorable,
//! and the orphan temp both detectable ([`co_wire::is_snapshot_temp`])
//! and harmless (reading it is a typed error, ignoring it costs
//! nothing).

use co_object::obj;
use co_wire::{
    is_snapshot_temp, load_chain, load_from_path, save_delta_to_path, save_to_path,
    save_to_path_handle, write_snapshot, WireError,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("co_wire_crash_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The orphan a crashed save would leave: the writer's
/// `<dest>.tmp.<pid>.<seq>` naming with `bytes` as the partial content.
fn plant_orphan(dest: &Path, bytes: &[u8]) -> PathBuf {
    let orphan = PathBuf::from(format!(
        "{}.tmp.{}.9999",
        dest.display(),
        std::process::id()
    ));
    std::fs::write(&orphan, bytes).unwrap();
    orphan
}

fn snapshot_temps_in(dir: &Path) -> Vec<PathBuf> {
    let mut temps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| is_snapshot_temp(p))
        .collect();
    temps.sort();
    temps
}

#[test]
fn a_crash_mid_save_leaves_the_base_snapshot_restorable() {
    let dir = temp_dir("full");
    let path = dir.join("db.cow");
    let v1 = obj!([r: {[a: 1], [a: 2]}]);
    save_to_path(&path, std::slice::from_ref(&v1), b"meta-1").unwrap();
    let installed = std::fs::read(&path).unwrap();

    // A newer save "crashes": its temp holds a truncated half-snapshot
    // and the rename never happens.
    let v2 = obj!([r: {[a: 1], [a: 2], [a: 3]}]);
    let mut next = Vec::new();
    write_snapshot(&mut next, std::slice::from_ref(&v2), b"meta-2").unwrap();
    let orphan = plant_orphan(&path, &next[..next.len() - 11]);

    // The destination is untouched, byte for byte, and restores.
    assert_eq!(std::fs::read(&path).unwrap(), installed);
    let snap = load_from_path(&path).unwrap();
    assert_eq!(snap.roots, vec![v1]);
    assert_eq!(snap.meta, b"meta-1");

    // The orphan is detectable — and only it.
    assert!(is_snapshot_temp(&orphan));
    assert!(!is_snapshot_temp(&path));
    assert_eq!(snapshot_temps_in(&dir), vec![orphan.clone()]);

    // Reading the orphan is a typed error, never a panic or a wrong DB.
    let err = load_from_path(&orphan).unwrap_err();
    assert!(
        matches!(err, WireError::Truncated { .. }),
        "a half-written temp is truncated, got: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_crash_mid_delta_save_leaves_the_chain_restorable() {
    let dir = temp_dir("delta");
    let v1 = obj!([r: {1, 2}]);
    let (_, h1) = save_to_path_handle(dir.join("0.cow"), std::slice::from_ref(&v1), b"m0").unwrap();
    let v2 = obj!([r: {1, 2, 3}]);
    let (_, h2) =
        save_delta_to_path(dir.join("1.cow"), std::slice::from_ref(&v2), b"m1", &h1).unwrap();

    // The second delta crashes mid-write: even a *complete* byte image
    // left under the temp name is not part of the chain until renamed.
    let v3 = obj!([r: {1, 2, 3, 4}]);
    let mut d2 = Vec::new();
    co_wire::write_delta_snapshot(&mut d2, std::slice::from_ref(&v3), b"m2", &h2).unwrap();
    let orphan = plant_orphan(&dir.join("2.cow"), &d2);

    // The chain that was durably installed restores in full…
    let (snap, _) = load_chain(&[dir.join("0.cow"), dir.join("1.cow")]).unwrap();
    assert_eq!(snap.roots, vec![v2]);
    assert_eq!(snap.meta, b"m1");
    // …the crashed layer never made it to its final name…
    assert!(!dir.join("2.cow").exists());
    // …and the orphan is detectable and ignorable.
    assert_eq!(snapshot_temps_in(&dir), vec![orphan]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn successful_and_failed_saves_leave_no_temps_behind() {
    let dir = temp_dir("clean");
    let db = obj!({1, 2, 3});
    // Success: temp renamed away.
    save_to_path(dir.join("ok.cow"), std::slice::from_ref(&db), b"").unwrap();
    assert_eq!(snapshot_temps_in(&dir), Vec::<PathBuf>::new());
    // Failure (destination name is taken by a *directory*, so the final
    // rename fails): the temp is cleaned up, the error is typed Io.
    std::fs::create_dir(dir.join("taken.cow")).unwrap();
    let err = save_to_path(dir.join("taken.cow"), std::slice::from_ref(&db), b"").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "got: {err}");
    assert_eq!(snapshot_temps_in(&dir), Vec::<PathBuf>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_saves_to_one_destination_install_one_intact_snapshot() {
    // The per-process, per-call temp sequence means racing writers never
    // interleave into one temp inode: whatever rename lands last, the
    // destination is one complete snapshot, not a splice.
    let dir = temp_dir("race");
    let path = dir.join("hot.cow");
    let contenders: Vec<_> = (0..8i64)
        .map(|i| co_object::Object::set((0..=i).map(co_object::Object::int)))
        .collect();
    std::thread::scope(|scope| {
        for db in &contenders {
            let path = &path;
            scope.spawn(move || {
                save_to_path(path, std::slice::from_ref(db), b"race").unwrap();
            });
        }
    });
    let snap = load_from_path(&path).unwrap();
    assert_eq!(snap.meta, b"race");
    assert!(
        contenders.contains(&snap.roots[0]),
        "the installed snapshot must be one contender's write, intact"
    );
    assert_eq!(snapshot_temps_in(&dir), Vec::<PathBuf>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

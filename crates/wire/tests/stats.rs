//! The delta counters are a ledger, not a vibe: `nodes` (written) plus
//! the base nodes still reachable must equal a full write of the same
//! roots, `base_nodes_reused` must count exactly the distinct base
//! nodes referenced by id, and the `Display` renderings of
//! [`WriteStats`] and [`SnapshotInfo`] are pinned by exact snapshots —
//! `stats_accounting.rs` style, extended to the wire crate.

use co_object::walk::{visit_unique_postorder, visit_unique_postorder_pruned};
use co_object::{obj, Object};
use co_wire::{
    describe_snapshot, write_delta_snapshot, write_snapshot, write_snapshot_handle, BaseId,
    SnapshotHandle, SnapshotInfo, WriteStats, FORMAT_VERSION, FORMAT_VERSION_DELTA, HEADER_LEN,
};

/// `[k: <i>, v: {100, 200}]` — every tuple shares one `v` set.
fn fact(i: i64) -> Object {
    Object::tuple([("k", Object::int(i)), ("v", obj!({100, 200}))])
}

/// `[r: {fact(0), …, fact(n-1)}]`.
fn relation_db(n: i64) -> Object {
    Object::tuple([("r", Object::set((0..n).map(fact)))])
}

/// Distinct composite nodes reachable from `roots` that are resident in
/// `base` — the full walk the delta writer prunes away, recomputed here
/// as the ledger's other column.
fn reachable_base_nodes(roots: &[Object], base: &SnapshotHandle) -> u64 {
    let mut count = 0u64;
    visit_unique_postorder(roots.iter(), |o| {
        if base.contains(o.node_id().expect("walk yields composites")) {
            count += 1;
        }
    });
    count
}

#[test]
fn delta_nodes_plus_reachable_base_equals_a_full_write() {
    let base_db = relation_db(40);
    let mut base_bytes = Vec::new();
    let (base_stats, handle) =
        write_snapshot_handle(&mut base_bytes, std::slice::from_ref(&base_db), b"").unwrap();
    // 40 tuples + the shared {100,200} + the relation set + the wrapper.
    assert_eq!(base_stats.nodes, 43);
    assert_eq!(base_stats.base_nodes_reused, 0, "full writes reuse nothing");
    assert_eq!(handle.nodes(), 43);

    // Grow the relation by two facts: the new tuples, the grown set, and
    // the grown wrapper are new; everything else rides on base ids.
    let ext_db = Object::tuple([("r", Object::set((0..40).chain([97, 98]).map(fact)))]);
    let mut delta_bytes = Vec::new();
    let (delta_stats, handle2) = write_delta_snapshot(
        &mut delta_bytes,
        std::slice::from_ref(&ext_db),
        b"",
        &handle,
    )
    .unwrap();

    // Column 1 — nodes written: exactly what a pruned walk enumerates.
    let mut expected_new = 0u64;
    visit_unique_postorder_pruned([&ext_db], |id| handle.contains(id), |_| expected_new += 1);
    assert_eq!(delta_stats.nodes, expected_new);
    assert_eq!(delta_stats.nodes, 4, "2 tuples + grown set + grown wrapper");

    // Column 2 — base nodes this database still reaches. Together the
    // columns must reproduce a full write of the same roots exactly.
    let reachable = reachable_base_nodes(std::slice::from_ref(&ext_db), &handle);
    let mut full_bytes = Vec::new();
    let full_stats = write_snapshot(&mut full_bytes, std::slice::from_ref(&ext_db), b"").unwrap();
    assert_eq!(full_stats.nodes, delta_stats.nodes + reachable);

    // `base_nodes_reused` counts the *directly referenced* distinct base
    // nodes: the 40 old tuples (children of the grown set) and the
    // shared value set (child of each new tuple). The old relation set
    // and old wrapper are reachable in the base but referenced by
    // nothing new — reused ≤ reachable strictly here.
    assert_eq!(delta_stats.base_nodes_reused, 41);
    assert_eq!(reachable, 41);

    // Chain handle accounting: the combined id space grew by exactly the
    // written nodes.
    assert_eq!(handle2.nodes(), handle.nodes() + delta_stats.nodes);
    assert_eq!(handle2.base_id().nodes, 47);

    // And the economics the feature exists for. On this deliberately
    // adversarial shape — one flat root set, so the grown set re-lists
    // every member as a ~2-byte reference — the delta still undercuts
    // the full write by 2×; `benches/snapshot.rs` measures the realistic
    // deep-facts workload where it lands under 10% (BENCH_pr5.json).
    assert!(
        delta_stats.payload_bytes * 2 < full_stats.payload_bytes,
        "delta {} vs full {}",
        delta_stats.payload_bytes,
        full_stats.payload_bytes
    );
}

#[test]
fn indirect_base_references_do_not_count_as_reused() {
    // A new wrapper referencing one base tuple directly: the tuple's own
    // children are reachable through the base only, so `reused` stays at
    // the direct references while the full-write ledger still balances.
    let base_db = relation_db(10);
    let mut bytes = Vec::new();
    let (_, handle) =
        write_snapshot_handle(&mut bytes, std::slice::from_ref(&base_db), b"").unwrap();
    let ext_db = Object::tuple([("r", base_db.dot("r").clone()), ("pinned", fact(5))]);
    let mut delta_bytes = Vec::new();
    let (stats, _) = write_delta_snapshot(
        &mut delta_bytes,
        std::slice::from_ref(&ext_db),
        b"",
        &handle,
    )
    .unwrap();
    assert_eq!(stats.nodes, 1, "only the new wrapper tuple");
    // Direct references: the old relation set and fact(5). The other
    // nine tuples and the shared {100,200} are only reached *through*
    // base nodes.
    assert_eq!(stats.base_nodes_reused, 2);
    let reachable = reachable_base_nodes(std::slice::from_ref(&ext_db), &handle);
    assert_eq!(reachable, 12, "set + 10 tuples + shared value set");
    let mut full_bytes = Vec::new();
    let full_stats = write_snapshot(&mut full_bytes, std::slice::from_ref(&ext_db), b"").unwrap();
    assert_eq!(full_stats.nodes, stats.nodes + reachable);
}

#[test]
fn describe_agrees_with_write_stats_for_both_versions() {
    let base_db = relation_db(12);
    let mut base_bytes = Vec::new();
    let (base_stats, handle) =
        write_snapshot_handle(&mut base_bytes, std::slice::from_ref(&base_db), b"meta!").unwrap();
    let info = describe_snapshot(base_bytes.as_slice()).unwrap();
    assert_eq!(info.version, FORMAT_VERSION);
    assert!(!info.is_delta());
    assert_eq!(info.nodes, base_stats.nodes);
    assert_eq!(info.roots, base_stats.roots);
    assert_eq!(info.payload_bytes, base_stats.payload_bytes);
    assert_eq!(info.total_bytes, base_stats.total_bytes);
    assert_eq!(info.total_bytes, info.payload_bytes + HEADER_LEN as u64);
    assert_eq!(info.checksum, handle.checksum());
    assert_eq!(info.base, None);

    let ext_db = Object::tuple([("r", Object::set((0..13).map(fact)))]);
    let mut delta_bytes = Vec::new();
    let (delta_stats, handle2) = write_delta_snapshot(
        &mut delta_bytes,
        std::slice::from_ref(&ext_db),
        b"",
        &handle,
    )
    .unwrap();
    let info = describe_snapshot(delta_bytes.as_slice()).unwrap();
    assert_eq!(info.version, FORMAT_VERSION_DELTA);
    assert!(info.is_delta());
    assert_eq!(info.nodes, delta_stats.nodes);
    assert_eq!(info.base, Some(handle.base_id()));
    assert_eq!(info.checksum, handle2.checksum());
}

#[test]
fn display_renderings_are_pinned() {
    let full = WriteStats {
        version: FORMAT_VERSION,
        nodes: 43,
        roots: 2,
        symbols: 3,
        payload_bytes: 412,
        total_bytes: 460,
        base_nodes_reused: 0,
        columnar_sets: 0,
    };
    assert_eq!(
        full.to_string(),
        "snapshot: 43 nodes, 2 roots, 3 symbols, 412 payload bytes (460 total)"
    );
    let delta = WriteStats {
        version: FORMAT_VERSION_DELTA,
        nodes: 4,
        roots: 2,
        symbols: 2,
        payload_bytes: 61,
        total_bytes: 109,
        base_nodes_reused: 41,
        columnar_sets: 0,
    };
    assert_eq!(
        delta.to_string(),
        "delta snapshot: 4 new nodes (+41 referenced from base), 2 roots, 2 symbols, \
         61 payload bytes (109 total)"
    );

    let full_info = SnapshotInfo {
        version: FORMAT_VERSION,
        nodes: 43,
        roots: 2,
        payload_bytes: 412,
        total_bytes: 460,
        checksum: 0x00ab_cdef_0123_4567,
        base: None,
        columnar_sets: 0,
    };
    assert_eq!(
        full_info.to_string(),
        "co-wire v1 full snapshot: 43 nodes, 2 roots, 412 payload bytes (460 total), \
         checksum 0x00abcdef01234567"
    );
    let delta_info = SnapshotInfo {
        version: FORMAT_VERSION_DELTA,
        nodes: 4,
        roots: 2,
        payload_bytes: 61,
        total_bytes: 109,
        checksum: 0x1122_3344_5566_7788,
        base: Some(BaseId {
            checksum: 0x00ab_cdef_0123_4567,
            nodes: 43,
        }),
        columnar_sets: 0,
    };
    assert_eq!(
        delta_info.to_string(),
        "co-wire v2 delta snapshot: 4 new nodes over base 0x00abcdef01234567 (43 nodes), \
         2 roots, 61 payload bytes (109 total), checksum 0x1122334455667788"
    );
}

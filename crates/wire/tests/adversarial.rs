//! Byte-level adversarial harness: for a corpus of full (v1) and delta
//! (v2) snapshots, **every** truncation boundary and every header bit
//! flip — plus every payload bit flip, which on this corpus size is
//! denser than sampling — must come back as a typed [`WireError`]:
//! never a panic, never a silently-wrong object.
//!
//! Why this is the contract and not "best effort": the payload is
//! checksummed, so payload corruption is always caught; the header is
//! *not* covered by the checksum, so every header field must be either
//! structurally validated (magic, version window, zeroed reserved bytes,
//! count plausibility) or unable to survive decoding (counts that
//! disagree with the payload hit tag/truncation/trailing-byte errors).
//! Each case runs under `catch_unwind` so a panic fails the suite with
//! the exact offending byte, and every error's `Display` must render
//! non-empty (the typed-rendering contract `tests/errors.rs` pins
//! string-by-string).

use co_object::{obj, Object};
use co_wire::{
    describe_snapshot, read_chain, read_snapshot, write_delta_snapshot, write_snapshot,
    write_snapshot_columnar, write_snapshot_handle, Snapshot, WireError, FORMAT_VERSION_COLUMNAR,
    HEADER_LEN, MAGIC,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A full snapshot exercising every value tag: ⊥/⊤ roots, bools, ints
/// (negative too), floats, strings, shared subtrees, repeated roots.
fn full_corpus_bytes() -> Vec<u8> {
    let shared = obj!({[k: 1, v: {alpha, beta}], [k: 2, v: {alpha, beta}]});
    let roots = vec![
        shared.clone(),
        co_object::Object::Bottom,
        co_object::Object::Top,
        obj!(-42),
        co_object::Object::float(2.5),
        co_object::Object::bool(true),
        co_object::Object::str("héllo"),
        shared,
    ];
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &roots, b"adversarial-meta").unwrap();
    bytes
}

/// A base + delta pair: the delta adds one fact to the base's relation.
fn chain_corpus_bytes() -> (Vec<u8>, Vec<u8>) {
    let v1 = obj!([r: {[a: 1, b: {x, y}], [a: 2, b: {x, y}]}]);
    let mut base = Vec::new();
    let (_, handle) =
        write_snapshot_handle(&mut base, std::slice::from_ref(&v1), b"base-meta").unwrap();
    let v2 = obj!([r: {[a: 1, b: {x, y}], [a: 2, b: {x, y}], [a: 3, b: {x, y}]}]);
    let mut delta = Vec::new();
    write_delta_snapshot(
        &mut delta,
        std::slice::from_ref(&v2),
        b"delta-meta",
        &handle,
    )
    .unwrap();
    (base, delta)
}

/// Runs one read attempt, asserting it cannot panic, and returns the
/// typed outcome. The `label` names the exact corruption for failures.
fn sound_read<T>(label: &str, read: impl FnOnce() -> Result<T, WireError>) -> Result<T, WireError> {
    match catch_unwind(AssertUnwindSafe(read)) {
        Ok(outcome) => outcome,
        Err(_) => panic!("reader panicked on {label}"),
    }
}

/// Asserts the read fails with a typed error whose Display renders.
fn assert_typed_failure<T>(label: &str, read: impl FnOnce() -> Result<T, WireError>) {
    match sound_read(label, read) {
        Ok(_) => panic!("expected a typed error on {label}, got Ok"),
        Err(e) => {
            let text = e.to_string();
            assert!(!text.is_empty(), "empty error rendering on {label}");
        }
    }
}

/// Every strict prefix of a readable snapshot must fail typed: the
/// header declares the payload length, so no truncation can look
/// complete.
fn assert_all_truncations_fail(
    name: &str,
    bytes: &[u8],
    read: &dyn Fn(&[u8]) -> Result<Snapshot, WireError>,
) {
    for len in 0..bytes.len() {
        assert_typed_failure(
            &format!("{name}: truncation to {len}/{} bytes", bytes.len()),
            || read(&bytes[..len]),
        );
    }
}

/// Every single-bit flip in `range` must fail typed.
fn assert_bit_flips_fail(
    name: &str,
    bytes: &[u8],
    range: std::ops::Range<usize>,
    read: &dyn Fn(&[u8]) -> Result<Snapshot, WireError>,
) {
    for ix in range {
        for bit in 0..8 {
            let mut corrupt = bytes.to_vec();
            corrupt[ix] ^= 1 << bit;
            assert_typed_failure(&format!("{name}: bit {bit} of byte {ix} flipped"), || {
                read(&corrupt)
            });
        }
    }
}

#[test]
fn v1_reader_survives_every_truncation_and_bit_flip() {
    let bytes = full_corpus_bytes();
    // Sanity: the pristine blob reads back.
    let original = read_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(original.roots.len(), 8);

    let read: &dyn Fn(&[u8]) -> Result<Snapshot, WireError> = &|b| read_snapshot(b);
    assert_all_truncations_fail("v1", &bytes, read);
    assert_bit_flips_fail("v1 header", &bytes, 0..HEADER_LEN, read);
    assert_bit_flips_fail("v1 payload", &bytes, HEADER_LEN..bytes.len(), read);
}

#[test]
fn v2_reader_survives_every_truncation_and_bit_flip_of_the_delta() {
    let (base, delta) = chain_corpus_bytes();
    // Sanity: the pristine chain restores.
    let (snap, _) = read_chain([base.as_slice(), delta.as_slice()]).unwrap();
    assert_eq!(snap.meta, b"delta-meta");

    let read_with_base: &dyn Fn(&[u8]) -> Result<Snapshot, WireError> =
        &|d| read_chain([base.as_slice(), d]).map(|(snap, _)| snap);
    assert_all_truncations_fail("v2 delta", &delta, read_with_base);
    assert_bit_flips_fail("v2 delta header", &delta, 0..HEADER_LEN, read_with_base);
    assert_bit_flips_fail(
        "v2 delta payload",
        &delta,
        HEADER_LEN..delta.len(),
        read_with_base,
    );
}

#[test]
fn v2_chain_survives_every_corruption_of_the_base_layer() {
    let (base, delta) = chain_corpus_bytes();
    // Corrupting the *base* under an intact delta must also fail typed:
    // either the base itself fails to decode, or its payload checksum
    // changes and the delta's base link no longer matches.
    let read_as_base: &dyn Fn(&[u8]) -> Result<Snapshot, WireError> =
        &|b| read_chain([b, delta.as_slice()]).map(|(snap, _)| snap);
    assert_all_truncations_fail("v2 base", &base, read_as_base);
    assert_bit_flips_fail("v2 base header", &base, 0..HEADER_LEN, read_as_base);
    assert_bit_flips_fail(
        "v2 base payload",
        &base,
        HEADER_LEN..base.len(),
        read_as_base,
    );
}

#[test]
fn the_v1_entry_point_always_rejects_deltas_however_corrupt() {
    // `read_snapshot` can never restore a delta (it has no base), so
    // every variant of the delta blob — intact included — must fail
    // typed through the v1 entry point.
    let (_, delta) = chain_corpus_bytes();
    assert_typed_failure("v2 via read_snapshot: intact", || {
        read_snapshot(delta.as_slice())
    });
    let read: &dyn Fn(&[u8]) -> Result<Snapshot, WireError> = &|b| read_snapshot(b);
    assert_all_truncations_fail("v2 via read_snapshot", &delta, read);
    assert_bit_flips_fail("v2 via read_snapshot header", &delta, 0..HEADER_LEN, read);
    assert_bit_flips_fail(
        "v2 via read_snapshot payload",
        &delta,
        HEADER_LEN..delta.len(),
        read,
    );
}

#[test]
fn the_inspector_never_panics_and_catches_what_the_checksum_covers() {
    // `describe` reports the header's *claims* (it does not decode the
    // node table), so a flipped count byte can still describe — but it
    // must never panic, every truncation must fail typed (the payload
    // goes missing), and every payload flip must fail the checksum.
    let bytes = full_corpus_bytes();
    let pristine = describe_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(pristine.nodes, 4);

    for len in 0..bytes.len() {
        assert_typed_failure(&format!("describe: truncation to {len}"), || {
            describe_snapshot(&bytes[..len])
        });
    }
    for ix in HEADER_LEN..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[ix] ^= 1 << bit;
            assert_typed_failure(&format!("describe: payload bit {bit} of byte {ix}"), || {
                describe_snapshot(corrupt.as_slice())
            });
        }
    }
    for ix in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[ix] ^= 1 << bit;
            // Header flips: no panic; magic/version/reserved/size flips
            // fail typed, count flips may legitimately describe (the
            // full readers are what decode-verify the counts).
            let label = format!("describe: header bit {bit} of byte {ix}");
            if let Ok(info) = sound_read(&label, || describe_snapshot(corrupt.as_slice())) {
                assert!(
                    (16..32).contains(&ix),
                    "only count-field flips may still describe, got Ok on {label}: {info}"
                );
            }
        }
    }
}

/// A columnar (v3) snapshot: a flat relation large enough for the
/// default `CO_COLUMNAR_MIN_ROWS` threshold, mixing every atom kind the
/// columns can carry, plus one ordinary root alongside.
fn columnar_corpus_bytes() -> Vec<u8> {
    let rel = Object::set((0..100i64).map(|i| {
        Object::tuple([
            ("flag", Object::bool(i % 2 == 0)),
            ("id", Object::int(i)),
            ("name", Object::str(format!("row{}", i % 5))),
            ("score", Object::float(i as f64 * 0.5)),
        ])
    }));
    let roots = vec![rel, obj!({extra, 7})];
    let mut bytes = Vec::new();
    let (stats, _) = write_snapshot_columnar(&mut bytes, &roots, b"columnar-meta").unwrap();
    assert_eq!(stats.version, FORMAT_VERSION_COLUMNAR);
    assert_eq!(stats.columnar_sets, 1);
    bytes
}

#[test]
fn v3_reader_survives_every_truncation_and_bit_flip() {
    let bytes = columnar_corpus_bytes();
    // Sanity: the pristine blob reads back.
    let original = read_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(original.roots.len(), 2);
    assert_eq!(original.meta, b"columnar-meta");

    let read: &dyn Fn(&[u8]) -> Result<Snapshot, WireError> = &|b| read_snapshot(b);
    assert_all_truncations_fail("v3", &bytes, read);
    assert_bit_flips_fail("v3 header", &bytes, 0..HEADER_LEN, read);
    assert_bit_flips_fail("v3 payload", &bytes, HEADER_LEN..bytes.len(), read);
}

#[test]
fn the_inspector_is_as_strict_on_v3_headers_as_on_v1() {
    let bytes = columnar_corpus_bytes();
    let pristine = describe_snapshot(bytes.as_slice()).unwrap();
    assert_eq!(pristine.version, FORMAT_VERSION_COLUMNAR);
    assert_eq!(pristine.columnar_sets, 1);

    for len in 0..bytes.len() {
        assert_typed_failure(&format!("describe v3: truncation to {len}"), || {
            describe_snapshot(&bytes[..len])
        });
    }
    for ix in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[ix] ^= 1 << bit;
            // As for v1: magic/version/size flips fail typed; flips in
            // the count fields — which for v3 include the columnar
            // count at bytes 12..16 — may describe, and the full reader
            // is what decode-verifies them.
            let label = format!("describe v3: header bit {bit} of byte {ix}");
            if let Ok(info) = sound_read(&label, || describe_snapshot(corrupt.as_slice())) {
                assert!(
                    (12..32).contains(&ix),
                    "only count-field flips may still describe, got Ok on {label}: {info}"
                );
            }
        }
    }
}

/// Hand-crafts a v3 snapshot from parts — header fields and a raw
/// payload — with a **correct** checksum, so the corruption under test
/// is the only thing wrong with the bytes.
fn craft_v3(columnar: u32, node_count: u64, root_count: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION_COLUMNAR.to_le_bytes());
    bytes.extend_from_slice(&columnar.to_le_bytes());
    bytes.extend_from_slice(&node_count.to_le_bytes());
    bytes.extend_from_slice(&root_count.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&co_wire::codec::checksum(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// The payload of a minimal v3 snapshot — symbols `a`, `b`; one columnar
/// record (`schema` and `rows` overridable); one root referencing it —
/// so each semantic corruption below changes exactly one knob.
fn craft_v3_payload(schema: &[u64], cells: &[&[u8]]) -> Vec<u8> {
    use co_wire::codec::{put_str, put_varint};
    let mut p = Vec::new();
    put_varint(&mut p, 2); // symbol table: "a", "b"
    put_str(&mut p, "a");
    put_str(&mut p, "b");
    p.push(0x12); // NODE_FLAT_SET
    put_varint(&mut p, schema.len() as u64);
    for &ix in schema {
        put_varint(&mut p, ix);
    }
    let rows = cells.first().map_or(0, |c| c.len());
    put_varint(&mut p, rows as u64);
    for column in cells {
        for &v in *column {
            p.push(0x04); // VAL_INT
            put_varint(&mut p, u64::from(v) << 1); // zigzag, non-negative
        }
    }
    p.push(0x07); // root table: VAL_NODE
    put_varint(&mut p, 0);
    put_varint(&mut p, 0); // empty metadata
    p
}

#[test]
fn hand_crafted_columnar_corruptions_fail_typed() {
    // Sanity: the pristine crafted snapshot decodes to the real relation.
    let good = craft_v3(1, 1, 1, &craft_v3_payload(&[0, 1], &[&[1, 2], &[10, 20]]));
    let snap = read_snapshot(good.as_slice()).unwrap();
    assert_eq!(snap.roots, vec![obj!({[a: 1, b: 10], [a: 2, b: 20]})]);

    // Zero columns.
    assert_typed_failure("columnar record with zero arity", || {
        read_snapshot(craft_v3(1, 1, 1, &craft_v3_payload(&[], &[])).as_slice())
    });
    // Zero rows.
    assert_typed_failure("columnar record with zero rows", || {
        read_snapshot(craft_v3(1, 1, 1, &craft_v3_payload(&[0, 1], &[&[], &[]])).as_slice())
    });
    // A schema symbol index beyond the symbol table.
    assert_typed_failure("columnar schema symbol out of range", || {
        read_snapshot(craft_v3(1, 1, 1, &craft_v3_payload(&[0, 9], &[&[1], &[2]])).as_slice())
    });
    // The same attribute twice: no canonical tuple has that.
    assert_typed_failure("columnar schema with a duplicate attribute", || {
        read_snapshot(craft_v3(1, 1, 1, &craft_v3_payload(&[0, 0], &[&[1], &[2]])).as_slice())
    });
    // A row count the remaining payload cannot possibly satisfy.
    {
        use co_wire::codec::{put_str, put_varint};
        let mut p = Vec::new();
        put_varint(&mut p, 1);
        put_str(&mut p, "a");
        p.push(0x12);
        put_varint(&mut p, 1); // arity 1
        put_varint(&mut p, 0); // attr "a"
        put_varint(&mut p, 1_000_000); // a million rows in a dozen bytes
        assert_typed_failure("columnar record with an implausible row count", || {
            read_snapshot(craft_v3(1, 1, 0, &p).as_slice())
        });
    }
    // A cell that is a node reference (rows must be atoms) and a cell
    // that is ⊥ (canonical nodes contain neither extreme).
    for (label, tag) in [("node-reference cell", 0x07u8), ("bottom cell", 0x00u8)] {
        use co_wire::codec::{put_str, put_varint};
        let mut p = Vec::new();
        put_varint(&mut p, 1);
        put_str(&mut p, "a");
        p.push(0x12);
        put_varint(&mut p, 1);
        put_varint(&mut p, 0);
        put_varint(&mut p, 1); // one row
        p.push(tag);
        put_varint(&mut p, 0); // the reference/ignored operand
        assert_typed_failure(label, || read_snapshot(craft_v3(1, 1, 0, &p).as_slice()));
    }
    // Header/table count disagreements: more declared than present, and
    // a declared count of zero under version 3.
    assert_typed_failure("columnar count exceeding the node count", || {
        read_snapshot(craft_v3(2, 1, 1, &craft_v3_payload(&[0, 1], &[&[1], &[2]])).as_slice())
    });
    assert_typed_failure("version 3 with a zero columnar count", || {
        read_snapshot(craft_v3(0, 1, 1, &craft_v3_payload(&[0, 1], &[&[1], &[2]])).as_slice())
    });
}

#[test]
fn random_tail_garbage_after_a_valid_header_is_typed() {
    // A valid header whose payload is replaced by pseudo-random bytes of
    // the declared length: the checksum rejects essentially all of them,
    // and none may panic. (Deterministic xorshift so failures reproduce.)
    let bytes = full_corpus_bytes();
    let payload_len = bytes.len() - HEADER_LEN;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for case in 0..64 {
        let mut corrupt = bytes[..HEADER_LEN].to_vec();
        for _ in 0..payload_len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            corrupt.push(state as u8);
        }
        assert_typed_failure(&format!("random payload #{case}"), || {
            read_snapshot(corrupt.as_slice())
        });
    }
}

//! Every way a snapshot can be unreadable returns a typed [`WireError`]
//! with a pinned `Display` rendering — never a panic. Each test builds a
//! valid snapshot, damages it in one precise way, and snapshots the
//! exact error text.

use co_object::obj;
use co_wire::{read_snapshot, write_snapshot, WireError, FORMAT_VERSION, HEADER_LEN, MAGIC};

/// A healthy snapshot of a small nested object, as bytes.
fn healthy() -> Vec<u8> {
    let o = obj!([r: {[a: 1, b: {x, y}], [a: 2, b: {x, y}]}]);
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &[o], b"meta").unwrap();
    bytes
}

#[test]
fn empty_input_is_a_truncated_header() {
    let err = read_snapshot([].as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "truncated snapshot: unexpected end of input while reading header"
    );
}

#[test]
fn short_header_is_truncated() {
    let bytes = healthy();
    let err = read_snapshot(&bytes[..HEADER_LEN - 1]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "truncated snapshot: unexpected end of input while reading header"
    );
}

#[test]
fn corrupt_magic_is_a_bad_magic_error() {
    let mut bytes = healthy();
    bytes[0] = b'X';
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::BadMagic { .. }));
    assert_eq!(
        err.to_string(),
        "corrupt snapshot header: bad magic [58 4f 57 49 52 45 0d 0a]"
    );
}

#[test]
fn a_text_file_is_not_a_snapshot() {
    let err = read_snapshot(
        b"[r: {1, 2, 3}] % definitely not a binary snapshot, but long enough for a header\n"
            .as_slice(),
    )
    .unwrap_err();
    assert_eq!(
        err.to_string(),
        "corrupt snapshot header: bad magic [5b 72 3a 20 7b 31 2c 20]"
    );
}

#[test]
fn unknown_version_is_rejected_before_the_payload() {
    let mut bytes = healthy();
    // Version field: little-endian u32 right after the 8-byte magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::UnsupportedVersion { found: 99 }));
    assert_eq!(
        err.to_string(),
        "unsupported snapshot format version 99 (this reader supports versions 1-2)"
    );
}

#[test]
fn nonzero_reserved_bytes_are_rejected() {
    // The header is not covered by the payload checksum; the reserved
    // field being pinned to zero is part of what makes every header bit
    // detectable (see tests/adversarial.rs).
    let mut bytes = healthy();
    bytes[13] = 0x01; // reserved u32 lives at offset 12..16
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: reserved header bytes are not zero (0x00000100)"
    );
}

#[test]
fn implausible_header_counts_are_rejected_before_decoding() {
    // Each node record is at least one payload byte, so a node count
    // larger than the payload cannot be honest — same for roots.
    let mut bytes = healthy();
    bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    let text = err.to_string();
    assert!(
        text.starts_with("malformed snapshot: declared node count 18446744073709551615 exceeds"),
        "got: {text}"
    );
    let mut bytes = healthy();
    bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    assert!(
        err.to_string()
            .starts_with("malformed snapshot: declared root count 18446744073709551615 exceeds"),
        "got: {err}"
    );
}

#[test]
fn base_required_is_typed_with_the_base_identity() {
    let mut base = Vec::new();
    let (_, handle) = co_wire::write_snapshot_handle(&mut base, &[obj!({1, 2})], b"").unwrap();
    let mut delta = Vec::new();
    co_wire::write_delta_snapshot(&mut delta, &[obj!({1, 2, 3})], b"", &handle).unwrap();
    let err = read_snapshot(delta.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::BaseRequired { .. }));
    assert_eq!(
        err.to_string(),
        format!(
            "delta snapshot requires its base (checksum {:#018x}, {} nodes): \
             restore the chain base-first",
            handle.checksum(),
            handle.nodes()
        )
    );
}

#[test]
fn base_mismatch_is_typed_with_both_identities() {
    let mut base_a = Vec::new();
    let (_, handle_a) = co_wire::write_snapshot_handle(&mut base_a, &[obj!({ 1 })], b"").unwrap();
    let mut base_b = Vec::new();
    let (_, handle_b) = co_wire::write_snapshot_handle(&mut base_b, &[obj!({2, 3})], b"").unwrap();
    let mut delta = Vec::new();
    co_wire::write_delta_snapshot(&mut delta, &[obj!({1, 9})], b"", &handle_a).unwrap();
    let err = co_wire::read_chain([base_b.as_slice(), delta.as_slice()]).unwrap_err();
    assert!(matches!(err, WireError::BaseMismatch { .. }));
    assert_eq!(
        err.to_string(),
        format!(
            "delta snapshot base mismatch: written against base {:#018x} with {} nodes, \
             but the supplied base is {:#018x} with {} nodes",
            handle_a.checksum(),
            handle_a.nodes(),
            handle_b.checksum(),
            handle_b.nodes()
        )
    );
}

#[test]
fn chain_too_deep_display_is_pinned() {
    let err = WireError::ChainTooDeep { depth: 17 };
    assert_eq!(
        err.to_string(),
        "snapshot chain of 17 layers exceeds the maximum depth 16 — compact it \
         into a full snapshot first"
    );
}

#[test]
fn a_full_snapshot_mid_chain_is_malformed() {
    let mut base = Vec::new();
    co_wire::write_snapshot_handle(&mut base, &[obj!({ 1 })], b"").unwrap();
    let err = co_wire::read_chain([base.as_slice(), base.as_slice()]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: full snapshot in the middle of a chain — \
         only the first layer may be full"
    );
}

#[test]
fn truncated_node_table_is_detected() {
    let bytes = healthy();
    // Cut the file mid-payload: the declared payload length no longer
    // arrives in full.
    let err = read_snapshot(&bytes[..bytes.len() - 7]).unwrap_err();
    assert_eq!(
        err.to_string(),
        "truncated snapshot: unexpected end of input while reading payload"
    );
}

#[test]
fn bit_rot_in_the_payload_fails_the_checksum() {
    let mut bytes = healthy();
    // Flip one bit somewhere in the middle of the payload.
    let ix = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
    bytes[ix] ^= 0x01;
    let err = read_snapshot(bytes.as_slice()).unwrap_err();
    let WireError::ChecksumMismatch { expected, actual } = &err else {
        panic!("expected a checksum mismatch, got: {err}");
    };
    assert_ne!(expected, actual);
    assert_eq!(
        err.to_string(),
        format!(
            "snapshot checksum mismatch: header declares {expected:#018x}, \
             payload hashes to {actual:#018x}"
        )
    );
}

/// Builds a snapshot by hand with a patched payload, fixing up length and
/// checksum so only the intended defect is visible to the reader.
fn with_payload(node_count: u64, root_count: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&node_count.to_le_bytes());
    bytes.extend_from_slice(&root_count.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&co_wire::codec::checksum(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

#[test]
fn dangling_forward_reference_is_typed() {
    // One set node whose element references local id 5 — but it is node 0,
    // so nothing is defined yet.
    let payload: &[u8] = &[
        0x00, // 0 symbols
        0x11, // set node
        0x01, // 1 element
        0x07, 0x05, // node ref → local id 5
    ];
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert!(matches!(err, WireError::DanglingRef { id: 5, defined: 0 }));
    assert_eq!(
        err.to_string(),
        "dangling node reference: local id 5 referenced before definition (only 0 nodes decoded)"
    );
}

#[test]
fn self_reference_is_dangling_too() {
    // A set node referencing itself (local id 0 while decoding node 0):
    // the node table must be strictly bottom-up.
    let payload: &[u8] = &[
        0x00, // 0 symbols
        0x11, 0x01, 0x07, 0x00, // set { node #0 }
    ];
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert!(matches!(err, WireError::DanglingRef { id: 0, defined: 0 }));
}

#[test]
fn unknown_node_tag_is_typed() {
    let payload: &[u8] = &[0x00, 0x42];
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: invalid node table tag 0x42"
    );
}

#[test]
fn unknown_value_tag_is_typed() {
    let payload: &[u8] = &[
        0x00, // 0 symbols
        0x11, 0x01, 0x3f, // set with one element of tag 0x3f
    ];
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: invalid node table tag 0x3f"
    );
}

#[test]
fn extremes_inside_a_node_are_rejected() {
    // Canonical composites never contain ⊥/⊤; a snapshot claiming so is
    // malformed, not silently normalized.
    let payload: &[u8] = &[0x00, 0x11, 0x01, 0x01]; // set { ⊤ }
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: ⊤ inside a composite node (canonical nodes contain neither)"
    );
}

#[test]
fn out_of_range_symbol_is_malformed() {
    let payload: &[u8] = &[
        0x00, // 0 symbols
        0x10, 0x01, 0x03, 0x04, 0x02, // tuple { attr #3: int 1 }
    ];
    let err = read_snapshot(with_payload(1, 0, payload).as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: attribute symbol index 3 out of range (0 symbols)"
    );
}

#[test]
fn trailing_bytes_are_malformed() {
    let mut payload = vec![
        0x00, // 0 symbols
        0x00, // 0-length metadata
    ];
    payload.push(0xAB); // junk after the declared end
    let err = read_snapshot(with_payload(0, 0, &payload).as_slice()).unwrap_err();
    assert_eq!(
        err.to_string(),
        "malformed snapshot: 1 trailing bytes after the snapshot payload"
    );
}

#[test]
fn missing_file_is_an_io_error() {
    let err = co_wire::load_from_path("/nonexistent/dir/snapshot.cow").unwrap_err();
    assert!(matches!(err, WireError::Io(_)));
    assert!(err.to_string().starts_with("snapshot io error: "));
}

#[test]
fn cross_restore_dedupes_against_live_nodes() {
    // Intern overlapping content *before* loading: restoration must find
    // the existing nodes, not duplicate them.
    let shared = obj!({[k: 1, v: {alpha, beta}], [k: 2, v: {alpha, beta}]});
    let snapshot_obj = obj!([left: {[k: 1, v: {alpha, beta}], [k: 2, v: {alpha, beta}]},
                             right: {fresh_only_in_snapshot}]);
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, std::slice::from_ref(&snapshot_obj), b"").unwrap();

    let before = co_object::store::stats();
    let snap = read_snapshot(bytes.as_slice()).unwrap();
    let after = co_object::store::stats();

    assert_eq!(snap.roots[0], snapshot_obj);
    // The overlapping relation re-interned to the *same* node as the
    // pre-existing value…
    assert_eq!(snap.roots[0].dot("left").node_id(), shared.node_id());
    // …so loading added far fewer nodes than the snapshot contains: only
    // the genuinely new right-hand relation and the fresh wrapper.
    let added = (after.tuple_nodes + after.set_nodes) as i64
        - (before.tuple_nodes + before.set_nodes) as i64;
    assert!(
        (0..=4).contains(&added),
        "expected ≤ 4 new nodes (wrapper + right relation), got {added}"
    );
}

//! Print → parse round-trip tests: the printer and parser are exact
//! inverses on canonical values.

use co_calculus::{wff, Formula, Rule, Var};
use co_object::random::{Generator, Profile};
use co_parser::{parse_formula, parse_object, parse_program, parse_rule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ print = id` on random canonical objects.
    #[test]
    fn object_display_round_trips(seed in any::<u64>()) {
        let mut g = Generator::new(seed, Profile::default());
        for o in g.objects(4) {
            let printed = o.to_string();
            let reparsed = parse_object(&printed);
            prop_assert_eq!(reparsed.as_ref(), Ok(&o), "printed: {}", printed);
        }
    }

    /// Pretty-printed objects also round-trip.
    #[test]
    fn pretty_round_trips(seed in any::<u64>()) {
        let mut g = Generator::new(seed, Profile::large());
        let o = g.object();
        let printed = co_object::display::pretty(&o, 40);
        prop_assert_eq!(parse_object(&printed), Ok(o));
    }

    /// Strings with hostile content survive print → parse.
    #[test]
    fn string_atoms_round_trip(s in "\\PC*") {
        let o = co_object::Object::str(&s);
        prop_assert_eq!(parse_object(&o.to_string()), Ok(o));
    }

    /// Integer and float atoms round-trip (including inf/nan spellings).
    #[test]
    fn numeric_atoms_round_trip(i in any::<i64>(), f in any::<f64>()) {
        let oi = co_object::Object::int(i);
        prop_assert_eq!(parse_object(&oi.to_string()), Ok(oi));
        let of = co_object::Object::float(f);
        prop_assert_eq!(parse_object(&of.to_string()), Ok(of));
    }
}

#[test]
fn special_float_spellings_round_trip() {
    for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
        let o = co_object::Object::float(v);
        assert_eq!(parse_object(&o.to_string()), Ok(o));
    }
}

#[test]
fn formula_display_round_trips() {
    let (x, y) = (Var::new("X"), Var::new("Y"));
    for f in [
        Formula::Bottom,
        Formula::var(x),
        wff!([r1: {[a: (x), b: (y)]}, r2: {[c: (y)]}]),
        wff!({[a1: (x), a2: (y)]}),
        wff!([r: {}]),
    ] {
        assert_eq!(parse_formula(&f.to_string()), Ok(f.clone()), "formula {f}");
    }
}

#[test]
fn rule_display_round_trips() {
    for src in [
        "[doa: {abraham}].",
        "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
        "{[a1: X, a2: Y]} :- [r1: {[a: X, b: Y]}, r2: {[c: X, d: Y]}].",
    ] {
        let r: Rule = parse_rule(src).unwrap();
        assert_eq!(parse_rule(&r.to_string()), Ok(r.clone()), "rule {r}");
    }
}

#[test]
fn program_display_round_trips() {
    let src = "[doa: {abraham}].
               [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].";
    let p = parse_program(src).unwrap();
    assert_eq!(parse_program(&p.to_string()), Ok(p.clone()));
}

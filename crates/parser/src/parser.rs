//! The recursive-descent parser: tokens → [`Term`]/[`RuleAst`]/[`ProgramAst`].
//!
//! Grammar (terminals quoted):
//!
//! ```text
//! program  :=  rule*
//! rule     :=  term ( ':-' term )? '.'
//! term     :=  'bot' | 'top' | int | float | string | 'true' | 'false'
//!           |  ident | variable | tuple | set
//! tuple    :=  '[' ( pair ( ',' pair )* )? ']'
//! pair     :=  attrname ':' term
//! attrname :=  ident | variable | string      % `[A: X]` — attrs may be uppercase
//! set      :=  '{' ( term ( ',' term )* )? '}'
//! ```

use crate::lexer::lex;
use crate::{ParseError, ProgramAst, RuleAst, Term, TermKind, Token, TokenKind};
use co_object::Atom;

/// How deep tuples/sets may nest before parsing fails with a typed
/// error. The parser (and everything downstream of it — conversion,
/// normalization, interpretation — whose recursion is bounded by AST
/// depth) is recursive-descent, so without a cap a few kilobytes of
/// `[a: [a: …` from an untrusted peer could overflow the thread stack.
/// 128 is far beyond any real schema while keeping worst-case recursion
/// trivially within a default stack.
pub const MAX_NESTING_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current tuple/set nesting depth, checked against
    /// [`MAX_NESTING_DEPTH`].
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        let t = self.peek().clone();
        if &t.kind == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", t.kind),
                t.span,
            ))
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn descend(&mut self, span: crate::Span) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ParseError::new(
                format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                span,
            ));
        }
        Ok(())
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Bot => {
                self.bump();
                Ok(Term {
                    kind: TermKind::Bottom,
                    span: t.span,
                })
            }
            TokenKind::Top => {
                self.bump();
                Ok(Term {
                    kind: TermKind::Top,
                    span: t.span,
                })
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Term {
                    kind: TermKind::Atom(Atom::Int(v)),
                    span: t.span,
                })
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Term {
                    kind: TermKind::Atom(Atom::float(v)),
                    span: t.span,
                })
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Term {
                    kind: TermKind::Atom(Atom::Bool(b)),
                    span: t.span,
                })
            }
            TokenKind::Str(ref s) => {
                let s = s.clone();
                self.bump();
                Ok(Term {
                    kind: TermKind::Atom(Atom::str(s)),
                    span: t.span,
                })
            }
            TokenKind::Ident(ref s) => {
                let s = s.clone();
                self.bump();
                Ok(Term {
                    kind: TermKind::Atom(Atom::str(s)),
                    span: t.span,
                })
            }
            TokenKind::Variable(ref s) => {
                let s = s.clone();
                self.bump();
                Ok(Term {
                    kind: TermKind::Var(s),
                    span: t.span,
                })
            }
            TokenKind::LBracket => self.tuple(),
            TokenKind::LBrace => self.set(),
            ref other => Err(ParseError::new(
                format!("expected a term, found {other}"),
                t.span,
            )),
        }
    }

    fn attr_name(&mut self) -> Result<String, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(s) | TokenKind::Variable(s) | TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            // Keywords may be attribute names too: `[top: 1]` is a tuple
            // whose attribute happens to be called "top".
            TokenKind::Bot => {
                self.bump();
                Ok("bot".into())
            }
            TokenKind::Top => {
                self.bump();
                Ok("top".into())
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(b.to_string())
            }
            other => Err(ParseError::new(
                format!("expected an attribute name, found {other}"),
                t.span,
            )),
        }
    }

    fn tuple(&mut self) -> Result<Term, ParseError> {
        let open = self.expect(&TokenKind::LBracket)?;
        self.descend(open.span)?;
        let mut entries = Vec::new();
        if self.peek().kind != TokenKind::RBracket {
            loop {
                let name = self.attr_name()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.term()?;
                entries.push((name, value));
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let close = self.expect(&TokenKind::RBracket)?;
        self.depth -= 1;
        Ok(Term {
            kind: TermKind::Tuple(entries),
            span: open.span.to(close.span),
        })
    }

    fn set(&mut self) -> Result<Term, ParseError> {
        let open = self.expect(&TokenKind::LBrace)?;
        self.descend(open.span)?;
        let mut elems = Vec::new();
        if self.peek().kind != TokenKind::RBrace {
            loop {
                elems.push(self.term()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let close = self.expect(&TokenKind::RBrace)?;
        self.depth -= 1;
        Ok(Term {
            kind: TermKind::Set(elems),
            span: open.span.to(close.span),
        })
    }

    fn rule(&mut self) -> Result<RuleAst, ParseError> {
        let head = self.term()?;
        let body = if self.peek().kind == TokenKind::ColonDash {
            self.bump();
            Some(self.term()?)
        } else {
            None
        };
        let period = self.expect(&TokenKind::Period)?;
        let span = head.span.to(period.span);
        Ok(RuleAst { head, body, span })
    }

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut rules = Vec::new();
        while !self.at_eof() {
            rules.push(self.rule()?);
        }
        Ok(ProgramAst { rules })
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("unexpected {} after the end of the term", t.kind),
                t.span,
            ))
        }
    }
}

fn parser_for(src: &str) -> Result<Parser, ParseError> {
    Ok(Parser {
        tokens: lex(src)?,
        pos: 0,
        depth: 0,
    })
}

/// Parses a single term (no trailing input allowed).
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = parser_for(src)?;
    let t = p.term()?;
    p.expect_eof()?;
    Ok(t)
}

/// Parses a ground object, e.g. `[name: peter, age: 25]`.
pub fn parse_object(src: &str) -> Result<co_object::Object, ParseError> {
    parse_term(src)?.to_object()
}

/// Parses a well-formed formula, e.g. `[r1: {[a: X, b: b]}]`.
pub fn parse_formula(src: &str) -> Result<co_calculus::Formula, ParseError> {
    parse_term(src)?.to_formula()
}

/// Parses one rule (`head :- body.`) or fact (`head.`).
pub fn parse_rule(src: &str) -> Result<co_calculus::Rule, ParseError> {
    let mut p = parser_for(src)?;
    let r = p.rule()?;
    p.expect_eof()?;
    r.to_rule()
}

/// Parses a program: a sequence of rules and facts.
pub fn parse_program(src: &str) -> Result<co_calculus::Program, ParseError> {
    let mut p = parser_for(src)?;
    p.program()?.to_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_calculus::Var;
    use co_object::{obj, Object};

    #[test]
    fn parses_paper_example_2_1_objects() {
        for (src, expected) in [
            ("john", obj!(john)),
            ("25", obj!(25)),
            ("{john, mary, susan}", obj!({john, mary, susan})),
            ("[name: peter, age: 25]", obj!([name: peter, age: 25])),
            (
                "[name: [first: john, last: doe], age: 25]",
                obj!([name: [first: john, last: doe], age: 25]),
            ),
            (
                "{[name: peter], [name: john, age: 7], [name: mary, address: austin]}",
                obj!({[name: peter], [name: john, age: 7], [name: mary, address: austin]}),
            ),
            (
                "[r1: {[name: peter, age: 25]}, r2: {[name: john, address: austin]}]",
                obj!([r1: {[name: peter, age: 25]}, r2: {[name: john, address: austin]}]),
            ),
        ] {
            assert_eq!(parse_object(src).unwrap(), expected, "source: {src}");
        }
    }

    #[test]
    fn parses_special_objects_and_empties() {
        assert_eq!(parse_object("bot").unwrap(), Object::Bottom);
        assert_eq!(parse_object("top").unwrap(), Object::Top);
        assert_eq!(parse_object("[]").unwrap(), Object::empty_tuple());
        assert_eq!(parse_object("{}").unwrap(), Object::empty_set());
    }

    #[test]
    fn parsing_normalizes() {
        // ⊥ in a set vanishes; dominated elements reduce; ⊤ propagates.
        assert_eq!(parse_object("{1, bot}").unwrap(), obj!({ 1 }));
        assert_eq!(
            parse_object("{[a: 1], [a: 1, b: 2]}").unwrap(),
            obj!({[a: 1, b: 2]})
        );
        assert_eq!(parse_object("[a: {top}, b: 2]").unwrap(), Object::Top);
    }

    #[test]
    fn numbers_strings_bools() {
        assert_eq!(parse_object("-42").unwrap(), obj!(-42));
        assert_eq!(parse_object("2.5").unwrap(), obj!(2.5));
        assert_eq!(parse_object("true").unwrap(), obj!(true));
        assert_eq!(parse_object("\"New York\"").unwrap(), obj!("New York"));
    }

    #[test]
    fn uppercase_attribute_names_allowed() {
        // The paper writes [Rl: {[A: X, B: b]}] with uppercase attributes.
        let f = parse_formula("[R1: {[A: X, B: b]}]").unwrap();
        assert_eq!(f.variables(), vec![Var::new("X")]);
        // In the object reading, uppercase in attr position is fine but a
        // bare uppercase value is a variable — rejected.
        assert!(parse_object("[A: 1]").is_ok());
        assert!(parse_object("[a: X]").is_err());
    }

    #[test]
    fn quoted_attribute_names() {
        let o = parse_object("[\"weird attr\": 1]").unwrap();
        assert_eq!(o.dot("weird attr"), &obj!(1));
        // And they round-trip through display.
        assert_eq!(parse_object(&o.to_string()).unwrap(), o);
    }

    #[test]
    fn keyword_attribute_names() {
        let o = parse_object("[top: 1, bot: 2, true: 3]").unwrap();
        assert_eq!(o.dot("top"), &obj!(1));
        assert_eq!(o.dot("bot"), &obj!(2));
        assert_eq!(o.dot("true"), &obj!(3));
    }

    #[test]
    fn formulas_follow_the_variable_convention() {
        let f = parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]").unwrap();
        assert_eq!(
            f.variables(),
            vec![Var::new("X"), Var::new("Y"), Var::new("Z")]
        );
    }

    #[test]
    fn top_is_not_a_formula() {
        assert!(parse_formula("[a: top]").is_err());
        assert!(parse_formula("bot").is_ok());
    }

    #[test]
    fn rules_and_facts() {
        let fact = parse_rule("[doa: {abraham}].").unwrap();
        assert!(fact.is_fact());
        let rule =
            parse_rule("[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].")
                .unwrap();
        assert!(!rule.is_fact());
        assert_eq!(rule.variables(), vec![Var::new("Y"), Var::new("X")]);
    }

    #[test]
    fn unsafe_rule_rejected_at_parse_time() {
        let r = parse_rule("[r: {X}] :- [r1: {Y}].");
        assert!(r.is_err());
        assert!(r.unwrap_err().message.contains("X"));
    }

    #[test]
    fn programs_with_comments() {
        let p = parse_program(
            "% descendants of abraham (paper Example 4.5)
             [doa: {abraham}].
             [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules()[0].is_fact());
    }

    #[test]
    fn empty_program() {
        assert!(parse_program("").unwrap().is_empty());
        assert!(parse_program("  % just a comment\n").unwrap().is_empty());
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_object("[a: ]").unwrap_err();
        assert_eq!(e.span.line, 1);
        assert_eq!(e.span.col, 5);
        let e = parse_object("[a: 1] [b: 2]").unwrap_err();
        assert!(e.message.contains("after the end"));
    }

    #[test]
    fn missing_period_is_an_error() {
        assert!(parse_rule("[r: {X}] :- [r1: {X}]").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_object("{1, 2} extra").is_err());
    }

    #[test]
    fn nesting_depth_is_capped_with_a_typed_error() {
        // Adversarial input: a few KB of openers would otherwise recurse
        // thousands of frames deep. Never a stack overflow — a ParseError.
        for deep in [
            "{".repeat(10_000),
            "[a: ".repeat(10_000),
            format!("{}X{}", "{[a: ".repeat(5_000), "]}".repeat(5_000)),
        ] {
            let e = parse_term(&deep).unwrap_err();
            assert!(e.message.contains("nesting deeper"), "got: {e}");
            assert!(parse_program(&format!("{deep}.")).is_err());
        }
        // Exactly at the cap still parses.
        let at_cap = format!(
            "{}1{}",
            "{".repeat(MAX_NESTING_DEPTH),
            "}".repeat(MAX_NESTING_DEPTH)
        );
        assert!(parse_term(&at_cap).is_ok());
        let over = format!(
            "{}1{}",
            "{".repeat(MAX_NESTING_DEPTH + 1),
            "}".repeat(MAX_NESTING_DEPTH + 1)
        );
        assert!(parse_term(&over).is_err());
        // Depth is nesting, not total node count: wide-but-shallow is fine.
        let wide = format!(
            "{{{}}}",
            (0..2_000)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(parse_object(&wide).is_ok());
        // Siblings each get the full budget (depth unwinds between them).
        let siblings = format!(
            "[a: {}1{}, b: {}2{}]",
            "{".repeat(MAX_NESTING_DEPTH - 1),
            "}".repeat(MAX_NESTING_DEPTH - 1),
            "{".repeat(MAX_NESTING_DEPTH - 1),
            "}".repeat(MAX_NESTING_DEPTH - 1)
        );
        assert!(parse_term(&siblings).is_ok());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(parse_object("[a: 1, a: 2]").is_err());
        // Equal duplicate values collapse (object semantics).
        assert_eq!(parse_object("[a: 1, a: 1]").unwrap(), obj!([a: 1]));
        // In formulas duplicates are always rejected.
        assert!(parse_formula("[a: X, a: Y]").is_err());
    }
}

//! The parsed syntax tree and its conversions into semantic values.
//!
//! One [`Term`] grammar covers both objects and well-formed formulae — the
//! paper notes the syntax of wffs is "identical to that of objects" up to
//! the variable/constant convention. Conversion to [`Object`] rejects
//! variables; conversion to [`Formula`] rejects `top` (Definition 4.1 has
//! no ⊤ formula) and applies the convention.

use crate::{ParseError, Span};
use co_calculus::{Formula, Program, Rule, Var};
use co_object::{Atom, Attr, Object};

/// A parsed term.
#[derive(Clone, Debug, PartialEq)]
pub struct Term {
    /// Node payload.
    pub kind: TermKind,
    /// Source location.
    pub span: Span,
}

/// The shape of a parsed term.
#[derive(Clone, Debug, PartialEq)]
pub enum TermKind {
    /// `bot`
    Bottom,
    /// `top`
    Top,
    /// An atomic constant.
    Atom(Atom),
    /// An upper-case identifier (variable under the formula reading).
    Var(String),
    /// `[a1: t1, …, an: tn]`
    Tuple(Vec<(String, Term)>),
    /// `{t1, …, tn}`
    Set(Vec<Term>),
}

impl Term {
    /// Converts to a ground [`Object`]. Errors on variables.
    pub fn to_object(&self) -> Result<Object, ParseError> {
        match &self.kind {
            TermKind::Bottom => Ok(Object::Bottom),
            TermKind::Top => Ok(Object::Top),
            TermKind::Atom(a) => Ok(Object::Atom(a.clone())),
            TermKind::Var(name) => Err(ParseError::new(
                format!("variable `{name}` not allowed in an object (objects are ground)"),
                self.span,
            )),
            TermKind::Tuple(entries) => {
                let mut converted: Vec<(Attr, Object)> = Vec::with_capacity(entries.len());
                for (name, t) in entries {
                    converted.push((Attr::new(name), t.to_object()?));
                }
                Object::try_tuple(converted).map_err(|e| ParseError::new(e.to_string(), self.span))
            }
            TermKind::Set(elems) => {
                let converted: Result<Vec<Object>, ParseError> =
                    elems.iter().map(Term::to_object).collect();
                Ok(Object::set(converted?))
            }
        }
    }

    /// Converts to a [`Formula`]. Errors on `top` (not a wff per
    /// Definition 4.1).
    pub fn to_formula(&self) -> Result<Formula, ParseError> {
        match &self.kind {
            TermKind::Bottom => Ok(Formula::Bottom),
            TermKind::Top => Err(ParseError::new(
                "`top` is not a well-formed formula (Definition 4.1)",
                self.span,
            )),
            TermKind::Atom(a) => Ok(Formula::Atom(a.clone())),
            TermKind::Var(name) => Ok(Formula::Var(Var::new(name))),
            TermKind::Tuple(entries) => {
                let mut converted: Vec<(Attr, Formula)> = Vec::with_capacity(entries.len());
                for (name, t) in entries {
                    converted.push((Attr::new(name), t.to_formula()?));
                }
                Formula::tuple(converted).map_err(|e| ParseError::new(e.to_string(), self.span))
            }
            TermKind::Set(elems) => {
                let converted: Result<Vec<Formula>, ParseError> =
                    elems.iter().map(Term::to_formula).collect();
                Ok(Formula::set(converted?))
            }
        }
    }
}

/// A parsed rule `head :- body.` or fact `head.`.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleAst {
    /// Head term.
    pub head: Term,
    /// Body term; `None` for facts.
    pub body: Option<Term>,
    /// Span of the whole rule.
    pub span: Span,
}

impl RuleAst {
    /// Converts to a semantic [`Rule`], checking Definition 4.3's safety
    /// condition.
    pub fn to_rule(&self) -> Result<Rule, ParseError> {
        let head = self.head.to_formula()?;
        let body = match &self.body {
            Some(b) => b.to_formula()?,
            None => Formula::Bottom,
        };
        Rule::new(head, body).map_err(|e| ParseError::new(e.to_string(), self.span))
    }
}

/// A parsed program: a sequence of rules.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ProgramAst {
    /// The rules, in source order.
    pub rules: Vec<RuleAst>,
}

impl ProgramAst {
    /// Converts to a semantic [`Program`].
    pub fn to_program(&self) -> Result<Program, ParseError> {
        let rules: Result<Vec<Rule>, ParseError> =
            self.rules.iter().map(RuleAst::to_rule).collect();
        Ok(Program::from_rules(rules?))
    }
}

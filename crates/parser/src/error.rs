//! Parse errors with source locations.

use std::fmt;

/// A half-open byte span into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// Merges two spans into their convex hull.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse (or lex, or conversion) error, with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with the offending source line and a caret.
    pub fn render(&self, source: &str) -> String {
        let line_text = source
            .lines()
            .nth(self.span.line.saturating_sub(1) as usize);
        match line_text {
            Some(text) => {
                let caret_pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
                format!(
                    "parse error at {}: {}\n  | {}\n  | {}^",
                    self.span, self.message, text, caret_pad
                )
            }
            None => format!("parse error at {}: {}", self.span, self.message),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span {
            start: 2,
            end: 5,
            line: 1,
            col: 3,
        };
        let b = Span {
            start: 7,
            end: 9,
            line: 1,
            col: 8,
        };
        let m = a.to(b);
        assert_eq!((m.start, m.end), (2, 9));
    }

    #[test]
    fn render_points_at_the_column() {
        let e = ParseError::new(
            "unexpected `}`",
            Span {
                start: 4,
                end: 5,
                line: 1,
                col: 5,
            },
        );
        let r = e.render("[a: }]");
        assert!(r.contains("unexpected `}`"));
        assert!(r.contains("[a: }]"));
        assert!(r.lines().last().unwrap().ends_with("    ^"));
    }
}

//! Tokens of the concrete syntax.

use crate::Span;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.` (rule terminator)
    Period,
    /// `:-`
    ColonDash,
    /// Lower-case identifier (string constant or attribute name).
    Ident(String),
    /// Upper-case / underscore identifier (variable, or attribute name in
    /// attribute position).
    Variable(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (also produced by `inf` / `nan` keywords).
    Float(f64),
    /// Quoted string literal, unescaped.
    Str(String),
    /// `bot`
    Bot,
    /// `top`
    Top,
    /// `true` / `false`
    Bool(bool),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Period => write!(f, "`.`"),
            TokenKind::ColonDash => write!(f, "`:-`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Variable(s) => write!(f, "variable `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Bot => write!(f, "`bot`"),
            TokenKind::Top => write!(f, "`top`"),
            TokenKind::Bool(b) => write!(f, "`{b}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

//! # co-parser — concrete syntax for complex objects, formulae, and rules
//!
//! The paper's Prolog-flavoured notation, as a parser and printer:
//!
//! ```text
//! % objects (ground terms)
//! [name: [first: john, last: doe], children: {john, mary, susan}]
//!
//! % well-formed formulae (uppercase identifiers are variables)
//! [r1: {[a: X, b: b]}]
//!
//! % rules and facts (programs are sequences of these)
//! [doa: {abraham}].
//! [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
//! ```
//!
//! Printing is [`co_object::Object`]'s / [`co_calculus::Formula`]'s
//! `Display`, which this parser round-trips:
//! `parse_object(&o.to_string()) == Ok(o)` for every object `o`.
//!
//! ```
//! use co_parser::{parse_object, parse_program};
//!
//! let o = parse_object("[name: peter, age: 25]").unwrap();
//! assert_eq!(co_parser::parse_object(&o.to_string()).unwrap(), o);
//!
//! let p = parse_program("[doa: {abraham}].").unwrap();
//! assert_eq!(p.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ast;
mod error;
mod lexer;
mod parser;
mod token;

pub use ast::{ProgramAst, RuleAst, Term, TermKind};
pub use error::{ParseError, Span};
pub use lexer::lex;
pub use parser::{
    parse_formula, parse_object, parse_program, parse_rule, parse_term, MAX_NESTING_DEPTH,
};
pub use token::{Token, TokenKind};
